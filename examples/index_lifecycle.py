"""Production lifecycle: build, save, load, serve, update.

The survey's S1 scenario (frequently updated data) is about exactly
this loop.  Incremental algorithms (NSW/HNSW) absorb inserts natively;
deletions are tombstones; a built index round-trips through one
``.npz`` file for deployment.

Run:  python examples/index_lifecycle.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import create, load_dataset
from repro.io import load_index, save_index

dataset = load_dataset("sift1m", cardinality=1500, num_queries=20)

# build ----------------------------------------------------------------
index = create("hnsw", seed=0)
report = index.build(dataset.base)
print(f"built hnsw: {report.build_time_s:.2f}s, {dataset.n} vectors")

# serve a query ---------------------------------------------------------
query = dataset.queries[0]
before = index.search(query, k=5, ef=60)
print(f"top-5: {before.ids.tolist()}")

# update: a fresher, closer document arrives; an old one is withdrawn ---
fresh = (query + np.random.default_rng(0).normal(0, 0.05, dataset.dim)).astype(
    np.float32
)
new_id = index.insert(fresh)
index.delete(int(before.ids[0]))
after = index.search(query, k=5, ef=60)
print(f"after insert+delete: {after.ids.tolist()}  (new doc id {new_id})")
assert new_id in after.ids
assert before.ids[0] not in after.ids

# persist and reload ----------------------------------------------------
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "hnsw.npz"
    save_index(index, path)
    print(f"saved {path.stat().st_size / 1024:.0f} KiB")
    served = load_index(path)
    result = served.search(query, k=5, ef=60)
    print(f"reloaded index answers: {result.ids.tolist()}")
print("\nlifecycle complete: build -> serve -> insert/delete -> save -> load")
