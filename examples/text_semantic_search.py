"""Semantic search on a hard (high-LID) embedding space.

Deep-feature corpora like GIST and GloVe are the survey's hardest
datasets (LID ~19-20): every index needs a far larger candidate set
there, and some hit recall ceilings (Table 7 scenario S4).  This
example contrasts an easy corpus (Audio) with the GIST stand-in and
shows the candidate-set blow-up — Table 5's CS column in miniature.

Run:  python examples/text_semantic_search.py
"""

from repro import create, load_dataset
from repro.datasets import estimate_lid
from repro.pipeline import candidate_size_for_recall

TARGET = 0.98

for corpus in ("audio", "gist1m"):
    dataset = load_dataset(corpus, cardinality=2000, num_queries=30)
    lid = estimate_lid(dataset.base)
    print(f"\n=== {corpus} (dim={dataset.dim}, measured LID {lid:.1f}) ===")
    print(f"{'algorithm':8s} {'CS@.98':>7s} {'hops':>6s} {'NDC':>6s} {'recall':>7s}")
    for name in ("efanna", "hnsw", "nsg"):
        index = create(name, seed=0)
        index.build(dataset.base)
        cs = candidate_size_for_recall(
            index, dataset, TARGET, ef_grid=(10, 20, 40, 80, 160, 320)
        )
        flag = "+" if cs.hit_ceiling else " "
        print(
            f"{name:8s} {cs.candidate_size:6d}{flag} {cs.mean_hops:6.0f} "
            f"{cs.mean_ndc:6.0f} {cs.recall:7.3f}"
        )

print(
    "\nThe harder corpus needs a far larger candidate set (a '+' marks a"
    "\nrecall ceiling, Table 5's notation); HNSW degrades most gracefully"
    "\n— Table 7's S4 advice for hard datasets."
)
