"""The four base graphs of §3.1, side by side (Figure 2 in text form).

Every surveyed algorithm approximates one or more of: the Delaunay
Graph (DG), the Relative Neighborhood Graph (RNG), the K-Nearest
Neighbor Graph (KNNG) and the Minimum Spanning Tree (MST).  This
example builds all four exactly on a small 2-D point set and verifies
the classical containment chain  MST ⊆ RNG ⊆ DG.

Run:  python examples/base_graphs.py
"""

import numpy as np

from repro.graphs import (
    Graph,
    delaunay_graph,
    euclidean_mst,
    exact_knn_graph,
    relative_neighborhood_graph,
)

rng = np.random.default_rng(7)
points = rng.random((120, 2)).astype(np.float32) * 10.0

dg = delaunay_graph(points)
rng_graph = relative_neighborhood_graph(points)
knng = exact_knn_graph(points, k=4)
mst_edges = euclidean_mst(points)
mst = Graph(len(points))
for u, v, _ in mst_edges:
    mst.add_undirected_edge(u, v)

print(f"{'graph':6s} {'edges':>6s} {'avg deg':>8s} {'components':>11s} {'directed':>9s}")
for label, graph, directed in (
    ("DG", dg, False),
    ("RNG", rng_graph, False),
    ("KNNG", knng, True),
    ("MST", mst, False),
):
    undirected_edges = graph.num_edges if directed else graph.num_edges // 2
    print(
        f"{label:6s} {undirected_edges:6d} {graph.average_out_degree:8.1f} "
        f"{graph.num_connected_components():11d} {str(directed):>9s}"
    )

# the classical containments (in the plane)
dg_edges = dg.edge_set()
rng_edges = rng_graph.edge_set()
mst_set = {(u, v) for u, v, _ in mst_edges} | {(v, u) for u, v, _ in mst_edges}

assert mst_set <= rng_edges, "MST must be contained in the RNG"
assert rng_edges <= dg_edges, "RNG must be contained in the DG"
print("\ncontainment verified: MST ⊆ RNG ⊆ DG")
print(
    "\nKNNG is the odd one out: directed, possibly disconnected — the"
    "\nconnectivity problem every KNNG-based algorithm has to repair."
)
