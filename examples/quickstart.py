"""Quickstart: build a graph index, search it, measure recall.

Run:  python examples/quickstart.py
"""

from repro import create, load_dataset
from repro.metrics import recall_at_k

# A scaled-down stand-in for SIFT1M (128-d image descriptors).
dataset = load_dataset("sift1m", cardinality=2000, num_queries=20)
print(f"dataset: {dataset.name}  n={dataset.n}  dim={dataset.dim}")

# Build an HNSW index -- any name from repro.ALGORITHMS works here.
index = create("hnsw", m=10, ef_construction=40, seed=0)
report = index.build(dataset.base)
print(
    f"built in {report.build_time_s:.2f}s, "
    f"index size {report.index_size_bytes / 1024:.0f} KiB, "
    f"avg out-degree {index.graph.average_out_degree:.1f}"
)

# Search: ef is the candidate-set size, the accuracy/speed knob.
query = dataset.queries[0]
result = index.search(query, k=10, ef=60)
print(f"top-10 ids: {result.ids.tolist()}")
print(f"distance computations for this query: {result.ndc} of {dataset.n}")
print(f"recall@10: {recall_at_k(result.ids, dataset.ground_truth[0], 10):.2f}")

# Batch evaluation over all queries.
stats = index.batch_search(dataset.queries, dataset.ground_truth, k=10, ef=60)
print(
    f"batch: recall={stats.recall:.3f}  QPS={stats.qps:.0f}  "
    f"speedup over linear scan={stats.speedup:.0f}x"
)
