"""Component lab: assemble your own ANNS algorithm from C1-C7 parts.

The survey's central tool is a unified pipeline where each fine-grained
component can be swapped independently (§5.4).  This example builds the
Table 13 benchmark algorithm, then swaps the neighbor-selection rule
(C3) and the routing strategy (C7) one at a time, reproducing a slice
of Figure 10 on your machine.

Run:  python examples/component_lab.py
"""

from repro import load_dataset
from repro.pipeline import BENCHMARK_DEFAULTS, BenchmarkAlgorithm

dataset = load_dataset("sift1m", cardinality=2000, num_queries=30)
print(f"benchmark defaults (Table 13): {BENCHMARK_DEFAULTS}\n")


def evaluate(label, **swap):
    algorithm = BenchmarkAlgorithm(**swap, seed=0)
    algorithm.build(dataset.base)
    stats = algorithm.batch_search(
        dataset.queries, dataset.ground_truth, k=10, ef=60
    )
    print(
        f"{label:22s} recall={stats.recall:.3f}  ndc={stats.mean_ndc:6.0f}  "
        f"AD={algorithm.graph.average_out_degree:5.1f}  "
        f"build={algorithm.build_report.build_time_s:5.2f}s"
    )


print("C3 (neighbor selection) swaps:")
evaluate("C3_HNSW (default)")
evaluate("C3_KGraph (dist only)", c3="kgraph")
evaluate("C3_DPG (angle sum)", c3="dpg")
evaluate("C3_NSSG (angle cut)", c3="nssg")

print("\nC7 (routing) swaps:")
evaluate("C7_NSW (best-first)")
evaluate("C7_NGT (range)", c7="ngt")
evaluate("C7_HCNNG (guided)", c7="hcnng")
evaluate("C7_FANNG (backtrack)", c7="fanng")

print(
    "\nDistribution-aware selection (C3_HNSW/DPG/NSSG) beats distance-only"
    "\nselection, and guided routing trades a little recall for fewer"
    "\ndistance computations — Figure 10(c)/(f) in miniature."
)
