"""Deployment helpers: scenario advice, hybrid queries, storage modelling.

Three tools built on the survey's §6 discussion:

1. the Table 7 advisor recommends algorithms from data characteristics;
2. attribute-filtered search answers hybrid vector+predicate queries
   (the "structured attribute constraints" tendency);
3. the I/O cost model replays Table 7's external-memory argument:
   query path length ≈ I/O count, so low-PL indexes win on disk.

Run:  python examples/hybrid_queries_and_deployment.py
"""

import numpy as np

from repro import create, load_dataset
from repro.advisor import profile_dataset, recommend_for_data
from repro.extensions import AttributeFilteredIndex, DiskIOModel
from repro.extensions.io_model import StorageProfile

dataset = load_dataset("sift1m", cardinality=2000, num_queries=20)

# 1. ask the advisor -------------------------------------------------------
profile = profile_dataset(dataset.base)
picks = recommend_for_data(dataset.base)
print(
    f"profile: n={profile.cardinality} dim={profile.dim} "
    f"LID={profile.lid:.1f} ({'hard' if profile.is_hard else 'simple'})"
)
print(f"Table 7 recommends: {', '.join(picks)}\n")

index = create(picks[0], seed=0)
index.build(dataset.base)

# 2. hybrid query: nearest red items under a price cap ---------------------
rng = np.random.default_rng(0)
attributes = [
    {"color": ("red" if flag else "blue"), "price": int(price)}
    for flag, price in zip(
        rng.random(dataset.n) < 0.5, rng.integers(1, 100, dataset.n)
    )
]
hybrid = AttributeFilteredIndex(index, attributes)
result = hybrid.search(
    dataset.queries[0],
    lambda a: a["color"] == "red" and a["price"] < 50,
    k=5,
    ef=60,
)
print("hybrid query (red, price < 50):")
for idx, dist in zip(result.ids, result.dists):
    print(f"  id={int(idx):5d} dist={dist:7.3f} attrs={attributes[int(idx)]}")

# 3. storage modelling ------------------------------------------------------
print("\nmodelled per-query latency by storage tier:")
stats = index.batch_search(dataset.queries, dataset.ground_truth, k=10, ef=60)
for profile_cls in (StorageProfile.ram, StorageProfile.ssd, StorageProfile.hdd):
    storage = profile_cls()
    estimate = DiskIOModel(storage).estimate(stats)
    print(
        f"  {storage.name:3s}: {estimate.latency_s * 1000:8.3f} ms "
        f"({estimate.io_count:.0f} I/Os, {estimate.ndc:.0f} distance evals)"
    )
print("\nOn disk, hops dominate: that is why Table 7's S3 row favours")
print("low-path-length indexes like DPG and HCNNG.")
