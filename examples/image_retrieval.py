"""Image-retrieval scenario: pick the right index for SIFT-like vectors.

The survey's Table 7 recommends NSG/HCNNG/DPG-class algorithms for
"simple" datasets like SIFT.  This example builds three candidates on
the SIFT1M stand-in, sweeps their accuracy/efficiency tradeoff and
prints a mini Figure 8 so you can see the recommendation emerge.

Run:  python examples/image_retrieval.py
"""

from repro import create, load_dataset
from repro.pipeline import sweep_recall_curve

dataset = load_dataset("sift1m", cardinality=2000, num_queries=30)
print(f"corpus: {dataset.n} image descriptors, dim={dataset.dim}\n")

contenders = ["nsg", "hcnng", "kgraph"]
curves = {}
for name in contenders:
    index = create(name, seed=0)
    report = index.build(dataset.base)
    curves[name] = sweep_recall_curve(
        index, dataset, k=10, ef_grid=(10, 20, 40, 80, 160)
    )
    print(
        f"{name:8s} build {report.build_time_s:6.2f}s  "
        f"index {report.index_size_bytes / 1024:6.0f} KiB"
    )

print("\nSpeedup vs Recall@10 (higher-right is better):")
print(f"{'ef':>5s}  " + "  ".join(f"{name:>18s}" for name in contenders))
for row in zip(*(curves[name] for name in contenders)):
    ef = row[0].ef
    cells = "  ".join(
        f"r={p.recall:.3f} s={p.speedup:6.1f}x" for p in row
    )
    print(f"{ef:5d}  {cells}")

best = max(
    contenders,
    key=lambda name: max(p.speedup for p in curves[name] if p.recall >= 0.9),
)
print(f"\nbest speedup at recall >= 0.90: {best}")
