"""Figure 14 / Appendix D — empirical complexity exponents.

Construction time and per-query NDC (at a fixed recall target) are
measured over a cardinality sweep of the d=32 / 10-cluster / SD=5
synthetic dataset (Table 8), then fitted to a * n^b in log-log space.

Paper shapes: NN-Descent construction is slightly super-linear
(O(n^1.14) in the paper); search NDC grows sub-linearly with strongly
different exponents per family (DPG ~ n^0.28 vs KGraph ~ n^0.54 — the
diversification pay-off the appendix highlights).
"""

import pytest

from common import write_table
from repro import create
from repro.datasets import make_clustered
from repro.pipeline import candidate_size_for_recall, fit_power_law

SIZES = (300, 600, 1500)
ALGORITHMS = ("kgraph", "efanna", "dpg", "nsg", "hcnng", "vamana", "ieh")

_build: dict[str, list] = {}
_search: dict[str, list] = {}


def _dataset(n):
    return make_clustered(
        32, n, 10, 5.0, num_queries=20, gt_depth=20, seed=1,
        name=f"complexity_{n}",
    )


@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_complexity_sweep(benchmark, algorithm_name):
    def sweep():
        build_pts, search_pts = [], []
        for n in SIZES:
            dataset = _dataset(n)
            index = create(algorithm_name, seed=0)
            index.build(dataset.base)
            build_pts.append((n, index.build_report.build_time_s))
            cs = candidate_size_for_recall(
                index, dataset, 0.9, ef_grid=(10, 20, 40, 80, 160)
            )
            search_pts.append((n, cs.mean_ndc))
        return build_pts, search_pts

    build_pts, search_pts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _build[algorithm_name] = build_pts
    _search[algorithm_name] = search_pts
    build_exp, _ = fit_power_law(*zip(*build_pts))
    search_exp, _ = fit_power_law(*zip(*search_pts))
    benchmark.extra_info.update(build_exponent=build_exp, search_exponent=search_exp)


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'algorithm':10s} {'build O(n^b)':>13s} {'search O(n^b)':>14s}  "
        f"(sizes {SIZES})"
    ]
    exponents = {}
    for name in ALGORITHMS:
        if name not in _build:
            continue
        build_exp, _ = fit_power_law(*zip(*_build[name]))
        search_exp, _ = fit_power_law(*zip(*_search[name]))
        exponents[name] = (build_exp, search_exp)
        lines.append(f"{name:10s} {build_exp:13.2f} {search_exp:14.2f}")
    write_table(
        "fig14_complexity", "Figure 14: empirical complexity exponents", lines
    )

    # search NDC must grow sub-linearly across the family; individual
    # four-point fits are noisy (CS moves in ef-grid steps), so assert
    # the family median strictly and each algorithm with a margin
    search_exps = sorted(exp for _, exp in exponents.values())
    if search_exps:
        median = search_exps[len(search_exps) // 2]
        assert median < 0.9, f"median search exponent {median:.2f}"
        for name, (_, search_exp) in exponents.items():
            assert search_exp < 1.1, f"{name} search exponent {search_exp:.2f}"
    # the diversification claim: DPG's search exponent < KGraph's
    if "dpg" in exponents and "kgraph" in exponents:
        assert exponents["dpg"][1] <= exponents["kgraph"][1] + 0.1
