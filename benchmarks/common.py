"""Shared infrastructure for the per-table/figure benchmarks.

Scale knobs (environment variables):

* ``REPRO_BENCH_N``      — base cardinality per dataset (default 1200);
* ``REPRO_BENCH_QUERIES``— queries per dataset (default 30);
* ``REPRO_BENCH_FULL``   — ``1`` runs all eight real-world stand-ins
  (default: four spanning the difficulty range, like the paper's
  representative-figures subset).

Built indexes are cached per (algorithm, dataset) across the whole
pytest session, so every benchmark file sees identical indexes — the
paper's "same index, many metrics" methodology.

Results are appended to ``benchmarks/results/<experiment>.txt`` as
paper-style tables and echoed to stdout (visible with ``pytest -s``).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro import create
from repro.algorithms.base import GraphANNS
from repro.datasets import Dataset, load_dataset
from repro.observability.slog import get_logger

log = get_logger("repro.bench")

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "600"))
BENCH_QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "16"))
FULL_SUITE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: difficulty-ordered subset used by default (easy -> hard, Table 3 LID)
CORE_DATASETS = ("audio", "sift1m", "gist1m", "glove")
ALL_DATASETS = (
    "audio", "uqv", "sift1m", "msong", "enron", "crawl", "gist1m", "glove",
)

#: all algorithm variants compared in the paper's figures
BENCH_ALGORITHMS = (
    "kgraph", "ngt-panng", "ngt-onng", "sptag-kdt", "sptag-bkt", "nsw",
    "ieh", "fanng", "hnsw", "efanna", "dpg", "nsg", "hcnng", "vamana",
    "nssg",
)

RESULTS_DIR = Path(__file__).parent / "results"

_dataset_cache: dict[str, Dataset] = {}
_index_cache: dict[tuple[str, str], GraphANNS] = {}
_sweep_cache: dict[tuple, list] = {}


def bench_datasets() -> tuple[str, ...]:
    return ALL_DATASETS if FULL_SUITE else CORE_DATASETS


def get_dataset(name: str) -> Dataset:
    if name not in _dataset_cache:
        _dataset_cache[name] = load_dataset(
            name, cardinality=BENCH_N, num_queries=BENCH_QUERIES
        )
    return _dataset_cache[name]


def get_index(algorithm: str, dataset: str, **params) -> GraphANNS:
    """Build (once) and return the index for one (algorithm, dataset)."""
    key = (algorithm, dataset)
    if key not in _index_cache:
        index = create(algorithm, seed=0, **params)
        index.build(get_dataset(dataset).base)
        _index_cache[key] = index
    return _index_cache[key]


def write_table(experiment: str, title: str, lines: list[str]) -> None:
    """Persist one paper-style table and echo it.

    The table text goes to stdout verbatim (format-stable — downstream
    tooling and ``collect_results.py`` consume it), while a structured
    ``bench.table`` event carries the machine-readable fields.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    body = "\n".join([f"== {title} ==", *lines, ""])
    (RESULTS_DIR / f"{experiment}.txt").write_text(body)
    log.echo("\n" + body, event="bench.table", experiment=experiment,
             title=title, rows=len(lines))


def get_sweep(algorithm: str, dataset: str, ef_grid: tuple[int, ...]) -> list:
    """ef-sweep over a cached index, memoised (Figures 7 and 8 share it)."""
    from repro.pipeline import sweep_recall_curve

    key = (algorithm, dataset, ef_grid)
    if key not in _sweep_cache:
        _sweep_cache[key] = sweep_recall_curve(
            get_index(algorithm, dataset), get_dataset(dataset),
            k=10, ef_grid=ef_grid,
        )
    return _sweep_cache[key]
