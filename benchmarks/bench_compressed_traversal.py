"""Microbenchmark for compressed (ADC) traversal at 10× hotpath scale.

Builds one index over ~100k synthetic points (10× the 10k-point hotpath
benchmarks), then compares the exact batched engine against compressed
traversal with exact re-rank:

* throughput (QPS) and recall@k against brute-force ground truth,
* resident vector memory: float32 rows vs uint8 codes + codebooks,
* re-rank tier I/O measured (``rerank_ndc``) against the
  :class:`repro.extensions.io_model.DiskIOModel` prediction, via a
  memory-mapped float32 sidecar.

Results land under the ``"compressed"`` key of ``BENCH_search.json``
(merge-written; ``bench_search_hotpath.py`` owns the other keys) plus a
plain table in ``benchmarks/results/compressed_traversal.txt``.  Run
directly::

    PYTHONPATH=src python benchmarks/bench_compressed_traversal.py

Scale knobs: ``REPRO_BENCH_COMPRESSED_N`` (points, default 100000),
``REPRO_BENCH_COMPRESSED_QUERIES`` (default 100),
``REPRO_BENCH_COMPRESSED_WORKERS`` (default 4).
"""

from __future__ import annotations

import json
import os
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import create  # noqa: E402
from repro.batch import search_batch  # noqa: E402
from repro.extensions.io_model import DiskIOModel, StorageProfile  # noqa: E402
from repro.io import load_index, save_index  # noqa: E402

N = int(os.environ.get("REPRO_BENCH_COMPRESSED_N", "100000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_COMPRESSED_QUERIES", "100"))
WORKERS = int(os.environ.get("REPRO_BENCH_COMPRESSED_WORKERS", "4"))
DIM = 32
K = 10
EF = 80
RERANK_FACTOR = 10
PQ_SUBSPACES = 16
PQ_CENTROIDS = 32

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_search.json"
RESULTS = Path(__file__).resolve().parent / "results"


def peak_rss_bytes() -> int:
    """High-water resident set of this process (Linux: ru_maxrss in KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def brute_force_topk(data: np.ndarray, queries: np.ndarray, k: int) -> np.ndarray:
    """Exact ground truth, blocked so 100k x d never materializes twice."""
    truth = np.empty((len(queries), k), dtype=np.int64)
    data64 = data.astype(np.float64)
    norms = np.einsum("ij,ij->i", data64, data64)
    for i, query in enumerate(queries):
        q = query.astype(np.float64)
        sq = norms - 2.0 * (data64 @ q) + q @ q
        truth[i] = np.argsort(sq, kind="stable")[:k]
    return truth


def recall(ids: np.ndarray, truth: np.ndarray) -> float:
    hits = 0
    for row, gt in zip(ids, truth):
        hits += len(set(int(i) for i in row if i >= 0) & set(int(t) for t in gt))
    return hits / truth.size


def bench_engine(index, queries, truth, compressed: bool, repeats: int = 5):
    best_elapsed = np.inf
    result = None
    for _ in range(repeats):
        r = search_batch(
            index, queries, k=K, ef=EF, workers=WORKERS,
            compressed=compressed,
            rerank_factor=RERANK_FACTOR if compressed else None,
        )
        if r.elapsed_s < best_elapsed:
            best_elapsed = r.elapsed_s
            result = r
    stats = {
        "qps": len(queries) / best_elapsed,
        "recall_at_k": recall(result.ids, truth),
        "mean_ndc": float(result.ndc.mean()),
    }
    if compressed:
        stats["mean_adc_lookups"] = float(result.adc_lookups.mean())
        stats["mean_rerank_ndc"] = float(result.rerank_ndc.mean())
    return stats


def main() -> None:
    rng = np.random.default_rng(7)
    # plain Gaussian like bench_search_hotpath: tight clusters would
    # disconnect the kNN digraph and punish both engines equally
    data = rng.normal(size=(N, DIM)).astype(np.float32)
    queries = rng.normal(size=(NUM_QUERIES, DIM)).astype(np.float32)

    t0 = time.perf_counter()
    index = create("kgraph", seed=0)
    index.build(data)
    build_s = time.perf_counter() - t0
    print(f"built kgraph over {N} points in {build_s:.1f}s", flush=True)

    truth = brute_force_topk(data, queries, K)
    index.enable_compressed(
        num_subspaces=PQ_SUBSPACES, codebook_size=PQ_CENTROIDS
    )
    tier = index.compressed_tier

    # warm-up both engines
    search_batch(index, queries[:8], k=K, ef=EF, workers=WORKERS)
    search_batch(index, queries[:8], k=K, ef=EF, workers=WORKERS,
                 compressed=True, rerank_factor=RERANK_FACTOR)

    exact = bench_engine(index, queries, truth, compressed=False)
    comp = bench_engine(index, queries, truth, compressed=True)

    vector_bytes = int(data.nbytes)
    resident_bytes = int(tier.memory_bytes())

    # tiered deployment: sidecar + mmap, re-rank I/O vs the cost model
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "index.npz"
        save_index(index, path, vector_tier="sidecar")
        # verify=False: the index was built and saved two lines up, and
        # the reachability check walks a kNN digraph (kgraph) that
        # legitimately has unreachable tails
        mapped = load_index(path, mmap_vectors=True, verify=False)
        mapped_result = search_batch(
            mapped, queries, k=K, ef=EF, workers=WORKERS,
            compressed=True, rerank_factor=RERANK_FACTOR,
        )
    measured_reads = float(mapped_result.rerank_ndc.mean())
    model = DiskIOModel(StorageProfile.ssd()).estimate_compressed(
        float(mapped_result.adc_lookups.mean()), measured_reads
    )
    predicted_reads = float(min(RERANK_FACTOR * K, N))

    report = {
        "n": N,
        "dim": DIM,
        "num_queries": NUM_QUERIES,
        "k": K,
        "ef": EF,
        "workers": WORKERS,
        "rerank_factor": RERANK_FACTOR,
        "pq": {"num_subspaces": PQ_SUBSPACES, "codebook_size": PQ_CENTROIDS},
        "build_s": build_s,
        "exact": exact,
        "compressed": comp,
        "memory": {
            "vector_bytes": vector_bytes,
            "compressed_resident_bytes": resident_bytes,
            "resident_fraction": resident_bytes / vector_bytes,
        },
        "io_model": {
            "predicted_rerank_reads": predicted_reads,
            "measured_rerank_reads": measured_reads,
            "modeled_ssd_latency_ms": model.latency_s * 1e3,
            "mmap_recall_at_k": recall(mapped_result.ids, truth),
        },
        "peak_rss_bytes": peak_rss_bytes(),
    }

    merged = {}
    if OUTPUT.exists():
        try:
            merged = json.loads(OUTPUT.read_text())
        except (OSError, json.JSONDecodeError):
            merged = {}
    merged["compressed"] = report
    OUTPUT.write_text(json.dumps(merged, indent=2) + "\n")

    lines = [
        f"n={N} dim={DIM} queries={NUM_QUERIES} k={K} ef={EF} "
        f"workers={WORKERS} rerank_factor={RERANK_FACTOR} "
        f"pq={PQ_SUBSPACES}x{PQ_CENTROIDS}",
        f"{'engine':12s} {'qps':>9s} {'recall@10':>10s} {'mean_ndc':>9s} "
        f"{'adc':>8s} {'rerank':>7s}",
        f"{'exact':12s} {exact['qps']:9.0f} {exact['recall_at_k']:10.3f} "
        f"{exact['mean_ndc']:9.1f} {'-':>8s} {'-':>7s}",
        f"{'compressed':12s} {comp['qps']:9.0f} {comp['recall_at_k']:10.3f} "
        f"{comp['mean_ndc']:9.1f} {comp['mean_adc_lookups']:8.0f} "
        f"{comp['mean_rerank_ndc']:7.1f}",
        f"resident vectors: exact {vector_bytes / 1e6:.1f} MB, "
        f"compressed {resident_bytes / 1e6:.2f} MB "
        f"({resident_bytes / vector_bytes:.1%})",
        f"io model: predicted {predicted_reads:.0f} reads/query, "
        f"measured {measured_reads:.1f} "
        f"(modeled ssd latency {model.latency_s * 1e3:.2f} ms)",
        f"peak rss: {report['peak_rss_bytes'] / 1e6:.0f} MB",
    ]
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "compressed_traversal.txt").write_text(
        "\n".join(["== compressed ADC traversal (10x scale) ==", *lines, ""])
    )
    print("\n".join(lines))

    ok = (
        comp["qps"] >= 0.5 * exact["qps"]
        and comp["recall_at_k"] >= exact["recall_at_k"] - 0.02
        and resident_bytes < vector_bytes / 3
    )
    print("acceptance:", "PASS" if ok else "FAIL")
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
