"""Microbenchmark for the construction hot path: serial vs parallel build.

Builds each algorithm over a medium synthetic dataset at every worker
count, timing the build and recording the per-phase breakdown the build
engine reports.  Because construction is deterministic, the adjacency
produced at every worker count must be bit-identical — the script
verifies that and refuses to report a speedup obtained by divergence.

Writes ``BENCH_build.json`` next to the repository root and a plain
table to ``benchmarks/results/build_hotpath.txt``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_build_hotpath.py

Scale knobs: ``REPRO_BENCH_BUILD_N`` (points, default 2000),
``REPRO_BENCH_BUILD_ALGOS`` (comma list, default nsg,vamana,nssg,oa),
``REPRO_BENCH_BUILD_WORKERS`` (comma list, default 1,4).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

import numpy as np

from repro import create

N = int(os.environ.get("REPRO_BENCH_BUILD_N", "2000"))
DIM = int(os.environ.get("REPRO_BENCH_BUILD_DIM", "32"))
ALGOS = os.environ.get("REPRO_BENCH_BUILD_ALGOS", "nsg,vamana,nssg,oa").split(",")
WORKER_COUNTS = tuple(
    int(w) for w in os.environ.get("REPRO_BENCH_BUILD_WORKERS", "1,4").split(",")
)

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_build.json"
RESULTS = Path(__file__).resolve().parent / "results" / "build_hotpath.txt"


def adjacency_hash(graph) -> str:
    indptr, indices = graph.csr()
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(indptr).tobytes())
    digest.update(np.ascontiguousarray(indices).tobytes())
    return digest.hexdigest()


def bench_algorithm(name: str, data: np.ndarray) -> dict:
    runs = []
    for workers in WORKER_COUNTS:
        index = create(name, seed=0, n_workers=workers)
        started = time.perf_counter()
        report = index.build(data)
        wall_s = time.perf_counter() - started
        runs.append({
            "workers": workers,
            "wall_s": wall_s,
            "build_ndc": int(report.build_ndc),
            "phases": {
                label: {"wall_s": stats.wall_s, "ndc": int(stats.ndc)}
                for label, stats in report.phases.items()
            },
            "graph_bytes": int(report.graph_bytes),
            "aux_bytes": int(report.aux_bytes),
            "adjacency": adjacency_hash(index.graph),
        })
    reference = runs[0]
    for run in runs[1:]:
        if run["adjacency"] != reference["adjacency"]:
            raise SystemExit(
                f"{name}: adjacency diverged at n_workers={run['workers']} — "
                "a parallel speedup only counts if the output is identical"
            )
        if run["build_ndc"] != reference["build_ndc"]:
            raise SystemExit(
                f"{name}: build NDC diverged at n_workers={run['workers']}"
            )
    return {
        "algorithm": name,
        "runs": runs,
        "speedup": reference["wall_s"] / runs[-1]["wall_s"],
    }


def main() -> None:
    rng = np.random.default_rng(11)
    data = rng.standard_normal((N, DIM)).astype(np.float32)

    results = [bench_algorithm(name.strip(), data) for name in ALGOS if name.strip()]

    report = {
        "n": N,
        "dim": DIM,
        "worker_counts": list(WORKER_COUNTS),
        "algorithms": results,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")

    lines = [
        f"build hot path (n={N}, d={DIM}, workers={list(WORKER_COUNTS)})",
        f"{'algorithm':<10} {'workers':>7} {'wall_s':>8} {'ndc':>12} "
        f"{'c1_s':>7} {'c2+c3_s':>8} {'c4_s':>7} {'c5_s':>7}",
    ]
    for entry in results:
        for run in entry["runs"]:
            phases = run["phases"]

            def wall(label):
                return phases.get(label, {}).get("wall_s", 0.0)

            lines.append(
                f"{entry['algorithm']:<10} {run['workers']:>7} "
                f"{run['wall_s']:>8.2f} {run['build_ndc']:>12} "
                f"{wall('c1'):>7.2f} {wall('c2+c3'):>8.2f} "
                f"{wall('c4'):>7.2f} {wall('c5'):>7.2f}"
            )
        lines.append(
            f"{entry['algorithm']:<10} speedup x{entry['speedup']:.2f} "
            f"(adjacency identical across worker counts)"
        )
    table = "\n".join(lines)
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(table + "\n")
    print(table)
    print(f"wrote {OUTPUT}")
    print(f"wrote {RESULTS}")


if __name__ == "__main__":
    main()
