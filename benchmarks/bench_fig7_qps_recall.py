"""Figures 7 & 20 — QPS vs Recall@10 curves for all algorithms.

Paper shape: RNG- and MST-based algorithms (NSG, NSSG, HNSW, DPG,
HCNNG) dominate the high-recall region; KNNG/DG-based ones hold up on
easy datasets but fall away on hard ones (GloVe/GIST).

Each pytest-benchmark entry times one full query batch at the default
``ef``; the full ef sweep is written to results/fig7_qps_recall.txt.
"""

import pytest

from common import BENCH_ALGORITHMS, bench_datasets, get_dataset, get_index, get_sweep, write_table

EF_GRID = (10, 20, 40, 80, 160)

_curves: dict[tuple[str, str], list] = {}


@pytest.mark.parametrize("dataset_name", bench_datasets())
@pytest.mark.parametrize("algorithm_name", BENCH_ALGORITHMS)
def test_qps_recall_curve(benchmark, algorithm_name, dataset_name):
    index = get_index(algorithm_name, dataset_name)
    dataset = get_dataset(dataset_name)

    def run_batch():
        return index.batch_search(
            dataset.queries, dataset.ground_truth, k=10, ef=80
        )

    stats = benchmark.pedantic(run_batch, rounds=1, iterations=1)
    benchmark.extra_info.update(recall=stats.recall, qps=stats.qps)
    _curves[(algorithm_name, dataset_name)] = get_sweep(
        algorithm_name, dataset_name, EF_GRID
    )


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = []
    for ds in bench_datasets():
        lines.append(f"--- {ds} (QPS @ Recall@10 over ef={EF_GRID}) ---")
        for name in BENCH_ALGORITHMS:
            curve = _curves.get((name, ds))
            if curve is None:
                continue
            series = " ".join(
                f"({p.recall:.3f},{p.qps:7.1f})" for p in curve
            )
            lines.append(f"{name:11s} {series}")
    write_table("fig7_qps_recall", "Figure 7/20: QPS vs Recall@10", lines)
