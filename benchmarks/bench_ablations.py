"""Ablations of the design choices the survey isolates.

Not a single paper table, but each row executes one claim made in the
text:

* **connectivity** (Figure 10(e)): NSG-style reachability repair on vs
  off, same graph otherwise;
* **hierarchy** ([62] via §3.2 A2): HNSW against a flat single-layer
  equivalent (NSW with heuristic-selected neighbors ~ flat HNSW);
* **reverse edges** (§3.2 A9): DPG with and without edge undirection;
* **two-stage routing** (§6): OA's guided+BFS against plain BFS on the
  identical graph.
"""

import numpy as np
import pytest

from common import get_dataset, write_table
from repro import create
from repro.components.routing import best_first_search
from repro.pipeline import BenchmarkAlgorithm

DATASET = "gist1m"  # a hard dataset makes the ablations visible

_rows: dict[str, tuple] = {}


def _evaluate(index, dataset, ef=60):
    stats = index.batch_search(dataset.queries, dataset.ground_truth, k=10, ef=ef)
    return stats.recall, stats.mean_ndc


def test_connectivity_ablation(benchmark):
    dataset = get_dataset(DATASET)

    def run():
        with_c5 = BenchmarkAlgorithm(c5="nsg", seed=0)
        with_c5.build(dataset.base)
        without_c5 = BenchmarkAlgorithm(c5="ieh", seed=0)
        without_c5.build(dataset.base)
        return _evaluate(with_c5, dataset), _evaluate(without_c5, dataset)

    (on_recall, on_ndc), (off_recall, off_ndc) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    _rows["connectivity on"] = (on_recall, on_ndc)
    _rows["connectivity off"] = (off_recall, off_ndc)
    assert on_recall >= off_recall - 0.02, "repair must not hurt recall"


def test_hierarchy_ablation(benchmark):
    dataset = get_dataset(DATASET)

    def run():
        hnsw = create("hnsw", seed=0)
        hnsw.build(dataset.base)
        hier = _evaluate(hnsw, dataset)
        # flat ablation: search only the base layer from a random entry
        rng = np.random.default_rng(0)
        flat_recalls, flat_ndcs = [], []
        for i, query in enumerate(dataset.queries):
            seeds = rng.integers(0, dataset.n, size=1)
            result = best_first_search(
                hnsw.graph, hnsw.data, query, seeds, ef=60
            )
            truth = set(int(t) for t in dataset.ground_truth[i][:10])
            flat_recalls.append(
                len(truth & set(int(r) for r in result.ids[:10])) / 10
            )
            flat_ndcs.append(result.ndc)
        return hier, (float(np.mean(flat_recalls)), float(np.mean(flat_ndcs)))

    hier, flat = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows["hnsw hierarchical"] = hier
    _rows["hnsw flat (layer 0)"] = flat


def test_reverse_edge_ablation(benchmark):
    dataset = get_dataset(DATASET)

    def run():
        dpg = create("dpg", seed=0)
        dpg.build(dataset.base)
        undirected = _evaluate(dpg, dataset)
        # strip the reverse edges: keep each vertex's k/2 closest only
        directed = create("dpg", seed=0)
        directed.build(dataset.base)
        keep = directed.k // 2
        for v in range(directed.graph.n):
            nbrs = np.asarray(directed.graph.neighbors(v), dtype=np.int64)
            if len(nbrs) > keep:
                dists = np.linalg.norm(
                    directed.data[nbrs] - directed.data[v], axis=1
                )
                nbrs = nbrs[np.argsort(dists, kind="stable")[:keep]]
            directed.graph.set_neighbors(v, nbrs)
        directed.graph.finalize()
        return undirected, _evaluate(directed, dataset)

    undirected, directed = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows["dpg undirected"] = undirected
    _rows["dpg directed-only"] = directed
    assert undirected[0] >= directed[0] - 0.02, (
        "reverse edges are DPG's robustness mechanism"
    )


def test_two_stage_routing_ablation(benchmark):
    dataset = get_dataset(DATASET)

    def run():
        oa = create("oa", seed=0)
        oa.build(dataset.base)
        two_stage = _evaluate(oa, dataset)
        # same graph + seeds, plain best-first search
        recalls, ndcs = [], []
        for i, query in enumerate(dataset.queries):
            seeds = oa.seed_provider.acquire(query)
            result = best_first_search(oa.graph, oa.data, query, seeds, ef=60)
            truth = set(int(t) for t in dataset.ground_truth[i][:10])
            recalls.append(
                len(truth & set(int(r) for r in result.ids[:10])) / 10
            )
            ndcs.append(result.ndc)
        return two_stage, (float(np.mean(recalls)), float(np.mean(ndcs)))

    two_stage, plain = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows["oa two-stage"] = two_stage
    _rows["oa plain bfs"] = plain


def test_batched_vs_sequential_search(benchmark):
    """Lockstep batching: same bookkeeping, shared distance kernels."""
    from repro.batch import batch_search

    dataset = get_dataset(DATASET)

    def run():
        index = create("nsg", seed=0)
        index.build(dataset.base)
        sequential = index.batch_search(
            dataset.queries, dataset.ground_truth, k=10, ef=60
        )
        batched = batch_search(index, dataset.queries, k=10, ef=60)
        return sequential.qps, batched.qps

    seq_qps, batch_qps = benchmark.pedantic(run, rounds=1, iterations=1)
    _rows["sequential search"] = (float("nan"), seq_qps)
    _rows["batched search"] = (float("nan"), batch_qps)


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [f"{'variant':22s} {'recall@10':>9s} {'NDC/QPS':>8s}  ({DATASET})"]
    for label, (recall, value) in _rows.items():
        lines.append(f"{label:22s} {recall:9.3f} {value:8.1f}")
    write_table("ablations", "Ablations of isolated design choices", lines)
