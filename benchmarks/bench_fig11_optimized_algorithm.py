"""Figure 11 + Tables 19-22 — the optimized algorithm (OA) vs the
state of the art.

Paper shapes: OA reaches the best speedup-vs-recall band while its
construction time ranks near the top (second to DPG in the paper), its
index is among the smallest (no auxiliary structure), its graph quality
is deliberately *not* maximal, and its connectivity repair yields CC=1.
"""

import pytest

from common import get_dataset, write_table
from repro import create
from repro.metrics import graph_index_stats, search_memory_bytes
from repro.pipeline import candidate_size_for_recall, sweep_recall_curve

DATASETS = ("sift1m", "gist1m")
CONTENDERS = ("oa", "nsg", "nssg", "hcnng", "hnsw", "dpg")

_built: dict[tuple[str, str], object] = {}
_curves: dict[tuple[str, str], list] = {}


@pytest.mark.parametrize("dataset_name", DATASETS)
@pytest.mark.parametrize("algorithm_name", CONTENDERS)
def test_oa_vs_sota(benchmark, algorithm_name, dataset_name):
    dataset = get_dataset(dataset_name)

    def build():
        index = create(algorithm_name, seed=0)
        index.build(dataset.base)
        return index

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    _built[(algorithm_name, dataset_name)] = index
    _curves[(algorithm_name, dataset_name)] = sweep_recall_curve(
        index, dataset, k=10, ef_grid=(10, 20, 40, 80, 160)
    )


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = []
    for ds in DATASETS:
        dataset = get_dataset(ds)
        lines.append(f"--- {ds} ---")
        lines.append(
            f"{'algorithm':8s} {'build(s)':>9s} {'size(K)':>8s} {'GQ':>6s} "
            f"{'AD':>6s} {'CC':>4s} {'CS@.9':>6s} {'PL':>7s} {'MO(K)':>8s} "
            f"{'best(recall,speedup)':>24s}"
        )
        for name in CONTENDERS:
            index = _built.get((name, ds))
            if index is None:
                continue
            stats = graph_index_stats(index.graph, dataset.base, k=10)
            cs = candidate_size_for_recall(index, dataset, 0.9)
            memory = search_memory_bytes(index, cs.candidate_size)
            best = max(_curves[(name, ds)], key=lambda p: (p.recall, p.speedup))
            lines.append(
                f"{name:8s} {index.build_report.build_time_s:9.2f} "
                f"{index.index_size_bytes() / 1024:8.1f} "
                f"{stats.graph_quality:6.3f} {stats.average_out_degree:6.1f} "
                f"{stats.connected_components:4d} {cs.candidate_size:6d} "
                f"{cs.mean_hops:7.1f} {memory / 1024:8.1f} "
                f"({best.recall:.3f}, {best.speedup:6.1f}x)"
            )
    write_table(
        "fig11_optimized_algorithm",
        "Figure 11 / Tables 19-22: OA vs state of the art",
        lines,
    )

    # qualitative claims from §6 / Appendix P
    for ds in DATASETS:
        oa = _built.get(("oa", ds))
        if oa is None:
            continue
        assert oa.graph.num_connected_components() == 1, "OA guarantees C5"
        dpg = _built.get(("dpg", ds))
        if dpg is not None:
            assert oa.index_size_bytes() < dpg.index_size_bytes(), (
                "OA's pruned index must be smaller than DPG's"
            )
