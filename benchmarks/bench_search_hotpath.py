"""Microbenchmark for the routing hot path: single vs batched search.

Builds a kgraph index over 10k synthetic points, then times

* a sequential ``index.search`` loop (the evaluation-section style), and
* :func:`repro.batch.search_batch` at several worker counts,

writing ``BENCH_search.json`` (QPS, mean NDC, latency p50/p95) next to
the repository root.  Run directly::

    PYTHONPATH=src python benchmarks/bench_search_hotpath.py

Scale knobs: ``REPRO_BENCH_HOTPATH_N`` (points, default 10000),
``REPRO_BENCH_HOTPATH_QUERIES`` (default 200).
"""

from __future__ import annotations

import json
import os
import resource
import time
from pathlib import Path

import numpy as np

from repro import create
from repro.batch import search_batch

N = int(os.environ.get("REPRO_BENCH_HOTPATH_N", "10000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_HOTPATH_QUERIES", "200"))
DIM = 32
K = 10
EF = 40
WORKER_COUNTS = (1, 2, 4)

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_search.json"


def build_index(rng):
    data = rng.normal(size=(N, DIM)).astype(np.float32)
    index = create("kgraph", seed=0)
    started = time.perf_counter()
    index.build(data)
    return index, time.perf_counter() - started


def bench_sequential(index, queries):
    latencies = np.empty(len(queries))
    ndc = np.empty(len(queries))
    started = time.perf_counter()
    for i, query in enumerate(queries):
        t0 = time.perf_counter()
        result = index.search(query, k=K, ef=EF)
        latencies[i] = time.perf_counter() - t0
        ndc[i] = result.ndc
    elapsed = time.perf_counter() - started
    return {
        "qps": len(queries) / elapsed,
        "mean_ndc": float(ndc.mean()),
        "latency_p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "latency_p95_ms": float(np.percentile(latencies, 95) * 1e3),
    }


def bench_batched(index, queries, workers, repeats=7):
    # per-query latency is not observable inside a fused batch call, so
    # sample the distribution across repeats: each repeat contributes
    # its amortized per-query cost, and the percentiles are computed
    # over those samples (a single sample would make p50 == p95)
    ndc = None
    per_query_ms = np.empty(repeats)
    for r in range(repeats):
        result = search_batch(index, queries, k=K, ef=EF, workers=workers)
        per_query_ms[r] = result.elapsed_s / len(queries) * 1e3
        if ndc is None:
            ndc = result.ndc
    return {
        "workers": workers,
        "repeats": repeats,
        "qps": 1e3 / float(per_query_ms.min()),  # best repeat's throughput
        "mean_ndc": float(ndc.mean()),
        "latency_p50_ms": float(np.percentile(per_query_ms, 50)),
        "latency_p95_ms": float(np.percentile(per_query_ms, 95)),
    }


def main() -> None:
    rng = np.random.default_rng(0)
    index, build_s = build_index(rng)
    queries = rng.normal(size=(NUM_QUERIES, DIM)).astype(np.float32)

    # warm up (JIT-free, but touches caches, builds the norm table)
    index.search(queries[0], k=K, ef=EF)
    search_batch(index, queries[:8], k=K, ef=EF, workers=2)

    sequential = bench_sequential(index, queries)
    batched = [bench_batched(index, queries, w) for w in WORKER_COUNTS]

    # high-water resident set after the full run (Linux reports KiB) —
    # the baseline the compressed-traversal benchmark's memory savings
    # are judged against
    peak_rss_bytes = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024

    report = {
        "n": N,
        "dim": DIM,
        "num_queries": NUM_QUERIES,
        "k": K,
        "ef": EF,
        "build_s": build_s,
        "sequential": sequential,
        "batched": batched,
        "peak_rss_bytes": peak_rss_bytes,
    }
    # merge-write: bench_batch_scaling.py owns the "batch_scaling" key
    # of the same file, so keep whatever other sections are present
    merged = {}
    if OUTPUT.exists():
        try:
            merged = json.loads(OUTPUT.read_text())
        except (OSError, json.JSONDecodeError):
            merged = {}
    merged.update(report)
    OUTPUT.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"sequential: {sequential['qps']:.0f} qps "
          f"(ndc {sequential['mean_ndc']:.1f}, "
          f"p50 {sequential['latency_p50_ms']:.3f} ms, "
          f"p95 {sequential['latency_p95_ms']:.3f} ms)")
    for row in batched:
        print(f"search_batch(workers={row['workers']}): "
              f"{row['qps']:.0f} qps (ndc {row['mean_ndc']:.1f})")
    print(f"peak rss: {peak_rss_bytes / 1e6:.0f} MB")
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
