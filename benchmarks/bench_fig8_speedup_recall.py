"""Figures 8 & 21 — Speedup (|S| / NDC) vs Recall@10 curves.

The hardware-independent twin of Figure 7: "algorithms capable of
obtaining higher speedup also can achieve higher QPS" (§5.3) because
graph-search efficiency is dominated by the number of distance
evaluations.  The report checks that QPS and Speedup rank algorithms
consistently.
"""

import pytest

from common import BENCH_ALGORITHMS, bench_datasets, get_sweep, write_table

EF_GRID = (10, 20, 40, 80, 160)

_curves: dict[tuple[str, str], list] = {}


@pytest.mark.parametrize("dataset_name", bench_datasets())
@pytest.mark.parametrize("algorithm_name", BENCH_ALGORITHMS)
def test_speedup_recall_curve(benchmark, algorithm_name, dataset_name):
    curve = benchmark.pedantic(
        get_sweep,
        args=(algorithm_name, dataset_name, EF_GRID),
        rounds=1,
        iterations=1,
    )
    _curves[(algorithm_name, dataset_name)] = curve
    best = max(curve, key=lambda p: p.recall)
    benchmark.extra_info.update(
        best_recall=best.recall, speedup_at_best=best.speedup
    )


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = []
    for ds in bench_datasets():
        lines.append(f"--- {ds} (Speedup @ Recall@10 over ef={EF_GRID}) ---")
        for name in BENCH_ALGORITHMS:
            curve = _curves.get((name, ds))
            if curve is None:
                continue
            series = " ".join(
                f"({p.recall:.3f},{p.speedup:6.1f}x)" for p in curve
            )
            lines.append(f"{name:11s} {series}")
    write_table("fig8_speedup_recall", "Figure 8/21: Speedup vs Recall@10", lines)
