"""Table 23 / Appendix Q — variance of the randomized algorithms.

Vamana (random initialization) and NSSG (random seeds) are built and
searched under three different seeds.  Paper shape: single trials sit
very close to the average — the randomized parts do not destabilise
either construction or search.
"""

import numpy as np
import pytest

from common import get_dataset, write_table
from repro import create

DATASET = "sift1m"
TRIALS = (0, 1, 2)

_rows: dict[tuple[str, int], tuple] = {}


@pytest.mark.parametrize("algorithm_name", ("vamana", "nssg"))
def test_randomized_trials(benchmark, algorithm_name):
    dataset = get_dataset(DATASET)

    def run_trials():
        out = []
        for trial in TRIALS:
            index = create(algorithm_name, seed=trial)
            index.build(dataset.base)
            stats = index.batch_search(
                dataset.queries, dataset.ground_truth, k=10, ef=60
            )
            out.append(
                (trial, index.build_report.build_time_s,
                 index.index_size_bytes(), stats.recall)
            )
        return out

    for trial, build_s, size, recall in benchmark.pedantic(
        run_trials, rounds=1, iterations=1
    ):
        _rows[(algorithm_name, trial)] = (build_s, size, recall)


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'algorithm':8s} {'trial':>5s} {'ICT(s)':>7s} {'IS(K)':>8s} "
        f"{'recall@10':>9s}"
    ]
    for name in ("vamana", "nssg"):
        recalls = []
        for trial in TRIALS:
            row = _rows.get((name, trial))
            if row is None:
                continue
            build_s, size, recall = row
            recalls.append(recall)
            lines.append(
                f"{name:8s} {trial:5d} {build_s:7.2f} {size / 1024:8.1f} "
                f"{recall:9.3f}"
            )
        if recalls:
            lines.append(
                f"{name:8s}  avg {'':7s} {'':8s} {np.mean(recalls):9.3f} "
                f"(spread {max(recalls) - min(recalls):.3f})"
            )
            # Appendix Q: single trials sit close to the average
            assert max(recalls) - min(recalls) < 0.15
    write_table(
        "table23_randomness", "Table 23: multi-trial variance", lines
    )
