"""QPS-vs-threads curve for the GIL-free multi-threaded batch kernel.

Builds a kgraph index over 10k synthetic 32-d points and times
:func:`repro.batch.search_batch` at several thread counts, asserting on
the way that ids, distances and per-query NDC stay bit-identical at
every count (the kernel's determinism contract).  Repeats are
*interleaved* — one pass runs every thread count once, and each count
keeps its best pass — so drift in machine load cannot masquerade as a
scaling trend.  Results are merged into ``BENCH_search.json`` under the
``"batch_scaling"`` key (the hotpath benchmark owns the other keys of
the same file).

Run directly::

    PYTHONPATH=src python benchmarks/bench_batch_scaling.py

``--check`` additionally exits non-zero unless QPS is monotonically
non-decreasing from 1 thread upward within a generous tolerance
(single-core CI boxes show a flat curve; the check guards against the
MT dispatch *costing* throughput, not for a speedup the hardware cannot
deliver).  Scale knobs: ``REPRO_BENCH_SCALING_N`` (points, default
10000), ``REPRO_BENCH_SCALING_QUERIES`` (default 256),
``REPRO_BENCH_SCALING_THREADS`` (comma list, default ``1,2,4``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro import create
from repro.batch import search_batch

N = int(os.environ.get("REPRO_BENCH_SCALING_N", "10000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_SCALING_QUERIES", "256"))
THREADS = tuple(
    int(t) for t in os.environ.get("REPRO_BENCH_SCALING_THREADS", "1,2,4").split(",")
)
DIM = 32
K = 10
EF = 40
REPEATS = int(os.environ.get("REPRO_BENCH_SCALING_REPEATS", "9"))
#: --check tolerance: QPS(t) may fall below QPS(t-1) by this factor
#: before the run counts as a regression (covers timer noise and
#: single-core machines where extra threads cannot help)
SLACK = 0.80

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_search.json"


def fixed_seed_index(data):
    """A kgraph index whose seed provider is frozen to fixed entries.

    Bit-identity across thread counts *and repeats* needs the same
    seeds every run; kgraph's stateful random provider would draw new
    ones per call, so freeze one draw into a FixedSeeds provider.
    """
    from repro.components.seeding import FixedSeeds

    index = create("kgraph", seed=0)
    index.build(data)
    seeds = np.unique(
        np.asarray(index.seed_provider.acquire(data.mean(axis=0)), dtype=np.int64)
    )
    index.seed_provider = FixedSeeds(seeds)
    return index


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless QPS is monotonically non-decreasing "
             f"within a {SLACK:.0%} slack factor",
    )
    args = parser.parse_args(argv)

    rng = np.random.default_rng(7)
    data = rng.normal(size=(N, DIM)).astype(np.float32)
    queries = rng.normal(size=(NUM_QUERIES, DIM)).astype(np.float32)
    build_started = time.perf_counter()
    index = fixed_seed_index(data)
    build_s = time.perf_counter() - build_started

    # warm-up: norm table, kernel load, page cache
    search_batch(index, queries[:16], k=K, ef=EF, workers=max(THREADS))

    reference = None
    best_s = {t: np.inf for t in THREADS}
    for _ in range(REPEATS):
        for threads in THREADS:
            result = search_batch(index, queries, k=K, ef=EF, workers=threads)
            best_s[threads] = min(best_s[threads], result.elapsed_s)
            if reference is None:
                reference = result
                continue
            # the determinism contract: any thread count, any repeat
            assert np.array_equal(result.ids, reference.ids), (
                f"ids diverged at {threads} threads"
            )
            assert np.array_equal(result.dists, reference.dists), (
                f"distances diverged at {threads} threads"
            )
            assert np.array_equal(result.ndc, reference.ndc), (
                f"NDC diverged at {threads} threads"
            )

    rows = [
        {"threads": t, "qps": NUM_QUERIES / best_s[t], "best_s": best_s[t]}
        for t in THREADS
    ]
    section = {
        "n": N,
        "dim": DIM,
        "num_queries": NUM_QUERIES,
        "k": K,
        "ef": EF,
        "repeats": REPEATS,
        "build_s": build_s,
        "bit_identical": True,
        "scaling": rows,
    }

    merged = {}
    if OUTPUT.exists():
        try:
            merged = json.loads(OUTPUT.read_text())
        except (OSError, json.JSONDecodeError):
            merged = {}
    merged["batch_scaling"] = section
    OUTPUT.write_text(json.dumps(merged, indent=2) + "\n")

    for row in rows:
        print(f"threads={row['threads']}: {row['qps']:.0f} qps")
    print(f"bit-identical across thread counts and repeats; wrote {OUTPUT}")

    if args.check:
        for prev, cur in zip(rows, rows[1:]):
            if cur["qps"] < prev["qps"] * SLACK:
                print(
                    f"FAIL: qps dropped {prev['qps']:.0f} -> {cur['qps']:.0f} "
                    f"going {prev['threads']} -> {cur['threads']} threads "
                    f"(beyond the {SLACK:.0%} slack)",
                    file=sys.stderr,
                )
                return 1
        print("scaling check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
