"""Table 12 / Appendix J — scalability over the synthetic sweeps.

Four knobs from Table 10: dimensionality {8, 32, 128}, cardinality
(three sizes, 1:4:16), cluster count {1, 10, 100}, and per-cluster
standard deviation {1, 5, 10}.  Construction time (CT) and queries per
second (QPS) are reported per algorithm and knob setting.

Paper shapes: QPS falls as dimension/cardinality/SD rise for every
algorithm; RNG-based algorithms widen their lead as cardinality grows.
"""

import pytest

from common import write_table
from repro import create
from repro.datasets import make_clustered

ALGORITHMS = ("kgraph", "hnsw", "nsg", "hcnng", "nssg")

SWEEPS = {
    "dim": [
        ("d=8", dict(dim=8, cardinality=1200, num_clusters=10, std_dev=5.0)),
        ("d=32", dict(dim=32, cardinality=1200, num_clusters=10, std_dev=5.0)),
        ("d=128", dict(dim=128, cardinality=1200, num_clusters=10, std_dev=5.0)),
    ],
    "cardinality": [
        ("n=500", dict(dim=32, cardinality=500, num_clusters=10, std_dev=5.0)),
        ("n=1200", dict(dim=32, cardinality=1200, num_clusters=10, std_dev=5.0)),
        ("n=2400", dict(dim=32, cardinality=2400, num_clusters=10, std_dev=5.0)),
    ],
    "clusters": [
        ("c=1", dict(dim=32, cardinality=1200, num_clusters=1, std_dev=5.0)),
        ("c=10", dict(dim=32, cardinality=1200, num_clusters=10, std_dev=5.0)),
        ("c=100", dict(dim=32, cardinality=1200, num_clusters=100, std_dev=5.0)),
    ],
    "std_dev": [
        ("s=1", dict(dim=32, cardinality=1200, num_clusters=10, std_dev=1.0)),
        ("s=5", dict(dim=32, cardinality=1200, num_clusters=10, std_dev=5.0)),
        ("s=10", dict(dim=32, cardinality=1200, num_clusters=10, std_dev=10.0)),
    ],
}

_rows: dict[tuple[str, str, str], tuple] = {}


@pytest.mark.parametrize("knob", sorted(SWEEPS))
@pytest.mark.parametrize("algorithm_name", ALGORITHMS)
def test_scalability(benchmark, algorithm_name, knob):
    def sweep():
        results = []
        for label, params in SWEEPS[knob]:
            dataset = make_clustered(
                **params, num_queries=20, gt_depth=20, seed=1, name=label
            )
            index = create(algorithm_name, seed=0)
            index.build(dataset.base)
            stats = index.batch_search(
                dataset.queries, dataset.ground_truth, k=10, ef=60
            )
            results.append((label, index.build_report.build_time_s, stats))
        return results

    for label, build_s, stats in benchmark.pedantic(sweep, rounds=1, iterations=1):
        _rows[(algorithm_name, knob, label)] = (build_s, stats.qps, stats.recall)


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = []
    for knob in sorted(SWEEPS):
        labels = [label for label, _ in SWEEPS[knob]]
        lines.append(f"--- {knob} sweep: CT(s) / QPS per setting ---")
        header = f"{'algorithm':10s} " + " ".join(f"{lab:>19s}" for lab in labels)
        lines.append(header)
        for name in ALGORITHMS:
            cells = []
            for label in labels:
                row = _rows.get((name, knob, label))
                if row is None:
                    cells.append(f"{'-':>19s}")
                else:
                    build_s, qps, _ = row
                    cells.append(f"{build_s:8.2f}s {qps:8.1f}q")
            lines.append(f"{name:10s} " + " ".join(cells))
    write_table("table12_scalability", "Table 12: synthetic-dataset scalability", lines)

    # QPS must fall as dimensionality rises, for every algorithm that ran
    for name in ALGORITHMS:
        low = _rows.get((name, "dim", "d=8"))
        high = _rows.get((name, "dim", "d=128"))
        if low and high:
            assert high[1] < low[1], f"{name}: QPS should drop from d=8 to d=128"
