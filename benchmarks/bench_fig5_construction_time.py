"""Figure 5 — index construction time of all algorithms per dataset.

Paper shape to reproduce: NN-Descent-based KNNG algorithms (KGraph,
EFANNA) build fastest; brute-force-initialized algorithms (IEH, FANNG)
are the slowest band; construction cost rises with dataset difficulty.

Each pytest-benchmark entry is one (algorithm, dataset) build, so the
benchmark table itself is the Figure 5 bar chart in rows.
"""

import pytest

import common
from common import BENCH_ALGORITHMS, bench_datasets, get_dataset, write_table
from repro import create

_build_times: dict[tuple[str, str], float] = {}


@pytest.mark.parametrize("dataset_name", bench_datasets())
@pytest.mark.parametrize("algorithm_name", BENCH_ALGORITHMS)
def test_construction_time(benchmark, algorithm_name, dataset_name):
    dataset = get_dataset(dataset_name)

    def build():
        index = create(algorithm_name, seed=0)
        index.build(dataset.base)
        return index

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    _build_times[(algorithm_name, dataset_name)] = (
        index.build_report.build_time_s
    )
    # donate the freshly built index to the session-wide cache so the
    # Table 4/5/11 and Figure 7/8 benches reuse it instead of rebuilding
    common._index_cache.setdefault((algorithm_name, dataset_name), index)
    benchmark.extra_info["dataset"] = dataset_name
    benchmark.extra_info["build_ndc"] = index.build_report.build_ndc
    benchmark.extra_info["phases"] = {
        label: {"wall_s": stats.wall_s, "ndc": stats.ndc}
        for label, stats in index.build_report.phases.items()
    }


def test_zzz_report(benchmark):
    """Aggregate the Figure 5 table after all builds ran."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    datasets = bench_datasets()
    header = f"{'algorithm':11s} " + " ".join(f"{d:>9s}" for d in datasets)
    lines = [header]
    for name in BENCH_ALGORITHMS:
        cells = []
        for ds in datasets:
            t = _build_times.get((name, ds))
            cells.append(f"{t:9.2f}" if t is not None else f"{'-':>9s}")
        lines.append(f"{name:11s} " + " ".join(cells))
    write_table("fig5_construction_time", "Figure 5: construction time (s)", lines)
