"""Table 11 — maximum/minimum out-degree of every graph index.

Paper shapes: fixed-degree designs (KGraph, IEH, SPTAG, EFANNA, FANNG)
have D_max == D_min; incremental undirected graphs (NSW) and
reverse-edge designs (DPG, k-DR) grow huge hubs; HNSW/NSG floors drop
to D_min ~ 1.
"""

import pytest

from common import BENCH_ALGORITHMS, bench_datasets, get_index, write_table
from repro.metrics import degree_stats

_rows: dict[tuple[str, str], tuple] = {}


@pytest.mark.parametrize("dataset_name", bench_datasets())
@pytest.mark.parametrize("algorithm_name", BENCH_ALGORITHMS + ("kdr",))
def test_degrees(benchmark, algorithm_name, dataset_name):
    index = get_index(algorithm_name, dataset_name)
    stats = benchmark.pedantic(
        degree_stats, args=(index.graph,), rounds=1, iterations=1
    )
    _rows[(algorithm_name, dataset_name)] = (stats.maximum, stats.minimum)
    benchmark.extra_info.update(d_max=stats.maximum, d_min=stats.minimum)


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    datasets = bench_datasets()
    header = f"{'algorithm':11s} " + " ".join(
        f"{d + ' Dmax':>11s} {'Dmin':>5s}" for d in datasets
    )
    lines = [header]
    for name in BENCH_ALGORITHMS + ("kdr",):
        cells = []
        for ds in datasets:
            row = _rows.get((name, ds))
            if row is None:
                cells.append(f"{'-':>11s} {'-':>5s}")
            else:
                cells.append(f"{row[0]:11d} {row[1]:5d}")
        lines.append(f"{name:11s} " + " ".join(cells))
    write_table("table11_degrees", "Table 11: max/min out-degree", lines)

    # qualitative claim: NSW hubs dwarf its minimum degree
    for ds in datasets:
        if ("nsw", ds) in _rows:
            d_max, d_min = _rows[("nsw", ds)]
            assert d_max > d_min, "NSW must grow hub vertices"
