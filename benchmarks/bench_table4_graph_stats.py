"""Table 4 — graph quality (GQ), average out-degree (AD), connected
components (CC) of every algorithm's index.

Paper shapes to reproduce: KNNG-based algorithms (KGraph, EFANNA) and
brute-force KNNGs (IEH: GQ=1.0) top graph quality; RNG pruning destroys
GQ (NSG ~0.5) except DPG (undirected edges restore it); connectivity-
guaranteed designs (NSW, NGT, DPG, NSG, NSSG, HCNNG) have CC=1; and —
the survey's headline — top GQ is *not* required for top search.
"""

import pytest

from common import BENCH_ALGORITHMS, bench_datasets, get_dataset, get_index, write_table
from repro.graphs.knng import exact_knn_lists
from repro.metrics import graph_index_stats

_rows: dict[tuple[str, str], tuple] = {}
_exact_cache: dict[str, object] = {}


def _exact_ids(dataset_name: str):
    if dataset_name not in _exact_cache:
        ids, _ = exact_knn_lists(get_dataset(dataset_name).base, 10)
        _exact_cache[dataset_name] = ids
    return _exact_cache[dataset_name]


@pytest.mark.parametrize("dataset_name", bench_datasets())
@pytest.mark.parametrize("algorithm_name", BENCH_ALGORITHMS)
def test_graph_stats(benchmark, algorithm_name, dataset_name):
    index = get_index(algorithm_name, dataset_name)
    dataset = get_dataset(dataset_name)
    stats = benchmark.pedantic(
        graph_index_stats,
        args=(index.graph, dataset.base),
        kwargs={"k": 10, "exact_ids": _exact_ids(dataset_name)},
        rounds=1,
        iterations=1,
    )
    _rows[(algorithm_name, dataset_name)] = (
        stats.graph_quality,
        stats.average_out_degree,
        stats.connected_components,
    )
    benchmark.extra_info.update(
        gq=stats.graph_quality,
        ad=stats.average_out_degree,
        cc=stats.connected_components,
    )


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    datasets = bench_datasets()
    lines = []
    header = f"{'algorithm':11s} " + " ".join(
        f"{d + ' GQ':>9s} {'AD':>5s} {'CC':>5s}" for d in datasets
    )
    lines.append(header)
    for name in BENCH_ALGORITHMS:
        cells = []
        for ds in datasets:
            row = _rows.get((name, ds))
            if row is None:
                cells.append(f"{'-':>9s} {'-':>5s} {'-':>5s}")
            else:
                gq, ad, cc = row
                cells.append(f"{gq:9.3f} {ad:5.1f} {cc:5d}")
        lines.append(f"{name:11s} " + " ".join(cells))
    write_table("table4_graph_stats", "Table 4: GQ / AD / CC", lines)

    # the survey's qualitative claims, checked on whatever subset ran
    for ds in datasets:
        if ("ieh", ds) in _rows:
            assert _rows[("ieh", ds)][0] > 0.999, "IEH builds the exact KNNG"
        if ("kgraph", ds) in _rows and ("nsg", ds) in _rows:
            assert _rows[("kgraph", ds)][0] > _rows[("nsg", ds)][0], (
                "RNG pruning must lower NSG's GQ below KGraph's"
            )
