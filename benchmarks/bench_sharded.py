"""Scatter–gather benchmark: QPS / recall / degraded-rate vs. fan-out.

Partitions ~100k synthetic points into S shards (balanced k-means, one
kgraph index per shard) and sweeps the fan-out P — how many shards each
query is routed to — measuring throughput and recall@k against
brute-force ground truth at every P.  Two extra passes probe the
robustness envelope:

* a determinism pass asserting ids/NDC are bit-identical at 1 and 4
  inner worker threads (the merge contract),
* a fault pass killing one shard via `repro.faults` at full fan-out,
  recording the degraded-rate and the recall that survives.

Results merge under the ``"sharded"`` key of ``BENCH_search.json``
(other keys owned by the hotpath/scaling/compressed benchmarks) plus a
plain table in ``benchmarks/results/sharded.txt``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_sharded.py

Scale knobs: ``REPRO_BENCH_SHARDED_N`` (points, default 100000),
``REPRO_BENCH_SHARDED_QUERIES`` (default 100),
``REPRO_BENCH_SHARDED_SHARDS`` (default 8),
``REPRO_BENCH_SHARDED_WORKERS`` (inner threads per shard, default 4).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import faults  # noqa: E402
from repro.components.seeding import FixedSeeds  # noqa: E402
from repro.sharding import ShardedIndex  # noqa: E402

N = int(os.environ.get("REPRO_BENCH_SHARDED_N", "100000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_SHARDED_QUERIES", "100"))
SHARDS = int(os.environ.get("REPRO_BENCH_SHARDED_SHARDS", "8"))
WORKERS = int(os.environ.get("REPRO_BENCH_SHARDED_WORKERS", "4"))
DIM = 32
K = 10
EF = 60
REPEATS = int(os.environ.get("REPRO_BENCH_SHARDED_REPEATS", "3"))

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_search.json"
RESULTS = Path(__file__).resolve().parent / "results"


def brute_force_topk(data: np.ndarray, queries: np.ndarray, k: int) -> np.ndarray:
    truth = np.empty((len(queries), k), dtype=np.int64)
    data64 = data.astype(np.float64)
    norms = np.einsum("ij,ij->i", data64, data64)
    for i, query in enumerate(queries):
        q = query.astype(np.float64)
        sq = norms - 2.0 * (data64 @ q) + q @ q
        truth[i] = np.argsort(sq, kind="stable")[:k]
    return truth


def recall(ids: np.ndarray, truth: np.ndarray) -> float:
    hits = 0
    for row, gt in zip(ids, truth):
        hits += len(set(int(i) for i in row if i >= 0) & set(int(t) for t in gt))
    return hits / truth.size


def bench_fanout(index, queries, truth, fanout: int) -> dict:
    best_elapsed = np.inf
    result = None
    for _ in range(REPEATS):
        r = index.search_batch(queries, k=K, ef=EF, workers=WORKERS,
                               fanout=fanout)
        if r.elapsed_s < best_elapsed:
            best_elapsed = r.elapsed_s
            result = r
    return {
        "fanout": fanout,
        "qps": len(queries) / best_elapsed,
        "recall_at_k": recall(result.ids, truth),
        "mean_ndc": float(result.ndc.mean()),
        "degraded_rate": float(result.degraded.mean()),
    }


def main() -> None:
    rng = np.random.default_rng(7)
    data = rng.normal(size=(N, DIM)).astype(np.float32)
    queries = rng.normal(size=(NUM_QUERIES, DIM)).astype(np.float32)

    t0 = time.perf_counter()
    index = ShardedIndex.build(data, num_shards=SHARDS, algorithm="kgraph",
                               seed=0)
    build_s = time.perf_counter() - t0
    sizes = [len(ids) for ids in index.shard_ids]
    print(f"built {SHARDS} kgraph shards over {N} points in {build_s:.1f}s "
          f"(shard sizes {min(sizes)}..{max(sizes)})", flush=True)

    # kgraph's random seed provider is stateful (fresh entries per
    # call); freeze one draw per shard so repeats and worker counts
    # are bit-comparable, as the hotpath benchmarks do
    for shard in index.shards:
        seeds = np.unique(np.asarray(
            shard.seed_provider.acquire(shard.data.mean(axis=0)),
            dtype=np.int64,
        ))
        shard.seed_provider = FixedSeeds(seeds)

    truth = brute_force_topk(data, queries, K)

    # warm-up + determinism contract across inner worker counts
    one = index.search_batch(queries, k=K, ef=EF, workers=1)
    four = index.search_batch(queries, k=K, ef=EF, workers=4)
    assert np.array_equal(one.ids, four.ids), "merge diverged across workers"
    assert np.array_equal(one.ndc, four.ndc), "NDC diverged across workers"

    fanouts = sorted({1, 2, max(1, SHARDS // 2), SHARDS})
    sweep = [bench_fanout(index, queries, truth, p) for p in fanouts]
    for row in sweep:
        print(f"P={row['fanout']}: {row['qps']:.0f} qps "
              f"recall@{K}={row['recall_at_k']:.3f} "
              f"ndc={row['mean_ndc']:.0f}", flush=True)

    # one shard killed at full fan-out: partial results, no exceptions
    with faults.inject(faults.FaultPlan().fail_shard(0)):
        hurt = index.search_batch(queries, k=K, ef=EF, workers=WORKERS,
                                  fanout=SHARDS)
    degraded = {
        "killed_shard": 0,
        "killed_points": int(len(index.shard_ids[0])),
        "degraded_rate": float(hurt.degraded.mean()),
        "recall_at_k": recall(hurt.ids, truth),
        "quarantined": [list(q) for q in hurt.shard_report.quarantined],
    }
    print(f"one shard killed: degraded_rate={degraded['degraded_rate']:.2f} "
          f"recall@{K}={degraded['recall_at_k']:.3f}", flush=True)

    report = {
        "n": N,
        "dim": DIM,
        "num_queries": NUM_QUERIES,
        "k": K,
        "ef": EF,
        "shards": SHARDS,
        "workers": WORKERS,
        "repeats": REPEATS,
        "build_s": build_s,
        "shard_sizes": sizes,
        "bit_identical_across_workers": True,
        "fanout_sweep": sweep,
        "one_shard_killed": degraded,
    }

    merged = {}
    if OUTPUT.exists():
        try:
            merged = json.loads(OUTPUT.read_text())
        except (OSError, json.JSONDecodeError):
            merged = {}
    merged["sharded"] = report
    OUTPUT.write_text(json.dumps(merged, indent=2) + "\n")

    lines = [
        f"n={N} dim={DIM} queries={NUM_QUERIES} k={K} ef={EF} "
        f"shards={SHARDS} workers={WORKERS} build={build_s:.1f}s",
        f"{'fanout':>6s} {'qps':>9s} {'recall@10':>10s} {'mean_ndc':>9s} "
        f"{'degraded':>9s}",
        *[
            f"{row['fanout']:6d} {row['qps']:9.0f} "
            f"{row['recall_at_k']:10.3f} {row['mean_ndc']:9.0f} "
            f"{row['degraded_rate']:9.2f}"
            for row in sweep
        ],
        f"one shard killed (of {SHARDS}): "
        f"degraded_rate={degraded['degraded_rate']:.2f} "
        f"recall@{K}={degraded['recall_at_k']:.3f} "
        f"({degraded['killed_points']} points dark)",
        "merge bit-identical at 1 and 4 inner worker threads",
    ]
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "sharded.txt").write_text(
        "\n".join(["== sharded scatter-gather (100k scale) ==", *lines, ""])
    )
    print("\n".join(lines))
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
