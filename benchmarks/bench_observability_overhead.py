"""Overhead proof for the observability layer's disabled fast path.

The no-op guarantee is that ``obs.enabled()`` / ``obs.tracing()`` cost
two global reads per query, so leaving the instrumentation compiled into
``GraphANNS.search`` may not tax the hot path.  This benchmark measures
that directly with an interleaved A/B comparison:

* **A (instrumented)** — ``index.search`` exactly as shipped, with
  observability globally disabled;
* **B (replica)**      — a local copy of the same search body with every
  observability line deleted (the counterfactual "never instrumented"
  code).

A and B alternate round-by-round on identical queries so frequency
scaling and cache state hit both sides equally; the reported overhead is
the median-of-rounds relative wall-clock difference.  For context the
enabled modes (metrics only, metrics + hop tracing) are timed too —
tracing is *expected* to cost real time since it forces the pure-Python
frontier and records every hop.

Writes ``benchmarks/results/observability_overhead.txt`` and merges an
``"observability"`` section into ``BENCH_search.json``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_observability_overhead.py

Scale knobs: ``REPRO_BENCH_OBS_N`` (points, default 8000),
``REPRO_BENCH_OBS_QUERIES`` (default 150), ``REPRO_BENCH_OBS_ROUNDS``
(A/B rounds, default 9).
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from repro import create, observability as obs
from repro.distance import DistanceCounter
from repro.resilience import InvalidQueryError, validate_query

N = int(os.environ.get("REPRO_BENCH_OBS_N", "8000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_OBS_QUERIES", "150"))
ROUNDS = int(os.environ.get("REPRO_BENCH_OBS_ROUNDS", "9"))
DIM = 32
K = 10
EF = 40

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_search.json"


def search_replica(index, query, k, ef):
    """``GraphANNS.search`` with the observability lines removed.

    Kept in lock-step with :meth:`repro.algorithms.base.GraphANNS.search`
    — validation, tombstone handling and all — so the only difference is
    the deleted instrumentation: this is the code that would exist had
    the observability layer never been added.
    """
    index._require_built()
    reason = validate_query(query, index.data.shape[1])
    if reason is not None:
        raise InvalidQueryError(f"{index.name}: {reason}")
    ef = max(k, ef if ef is not None else index.default_ef)
    counter = DistanceCounter()
    budget = None
    start = counter.count
    ctx = index._context()
    seeds = index.seed_provider.acquire(query, counter)
    if budget is not None:  # pre-existing resilience line, not obs
        budget = budget.after_spending(counter.count - start)
    result = index._route(
        query, np.asarray(seeds, dtype=np.int64), ef, counter,
        ctx=ctx, budget=budget,
    )
    result.ndc = counter.count - start
    if index.num_deleted and len(result.ids):
        keep = ~index._deleted[result.ids]
        result.ids = result.ids[keep]
        result.dists = result.dists[keep]
    result.ids = result.ids[:k]
    result.dists = result.dists[:k]
    return result


def time_loop(fn, queries) -> float:
    started = time.perf_counter()
    for query in queries:
        fn(query)
    return time.perf_counter() - started


def main() -> None:
    rng = np.random.default_rng(0)
    data = rng.normal(size=(N, DIM)).astype(np.float32)
    queries = rng.normal(size=(NUM_QUERIES, DIM)).astype(np.float32)
    index = create("kgraph", seed=0)
    index.build(data)

    obs.disable()
    run_a = lambda q: index.search(q, k=K, ef=EF)          # noqa: E731
    run_b = lambda q: search_replica(index, q, K, EF)      # noqa: E731

    # warm-up: caches, norm tables, allocator
    time_loop(run_a, queries[:16])
    time_loop(run_b, queries[:16])

    a_times, b_times = [], []
    for _ in range(ROUNDS):
        a_times.append(time_loop(run_a, queries))
        b_times.append(time_loop(run_b, queries))
    a_med = statistics.median(a_times)
    b_med = statistics.median(b_times)
    overhead_pct = (a_med - b_med) / b_med * 100.0

    # sanity: identical answers either way (kgraph seeds randomly per
    # call, so pin the provider RNG before each side)
    index.seed_provider._rng = np.random.default_rng(7)
    r_a = index.search(queries[0], k=K, ef=EF)
    index.seed_provider._rng = np.random.default_rng(7)
    r_b = search_replica(index, queries[0], K, EF)
    assert np.array_equal(r_a.ids, r_b.ids) and r_a.ndc == r_b.ndc

    obs.enable(metrics=True, trace=False)
    metrics_s = time_loop(run_a, queries)
    obs.enable(metrics=True, trace=True)
    tracing_s = time_loop(run_a, queries)
    n_traces = len(obs.RECORDER)
    obs.disable()
    obs.reset()

    per_query_us = a_med / NUM_QUERIES * 1e6
    lines = [
        f"index: kgraph, n={N}, dim={DIM}, "
        f"queries={NUM_QUERIES}, rounds={ROUNDS}",
        f"disabled (instrumented)   {a_med:8.4f}s  "
        f"({per_query_us:7.1f} us/query)",
        f"uninstrumented replica    {b_med:8.4f}s",
        f"disabled-mode overhead    {overhead_pct:+7.2f}%  (target < 3%)",
        f"metrics enabled           {metrics_s:8.4f}s  "
        f"({(metrics_s - b_med) / b_med * 100.0:+.2f}%)",
        f"metrics + tracing         {tracing_s:8.4f}s  "
        f"({(tracing_s - b_med) / b_med * 100.0:+.2f}%, "
        f"{n_traces} traces recorded)",
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    body = "\n".join(["== observability overhead (search hot path) ==",
                      *lines, ""])
    (RESULTS_DIR / "observability_overhead.txt").write_text(body)
    print("\n" + body)

    report = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {}
    report["observability"] = {
        "n": N,
        "num_queries": NUM_QUERIES,
        "rounds": ROUNDS,
        "disabled_s": a_med,
        "replica_s": b_med,
        "disabled_overhead_pct": overhead_pct,
        "metrics_enabled_s": metrics_s,
        "tracing_enabled_s": tracing_s,
    }
    BENCH_JSON.write_text(json.dumps(report, indent=2) + "\n")
    print(f"merged observability section into {BENCH_JSON}")


if __name__ == "__main__":
    main()
