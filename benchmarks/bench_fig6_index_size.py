"""Figure 6 — index size of all algorithms per dataset.

Paper shape: RNG-pruned graphs (NSG, NSSG) are the smallest band;
KNNG-, DG- and MST-based indexes and anything with an attached tree
(NGT, SPTAG, EFANNA) are larger.
"""

import pytest

from common import BENCH_ALGORITHMS, bench_datasets, get_index, write_table

_sizes: dict[tuple[str, str], int] = {}


@pytest.mark.parametrize("dataset_name", bench_datasets())
@pytest.mark.parametrize("algorithm_name", BENCH_ALGORITHMS)
def test_index_size(benchmark, algorithm_name, dataset_name):
    index = get_index(algorithm_name, dataset_name)
    size = benchmark.pedantic(index.index_size_bytes, rounds=1, iterations=1)
    _sizes[(algorithm_name, dataset_name)] = size
    benchmark.extra_info["index_size_bytes"] = size
    # graph vs auxiliary-structure split (C4 trees/tables/upper layers)
    benchmark.extra_info["graph_bytes"] = index.graph.index_size_bytes()
    benchmark.extra_info["aux_bytes"] = index.aux_size_bytes()


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    datasets = bench_datasets()
    header = f"{'algorithm':11s} " + " ".join(f"{d:>9s}" for d in datasets)
    lines = [header]
    smallest = {}
    for name in BENCH_ALGORITHMS:
        cells = []
        for ds in datasets:
            size = _sizes.get((name, ds))
            if size is None:
                cells.append(f"{'-':>9s}")
                continue
            cells.append(f"{size / 1024:8.1f}K")
            if ds not in smallest or size < smallest[ds][1]:
                smallest[ds] = (name, size)
        lines.append(f"{name:11s} " + " ".join(cells))
    lines.append(
        "smallest:   " + " ".join(f"{smallest[d][0]:>9s}" for d in datasets)
    )
    write_table("fig6_index_size", "Figure 6: index size", lines)
