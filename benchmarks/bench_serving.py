"""Serving front-door benchmark: micro-batching vs one-at-a-time.

Boots the real HTTP server (``repro.serving``) over a 10k-point index
and measures the thing the front door exists for — turning the fused
MT kernel's batch throughput into user-facing QPS:

* **closed-loop**: 1 client (the sequential one-request-at-a-time
  baseline) vs 32 concurrent clients, each looping request→response;
  every response is checked bit-identical (ids and NDC) to a direct
  ``index.search()`` of the same vector.  The acceptance gate is the
  32-client/1-client throughput ratio.
* **open-loop**: Poisson arrivals sweeping offered QPS; per-rate
  p50/p99/p999 latency, achieved QPS, mean batch size, and
  degraded/rejected rates — the latency-vs-throughput trade the
  ``max_wait_ms`` window buys.

Results → ``BENCH_serving.json`` (repo root) and a plain table in
``benchmarks/results/serving.txt`` (picked up by
``collect_results.py``).  Run directly::

    PYTHONPATH=src python benchmarks/bench_serving.py

Scale knobs: ``REPRO_BENCH_SERVING_N`` (base points, default 10000),
``REPRO_BENCH_SERVING_CLIENTS`` (default 32),
``REPRO_BENCH_SERVING_SECONDS`` (per measurement, default 3),
``REPRO_BENCH_SERVING_RATES`` (comma-separated offered QPS for the
open-loop sweep; default scales off the measured baseline).
"""

from __future__ import annotations

import http.client
import json
import os
import sys
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import create  # noqa: E402
from repro.serving import BackgroundServer, ServingConfig  # noqa: E402

N = int(os.environ.get("REPRO_BENCH_SERVING_N", "10000"))
DIM = 32
K = 10
EF = 64
CLIENTS = int(os.environ.get("REPRO_BENCH_SERVING_CLIENTS", "32"))
SECONDS = float(os.environ.get("REPRO_BENCH_SERVING_SECONDS", "3"))
ALGO = os.environ.get("REPRO_BENCH_SERVING_ALGO", "nsg")

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_serving.json"
RESULTS = Path(__file__).resolve().parent / "results"


def percentile(samples: list[float], q: float) -> float:
    if not samples:
        return float("nan")
    return float(np.percentile(np.asarray(samples), q))


class Client:
    """One keep-alive HTTP connection."""

    def __init__(self, port: int):
        self.conn = http.client.HTTPConnection(
            "127.0.0.1", port, timeout=30.0
        )

    def search(self, vector: np.ndarray) -> tuple[int, dict, float]:
        body = json.dumps({"vector": vector.tolist(), "k": K, "ef": EF})
        started = time.perf_counter()
        self.conn.request("POST", "/search", body,
                          {"Content-Type": "application/json"})
        response = self.conn.getresponse()
        payload = json.loads(response.read())
        return response.status, payload, time.perf_counter() - started

    def get(self, path: str) -> dict:
        self.conn.request("GET", path)
        return json.loads(self.conn.getresponse().read())

    def close(self) -> None:
        self.conn.close()


def closed_loop(port: int, queries: np.ndarray, num_clients: int,
                seconds: float, reference: dict | None) -> dict:
    """``num_clients`` threads looping request→response for ``seconds``;
    verifies every response against ``reference`` when given."""
    stop_at = time.perf_counter() + seconds
    counts = [0] * num_clients
    latencies: list[list[float]] = [[] for _ in range(num_clients)]
    batch_sizes: list[list[int]] = [[] for _ in range(num_clients)]
    mismatches = [0] * num_clients
    errors = [0] * num_clients

    def run(c: int) -> None:
        client = Client(port)
        rng = np.random.default_rng(c)
        try:
            while time.perf_counter() < stop_at:
                i = int(rng.integers(len(queries)))
                status, payload, elapsed = client.search(queries[i])
                if status != 200:
                    errors[c] += 1
                    continue
                counts[c] += 1
                latencies[c].append(elapsed)
                batch_sizes[c].append(payload["batch_size"])
                if reference is not None:
                    want = reference[i]
                    if (payload["ids"] != want["ids"]
                            or payload["ndc"] != want["ndc"]):
                        mismatches[c] += 1
        finally:
            client.close()

    threads = [
        threading.Thread(target=run, args=(c,)) for c in range(num_clients)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - started
    all_lat = [v for lane in latencies for v in lane]
    all_sizes = [v for lane in batch_sizes for v in lane]
    return {
        "clients": num_clients,
        "requests": sum(counts),
        "qps": sum(counts) / wall,
        "p50_ms": percentile(all_lat, 50) * 1000,
        "p99_ms": percentile(all_lat, 99) * 1000,
        "p999_ms": percentile(all_lat, 99.9) * 1000,
        "mean_batch_size": float(np.mean(all_sizes)) if all_sizes else 0.0,
        "mismatches": sum(mismatches),
        "errors": sum(errors),
    }


def open_loop(port: int, queries: np.ndarray, offered_qps: float,
              seconds: float) -> dict:
    """Poisson arrivals at ``offered_qps``: a pacer hands scheduled
    send-times to a worker pool so request launches don't wait for
    responses (up to pool capacity — saturation shows up as achieved
    < offered, which is the signal an open-loop run wants)."""
    rng = np.random.default_rng(99)
    num = max(1, int(offered_qps * seconds))
    gaps = rng.exponential(1.0 / offered_qps, size=num)
    send_at = np.cumsum(gaps)

    pool_size = min(128, max(8, int(offered_qps * 0.1)))
    latencies: list[float] = []
    statuses: dict[int, int] = {}
    degraded = 0
    lock = threading.Lock()
    next_slot = [0]

    def worker() -> None:
        nonlocal degraded
        client = Client(port)
        try:
            while True:
                with lock:
                    slot = next_slot[0]
                    if slot >= num:
                        return
                    next_slot[0] += 1
                wait = t0 + send_at[slot] - time.perf_counter()
                if wait > 0:
                    time.sleep(wait)
                i = slot % len(queries)
                try:
                    status, payload, elapsed = client.search(queries[i])
                except (OSError, http.client.HTTPException):
                    with lock:
                        statuses[599] = statuses.get(599, 0) + 1
                    continue
                with lock:
                    statuses[status] = statuses.get(status, 0) + 1
                    if status == 200:
                        latencies.append(elapsed)
                        if payload["degraded"]:
                            degraded += 1
        finally:
            client.close()

    threads = [threading.Thread(target=worker) for _ in range(pool_size)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    answered = statuses.get(200, 0)
    rejected = sum(v for s, v in statuses.items() if s in (429, 503, 504))
    return {
        "offered_qps": offered_qps,
        "achieved_qps": answered / wall,
        "p50_ms": percentile(latencies, 50) * 1000,
        "p99_ms": percentile(latencies, 99) * 1000,
        "p999_ms": percentile(latencies, 99.9) * 1000,
        "degraded_rate": degraded / max(1, answered),
        "rejected_rate": rejected / max(1, num),
        "statuses": dict(sorted(statuses.items())),
    }


def main() -> None:
    rng = np.random.default_rng(5)
    data = rng.standard_normal((N, DIM)).astype(np.float32)
    queries = rng.standard_normal((256, DIM)).astype(np.float32)

    index = create(ALGO, seed=0)
    t0 = time.perf_counter()
    index.build(data)
    print(f"built {ALGO} on {N}x{DIM} in {time.perf_counter() - t0:.1f}s",
          flush=True)

    reference = {}
    for i, q in enumerate(queries):
        r = index.search(q, k=K, ef=EF)
        reference[i] = {"ids": [int(v) for v in r.ids], "ndc": r.ndc}

    # a throughput-leaning window: every solo request pays ~5ms of
    # coalescing wait, but concurrent traffic forms batches ~6-8 deep
    # (docs/serving.md walks the trade; 2ms is the latency-leaning
    # server default)
    config = ServingConfig(
        port=0, max_wait_ms=5.0, max_batch=64, queue_depth=512,
        workers=2, default_k=K, default_ef=EF,
    )
    results: dict = {
        "config": {
            "n": N, "dim": DIM, "k": K, "ef": EF, "algorithm": ALGO,
            "max_wait_ms": config.max_wait_ms,
            "max_batch": config.max_batch,
            "queue_depth": config.queue_depth,
            "workers": config.workers,
        },
    }
    with BackgroundServer(index, config) as server:
        print(f"serving on {server.address}", flush=True)
        # warmup
        closed_loop(server.port, queries, 2, 0.5, None)

        baseline = closed_loop(server.port, queries, 1, SECONDS, reference)
        print(f"closed-loop 1 client : {baseline['qps']:8.0f} qps  "
              f"p50={baseline['p50_ms']:.2f}ms p99={baseline['p99_ms']:.2f}ms "
              f"mismatches={baseline['mismatches']}", flush=True)
        loaded = closed_loop(server.port, queries, CLIENTS, SECONDS, reference)
        speedup = loaded["qps"] / max(baseline["qps"], 1e-9)
        print(f"closed-loop {CLIENTS:2d} clients: {loaded['qps']:8.0f} qps  "
              f"p50={loaded['p50_ms']:.2f}ms p99={loaded['p99_ms']:.2f}ms "
              f"batch={loaded['mean_batch_size']:.1f} "
              f"mismatches={loaded['mismatches']} "
              f"speedup={speedup:.1f}x", flush=True)
        results["closed_loop"] = {
            "baseline": baseline, "loaded": loaded,
            "speedup": speedup,
        }

        rates_env = os.environ.get("REPRO_BENCH_SERVING_RATES", "")
        if rates_env:
            rates = [float(r) for r in rates_env.split(",") if r.strip()]
        else:
            top = max(200.0, loaded["qps"])
            rates = [round(top * f) for f in (0.25, 0.5, 0.75, 1.0)]
        sweep = []
        for rate in rates:
            row = open_loop(server.port, queries, rate, SECONDS)
            sweep.append(row)
            print(f"open-loop {rate:7.0f} qps offered: "
                  f"{row['achieved_qps']:7.0f} achieved  "
                  f"p50={row['p50_ms']:.2f}ms p99={row['p99_ms']:.2f}ms "
                  f"p999={row['p999_ms']:.2f}ms "
                  f"rejected={row['rejected_rate']:.1%}", flush=True)
        results["open_loop"] = sweep

        stats = Client(server.port).get("/stats")
        results["server_stats"] = stats
        print(f"server: batches={stats['batches']} "
              f"mean_batch={stats['mean_batch_size']} "
              f"kernel_paths={stats['kernel_paths']}", flush=True)

    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {OUTPUT}")

    RESULTS.mkdir(exist_ok=True)
    lines = [
        "serving front door (dynamic micro-batching onto the fused MT "
        "kernel)",
        f"index: {ALGO} {N}x{DIM}, k={K} ef={EF}, "
        f"window={config.max_wait_ms}ms max_batch={config.max_batch} "
        f"workers={config.workers}",
        "",
        f"{'scenario':24s} {'qps':>8s} {'p50ms':>8s} {'p99ms':>8s} "
        f"{'batch':>6s} {'wrong':>6s}",
        f"{'closed-loop 1 client':24s} {baseline['qps']:8.0f} "
        f"{baseline['p50_ms']:8.2f} {baseline['p99_ms']:8.2f} "
        f"{baseline['mean_batch_size']:6.1f} {baseline['mismatches']:6d}",
        f"{'closed-loop %d clients' % CLIENTS:24s} {loaded['qps']:8.0f} "
        f"{loaded['p50_ms']:8.2f} {loaded['p99_ms']:8.2f} "
        f"{loaded['mean_batch_size']:6.1f} {loaded['mismatches']:6d}",
        f"speedup at {CLIENTS} clients: {speedup:.1f}x",
        "",
        f"{'offered':>8s} {'achieved':>9s} {'p50ms':>8s} {'p99ms':>8s} "
        f"{'p999ms':>8s} {'degraded':>9s} {'rejected':>9s}",
    ]
    for row in sweep:
        lines.append(
            f"{row['offered_qps']:8.0f} {row['achieved_qps']:9.0f} "
            f"{row['p50_ms']:8.2f} {row['p99_ms']:8.2f} "
            f"{row['p999_ms']:8.2f} {row['degraded_rate']:9.1%} "
            f"{row['rejected_rate']:9.1%}"
        )
    (RESULTS / "serving.txt").write_text("\n".join(lines) + "\n")
    print(f"wrote {RESULTS / 'serving.txt'}")


if __name__ == "__main__":
    main()
