"""Online-update benchmark: the Table 7 S1 scenario end to end.

Builds one refinement-constructed index (NSG — no native insert path,
so every number below is the delta tier's), then measures the three
costs of mutability:

* **insert throughput** — sustained ``index.insert()`` rate into the
  NSW-style delta side-graph,
* **two-tier search tax** — QPS and recall@k (against brute-force
  ground truth over base ∪ delta) at delta ratios 0 % / 1 % / 10 %,
  quantifying what the pure-NumPy delta walk costs next to the
  C-kernel base walk,
* **consolidation wall time** — folding the 10 % delta into a fresh
  base snapshot through the phased build engine, plus the QPS the
  swap restores.

Results merge under the ``"updates"`` key of ``BENCH_search.json``
(other keys owned by the hotpath/scaling/compressed/sharded
benchmarks) plus a plain table in ``benchmarks/results/updates.txt``.
Run directly::

    PYTHONPATH=src python benchmarks/bench_updates.py

Scale knobs: ``REPRO_BENCH_UPDATES_N`` (base points, default 20000),
``REPRO_BENCH_UPDATES_QUERIES`` (default 100),
``REPRO_BENCH_UPDATES_ALGO`` (default nsg).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import create  # noqa: E402

N = int(os.environ.get("REPRO_BENCH_UPDATES_N", "20000"))
NUM_QUERIES = int(os.environ.get("REPRO_BENCH_UPDATES_QUERIES", "100"))
ALGO = os.environ.get("REPRO_BENCH_UPDATES_ALGO", "nsg")
DIM = 32
K = 10
EF = 60
REPEATS = int(os.environ.get("REPRO_BENCH_UPDATES_REPEATS", "3"))
DELTA_RATIOS = (0.0, 0.01, 0.10)

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_search.json"
RESULTS = Path(__file__).resolve().parent / "results"


def brute_force_topk(data: np.ndarray, queries: np.ndarray, k: int) -> np.ndarray:
    truth = np.empty((len(queries), k), dtype=np.int64)
    data64 = data.astype(np.float64)
    norms = np.einsum("ij,ij->i", data64, data64)
    for i, query in enumerate(queries):
        q = query.astype(np.float64)
        sq = norms - 2.0 * (data64 @ q) + q @ q
        truth[i] = np.argsort(sq, kind="stable")[:k]
    return truth


def recall(ids: np.ndarray, truth: np.ndarray) -> float:
    hits = 0
    for row, gt in zip(ids, truth):
        hits += len(set(int(i) for i in row if i >= 0) & set(int(t) for t in gt))
    return hits / truth.size


def measure_search(index, queries, truth) -> dict:
    from repro.batch import search_batch

    best = None
    for _ in range(REPEATS):
        r = search_batch(index, queries, k=K, ef=EF, workers=1)
        if best is None or r.elapsed_s < best.elapsed_s:
            best = r
    return {
        "qps": float(len(queries) / best.elapsed_s),
        "recall_at_k": recall(best.ids, truth),
        "mean_ndc": float(best.ndc.mean()),
    }


def main() -> None:
    rng = np.random.default_rng(11)
    centers = rng.normal(0, 10.0, (16, DIM))
    base = (
        centers[rng.integers(16, size=N)]
        + rng.normal(0, 1.0, (N, DIM))
    ).astype(np.float32)
    queries = (
        centers[rng.integers(16, size=NUM_QUERIES)]
        + rng.normal(0, 1.0, (NUM_QUERIES, DIM))
    ).astype(np.float32)
    max_extra = int(round(N * max(DELTA_RATIOS)))
    extra = (
        base[rng.integers(N, size=max_extra)]
        + rng.normal(0, 0.1, (max_extra, DIM)).astype(np.float32)
    )

    index = create(ALGO, seed=0)
    t0 = time.perf_counter()
    index.build(base)
    build_s = time.perf_counter() - t0
    index.auto_consolidate = False
    print(f"built {ALGO} on {N}x{DIM} in {build_s:.1f}s", flush=True)

    # -- insert throughput (measured while filling to the max ratio) ----
    t0 = time.perf_counter()
    for vector in extra:
        index.insert(vector)
    insert_s = max(time.perf_counter() - t0, 1e-9)
    inserts_per_s = len(extra) / insert_s
    print(f"insert: {len(extra)} points at {inserts_per_s:.0f}/s", flush=True)

    # -- QPS / recall at each delta ratio (reuse one fill, re-search) ---
    sweep = []
    for ratio in DELTA_RATIOS:
        n_delta = int(round(N * ratio))
        probe = create(ALGO, seed=0)
        probe.build(base)
        probe.auto_consolidate = False
        for vector in extra[:n_delta]:
            probe.insert(vector)
        truth = brute_force_topk(
            np.vstack([base, extra[:n_delta]]) if n_delta else base,
            queries, K,
        )
        row = {"delta_ratio": ratio, "delta_points": n_delta,
               **measure_search(probe, queries, truth)}
        sweep.append(row)
        print(f"delta {ratio:5.1%}: qps={row['qps']:.0f} "
              f"recall@{K}={row['recall_at_k']:.3f} "
              f"mean_ndc={row['mean_ndc']:.0f}", flush=True)

    # -- consolidation (fold the full 10% delta back into the base) -----
    t0 = time.perf_counter()
    report = index.consolidate()
    consolidate_s = time.perf_counter() - t0
    truth_full = brute_force_topk(np.vstack([base, extra]), queries, K)
    after = measure_search(index, queries, truth_full)
    print(f"consolidate: {report.n_delta} points folded in "
          f"{consolidate_s:.1f}s; qps back to {after['qps']:.0f} "
          f"(recall@{K}={after['recall_at_k']:.3f})", flush=True)

    payload = {
        "algorithm": ALGO,
        "n": N,
        "dim": DIM,
        "num_queries": NUM_QUERIES,
        "k": K,
        "ef": EF,
        "repeats": REPEATS,
        "build_s": build_s,
        "inserts_per_s": inserts_per_s,
        "delta_sweep": sweep,
        "consolidation": {
            "n_delta": int(report.n_delta),
            "wall_s": consolidate_s,
            "post_swap": after,
        },
    }

    merged = {}
    if OUTPUT.exists():
        try:
            merged = json.loads(OUTPUT.read_text())
        except (OSError, json.JSONDecodeError):
            merged = {}
    merged["updates"] = payload
    OUTPUT.write_text(json.dumps(merged, indent=2) + "\n")

    lines = [
        f"{ALGO} on n={N} dim={DIM} queries={NUM_QUERIES} k={K} ef={EF} "
        f"build={build_s:.1f}s",
        f"insert throughput: {inserts_per_s:.0f} inserts/s "
        f"({len(extra)} points into the delta tier)",
        f"{'delta':>6s} {'qps':>9s} {'recall@10':>10s} {'mean_ndc':>9s}",
        *[
            f"{row['delta_ratio']:6.1%} {row['qps']:9.0f} "
            f"{row['recall_at_k']:10.3f} {row['mean_ndc']:9.0f}"
            for row in sweep
        ],
        f"consolidation: {report.n_delta} points folded in "
        f"{consolidate_s:.1f}s, post-swap qps={after['qps']:.0f} "
        f"recall@{K}={after['recall_at_k']:.3f}",
    ]
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "updates.txt").write_text(
        "\n".join(["== online updates (S1: delta tier + consolidation) ==",
                   *lines, ""])
    )
    print("\n".join(lines))
    print(f"wrote {OUTPUT}")


if __name__ == "__main__":
    main()
