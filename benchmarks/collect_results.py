"""Collect benchmarks/results/*.txt into EXPERIMENTS.md.

Run after a full benchmark pass:

    python benchmarks/collect_results.py

Replaces everything below the ``MEASURED_RESULTS`` marker in
EXPERIMENTS.md with the recorded tables.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observability.slog import get_logger  # noqa: E402

log = get_logger("repro.bench.collect")

MARKER = "<!-- MEASURED_RESULTS -->"
ROOT = Path(__file__).resolve().parent.parent
RESULTS = Path(__file__).resolve().parent / "results"

# the order experiments appear in the paper
ORDER = [
    "fig5_construction_time",
    "fig6_index_size",
    "build_hotpath",
    "table4_graph_stats",
    "fig7_qps_recall",
    "fig8_speedup_recall",
    "table5_search_stats",
    "fig9_ml_optimizations",
    "fig10_components",
    "fig11_optimized_algorithm",
    "table7_recommendations",
    "table11_degrees",
    "table12_scalability",
    "fig14_complexity",
    "fig15_iterations",
    "table16_kdr_vs_ngt",
    "table23_randomness",
    "ablations",
    "observability_overhead",
    "compressed_traversal",
    "sharded",
    "updates",
    "serving",
]


def main() -> None:
    experiments = ROOT / "EXPERIMENTS.md"
    text = experiments.read_text()
    if MARKER not in text:
        raise SystemExit(f"marker {MARKER!r} missing from EXPERIMENTS.md")
    head = text.split(MARKER)[0] + MARKER + "\n"
    chunks = []
    missing = []
    for name in ORDER:
        path = RESULTS / f"{name}.txt"
        if not path.exists():
            missing.append(name)
            chunks.append(f"\n*(no recorded run for `{name}`)*\n")
            continue
        chunks.append("\n```\n" + path.read_text().rstrip() + "\n```\n")
    experiments.write_text(head + "".join(chunks))
    if missing:
        log.warning("collect.missing_results", count=len(missing),
                    experiments=",".join(missing))
    log.echo(
        f"embedded {len(chunks)} result tables into EXPERIMENTS.md",
        event="collect.done", tables=len(chunks), missing=len(missing),
    )


if __name__ == "__main__":
    main()
