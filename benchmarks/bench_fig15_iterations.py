"""Figure 15 + Table 14 / Appendix L — NN-Descent iterations study.

Paper shapes: construction time grows monotonically with the number of
NN-Descent iterations while search performance saturates (and can even
dip) — best graph quality is *not* required for best search, the
survey's headline I3 finding.
"""

import pytest

from common import get_dataset, write_table
from repro.graphs.knng import exact_knn_lists
from repro.metrics import graph_quality
from repro.pipeline import BenchmarkAlgorithm

DATASETS = ("sift1m", "gist1m")
ITERATIONS = (1, 2, 4, 8)

_rows: dict[tuple[int, str], tuple] = {}


@pytest.mark.parametrize("dataset_name", DATASETS)
@pytest.mark.parametrize("iterations", ITERATIONS)
def test_iterations(benchmark, iterations, dataset_name):
    dataset = get_dataset(dataset_name)

    def build_and_search():
        bench = BenchmarkAlgorithm(iterations=iterations, seed=0)
        bench.build(dataset.base)
        stats = bench.batch_search(
            dataset.queries, dataset.ground_truth, k=10, ef=60
        )
        return bench, stats

    bench, stats = benchmark.pedantic(build_and_search, rounds=1, iterations=1)
    exact_ids, _ = exact_knn_lists(dataset.base, 10)
    gq = graph_quality(bench.graph, dataset.base, k=10, exact_ids=exact_ids)
    _rows[(iterations, dataset_name)] = (
        bench.build_report.build_time_s, gq, stats.recall, stats.mean_ndc
    )
    benchmark.extra_info.update(recall=stats.recall, graph_quality=gq)


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'iter':>4s} {'dataset':8s} {'build(s)':>9s} {'GQ':>6s} "
        f"{'recall@10':>9s} {'NDC':>8s}"
    ]
    for (iterations, ds), (build_s, gq, recall, ndc) in sorted(_rows.items()):
        lines.append(
            f"{iterations:4d} {ds:8s} {build_s:9.2f} {gq:6.3f} "
            f"{recall:9.3f} {ndc:8.1f}"
        )
    write_table(
        "fig15_iterations",
        "Figure 15 / Table 14: NN-Descent iterations vs build time & search",
        lines,
    )

    for ds in DATASETS:
        # Table 14's shape: more iterations, more construction time.
        # The very first build absorbs warmup noise, so compare within
        # the later measurements only.
        if all((i, ds) in _rows for i in (2, 8)):
            assert _rows[(8, ds)][0] > _rows[(2, ds)][0] * 0.9
        # Appendix L: recall saturates — the step from 4 to 8 iterations
        # buys almost nothing compared to the step from 1 to 4
        if all((i, ds) in _rows for i in (1, 4, 8)):
            gain_early = _rows[(4, ds)][2] - _rows[(1, ds)][2]
            gain_late = _rows[(8, ds)][2] - _rows[(4, ds)][2]
            assert gain_late <= max(gain_early, 0.02) + 0.02
