"""Benchmark-suite fixtures (scale knobs documented in common.py)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
