"""Table 5 — candidate set size (CS), query path length (PL), and peak
memory overhead (MO) at a high-precision recall target.

Paper shapes: DG-based and most RNG-based algorithms need small CS;
algorithms with weak search performance need huge CS (or hit a recall
ceiling, reported with a "+"); RNG-pruned graphs have the lowest MO and
tree-augmented ones the highest.
"""

import pytest

from common import BENCH_ALGORITHMS, bench_datasets, get_dataset, get_index, write_table
from repro.metrics import search_memory_bytes
from repro.pipeline import candidate_size_for_recall

TARGET_RECALL = 0.90
EF_GRID = (10, 20, 30, 40, 60, 80, 120, 160, 240)

_rows: dict[tuple[str, str], tuple] = {}


@pytest.mark.parametrize("dataset_name", bench_datasets())
@pytest.mark.parametrize("algorithm_name", BENCH_ALGORITHMS)
def test_search_stats(benchmark, algorithm_name, dataset_name):
    index = get_index(algorithm_name, dataset_name)
    dataset = get_dataset(dataset_name)
    result = benchmark.pedantic(
        candidate_size_for_recall,
        args=(index, dataset, TARGET_RECALL),
        kwargs={"ef_grid": EF_GRID},
        rounds=1,
        iterations=1,
    )
    memory = search_memory_bytes(index, result.candidate_size)
    _rows[(algorithm_name, dataset_name)] = (
        result.candidate_size, result.hit_ceiling, result.mean_hops, memory
    )
    benchmark.extra_info.update(
        cs=result.candidate_size, ceiling=result.hit_ceiling,
        pl=result.mean_hops, mo=memory,
    )


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    datasets = bench_datasets()
    header = f"{'algorithm':11s} " + " ".join(
        f"{d + ' CS':>9s} {'PL':>7s} {'MO(K)':>8s}" for d in datasets
    )
    lines = [header]
    for name in BENCH_ALGORITHMS:
        cells = []
        for ds in datasets:
            row = _rows.get((name, ds))
            if row is None:
                cells.append(f"{'-':>9s} {'-':>7s} {'-':>8s}")
                continue
            cs, ceiling, pl, mo = row
            cs_text = f"{cs}+" if ceiling else f"{cs}"
            cells.append(f"{cs_text:>9s} {pl:7.1f} {mo / 1024:8.1f}")
        lines.append(f"{name:11s} " + " ".join(cells))
    write_table(
        "table5_search_stats",
        f"Table 5: CS / PL / MO at Recall@10 >= {TARGET_RECALL}",
        lines,
    )
