"""Table 7 — the scenario recommendations, validated empirically.

For each scenario the paper names the criterion that drives its pick;
this bench recomputes the criterion from the shared measured suite and
checks the recommended algorithms really do sit in the winning band:

* S1/S7 (updates / limited memory): smallest construction time + index
  size / out-degree — NSG, NSSG;
* S2 (rapid KNNG): top graph quality at low build time — KGraph,
  EFANNA, DPG;
* S3 (external memory): smallest query path length — DPG, HCNNG;
* S4 (hard datasets): best high-recall speedup on the hard stand-in —
  HNSW, NSG, HCNNG.
"""

import pytest

from common import bench_datasets, get_dataset, get_index, write_table
from repro.advisor import Scenario, recommend
from repro.graphs.knng import exact_knn_lists
from repro.metrics import graph_quality
from repro.pipeline import candidate_size_for_recall

_lines: list[str] = []


def _rank(scores: dict[str, float], reverse: bool = False) -> list[str]:
    return sorted(scores, key=scores.get, reverse=reverse)


def test_s1_s7_smallest_index(benchmark):
    datasets = bench_datasets()

    def measure():
        sizes = {}
        for name in ("nsg", "nssg", "kgraph", "nsw", "dpg", "hcnng", "efanna"):
            sizes[name] = sum(
                get_index(name, ds).graph.index_size_bytes() for ds in datasets
            )
        return sizes

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    ranked = _rank(sizes)
    _lines.append(f"S1/S7 smallest index: {ranked}")
    # the recommended pair must occupy the small-index band (top 3)
    assert set(recommend(Scenario.LIMITED_MEMORY)) & set(ranked[:3]), ranked


def test_s2_rapid_high_quality_knng(benchmark):
    datasets = bench_datasets()

    def measure():
        quality_per_second = {}
        for name in ("kgraph", "efanna", "dpg", "ieh", "fanng", "nsg"):
            total_gq, total_time = 0.0, 0.0
            for ds in datasets:
                index = get_index(name, ds)
                exact_ids, _ = exact_knn_lists(get_dataset(ds).base, 10)
                total_gq += graph_quality(
                    index.graph, get_dataset(ds).base, k=10, exact_ids=exact_ids
                )
                total_time += index.build_report.build_time_s
            quality_per_second[name] = total_gq / max(total_time, 1e-9)
        return quality_per_second

    scores = benchmark.pedantic(measure, rounds=1, iterations=1)
    ranked = _rank(scores, reverse=True)
    _lines.append(f"S2 graph quality per build-second: {ranked}")
    # the paper's S2 picks must fill the top band (IEH's cheap toy-scale
    # scan is the documented deviation, so allow it in the band)
    assert set(ranked[:3]) & set(recommend(Scenario.RAPID_KNNG)), ranked


def test_s3_shortest_paths(benchmark):
    def measure():
        hops = {}
        dataset = get_dataset("sift1m")
        for name in ("dpg", "hcnng", "nsg", "kgraph", "nsw", "hnsw"):
            index = get_index(name, "sift1m")
            result = candidate_size_for_recall(index, dataset, 0.9)
            hops[name] = result.mean_hops
        return hops

    hops = benchmark.pedantic(measure, rounds=1, iterations=1)
    ranked = _rank(hops)
    _lines.append(f"S3 query path length @0.9: {ranked}")
    assert set(ranked[:3]) & set(recommend(Scenario.EXTERNAL_MEMORY)), ranked


def test_s4_hard_dataset_search(benchmark):
    def measure():
        dataset = get_dataset("gist1m")
        speedups = {}
        for name in ("hnsw", "nsg", "hcnng", "kgraph", "nsw", "efanna", "dpg"):
            index = get_index(name, "gist1m")
            result = candidate_size_for_recall(index, dataset, 0.85)
            penalty = 10.0 if result.hit_ceiling else 1.0
            speedups[name] = dataset.n / (result.mean_ndc * penalty)
        return speedups

    speedups = benchmark.pedantic(measure, rounds=1, iterations=1)
    ranked = _rank(speedups, reverse=True)
    _lines.append(f"S4 hard-dataset speedup @0.85: {ranked}")
    assert set(ranked[:4]) & set(recommend(Scenario.HARD_DATASET)), ranked


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    write_table(
        "table7_recommendations",
        "Table 7: scenario criteria, measured rankings",
        _lines,
    )
