"""Tables 16-18 / Appendix N — k-DR vs NGT head-to-head.

Paper shapes: k-DR's strict alternative-path rule produces a smaller
average out-degree, index size and memory overhead than NGT-panng /
NGT-onng; NGT builds faster (its initial graph is incremental rather
than an exact KNNG); both stay fully connected after reverse edges.
"""

import pytest

from common import get_dataset, write_table
from repro import create
from repro.metrics import graph_index_stats, search_memory_bytes
from repro.pipeline import candidate_size_for_recall

DATASETS = ("sift1m", "gist1m")
CONTENDERS = ("kdr", "ngt-panng", "ngt-onng")

_rows: dict[tuple[str, str], tuple] = {}


@pytest.mark.parametrize("dataset_name", DATASETS)
@pytest.mark.parametrize("algorithm_name", CONTENDERS)
def test_kdr_vs_ngt(benchmark, algorithm_name, dataset_name):
    dataset = get_dataset(dataset_name)

    def build():
        index = create(algorithm_name, seed=0)
        index.build(dataset.base)
        return index

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    stats = graph_index_stats(index.graph, dataset.base, k=10)
    cs = candidate_size_for_recall(index, dataset, 0.9)
    _rows[(algorithm_name, dataset_name)] = (
        index.build_report.build_time_s,
        index.index_size_bytes(),
        stats.graph_quality,
        stats.average_out_degree,
        stats.connected_components,
        cs.candidate_size,
        cs.mean_hops,
        search_memory_bytes(index, cs.candidate_size),
    )


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'algorithm':10s} {'dataset':8s} {'ICT(s)':>7s} {'IS(K)':>7s} "
        f"{'GQ':>6s} {'AD':>6s} {'CC':>4s} {'CS':>5s} {'PL':>7s} {'MO(K)':>8s}"
    ]
    for (name, ds), row in sorted(_rows.items()):
        ict, size, gq, ad, cc, cs, pl, mo = row
        lines.append(
            f"{name:10s} {ds:8s} {ict:7.2f} {size / 1024:7.1f} {gq:6.3f} "
            f"{ad:6.1f} {cc:4d} {cs:5d} {pl:7.1f} {mo / 1024:8.1f}"
        )
    write_table("table16_kdr_vs_ngt", "Tables 16-17: k-DR vs NGT", lines)

    for ds in DATASETS:
        kdr = _rows.get(("kdr", ds))
        panng = _rows.get(("ngt-panng", ds))
        if kdr and panng:
            # Appendix N: the stricter rule keeps fewer edges
            assert kdr[3] <= panng[3] * 1.5, "k-DR AD should not exceed NGT's"
