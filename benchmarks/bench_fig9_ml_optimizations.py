"""Figure 9 / Figure 19 + Tables 6 & 24 — ML-based optimizations.

Paper shapes: every ML optimization costs orders of magnitude more
index-processing time and memory than the plain index; ML1 improves
the NDC-recall tradeoff; ML2 gives a modest latency trim at high
recall; ML3 improves speedup by searching in a reduced space.
"""

import numpy as np
import pytest

from common import get_dataset, write_table
from repro import create
from repro.metrics import recall_at_k
from repro.ml import ML1LearnedRouting, ML2EarlyTermination, ML3DimensionReduction

# the paper uses SIFT100K / GIST100K; we use the matching stand-ins
DATASETS = ("sift1m", "gist1m")

_rows: dict[tuple[str, str], tuple] = {}


def _evaluate(searcher, dataset, k=10, ef=60):
    recalls, ndcs = [], []
    for i, query in enumerate(dataset.queries):
        result = searcher.search(query, k=k, ef=ef)
        recalls.append(recall_at_k(result.ids, dataset.ground_truth[i], k))
        ndcs.append(result.ndc)
    return float(np.mean(recalls)), float(np.mean(ndcs))


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_ml_optimizations(benchmark, dataset_name):
    dataset = get_dataset(dataset_name)

    def run_experiment():
        base = create("nsg", seed=0)
        base.build(dataset.base)
        rows = {}
        rows["nsg"] = (
            base.build_report.build_time_s,
            base.index_size_bytes(),
            *_evaluate(base, dataset),
        )
        ml1 = ML1LearnedRouting(base, epochs=10, seed=0).fit()
        rows["nsg+ml1"] = (
            base.build_report.build_time_s + ml1.preprocessing_time_s,
            base.index_size_bytes() + ml1.memory_bytes,
            *_evaluate(ml1, dataset),
        )
        hnsw = create("hnsw", seed=0)
        hnsw.build(dataset.base)
        ml2 = ML2EarlyTermination(hnsw, seed=0).fit(dataset.queries[:10], ef=60)
        rows["hnsw+ml2"] = (
            hnsw.build_report.build_time_s + ml2.preprocessing_time_s,
            hnsw.index_size_bytes() + ml2.memory_bytes,
            *_evaluate(ml2, dataset),
        )
        ml3 = ML3DimensionReduction(
            lambda: create("nsg", seed=0), target_dim=16
        ).fit(dataset.base)
        rows["nsg+ml3"] = (
            ml3.preprocessing_time_s,
            base.index_size_bytes() + ml3.memory_bytes,
            *_evaluate(ml3, dataset),
        )
        return rows

    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    for method, row in rows.items():
        _rows[(method, dataset_name)] = row


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        f"{'method':9s} {'dataset':8s} {'IPT(s)':>8s} {'MC(K)':>9s} "
        f"{'recall@10':>9s} {'NDC':>8s}"
    ]
    for (method, ds), (ipt, memory, recall, ndc) in sorted(_rows.items()):
        lines.append(
            f"{method:9s} {ds:8s} {ipt:8.2f} {memory / 1024:9.1f} "
            f"{recall:9.3f} {ndc:8.1f}"
        )
    write_table(
        "fig9_ml_optimizations",
        "Figure 9/19 + Tables 6/24: ML-based optimizations on NSG/HNSW",
        lines,
    )

    for ds in DATASETS:
        plain = _rows.get(("nsg", ds))
        ml1 = _rows.get(("nsg+ml1", ds))
        if plain and ml1:
            # Table 6's shape: ML1 multiplies preprocessing time & memory
            assert ml1[0] > plain[0]
            assert ml1[1] > plain[1]
