"""Figure 10 (+ Table 15) — the §5.4 component study.

One benchmark algorithm (Table 13 defaults), one component swapped at a
time, everything else held constant — the evaluation methodology the
paper argues past work lacked.  Each swap reports Recall@10 / NDC at a
fixed candidate size plus build time (Table 15).

Paper shapes: C1_NSG beats C1_KGraph; distribution-aware C3 beats
distance-only C3_KGraph; C4_IEH (hash seeds) beats C4_NGT and
C4_SPTAG-BKT (tree seeds that pay distance calculations); C5_NSG beats
no connectivity; C7_NGT shows a recall ceiling at small ε.
"""

import pytest

from common import BENCH_N, BENCH_QUERIES, write_table
from repro.datasets import load_dataset
from repro.pipeline import BenchmarkAlgorithm

# the two-dataset setting of §5.4: one simple, one hard
DATASETS = ("sift1m", "gist1m")

# the initialization study (C1) is scale-sensitive — a random-init
# candidate pool is "good" on tiny data — so C1 swaps run on a larger
# floor (ordering validated to hold at n=2000); the remaining
# components are scale-robust and use the shared suite size
FIG10_LARGE_N = max(BENCH_N, 2000)


def get_dataset(name: str, large: bool = False):
    n = FIG10_LARGE_N if large else BENCH_N
    return load_dataset(name, cardinality=n, num_queries=BENCH_QUERIES)

SWAPS = [
    ("c1", "nsg"), ("c1", "efanna"), ("c1", "kgraph"),
    ("c2", "nssg"), ("c2", "dpg"), ("c2", "nsw"),
    ("c3", "hnsw"), ("c3", "kgraph"), ("c3", "dpg"), ("c3", "nssg"),
    ("c3", "vamana"),
    ("c4", "nssg"), ("c4", "nsg"), ("c4", "hcnng"), ("c4", "ieh"),
    ("c4", "ngt"), ("c4", "sptag-bkt"),
    ("c5", "nsg"), ("c5", "vamana"),
    ("c7", "nsw"), ("c7", "ngt"), ("c7", "fanng"), ("c7", "hcnng"),
]

_rows: dict[tuple[str, str, str], tuple] = {}
_config_cache: dict[tuple, tuple] = {}
_graph_cache: dict[tuple, object] = {}


def _build_key(bench: BenchmarkAlgorithm, dataset_name: str, large: bool) -> tuple:
    """Only C1/C2/C3/C5 shape the graph; C4 and C7 are search-side."""
    return (bench.c1, bench.c2, bench.c3, bench.c5, dataset_name, large)


@pytest.mark.parametrize("dataset_name", DATASETS)
@pytest.mark.parametrize("component,choice", SWAPS, ids=[f"{c}_{v}" for c, v in SWAPS])
def test_component_swap(benchmark, component, choice, dataset_name):
    dataset = get_dataset(dataset_name, large=component == "c1")

    def build_and_search():
        # many swaps share the Table 13 default construction: identical
        # (C1, C2, C3, C5) means an identical graph, so C4/C7 variants
        # reuse it and only redo the search-side work
        bench = BenchmarkAlgorithm(**{component: choice}, seed=0)
        key = (bench.name, dataset_name)
        if key in _config_cache:
            return _config_cache[key]
        graph_key = _build_key(bench, dataset_name, component == "c1")
        if graph_key in _graph_cache:
            donor = _graph_cache[graph_key]
            bench.data = donor.data
            bench.graph = donor.graph
            bench.phase_times = dict(donor.phase_times)
            bench.seed_provider = bench._make_seed_provider()
            bench.seed_provider.prepare(bench.data, bench.graph)
            bench._deleted = donor._deleted
            bench.build_report = donor.build_report
        else:
            bench.build(dataset.base)
            _graph_cache[graph_key] = bench
        stats = bench.batch_search(
            dataset.queries, dataset.ground_truth, k=10, ef=60
        )
        _config_cache[key] = (bench, stats)
        return _config_cache[key]

    bench, stats = benchmark.pedantic(build_and_search, rounds=1, iterations=1)
    _rows[(component, choice, dataset_name)] = (
        stats.recall,
        stats.mean_ndc,
        bench.build_report.build_time_s,
    )
    benchmark.extra_info.update(recall=stats.recall, ndc=stats.mean_ndc)


def test_zzz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = []
    for ds in DATASETS:
        lines.append(f"--- {ds}: recall@10 / NDC / build-time per swap ---")
        for component, choice in SWAPS:
            row = _rows.get((component, choice, ds))
            if row is None:
                continue
            recall, ndc, build_s = row
            lines.append(
                f"{component.upper()}_{choice:10s} recall={recall:.3f} "
                f"ndc={ndc:7.1f} build={build_s:6.2f}s"
            )
    write_table(
        "fig10_components",
        "Figure 10 / Table 15: component study on the unified framework",
        lines,
    )

    for ds in DATASETS:
        # C1: NN-Descent init beats purely random init (Figure 10(a))
        if ("c1", "nsg", ds) in _rows and ("c1", "kgraph", ds) in _rows:
            assert _rows[("c1", "nsg", ds)][0] >= _rows[("c1", "kgraph", ds)][0] - 0.02
        # C4: hash seeds never lose to VP-tree seeds on NDC (Figure 10(d))
        if ("c4", "ieh", ds) in _rows and ("c4", "ngt", ds) in _rows:
            assert _rows[("c4", "ieh", ds)][1] <= _rows[("c4", "ngt", ds)][1] * 1.2
