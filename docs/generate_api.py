"""Generate docs/api.md from the package's docstrings.

Usage:  python docs/generate_api.py
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from pathlib import Path

import repro

OUT = Path(__file__).parent / "api.md"


def first_line(obj) -> str:
    doc = inspect.getdoc(obj)
    return doc.splitlines()[0] if doc else "(undocumented)"


def walk_modules():
    yield "repro", repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        try:
            yield info.name, importlib.import_module(info.name)
        except Exception as error:  # pragma: no cover - defensive
            print(f"skipping {info.name}: {error}")


def document_module(name: str, module) -> list[str]:
    lines = [f"## `{name}`", "", first_line(module), ""]
    members = []
    for attr, value in vars(module).items():
        if attr.startswith("_"):
            continue
        if inspect.isclass(value) and value.__module__ == name:
            members.append((attr, value, "class"))
        elif inspect.isfunction(value) and value.__module__ == name:
            members.append((attr, value, "function"))
    for attr, value, kind in sorted(members):
        try:
            signature = str(inspect.signature(value))
        except (TypeError, ValueError):
            signature = "(...)"
        lines.append(f"### {kind} `{attr}{signature}`")
        lines.append("")
        lines.append(first_line(value))
        if kind == "class":
            for meth_name, meth in sorted(vars(value).items()):
                if meth_name.startswith("_") or not inspect.isfunction(meth):
                    continue
                try:
                    meth_sig = str(inspect.signature(meth))
                except (TypeError, ValueError):
                    meth_sig = "(...)"
                lines.append(f"- `.{meth_name}{meth_sig}` — {first_line(meth)}")
        lines.append("")
    return lines


def main() -> None:
    chunks = [
        "# API Reference",
        "",
        "Generated from docstrings by `docs/generate_api.py`; regenerate",
        "after changing public signatures.",
        "",
        "For the search hot path — CSR graph storage, `SearchContext`",
        "reuse, the native kernel and the batched query engine — see",
        "[performance.md](performance.md).",
        "",
    ]
    for name, module in walk_modules():
        chunks.extend(document_module(name, module))
    OUT.write_text("\n".join(chunks))
    print(f"wrote {OUT} ({len(chunks)} lines)")


if __name__ == "__main__":
    main()
