"""Record pinned adjacency hashes for the build-determinism regression test.

Builds every registry algorithm (plus the §5.4 framework default) on the
small fixed synthetic dataset used by ``tests/test_build_engine.py`` and
writes a ``{mode: {algorithm: {"adjacency": sha256, "ndc": int}}}`` map to
``tests/data/build_hashes.json``.  Run once per *reference* machine per
mode::

    PYTHONPATH=src python scripts/gen_build_hashes.py
    REPRO_NO_NATIVE=1 PYTHONPATH=src python scripts/gen_build_hashes.py

The hashes pin the construction output of the serial (``n_workers=1``)
path: any refactor of the build layer must keep them stable at the same
seed.  They are BLAS-rounding-sensitive, so they hold on machines whose
NumPy produces bit-identical float32 matmuls (in practice: same NumPy
wheel family); the cross-``n_workers`` equality tests are machine-
independent and run everywhere.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import _native  # noqa: E402
from repro.algorithms.registry import ALGORITHMS, create  # noqa: E402
from repro.pipeline.framework import BenchmarkAlgorithm  # noqa: E402

OUT = Path(__file__).resolve().parent.parent / "tests" / "data" / "build_hashes.json"

#: the dataset every determinism test builds on
DATASET_N, DATASET_D, DATASET_SEED = 300, 24, 7


def pinned_dataset() -> np.ndarray:
    rng = np.random.default_rng(DATASET_SEED)
    return rng.standard_normal((DATASET_N, DATASET_D)).astype(np.float32)


def adjacency_hash(graph) -> str:
    indptr, indices = graph.csr()
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(indptr).tobytes())
    digest.update(np.ascontiguousarray(indices).tobytes())
    return digest.hexdigest()


def build_all() -> dict[str, dict]:
    data = pinned_dataset()
    out: dict[str, dict] = {}
    for name in sorted(ALGORITHMS):
        algo = create(name, seed=0)
        report = algo.build(data)
        out[name] = {
            "adjacency": adjacency_hash(algo.graph),
            "ndc": int(report.build_ndc),
        }
        print(f"{name:12s} {out[name]['adjacency'][:16]} ndc={out[name]['ndc']}")
    bench = BenchmarkAlgorithm(seed=0)
    report = bench.build(data)
    out["framework"] = {
        "adjacency": adjacency_hash(bench.graph),
        "ndc": int(report.build_ndc),
    }
    print(f"{'framework':12s} {out['framework']['adjacency'][:16]} "
          f"ndc={out['framework']['ndc']}")
    return out


def main() -> None:
    mode = "no_native" if os.environ.get("REPRO_NO_NATIVE") else "native"
    if mode == "native" and _native.LIB is None:
        raise SystemExit("native mode requested but the kernel failed to load")
    recorded = {}
    if OUT.exists():
        recorded = json.loads(OUT.read_text())
    recorded[mode] = build_all()
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(recorded, indent=2, sort_keys=True) + "\n")
    print(f"wrote {mode} hashes to {OUT}")


if __name__ == "__main__":
    main()
