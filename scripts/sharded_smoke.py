"""CI smoke for the sharded scatter–gather layer.

Builds a 4-shard index over a small clustered cloud, then drives the
robustness contract end to end with deterministic fault injection:

1. healthy scatter–gather answers with sane recall and zero quarantines;
2. ``fail_shard`` + ``slow_shard`` (with a shard timeout) mid-query
   returns best-effort partial results — ``degraded=True``, both shards
   named in the ``ShardReport``, no exception — and the quarantine /
   degraded counters in the metrics registry advance;
3. a manifest round-trip with one member corrupted loads in repair
   mode with the bad shard quarantined and still serves queries.

Exits non-zero on any violated assertion.  Runs in both the native and
``REPRO_NO_NATIVE=1`` CI legs::

    PYTHONPATH=src python scripts/sharded_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import faults, observability as obs  # noqa: E402
from repro.datasets import make_clustered  # noqa: E402
from repro.io import load_sharded, save_sharded  # noqa: E402
from repro.metrics.recall import recall_at_k  # noqa: E402
from repro.sharding import ShardedIndex  # noqa: E402


def main() -> int:
    obs.enable(metrics=True, trace=False)
    dataset = make_clustered(24, 1200, 6, 5.0, num_queries=20,
                             gt_depth=20, seed=11)
    index = ShardedIndex.build(dataset.base, num_shards=4,
                               algorithm="nsg", seed=0)
    print(f"built 4 shards over {index.num_points} points "
          f"(sizes {[len(ids) for ids in index.shard_ids]})")

    # 1. healthy pass
    healthy = index.search_batch(dataset.queries, k=10)
    recalls = [
        recall_at_k(healthy.ids[i][healthy.ids[i] >= 0],
                    dataset.ground_truth[i], 10)
        for i in range(len(dataset.queries))
    ]
    mean_recall = float(np.mean(recalls))
    print(f"healthy: recall@10={mean_recall:.3f} "
          f"qps={healthy.qps:.0f} quarantined={len(healthy.shard_report.quarantined)}")
    assert mean_recall >= 0.6, f"healthy recall {mean_recall:.3f} too low"
    assert healthy.shard_report.quarantined == ()
    assert not healthy.degraded.any()

    # 2. kill one shard, slow another beyond the timeout
    plan = faults.FaultPlan().fail_shard(1).slow_shard(2, 0.8)
    with faults.inject(plan):
        hurt = index.search_batch(dataset.queries, k=10, fanout=4,
                                  shard_timeout_s=0.2)
    quarantined = dict(hurt.shard_report.quarantined)
    print(f"faulted: degraded_rate={float(hurt.degraded.mean()):.2f} "
          f"quarantined={sorted(quarantined)}")
    assert hurt.degraded.all(), "every query should be marked degraded"
    assert set(quarantined) == {1, 2}, quarantined
    assert "injected fault" in quarantined[1]
    assert "timeout" in quarantined[2]
    assert (hurt.ids >= 0).all(), "partial results must still fill top-k"
    assert not np.isin(hurt.ids, index.shard_ids[1]).any()
    hurt_recall = float(np.mean([
        recall_at_k(hurt.ids[i][hurt.ids[i] >= 0],
                    dataset.ground_truth[i], 10)
        for i in range(len(dataset.queries))
    ]))
    print(f"faulted: recall@10={hurt_recall:.3f} with 2 of 4 shards dark")

    # the registry saw the quarantines and the degradation
    scrape = obs.prometheus_text()
    for metric in ("repro_shard_quarantines_total",
                   "repro_sharded_degraded_total",
                   "repro_sharded_queries_total"):
        line = next((ln for ln in scrape.splitlines()
                     if ln.startswith(metric)), None)
        assert line is not None, f"{metric} missing from scrape"
        assert float(line.rsplit(" ", 1)[1]) > 0, f"{metric} never advanced"
    print("metrics: quarantine + degraded counters advanced")

    # 3. corrupt one member on disk; repair-load quarantines it
    with tempfile.TemporaryDirectory() as tmp:
        manifest = Path(tmp) / "index.json"
        save_sharded(index, manifest)
        faults.corrupt_shard_file(manifest, shard=3, seed=5)
        loaded = load_sharded(manifest, repair=True)
        assert list(loaded.quarantined) == [3]
        result = loaded.search(dataset.queries[0], k=10)
        assert result.degraded is True
        assert len(result.ids) == 10
    print("manifest: corrupt member quarantined on repair-load; "
          "survivors still serve")
    print("sharded smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
