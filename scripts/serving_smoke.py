"""CI smoke for the serving front door.

Boots the real HTTP server over a small index, drives a fixed
concurrent load from keep-alive clients, and gates on the serving
contract end to end:

1. every response is bit-identical (ids and NDC) to a direct
   ``index.search()`` of the same vector — zero incorrect responses;
2. requests actually coalesced (mean batch size > 1 under concurrent
   load) and, on the native leg, every batch ran the fused MT kernel;
3. deadline-carrying requests are answered (degraded at worst, never
   an error) and stay on the fused path;
4. p99 end-to-end latency under a generous CI threshold;
5. drain semantics: a draining server 503s new requests, then stops
   cleanly with all in-flight responses delivered.

Exits non-zero on any violated assertion.  Runs in both the native
and ``REPRO_NO_NATIVE=1`` CI legs::

    PYTHONPATH=src python scripts/serving_smoke.py

Knobs: ``REPRO_SMOKE_SERVING_N`` (base points, default 2000),
``REPRO_SMOKE_SERVING_CLIENTS`` (default 16),
``REPRO_SMOKE_SERVING_REQUESTS`` (per client, default 40),
``REPRO_SMOKE_SERVING_P99_MS`` (latency gate, default 500).
"""

from __future__ import annotations

import http.client
import json
import os
import sys
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import _native, create, observability as obs  # noqa: E402
from repro.serving import BackgroundServer, ServingConfig  # noqa: E402

N = int(os.environ.get("REPRO_SMOKE_SERVING_N", "2000"))
DIM = 24
K = 10
EF = 64
CLIENTS = int(os.environ.get("REPRO_SMOKE_SERVING_CLIENTS", "16"))
REQUESTS = int(os.environ.get("REPRO_SMOKE_SERVING_REQUESTS", "40"))
P99_MS = float(os.environ.get("REPRO_SMOKE_SERVING_P99_MS", "500"))


def post(conn, payload) -> tuple[int, dict]:
    conn.request("POST", "/search", json.dumps(payload),
                 {"Content-Type": "application/json"})
    response = conn.getresponse()
    return response.status, json.loads(response.read())


def main() -> int:
    native = _native.LIB is not None
    print(f"native kernel: {native}")
    obs.enable(metrics=True, trace=False)

    rng = np.random.default_rng(17)
    data = rng.standard_normal((N, DIM)).astype(np.float32)
    queries = rng.standard_normal((64, DIM)).astype(np.float32)
    index = create("nsg", seed=0)
    index.build(data)
    reference = [index.search(q, k=K, ef=EF) for q in queries]
    print(f"built nsg on {N}x{DIM}; {len(queries)} reference answers")

    config = ServingConfig(
        port=0, max_wait_ms=3.0, max_batch=32, queue_depth=256,
        workers=2, default_k=K, default_ef=EF,
    )
    background = BackgroundServer(index, config).start()
    try:
        # -- fixed concurrent load, every response verified ------------
        wrong = [0] * CLIENTS
        failed = [0] * CLIENTS
        latencies: list[list[float]] = [[] for _ in range(CLIENTS)]

        def client(c: int) -> None:
            conn = http.client.HTTPConnection(
                "127.0.0.1", background.port, timeout=60.0
            )
            lane = np.random.default_rng(c)
            try:
                for _ in range(REQUESTS):
                    i = int(lane.integers(len(queries)))
                    # half the requests carry a generous deadline: the
                    # SLO path must not change a single bit
                    payload = {"vector": queries[i].tolist(),
                               "k": K, "ef": EF}
                    if i % 2 == 0:
                        payload["deadline_ms"] = 60_000
                    started = time.perf_counter()
                    status, body = post(conn, payload)
                    latencies[c].append(time.perf_counter() - started)
                    if status != 200:
                        failed[c] += 1
                        continue
                    want = reference[i]
                    if (body["ids"] != [int(v) for v in want.ids]
                            or body["ndc"] != want.ndc
                            or body["degraded"]):
                        wrong[c] += 1
            finally:
                conn.close()

        threads = [
            threading.Thread(target=client, args=(c,))
            for c in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        total = CLIENTS * REQUESTS
        all_lat = sorted(v for lane in latencies for v in lane)
        p99 = all_lat[int(len(all_lat) * 0.99) - 1] * 1000
        stats = background.server.coalescer.stats.snapshot()
        print(f"{total} requests: wrong={sum(wrong)} failed={sum(failed)} "
              f"p99={p99:.1f}ms mean_batch={stats['mean_batch_size']} "
              f"kernel_paths={stats['kernel_paths']}")
        assert sum(wrong) == 0, f"{sum(wrong)} incorrect responses"
        assert sum(failed) == 0, f"{sum(failed)} failed responses"
        assert stats["mean_batch_size"] > 1.0, "no coalescing happened"
        assert p99 <= P99_MS, f"p99 {p99:.1f}ms over the {P99_MS}ms gate"
        if native:
            assert set(stats["kernel_paths"]) == {"fused_mt"}, (
                f"SLO-budgeted batches fell off the fused path: "
                f"{stats['kernel_paths']}"
            )

        # -- tiny deadline: degraded answer or queue-expiry, no error --
        conn = http.client.HTTPConnection(
            "127.0.0.1", background.port, timeout=60.0
        )
        status, body = post(conn, {
            "vector": queries[0].tolist(), "k": K, "ef": EF,
            "deadline_ms": 0.2,
        })
        assert status in (200, 504), (status, body)
        print(f"0.2ms deadline → {status} "
              f"({'degraded=' + str(body.get('degraded')) if status == 200 else 'expired in queue'})")

        # -- malformed request fails alone -----------------------------
        status, body = post(conn, {"vector": [1.0, 2.0]})
        assert status == 400 and "error" in body, (status, body)
        status, body = post(conn, {"vector": queries[0].tolist()})
        assert status == 200, (status, body)
        print("malformed request 400s; connection still serves")
        conn.close()

        # -- drain: new requests 503, then clean stop ------------------
        background.begin_drain()
        conn = http.client.HTTPConnection(
            "127.0.0.1", background.port, timeout=60.0
        )
        status, body = post(conn, {"vector": queries[0].tolist()})
        assert status == 503, (status, body)
        conn.request("GET", "/healthz")
        response = conn.getresponse()
        health = json.loads(response.read())
        assert response.status == 503 and health["status"] == "draining"
        conn.close()
        print("draining server 503s new requests")
    finally:
        background.stop()
    print("drained and stopped cleanly")
    print("serving smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
