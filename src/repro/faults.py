"""Deterministic fault injection for the resilience test suite.

Production failure modes — a corrupted index file, a worker thread
dying mid-batch, distance evaluations slowing down under memory
pressure — are rare and non-deterministic in the wild, which makes
"the query path survives them" an untestable claim unless the faults
can be *scheduled*.  This module provides two kinds of tooling:

* **corruption factories** (:func:`corrupt_adjacency`,
  :func:`corrupt_vectors`, :func:`truncate_file`) — pure, seeded
  functions that produce a damaged copy of a graph / dataset / index
  file, used to exercise :func:`repro.resilience.verify_index` and the
  :func:`repro.io.load_index` error paths;
* an **injection plan** (:class:`FaultPlan` + :func:`inject`) — a
  context manager that arms hooks consulted by the batched query
  engine (:func:`repro.batch.search_batch`), the search context, and
  the sharded scatter–gather layer (:mod:`repro.sharding`): raise in
  chosen worker chunks or for chosen query indexes, delay every bulk
  distance evaluation by a fixed amount (which makes deadline budgets
  testable without timing races), kill or slow individual shards
  (:meth:`FaultPlan.fail_shard` / :meth:`FaultPlan.slow_shard`), or
  abort a sharded save at a chosen commit stage
  (:meth:`FaultPlan.fail_save_stage`) to prove the atomic-rename
  manifest property.

When no plan is armed the hooks are a single ``is None`` check — the
hot path stays bit-identical and effectively free.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "inject",
    "active",
    "corrupt_adjacency",
    "corrupt_vectors",
    "corrupt_shard_file",
    "truncate_file",
]


class InjectedFault(RuntimeError):
    """The exception an armed :class:`FaultPlan` raises by default."""


@dataclass
class FaultPlan:
    """A deterministic schedule of failures.

    ``fail_workers`` names worker indexes whose first chunk attempt
    raises (exercising the chunk-retry path); ``fail_queries`` names
    query indexes that raise every time they are searched (exercising
    per-query error reporting, since the retry hits them again);
    ``distance_delay_s`` sleeps before every bulk distance evaluation
    routed through a :class:`~repro.components.context.SearchContext`.

    Shard-targeted faults compose with the rest of the plan and are
    consulted by :mod:`repro.sharding` at the start of every per-shard
    search task: :meth:`fail_shard` makes a shard raise on every
    attempt (exercising quarantine + partial-result degradation),
    :meth:`slow_shard` delays it (exercising shard timeouts and hedged
    replicas), and :meth:`fail_save_stage` aborts
    :func:`repro.io.save_sharded` right before a named commit rename
    (simulating a crash mid-save).  All three are chainable builders::

        plan = FaultPlan().fail_shard(1).slow_shard(2, 0.05, replica=0)
    """

    fail_workers: frozenset[int] = frozenset()
    fail_queries: frozenset[int] = frozenset()
    distance_delay_s: float = 0.0
    exc_type: type = InjectedFault
    #: workers that already raised once (chunk faults are transient:
    #: the retry succeeds, like a worker that died and was replaced)
    tripped_workers: set[int] = field(default_factory=set)
    #: (shard, replica-or-None) pairs whose search raises every attempt
    fail_shards: set = field(default_factory=set)
    #: (shard, replica-or-None) -> seconds slept before the shard search
    slow_shards: dict = field(default_factory=dict)
    #: save stages aborted right before their atomic rename; stage names
    #: are "shard_commit:<i>", "meta_commit" and "manifest_commit"
    fail_save_stages: set = field(default_factory=set)
    #: optional callable ``hook(stage, tmp_path)`` run before each save
    #: commit — lets a test corrupt the temp file a simulated crash
    #: leaves behind (e.g. with :func:`truncate_file`)
    save_stage_hook: object = None
    #: consolidation stages aborted mid-flight; "build" fires before the
    #: rebuild starts, "swap" after it, right before the snapshot swap
    fail_consolidate_stages: set = field(default_factory=set)

    def fail_shard(self, shard: int, replica: int | None = None) -> "FaultPlan":
        """Make shard ``shard`` (one replica, or all when ``None``)
        raise on every search attempt.  Returns ``self`` (chainable)."""
        self.fail_shards.add((int(shard), replica))
        return self

    def slow_shard(
        self, shard: int, delay_s: float, replica: int | None = None
    ) -> "FaultPlan":
        """Delay shard ``shard`` by ``delay_s`` before every search
        attempt (one replica, or all when ``None``).  Chainable."""
        self.slow_shards[(int(shard), replica)] = float(delay_s)
        return self

    def fail_save_stage(self, stage: str = "manifest_commit") -> "FaultPlan":
        """Abort a sharded save right before ``stage``'s atomic rename,
        as a crash at that instant would.  Chainable."""
        self.fail_save_stages.add(stage)
        return self

    def fail_consolidation(self, stage: str = "swap") -> "FaultPlan":
        """Abort a delta consolidation at ``stage`` ("build": before the
        rebuild; "swap": after the rebuild, right before the new
        snapshot is installed).  The previous snapshot must remain live
        and searchable either way.  Chainable."""
        self.fail_consolidate_stages.add(stage)
        return self

    def before_chunk(self, worker_index: int) -> None:
        if worker_index in self.fail_workers and worker_index not in self.tripped_workers:
            self.tripped_workers.add(worker_index)
            raise self.exc_type(f"injected fault in worker {worker_index}")

    def before_query(self, query_index: int) -> None:
        if query_index in self.fail_queries:
            raise self.exc_type(f"injected fault for query {query_index}")

    def before_distances(self) -> None:
        if self.distance_delay_s > 0.0:
            time.sleep(self.distance_delay_s)

    def before_shard(self, shard: int, replica: int = 0) -> None:
        """Hook run at the start of every per-shard search task."""
        delay = self.slow_shards.get((shard, replica))
        if delay is None:
            delay = self.slow_shards.get((shard, None))
        if delay:
            time.sleep(delay)
        if (shard, replica) in self.fail_shards or (shard, None) in self.fail_shards:
            raise self.exc_type(
                f"injected fault in shard {shard} (replica {replica})"
            )

    def before_save_commit(self, stage: str, tmp_path) -> None:
        """Hook run after a temp file is fully written, right before its
        atomic rename; raising here models a crash mid-save."""
        hook = self.save_stage_hook
        if hook is not None:
            hook(stage, tmp_path)
        if stage in self.fail_save_stages:
            raise self.exc_type(f"injected crash before {stage} rename")

    def before_consolidate(self, stage: str) -> None:
        """Hook run at consolidation checkpoints; raising here models a
        crash mid-consolidation (the old snapshot must survive it)."""
        if stage in self.fail_consolidate_stages:
            raise self.exc_type(
                f"injected crash during consolidation ({stage})"
            )


_ACTIVE: FaultPlan | None = None


def active() -> FaultPlan | None:
    """The currently armed plan, or ``None`` (the production state)."""
    return _ACTIVE


@contextmanager
def inject(plan: FaultPlan):
    """Arm ``plan`` for the duration of the ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


# -- corruption factories ----------------------------------------------


def corrupt_adjacency(
    graph: Graph,
    seed: int = 0,
    n_edges: int = 4,
    mode: str = "out_of_range",
) -> Graph:
    """A copy of ``graph`` with ``n_edges`` randomly chosen CSR slots
    damaged.

    ``mode="out_of_range"`` rewrites neighbor ids to ``>= n`` (the
    classic torn-write corruption); ``mode="self_loop"`` points edges
    back at their source vertex; ``mode="negative"`` writes ``-1``.
    The copy bypasses :meth:`Graph.from_csr` validation on purpose —
    it exists to be caught by ``verify_index``.
    """
    indptr, indices = graph.csr()
    indptr = indptr.copy()
    indices = indices.copy()
    if len(indices) == 0:
        return Graph.from_csr(indptr, indices)
    rng = np.random.default_rng(seed)
    slots = rng.choice(len(indices), size=min(n_edges, len(indices)), replace=False)
    if mode == "out_of_range":
        indices[slots] = graph.n + rng.integers(0, 1000, size=len(slots))
    elif mode == "negative":
        indices[slots] = -1
    elif mode == "self_loop":
        owner = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(indptr))
        indices[slots] = owner[slots]
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return Graph.from_csr(indptr, indices, validate=False)


def corrupt_vectors(
    data: np.ndarray,
    seed: int = 0,
    n_rows: int = 2,
    kind: str = "nan",
) -> np.ndarray:
    """A copy of ``data`` with ``n_rows`` rows poisoned by NaN or Inf."""
    out = np.array(data, copy=True)
    rng = np.random.default_rng(seed)
    rows = rng.choice(len(out), size=min(n_rows, len(out)), replace=False)
    out[rows] = np.nan if kind == "nan" else np.inf
    return out


def corrupt_shard_file(
    manifest_path, shard: int, seed: int = 0, n_bytes: int = 16
) -> Path:
    """Flip ``n_bytes`` deterministic bytes inside one shard member of a
    sharded manifest (see :func:`repro.io.save_sharded`), so its sha256
    no longer matches the manifest — the torn-replication corruption
    :func:`repro.io.load_sharded` must catch.  Returns the damaged
    member's path.
    """
    import json

    manifest_path = Path(manifest_path)
    spec = json.loads(manifest_path.read_text())
    entry = spec["shards"][shard]
    member = manifest_path.parent / entry["file"]
    size = member.stat().st_size
    rng = np.random.default_rng(seed)
    # skip the zip header so the damage reads as payload corruption,
    # not an unopenable archive (both must be caught either way)
    offsets = rng.integers(min(64, size - 1), size, size=min(n_bytes, size))
    with open(member, "r+b") as handle:
        for offset in sorted(set(int(o) for o in offsets)):
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
    return member


def truncate_file(path, keep_fraction: float = 0.5) -> int:
    """Truncate a file in place to ``keep_fraction`` of its bytes
    (simulating a torn write / partial upload).  Returns the new size."""
    path = Path(path)
    size = path.stat().st_size
    keep = int(size * keep_fraction)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep
