"""Deterministic fault injection for the resilience test suite.

Production failure modes — a corrupted index file, a worker thread
dying mid-batch, distance evaluations slowing down under memory
pressure — are rare and non-deterministic in the wild, which makes
"the query path survives them" an untestable claim unless the faults
can be *scheduled*.  This module provides two kinds of tooling:

* **corruption factories** (:func:`corrupt_adjacency`,
  :func:`corrupt_vectors`, :func:`truncate_file`) — pure, seeded
  functions that produce a damaged copy of a graph / dataset / index
  file, used to exercise :func:`repro.resilience.verify_index` and the
  :func:`repro.io.load_index` error paths;
* an **injection plan** (:class:`FaultPlan` + :func:`inject`) — a
  context manager that arms hooks consulted by the batched query
  engine (:func:`repro.batch.search_batch`) and the search context:
  raise in chosen worker chunks or for chosen query indexes, or delay
  every bulk distance evaluation by a fixed amount (which makes
  deadline budgets testable without timing races).

When no plan is armed the hooks are a single ``is None`` check — the
hot path stays bit-identical and effectively free.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "inject",
    "active",
    "corrupt_adjacency",
    "corrupt_vectors",
    "truncate_file",
]


class InjectedFault(RuntimeError):
    """The exception an armed :class:`FaultPlan` raises by default."""


@dataclass
class FaultPlan:
    """A deterministic schedule of failures.

    ``fail_workers`` names worker indexes whose first chunk attempt
    raises (exercising the chunk-retry path); ``fail_queries`` names
    query indexes that raise every time they are searched (exercising
    per-query error reporting, since the retry hits them again);
    ``distance_delay_s`` sleeps before every bulk distance evaluation
    routed through a :class:`~repro.components.context.SearchContext`.
    """

    fail_workers: frozenset[int] = frozenset()
    fail_queries: frozenset[int] = frozenset()
    distance_delay_s: float = 0.0
    exc_type: type = InjectedFault
    #: workers that already raised once (chunk faults are transient:
    #: the retry succeeds, like a worker that died and was replaced)
    tripped_workers: set[int] = field(default_factory=set)

    def before_chunk(self, worker_index: int) -> None:
        if worker_index in self.fail_workers and worker_index not in self.tripped_workers:
            self.tripped_workers.add(worker_index)
            raise self.exc_type(f"injected fault in worker {worker_index}")

    def before_query(self, query_index: int) -> None:
        if query_index in self.fail_queries:
            raise self.exc_type(f"injected fault for query {query_index}")

    def before_distances(self) -> None:
        if self.distance_delay_s > 0.0:
            time.sleep(self.distance_delay_s)


_ACTIVE: FaultPlan | None = None


def active() -> FaultPlan | None:
    """The currently armed plan, or ``None`` (the production state)."""
    return _ACTIVE


@contextmanager
def inject(plan: FaultPlan):
    """Arm ``plan`` for the duration of the ``with`` block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


# -- corruption factories ----------------------------------------------


def corrupt_adjacency(
    graph: Graph,
    seed: int = 0,
    n_edges: int = 4,
    mode: str = "out_of_range",
) -> Graph:
    """A copy of ``graph`` with ``n_edges`` randomly chosen CSR slots
    damaged.

    ``mode="out_of_range"`` rewrites neighbor ids to ``>= n`` (the
    classic torn-write corruption); ``mode="self_loop"`` points edges
    back at their source vertex; ``mode="negative"`` writes ``-1``.
    The copy bypasses :meth:`Graph.from_csr` validation on purpose —
    it exists to be caught by ``verify_index``.
    """
    indptr, indices = graph.csr()
    indptr = indptr.copy()
    indices = indices.copy()
    if len(indices) == 0:
        return Graph.from_csr(indptr, indices)
    rng = np.random.default_rng(seed)
    slots = rng.choice(len(indices), size=min(n_edges, len(indices)), replace=False)
    if mode == "out_of_range":
        indices[slots] = graph.n + rng.integers(0, 1000, size=len(slots))
    elif mode == "negative":
        indices[slots] = -1
    elif mode == "self_loop":
        owner = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(indptr))
        indices[slots] = owner[slots]
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return Graph.from_csr(indptr, indices, validate=False)


def corrupt_vectors(
    data: np.ndarray,
    seed: int = 0,
    n_rows: int = 2,
    kind: str = "nan",
) -> np.ndarray:
    """A copy of ``data`` with ``n_rows`` rows poisoned by NaN or Inf."""
    out = np.array(data, copy=True)
    rng = np.random.default_rng(seed)
    rows = rng.choice(len(out), size=min(n_rows, len(out)), replace=False)
    out[rows] = np.nan if kind == "nan" else np.inf
    return out


def truncate_file(path, keep_fraction: float = 0.5) -> int:
    """Truncate a file in place to ``keep_fraction`` of its bytes
    (simulating a torn write / partial upload).  Returns the new size."""
    path = Path(path)
    size = path.stat().st_size
    keep = int(size * keep_fraction)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep
