"""Dependency-free ASCII plots for tradeoff curves.

The survey's headline artifacts are QPS/Speedup-vs-Recall curves
(Figures 7/8/20/21).  This module renders such curves directly in the
terminal so examples and benchmark reports can *show* the tradeoff
without any plotting dependency.
"""

from __future__ import annotations

import math

__all__ = ["ascii_plot", "plot_tradeoff_curves"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    log_y: bool = False,
) -> str:
    """Render named (x, y) series into an ASCII grid.

    Returns the plot as a string (print it yourself); one marker letter
    per series, legend appended.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [math.log10(max(p[1], 1e-12)) if log_y else p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), _MARKERS):
        for x, y in pts:
            y_val = math.log10(max(y, 1e-12)) if log_y else y
            col = int((x - x_lo) / x_span * (width - 1))
            row = (height - 1) - int((y_val - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    y_hi_label = f"10^{y_hi:.1f}" if log_y else f"{y_hi:.3g}"
    y_lo_label = f"10^{y_lo:.1f}" if log_y else f"{y_lo:.3g}"
    lines = [f"{y_label} (top={y_hi_label}, bottom={y_lo_label})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:.3g} .. {x_hi:.3g}")
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def plot_tradeoff_curves(
    curves: dict[str, list],
    metric: str = "speedup",
    width: int = 64,
    height: int = 18,
) -> str:
    """Plot SweepPoint curves (from :func:`sweep_recall_curve`).

    ``metric`` is ``"speedup"`` or ``"qps"`` — the y-axis of Figure 8 or
    Figure 7 respectively; x is always Recall@k.
    """
    if metric not in ("speedup", "qps"):
        raise ValueError(f"metric must be 'speedup' or 'qps', got {metric!r}")
    series = {
        name: [(point.recall, getattr(point, metric)) for point in points]
        for name, points in curves.items()
    }
    return ascii_plot(
        series,
        width=width,
        height=height,
        x_label="Recall@10",
        y_label=metric,
        log_y=True,
    )
