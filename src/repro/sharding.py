"""Sharded scatter–gather index: horizontal scale that fails gracefully.

A dataset that outgrows one graph is partitioned with balanced k-means
into ``S`` shards, each a full :class:`~repro.algorithms.base.GraphANNS`
index over its own slice of the points.  A query is routed to the
``P`` shards whose centroids are closest (*fan-out*), searched on each
in parallel — the multi-threaded batch kernel keeps working inside
every shard — and the per-shard top-k lists are merged in the global
id space.  ParlayANN shows partitioned graph ANNS can stay
deterministic at scale; the merge here is a stable ``(distance, id)``
sort over fixed per-shard result slots, so the answer is bit-identical
at any shard thread count, and a single-shard index answers exactly
like the unsharded path (same ids, same NDC).

The robustness core — the reason this layer exists — is that a query
must return its best-effort top-k even when a shard is corrupt, slow,
or gone:

* **per-shard budgets** — a :class:`~repro.resilience.QueryBudget` is
  sliced across the fan-out (each shard gets an even share of
  ``max_ndc``; deadlines and hop caps apply per shard), and each
  shard's :class:`~repro.resilience.BudgetReport` survives in the
  :class:`ShardReport`;
* **fault isolation** — a shard that raises, exceeds
  ``shard_timeout_s``, or failed checksum verification at load is
  *quarantined*: the query merges the survivors, returns
  ``degraded=True``, and the :class:`ShardReport` names who answered
  and who did not.  No exception escapes the scatter–gather path;
* **hedged replicas** — :meth:`ShardedIndex.replicate` registers ``R``
  replicas per shard (clones sharing the immutable graph/vectors, each
  with private search scratch).  A hedge fires the same request on a
  second replica once the primary exceeds a latency percentile; the
  first success wins and the loser is discarded.  Replicas search from
  the *same* seeds (acquired once per query), so the result is
  bit-identical whether or not the hedge fires.

Persistence lives in :func:`repro.io.save_sharded` /
:func:`repro.io.load_sharded`: a JSON manifest of per-shard index
files with per-member sha256 checksums, committed by atomic rename so
a crashed save never clobbers a loadable index.
"""

from __future__ import annotations

import copy
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field

import numpy as np

from repro import faults
from repro import observability as obs
from repro.algorithms import create
from repro.components.routing import SearchResult
from repro.distance import DistanceCounter, l2_batch, pairwise_l2
from repro.resilience import (
    InvalidQueryError,
    QueryBudget,
    validate_query,
    verify_index,
)

__all__ = [
    "ShardReport",
    "ShardedSearchResult",
    "ShardedIndex",
    "kmeans_partition",
    "slice_budget",
]


# -- partitioning -------------------------------------------------------


def kmeans_partition(
    data: np.ndarray,
    num_shards: int,
    seed: int = 0,
    iterations: int = 8,
    balance_slack: float = 1.25,
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic balanced k-means partition of ``data``.

    Lloyd iterations with a capacity cap of ``balance_slack * n/k``
    points per shard (the greedy confidence-ordered assignment of
    :class:`~repro.trees.kmeans_tree.BalancedKMeansTree`), so no shard
    can degenerate to a sliver that routing would never pick or a giant
    that defeats the partitioning.  Returns ``(assign, centroids)``
    with ``assign[i]`` the shard of point ``i`` and float32 centroids.
    """
    n = len(data)
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if n < 2 * num_shards:
        raise ValueError(
            f"cannot cut {n} points into {num_shards} shards of >= 2 points"
        )
    if num_shards == 1:
        centroid = np.asarray(data, dtype=np.float64).mean(axis=0)
        return (np.zeros(n, dtype=np.int64),
                centroid[None, :].astype(np.float32))
    rng = np.random.default_rng(seed)
    points = np.asarray(data, dtype=np.float64)
    centroids = points[rng.choice(n, size=num_shards, replace=False)].copy()
    cap = max(2, int(np.ceil(balance_slack * n / num_shards)))
    assign = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        dists = pairwise_l2(points, centroids)
        pref = np.argsort(dists, axis=1, kind="stable")
        counts = np.zeros(num_shards, dtype=np.int64)
        order = np.argsort(
            dists[np.arange(n), pref[:, 0]], kind="stable"
        )
        for row in order:
            for choice in pref[row]:
                if counts[choice] < cap:
                    assign[row] = choice
                    counts[choice] += 1
                    break
        for c in range(num_shards):
            members = points[assign == c]
            if len(members):
                centroids[c] = members.mean(axis=0)
    counts = np.bincount(assign, minlength=num_shards)
    if counts.min() < 2:
        # degenerate data (duplicates): deterministic contiguous split
        assign = np.zeros(n, dtype=np.int64)
        for s, chunk in enumerate(np.array_split(np.arange(n), num_shards)):
            assign[chunk] = s
        for c in range(num_shards):
            centroids[c] = points[assign == c].mean(axis=0)
    return assign, centroids.astype(np.float32)


def slice_budget(budget: QueryBudget | None, fanout: int) -> QueryBudget | None:
    """The per-shard slice of a query budget: ``max_ndc`` is split
    evenly across the fan-out (so the shards' combined spend respects
    the cap); deadlines and hop caps apply to each shard as-is, since
    the shards run concurrently."""
    if budget is None or budget.max_ndc is None or fanout <= 1:
        return budget
    from dataclasses import replace

    return replace(budget, max_ndc=max(1, budget.max_ndc // fanout))


# -- reports ------------------------------------------------------------


@dataclass
class ShardReport:
    """Who answered a scatter–gather query, and at what cost.

    ``quarantined`` holds ``(shard, reason)`` pairs for shards that
    raised, timed out, or were already quarantined at load; the merged
    result covers only ``survivors``.  ``budgets`` maps a shard id to
    the :class:`~repro.resilience.BudgetReport` of its budget-degraded
    sub-search.  ``routing_ndc`` is the centroid-routing cost (zero for
    a single-shard index, where there is no routing decision to make).
    """

    fanout: int
    shards_queried: tuple = ()
    survivors: tuple = ()
    quarantined: tuple = ()          # ((shard, reason), ...)
    hedges_fired: int = 0
    hedge_wins: int = 0
    routing_ndc: int = 0
    per_shard_ndc: dict = field(default_factory=dict)
    budgets: dict = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """Whether every queried shard contributed to the merge."""
        return not self.quarantined


@dataclass
class ShardedSearchResult(SearchResult):
    """A :class:`SearchResult` plus the scatter–gather telemetry."""

    shard_report: ShardReport | None = None


class _LatencyTracker:
    """Pooled per-shard latency samples driving the hedge trigger."""

    def __init__(self, maxlen: int = 128):
        self._samples: deque = deque(maxlen=maxlen)

    def observe(self, seconds: float) -> None:
        self._samples.append(seconds)

    def hedge_delay(self, percentile: float = 95.0,
                    floor_s: float = 1e-3, default_s: float = 0.01) -> float:
        if not self._samples:
            return default_s
        return max(float(np.percentile(list(self._samples), percentile)),
                   floor_s)


# -- the index ----------------------------------------------------------


class ShardedIndex:
    """``S`` independent graph indexes behind one scatter–gather front.

    Build with :meth:`build`, or restore with
    :func:`repro.io.load_sharded`.  ``shards[s]`` is ``None`` while
    shard ``s`` is quarantined (a load-time checksum failure in repair
    mode, or :meth:`verify` with ``quarantine=True``); live queries
    skip it and report it in their :class:`ShardReport`.
    """

    def __init__(
        self,
        shards: list,
        shard_ids: list,
        centroids: np.ndarray,
        algorithm: str = "?",
        seed: int = 0,
        quarantined: dict | None = None,
    ):
        if len(shards) != len(shard_ids) or len(shards) != len(centroids):
            raise ValueError(
                f"{len(shards)} shards, {len(shard_ids)} id maps and "
                f"{len(centroids)} centroids do not line up"
            )
        self.shards = list(shards)
        self.shard_ids = [np.asarray(ids, dtype=np.int64) for ids in shard_ids]
        self.centroids = np.ascontiguousarray(centroids, dtype=np.float32)
        self.algorithm = algorithm
        self.seed = seed
        #: shard -> reason, for shards dropped at load/verify time
        self.quarantined: dict[int, str] = dict(quarantined or {})
        for s in self.quarantined:
            self.shards[s] = None
        #: per-shard replica sets; replica 0 is the shard itself
        self.replicas: list[list] = [
            [shard] if shard is not None else [] for shard in self.shards
        ]
        self._latency = _LatencyTracker()
        self._log = obs.get_logger("repro.sharding")
        # next global id for insert(); resolved lazily from the id maps
        self._next_gid: int | None = None

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        data: np.ndarray,
        num_shards: int,
        algorithm: str = "nsg",
        seed: int = 0,
        n_workers: int = 1,
        kmeans_iterations: int = 8,
    ) -> "ShardedIndex":
        """Partition ``data`` into ``num_shards`` and build one
        ``algorithm`` index per shard (every shard uses ``seed``, so a
        single-shard build is the unsharded build verbatim)."""
        data = np.ascontiguousarray(data, dtype=np.float32)
        assign, centroids = kmeans_partition(
            data, num_shards, seed=seed, iterations=kmeans_iterations
        )
        shards, shard_ids = [], []
        started = time.perf_counter()
        for s in range(num_shards):
            ids = np.flatnonzero(assign == s).astype(np.int64)
            shard = create(algorithm, seed=seed)
            shard.build(data[ids], n_workers=n_workers)
            shards.append(shard)
            shard_ids.append(ids)
        index = cls(shards, shard_ids, centroids,
                    algorithm=algorithm, seed=seed)
        if obs.enabled():
            obs.record_span(
                "build_sharded", time.perf_counter() - started,
                algorithm=algorithm, n=len(data), num_shards=num_shards,
            )
        return index

    # -- bookkeeping -----------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def num_points(self) -> int:
        return int(sum(len(ids) for ids in self.shard_ids))

    @property
    def dim(self) -> int:
        return int(self.centroids.shape[1])

    @property
    def alive_shards(self) -> list[int]:
        return [s for s, shard in enumerate(self.shards) if shard is not None]

    def index_size_bytes(self) -> int:
        return int(sum(
            shard.index_size_bytes() for shard in self.shards
            if shard is not None
        )) + self.centroids.nbytes

    def replicate(self, factor: int = 2) -> None:
        """Register ``factor`` replicas per shard for hedged fan-out.

        Replicas are shallow clones: they share the frozen graph, the
        vectors and the tombstones (all read-only during search) but
        own their search scratch, so a hedge can run the same shard
        concurrently with its primary.  With ``factor=1`` hedging is
        disabled again.
        """
        if factor < 1:
            raise ValueError(f"replica factor must be >= 1, got {factor}")
        for s, shard in enumerate(self.shards):
            if shard is None:
                continue
            reps = [shard]
            for _ in range(1, factor):
                clone = copy.copy(shard)
                clone._search_ctx = None  # private scratch per replica
                reps.append(clone)
            self.replicas[s] = reps

    def quarantine(self, shard: int, reason: str) -> None:
        """Permanently drop ``shard`` from the serving set."""
        if not 0 <= shard < len(self.shards):
            raise IndexError(f"shard {shard} out of range")
        self.shards[shard] = None
        self.replicas[shard] = []
        self.quarantined[shard] = reason
        self._log.warning("shard.quarantine", shard=shard, reason=reason[:200])
        if obs.enabled():
            obs.instruments().shard_quarantines_total.inc()

    def verify(self, repair: bool = False, quarantine: bool = True) -> dict:
        """Run :func:`~repro.resilience.verify_index` on every live
        shard.  Shards whose issues survive (after repair, if asked)
        are quarantined when ``quarantine=True`` instead of raising.
        Returns ``{shard: IntegrityReport}``."""
        reports = {}
        for s in self.alive_shards:
            report = verify_index(self.shards[s], repair=repair, strict=False)
            reports[s] = report
            if not report.ok and quarantine:
                self.quarantine(
                    s, "integrity: " + "; ".join(report.issues)[:300]
                )
        return reports

    def _require_shards(self) -> None:
        if not any(shard is not None for shard in self.shards):
            raise RuntimeError(
                "every shard is quarantined; nothing can answer queries"
            )

    # -- updates (Table 7 scenario S1) -----------------------------------

    def _refresh_replicas(self, s: int) -> None:
        """Re-clone shard ``s``'s hedged replicas after a mutation so
        they see the shard's current tiers (clones are shallow; a delta
        created after cloning would otherwise be invisible to them)."""
        reps = self.replicas[s]
        if len(reps) <= 1:
            return
        fresh = [self.shards[s]]
        for _ in range(1, len(reps)):
            clone = copy.copy(self.shards[s])
            clone._search_ctx = None
            fresh.append(clone)
        self.replicas[s] = fresh

    def _next_global_id(self) -> int:
        if self._next_gid is None:
            self._next_gid = int(max(
                (int(ids.max()) for ids in self.shard_ids if len(ids)),
                default=-1,
            )) + 1
        gid = self._next_gid
        self._next_gid += 1
        return gid

    def insert(self, vector: np.ndarray) -> int:
        """Insert one point, routed to the alive shard whose centroid is
        nearest (ties break toward the lower shard id — the same rule
        query routing uses).  Returns the point's *global* id.  The
        shard absorbs it natively (NSW/HNSW) or through its delta tier,
        so every algorithm is insertable behind the sharded front."""
        self._require_shards()
        reason = validate_query(vector, self.dim)
        if reason is not None:
            raise InvalidQueryError(
                f"sharded[{self.algorithm}]: cannot insert: {reason}"
            )
        vector = np.ascontiguousarray(vector, dtype=np.float32)
        alive = self.alive_shards
        if len(alive) == 1:
            s = alive[0]
        else:
            dists = l2_batch(vector.astype(np.float64), self.centroids[alive])
            s = alive[int(np.argmin(dists))]
        gid = self._next_global_id()
        # the shard's new local id is its current point count, which by
        # invariant equals len(shard_ids[s]) — appending gid keeps the
        # local -> global map aligned
        self.shards[s].insert(vector)
        self.shard_ids[s] = np.append(self.shard_ids[s], gid)
        self._refresh_replicas(s)
        return gid

    def delete(self, global_id: int) -> None:
        """Tombstone ``global_id`` on its owning shard (the one whose
        id map holds it)."""
        self._require_shards()
        gid = int(global_id)
        for s in self.alive_shards:
            local = np.flatnonzero(self.shard_ids[s] == gid)
            if len(local):
                self.shards[s].delete(int(local[0]))
                return
        raise IndexError(f"global id {gid} not found in any alive shard")

    def consolidate(self, wait: bool = True) -> dict:
        """Consolidate every alive shard carrying a non-empty delta;
        returns ``{shard: ConsolidationReport-or-Thread}``."""
        reports = {}
        for s in self.alive_shards:
            shard = self.shards[s]
            if getattr(shard, "delta_points", 0):
                reports[s] = shard.consolidate(wait=wait)
                if wait:
                    self._refresh_replicas(s)
        return reports

    @property
    def delta_points(self) -> int:
        """Unconsolidated inserts across all alive shards."""
        return int(sum(
            getattr(shard, "delta_points", 0)
            for shard in self.shards if shard is not None
        ))

    def _route_query(
        self, query: np.ndarray, fanout: int | None
    ) -> tuple[list[int], int]:
        """Top-``fanout`` alive shards by centroid distance (ties break
        toward the lower shard id).  Returns ``(chosen, routing_ndc)``;
        a single alive shard needs no routing decision and charges 0."""
        alive = self.alive_shards
        if len(alive) <= 1:
            return alive, 0
        fanout = len(alive) if fanout is None else max(1, min(fanout, len(alive)))
        dists = l2_batch(query.astype(np.float64), self.centroids[alive])
        order = np.argsort(dists, kind="stable")[:fanout]
        return [alive[int(i)] for i in order], len(alive)

    # -- single-query scatter–gather ------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int = 10,
        ef: int | None = None,
        fanout: int | None = None,
        budget: QueryBudget | None = None,
        shard_timeout_s: float | None = None,
        hedge: bool | None = None,
        hedge_after_s: float | None = None,
    ) -> ShardedSearchResult:
        """Best-effort top-k over the ``fanout`` closest shards.

        Every per-shard failure mode — an exception, a shard slower
        than ``shard_timeout_s``, a quarantine that predates the query
        — degrades the result instead of raising: the survivors are
        merged, ``degraded=True`` is set, and ``result.shard_report``
        names who was dropped and why.  ``hedge`` (default: on whenever
        :meth:`replicate` registered replicas) fires a second replica
        of a shard that exceeds ``hedge_after_s`` (default: the p95 of
        recent shard latencies); both replicas search from the same
        seeds, so the ids are identical either way.
        """
        self._require_shards()
        reason = validate_query(query, self.dim)
        if reason is not None:
            raise InvalidQueryError(f"sharded[{self.algorithm}]: {reason}")
        query = np.asarray(query, dtype=np.float32)
        started = time.perf_counter()
        chosen, routing_ndc = self._route_query(query, fanout)
        shard_budget = slice_budget(budget, len(chosen))
        hedging = (
            any(len(self.replicas[s]) > 1 for s in chosen)
            if hedge is None else bool(hedge)
        )
        plan = faults.active()

        # Seeds are acquired once per shard, up front: hedged replicas
        # must walk from identical entry points, and the acquisition
        # NDC must be charged exactly once however many replicas run.
        seeds: dict[int, np.ndarray] = {}
        acq_ndc: dict[int, int] = {}
        quarantined: list[tuple[int, str]] = []
        runnable: list[int] = []
        for s in chosen:
            counter = DistanceCounter()
            try:
                seeds[s] = np.asarray(
                    self.shards[s].seed_provider.acquire(query, counter),
                    dtype=np.int64,
                )
            except Exception as exc:  # noqa: BLE001 - isolate the shard
                quarantined.append((s, f"{type(exc).__name__}: {exc}"))
                continue
            acq_ndc[s] = counter.count
            runnable.append(s)

        def run_replica(s: int, replica: int):
            if plan is not None:
                plan.before_shard(s, replica)
            t0 = time.perf_counter()
            result = self.replicas[s][replica].search(
                query, k=k, ef=ef,
                budget=(
                    None if shard_budget is None
                    else shard_budget.after_spending(acq_ndc[s])
                ),
                seeds=seeds[s],
            )
            self._latency.observe(time.perf_counter() - t0)
            return result

        results: dict[int, SearchResult] = {}
        hedges_fired = 0
        hedge_wins = 0
        if runnable:
            width = len(runnable) * (2 if hedging else 1)
            pool = ThreadPoolExecutor(max_workers=width)
            try:
                futures = {
                    s: [(0, pool.submit(run_replica, s, 0))] for s in runnable
                }
                if hedging:
                    delay = (
                        self._latency.hedge_delay()
                        if hedge_after_s is None else float(hedge_after_s)
                    )
                    primaries = [fs[0][1] for fs in futures.values()]
                    done, _ = wait(primaries, timeout=delay)
                    for s in runnable:
                        if (futures[s][0][1] not in done
                                and len(self.replicas[s]) > 1):
                            futures[s].append(
                                (1, pool.submit(run_replica, s, 1))
                            )
                            hedges_fired += 1
                for s in runnable:
                    deadline = (
                        None if shard_timeout_s is None
                        else started + shard_timeout_s
                    )
                    pending = {f: rep for rep, f in futures[s]}
                    errors: list[str] = []
                    winner = None
                    while pending and winner is None:
                        timeout = (
                            None if deadline is None
                            else max(0.0, deadline - time.perf_counter())
                        )
                        done, _ = wait(
                            set(pending), timeout=timeout,
                            return_when=FIRST_COMPLETED,
                        )
                        if not done:
                            errors.append(
                                f"timeout after {shard_timeout_s:.3f}s"
                            )
                            break
                        for future in done:
                            rep = pending.pop(future)
                            try:
                                result = future.result()
                            except Exception as exc:  # noqa: BLE001
                                errors.append(
                                    f"{type(exc).__name__}: {exc}"
                                )
                                continue
                            if winner is None:
                                winner = result
                                if rep > 0:
                                    hedge_wins += 1
                    if winner is not None:
                        results[s] = winner
                    else:
                        quarantined.append(
                            (s, "; ".join(errors) or "no replica answered")
                        )
            finally:
                pool.shutdown(wait=False, cancel_futures=True)

        merged = self._merge_single(results, k)
        survivors = tuple(s for s in chosen if s in results)
        # shards quarantined before this query (load-time checksum
        # failures, verify) also mean incomplete coverage: report them
        persistent = tuple(sorted(self.quarantined.items()))
        report = ShardReport(
            fanout=len(chosen),
            shards_queried=tuple(chosen),
            survivors=survivors,
            quarantined=persistent + tuple(quarantined),
            hedges_fired=hedges_fired,
            hedge_wins=hedge_wins,
            routing_ndc=routing_ndc,
            per_shard_ndc={
                s: acq_ndc[s] + results[s].ndc for s in survivors
            },
            budgets={
                s: results[s].budget for s in survivors
                if results[s].degraded and results[s].budget is not None
            },
        )
        degraded = bool(persistent) or bool(quarantined) or any(
            results[s].degraded for s in survivors
        )
        out = ShardedSearchResult(
            ids=merged[0],
            dists=merged[1],
            ndc=routing_ndc + sum(report.per_shard_ndc.values()),
            hops=int(sum(results[s].hops for s in survivors)),
            visited=int(sum(results[s].visited for s in survivors)),
            degraded=degraded,
            shard_report=report,
        )
        self._observe(report, degraded, time.perf_counter() - started, 1)
        for s, reason in quarantined:
            self._log.warning("shard.dropped", shard=s, reason=reason[:200])
        return out

    def _merge_single(
        self, results: dict[int, SearchResult], k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Merge per-shard top-k lists into global-id top-k.

        A lone survivor's rows pass through untouched (bit-identical to
        the unsharded search); multiple survivors merge under a stable
        ``(distance, global id)`` sort, which no shard arrival order or
        thread count can perturb.
        """
        if not results:
            return np.empty(0, dtype=np.int64), np.empty(0)
        if len(results) == 1:
            ((s, result),) = results.items()
            return self.shard_ids[s][result.ids], result.dists
        gids = np.concatenate([
            self.shard_ids[s][result.ids] for s, result in sorted(results.items())
        ])
        dists = np.concatenate([
            result.dists for _, result in sorted(results.items())
        ])
        order = np.lexsort((gids, dists))[:k]
        return gids[order], dists[order]

    # -- batched scatter–gather -----------------------------------------

    def search_batch(
        self,
        queries: np.ndarray,
        k: int = 10,
        ef: int | None = None,
        workers: int = 1,
        fanout: int | None = None,
        budget=None,
        shard_timeout_s: float | None = None,
    ):
        """Batched scatter–gather: group the batch by shard, run one
        :func:`repro.batch.search_batch` per shard concurrently (the
        multi-threaded kernel with ``workers`` threads inside each),
        and merge per query.  Shard failures and timeouts degrade the
        affected queries (``result.degraded[i]``) instead of raising;
        ``result.shard_report`` summarizes the scatter.  A single-shard
        index is bit-identical to the unsharded ``search_batch``.

        ``budget`` may be one :class:`QueryBudget` for the whole batch
        or a sequence of ``QueryBudget | None``, one per query (the
        serving coalescer's shape — requests arrive with heterogeneous
        deadlines).  Each query's budget is sliced across its fan-out
        exactly as the scalar form is.
        """
        from repro.batch import BatchQueryResult, search_batch

        self._require_shards()
        try:
            queries = np.ascontiguousarray(queries, dtype=np.float32)
        except (TypeError, ValueError) as exc:
            raise InvalidQueryError(
                f"query batch is not numeric: {exc}"
            ) from None
        if queries.ndim != 2:
            raise ValueError(
                f"queries must be 2-D, got shape {queries.shape}"
            )
        if queries.shape[1] != self.dim:
            raise InvalidQueryError(
                f"dimension mismatch: index is {self.dim}-d, "
                f"queries are {queries.shape[1]}-d"
            )
        started = time.perf_counter()
        num_queries = len(queries)
        ids = np.full((num_queries, k), -1, dtype=np.int64)
        dists = np.full((num_queries, k), np.inf)
        ndc = np.zeros(num_queries, dtype=np.int64)
        hops = np.zeros(num_queries, dtype=np.int64)
        visited = np.zeros(num_queries, dtype=np.int64)
        errors: list = [None] * num_queries
        degraded = np.zeros(num_queries, dtype=bool)
        alive = self.alive_shards
        report = ShardReport(fanout=0, shards_queried=(), survivors=())
        if num_queries == 0:
            return BatchQueryResult(
                ids, dists, ndc, hops, visited, 0.0, workers,
                errors=errors, degraded=degraded, shard_report=report,
            )

        finite = np.isfinite(queries).all(axis=1)
        for i in np.flatnonzero(~finite):
            errors[i] = "query contains non-finite values (NaN/Inf)"
        finite_rows = np.flatnonzero(finite)

        # route every finite query to its top-P alive shards
        if len(alive) == 1:
            fan = 1
            routing_ndc = 0
            routes = {alive[0]: finite_rows}
        else:
            fan = len(alive) if fanout is None else max(1, min(fanout, len(alive)))
            routing_ndc = len(alive)
            cdists = pairwise_l2(
                queries[finite_rows].astype(np.float64),
                self.centroids[alive].astype(np.float64),
            )
            pick = np.argsort(cdists, axis=1, kind="stable")[:, :fan]
            routes = {}
            for s_pos in range(len(alive)):
                mask = (pick == s_pos).any(axis=1)
                rows = finite_rows[mask]
                if len(rows):
                    routes[alive[s_pos]] = rows
        ndc[finite_rows] = routing_ndc

        slice_fan = fan if len(alive) > 1 else 1
        if budget is None or isinstance(budget, QueryBudget):
            shard_budget = slice_budget(budget, slice_fan)
            per_query_budget = None
        else:
            budgets = list(budget)
            if len(budgets) != num_queries:
                raise ValueError(
                    f"budget sequence length {len(budgets)} != "
                    f"batch size {num_queries}"
                )
            shard_budget = None
            per_query_budget = [slice_budget(b, slice_fan) for b in budgets]
        plan = faults.active()
        quarantined: list[tuple[int, str]] = []
        shard_results: dict[int, tuple[np.ndarray, object]] = {}

        def run_shard(s: int, rows: np.ndarray):
            if plan is not None:
                plan.before_shard(s, 0)
            if per_query_budget is None:
                row_budget = shard_budget
            else:
                row_budget = [per_query_budget[int(i)] for i in rows]
            return search_batch(
                self.shards[s], queries[rows], k=k, ef=ef,
                workers=workers, budget=row_budget,
            )

        involved = sorted(routes)
        if involved:
            pool = ThreadPoolExecutor(max_workers=len(involved))
            try:
                futures = {
                    s: pool.submit(run_shard, s, routes[s]) for s in involved
                }
                for s in involved:
                    try:
                        shard_results[s] = (
                            routes[s], futures[s].result(timeout=shard_timeout_s)
                        )
                    except TimeoutError:
                        quarantined.append(
                            (s, f"timeout after {shard_timeout_s:.3f}s")
                        )
                    except Exception as exc:  # noqa: BLE001 - isolate
                        quarantined.append(
                            (s, f"{type(exc).__name__}: {exc}")
                        )
            finally:
                pool.shutdown(wait=False, cancel_futures=True)

        # queries whose shards all vanished stay -1/inf and degraded
        for s, _reason in quarantined:
            degraded[routes[s]] = True

        # gather: fixed per-shard slots, merged per query by (dist, id)
        per_query: dict[int, list] = {}
        for s in sorted(shard_results):
            rows, res = shard_results[s]
            gmap = self.shard_ids[s]
            for pos, i in enumerate(rows):
                if res.errors[pos] is not None:
                    degraded[i] = True
                    continue
                row_ids = res.ids[pos]
                keep = row_ids >= 0
                per_query.setdefault(int(i), []).append(
                    (gmap[row_ids[keep]], res.dists[pos][keep])
                )
                ndc[i] += int(res.ndc[pos])
                hops[i] += int(res.hops[pos])
                visited[i] += int(res.visited[pos])
                if res.degraded[pos]:
                    degraded[i] = True

        for i, parts in per_query.items():
            if len(parts) == 1:
                gids, gdists = parts[0]
            else:
                gids = np.concatenate([p[0] for p in parts])
                gdists = np.concatenate([p[1] for p in parts])
                order = np.lexsort((gids, gdists))
                gids, gdists = gids[order], gdists[order]
            m = min(k, len(gids))
            ids[i, :m] = gids[:m]
            dists[i, :m] = gdists[:m]

        for i in finite_rows:
            if int(i) not in per_query and errors[i] is None and degraded[i]:
                errors[i] = "no shard answered this query"

        persistent = tuple(sorted(self.quarantined.items()))
        if persistent:
            # incomplete coverage for the whole batch: some of the
            # dataset is behind shards that cannot answer
            degraded[finite_rows] = True
        survivors = tuple(s for s in involved if s in shard_results)
        report = ShardReport(
            fanout=fan,
            shards_queried=tuple(involved),
            survivors=survivors,
            quarantined=persistent + tuple(quarantined),
            routing_ndc=routing_ndc,
            per_shard_ndc={
                s: int(shard_results[s][1].ndc.sum()) for s in survivors
            },
        )
        elapsed = time.perf_counter() - started
        paths = {shard_results[s][1].kernel_path for s in survivors}
        kernel_path = (
            paths.pop() if len(paths) == 1
            else ("mixed" if paths else None)
        )
        result = BatchQueryResult(
            ids=ids, dists=dists, ndc=ndc, hops=hops, visited=visited,
            elapsed_s=elapsed, workers=workers, errors=errors,
            degraded=degraded, shard_report=report,
            kernel_path=kernel_path,
        )
        self._observe(report, bool(degraded.any()), elapsed, num_queries)
        for s, reason in quarantined:
            self._log.warning("shard.dropped", shard=s, reason=reason[:200])
        return result

    # -- observability ---------------------------------------------------

    def _observe(self, report: ShardReport, degraded: bool,
                 elapsed_s: float, num_queries: int) -> None:
        if not obs.enabled():
            return
        handles = obs.instruments()
        handles.sharded_queries_total.inc(num_queries)
        handles.shard_fanout.set(report.fanout)
        if report.quarantined:
            handles.shard_quarantines_total.inc(len(report.quarantined))
        if report.hedges_fired:
            handles.shard_hedge_fires_total.inc(report.hedges_fired)
        if report.hedge_wins:
            handles.shard_hedge_wins_total.inc(report.hedge_wins)
        if degraded:
            handles.sharded_degraded_total.inc()
        for s, shard_ndc in report.per_shard_ndc.items():
            handles.shard_ndc(s).observe(shard_ndc)
