"""repro — graph-based approximate nearest neighbor search.

A complete, from-scratch reproduction of *"A Comprehensive Survey and
Experimental Comparison of Graph-Based Approximate Nearest Neighbor
Search"* (Wang, Xu, Yue, Wang — VLDB 2021): the four base proximity
graphs, the 13 surveyed algorithms (plus k-DR and the paper's optimized
algorithm), the seven-component C1–C7 pipeline, the dataset suite, all
evaluation metrics, and one benchmark per table/figure.

Quickstart::

    from repro import create, load_dataset
    ds = load_dataset("sift1m", cardinality=2000)
    index = create("hnsw")
    index.build(ds.base)
    ids = index.search(ds.queries[0], k=10).ids
"""

from repro import observability
from repro.advisor import Scenario, recommend, recommend_for_data
from repro.algorithms import ALGORITHMS, ALL_ALGORITHMS, GraphANNS, create, info
from repro.datasets import Dataset, load_dataset, available_datasets, make_clustered
from repro.distance import DistanceCounter
from repro.resilience import (
    BudgetReport,
    IndexFormatError,
    IndexIntegrityError,
    IntegrityReport,
    InvalidQueryError,
    QueryBudget,
    verify_index,
)
from repro.sharding import (
    ShardedIndex,
    ShardedSearchResult,
    ShardReport,
    kmeans_partition,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "ALL_ALGORITHMS",
    "GraphANNS",
    "create",
    "info",
    "Dataset",
    "load_dataset",
    "available_datasets",
    "make_clustered",
    "DistanceCounter",
    "Scenario",
    "recommend",
    "recommend_for_data",
    "QueryBudget",
    "BudgetReport",
    "InvalidQueryError",
    "IndexFormatError",
    "IndexIntegrityError",
    "IntegrityReport",
    "verify_index",
    "ShardedIndex",
    "ShardedSearchResult",
    "ShardReport",
    "kmeans_partition",
    "observability",
    "__version__",
]
