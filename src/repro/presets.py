"""Tuned parameter presets per (algorithm, dataset) — the §5.1 protocol.

The authors grid-search every algorithm's parameters on a validation
sample per dataset and publish the winners in their repository; this
module plays the same role.  The shipped presets were produced by
``repro.pipeline.tuning.grid_search`` (target Recall@10 ≥ 0.95 on a 50%
validation sample of each stand-in); re-run the tuner to regenerate
them for other data or scales.

``create_tuned`` falls back to the library defaults when no preset is
recorded, so it is always safe to call.
"""

from __future__ import annotations

from repro.algorithms.base import GraphANNS
from repro.algorithms.registry import create
from repro.components.seeding import LSHSeeds, RandomSeeds, SeedProvider
from repro.quantization import PQSeeds

__all__ = [
    "PRESETS",
    "SEED_PROVIDERS",
    "tuned_params",
    "create_tuned",
    "apply_seed_provider",
]

#: swappable C4/C6 seed providers by name — the §5.4 entry-acquisition
#: alternatives one can impose on any algorithm ("pq" is the Link&Code
#: compressed-vector entry [33]: a zero-NDC ADC scan picks the seeds)
SEED_PROVIDERS: dict[str, type] = {
    "pq": PQSeeds,
    "lsh": LSHSeeds,
    "random": RandomSeeds,
}

#: grid-search winners (see module docstring for provenance); keys are
#: (algorithm, dataset) registry names
PRESETS: dict[tuple[str, str], dict] = {
    # grid-search winners on 50% validation samples of the 2k-point
    # stand-ins, target Recall@10 >= 0.95 (regenerate with
    # repro.pipeline.tuning.grid_search; see module docstring)
    ("dpg", "audio"): {"k": 30},
    ("dpg", "gist1m"): {"k": 30},
    ("dpg", "glove"): {"k": 30},
    ("dpg", "sift1m"): {"k": 30},
    ("hcnng", "audio"): {"min_cluster_size": 40, "num_clusterings": 6},
    ("hcnng", "gist1m"): {"min_cluster_size": 80, "num_clusterings": 12},
    ("hcnng", "glove"): {"min_cluster_size": 80, "num_clusterings": 12},
    ("hcnng", "sift1m"): {"min_cluster_size": 80, "num_clusterings": 12},
    ("hnsw", "audio"): {"ef_construction": 40, "m": 12},
    ("hnsw", "gist1m"): {"ef_construction": 40, "m": 16},
    ("hnsw", "glove"): {"ef_construction": 40, "m": 16},
    ("hnsw", "sift1m"): {"ef_construction": 40, "m": 16},
    ("kgraph", "audio"): {"k": 40},
    ("kgraph", "gist1m"): {"k": 40},
    ("kgraph", "glove"): {"k": 40},
    ("kgraph", "sift1m"): {"k": 25},
    ("nsg", "audio"): {"candidate_ef": 60, "max_degree": 25},
    ("nsg", "gist1m"): {"candidate_ef": 30, "max_degree": 25},
    ("nsg", "glove"): {"candidate_ef": 30, "max_degree": 25},
    ("nsg", "sift1m"): {"candidate_ef": 60, "max_degree": 25},
    ("nssg", "audio"): {"max_degree": 35, "min_angle_deg": 60.0},
    ("nssg", "gist1m"): {"max_degree": 20, "min_angle_deg": 50.0},
    ("nssg", "glove"): {"max_degree": 35, "min_angle_deg": 50.0},
    ("nssg", "sift1m"): {"max_degree": 20, "min_angle_deg": 60.0},
}


def tuned_params(algorithm: str, dataset: str) -> dict:
    """Preset parameters, or {} when none are recorded."""
    return dict(PRESETS.get((algorithm, dataset), {}))


def create_tuned(
    algorithm: str,
    dataset: str,
    seed_provider: str | None = None,
    **overrides,
) -> GraphANNS:
    """Instantiate ``algorithm`` with the tuned preset for ``dataset``.

    Explicit ``overrides`` win over preset values.  ``seed_provider``
    names an entry from :data:`SEED_PROVIDERS` to swap in for the
    algorithm's native C4/C6 component (applied up front; algorithms
    that install their own provider *during* build — HNSW's fixed top
    entry — need :func:`apply_seed_provider` after building instead).
    """
    params = tuned_params(algorithm, dataset)
    params.update(overrides)
    index = create(algorithm, **params)
    if seed_provider is not None:
        apply_seed_provider(index, seed_provider)
    return index


def apply_seed_provider(index: GraphANNS, name: str) -> SeedProvider:
    """Swap ``index``'s seed provider for the registry entry ``name``.

    On a built index the new provider is prepared immediately (C4 runs
    on the indexed data); on an unbuilt one, build's epilogue will.
    """
    if name not in SEED_PROVIDERS:
        raise ValueError(
            f"unknown seed provider {name!r}; "
            f"choose from {sorted(SEED_PROVIDERS)}"
        )
    provider = SEED_PROVIDERS[name]()
    index.seed_provider = provider
    if index.graph is not None and index.data is not None:
        provider.prepare(index.data, index.graph)
    return provider
