"""Compressed (ADC) traversal: over-fetch on codes, re-rank exactly.

The survey's ML3/quantization analysis treats compressed distance
evaluation as the standard lever once full-precision vectors dominate
memory and the hot loop.  This module holds the glue around the
traversal itself (which lives in the routing layer / native kernel):

* the exact re-rank — the only stage that reads float32 rows, and
  therefore the only stage that pages a memory-mapped vector tier;
* the :class:`SearchResult` assembly that keeps the paper's NDC
  accounting honest: traversal table lookups are reported as
  ``adc_lookups`` (zero true NDC), the re-rank charges one true NDC per
  pooled candidate.

A compressed search over-fetches ``rerank_factor * k`` candidates by
ADC order and re-ranks them exactly; the recall gap versus exact search
shrinks as the factor grows, at a per-query cost bounded by
``rerank_factor * k`` tier reads.
"""

from __future__ import annotations

import numpy as np

from repro.components.routing import SearchResult

__all__ = ["DEFAULT_RERANK_FACTOR", "rerank_exact", "finish_compressed"]

#: over-fetch multiplier: the traversal keeps rerank_factor * k
#: ADC-ranked candidates for the exact re-rank
DEFAULT_RERANK_FACTOR = 3


def rerank_exact(
    data: np.ndarray, query64: np.ndarray, pool: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Exact distances for ``pool`` rows, sorted ascending ``(dist, id)``.

    One deterministic NumPy formula shared by every compressed path
    (native or fallback, serial or batched): gather the float32 rows —
    the single place compressed search touches the vector tier, so a
    memory-mapped tier pages in exactly these rows — widen to float64,
    and reduce with a fixed einsum.  Identical pools therefore re-rank
    bit-identically everywhere.
    """
    pool = np.asarray(pool, dtype=np.int64)
    if len(pool) == 0:
        return pool, np.zeros(0, dtype=np.float64)
    rows = np.asarray(data[pool], dtype=np.float64)
    diff = rows - query64
    sq = np.einsum("ij,ij->i", diff, diff)
    order = np.lexsort((pool, sq))
    return pool[order], np.sqrt(np.maximum(sq[order], 0.0))


def finish_compressed(
    route: SearchResult,
    data: np.ndarray,
    query64: np.ndarray,
    deleted: np.ndarray | None,
    adc_lookups: int,
    counter,
    max_pool: int | None = None,
) -> SearchResult:
    """Turn an ADC-ordered traversal result into the final exact result.

    Tombstoned vertices are dropped *before* the re-rank so they cost
    no tier reads, then the pool is capped at ``max_pool``
    (``rerank_factor * k``) — the bound that keeps per-query tier I/O
    independent of ``ef``.  The re-rank charges ``len(pool)`` true NDC
    to ``counter``.  Traversal telemetry (hops, visited,
    degraded/budget) is carried over; ``route.dists`` are ADC
    surrogates and are discarded.
    """
    pool = route.ids
    if deleted is not None and len(pool) and deleted.any():
        pool = pool[~deleted[pool]]
    if max_pool is not None:
        pool = pool[:max_pool]  # ids arrive in ascending ADC order
    counter.count += len(pool)
    ids, dists = rerank_exact(data, query64, pool)
    return SearchResult(
        ids, dists, hops=route.hops, visited=route.visited,
        degraded=route.degraded, budget=route.budget,
        adc_lookups=adc_lookups, rerank_ndc=len(pool),
    )
