"""NSW (A1) — Navigable Small World graph.

Points are inserted one by one; each new point is connected by
*undirected* edges to its ``max_m`` nearest neighbors found by greedy
search over the already-inserted subgraph.  Early insertions create the
long "small-world" links, late insertions the short-range links; the
undirected edges let dense-area vertices grow into high-degree hubs —
both behaviours the paper calls out (§3.2 A1, Table 11 D_max).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.routing import best_first_search
from repro.components.seeding import RandomSeeds
from repro.distance import DistanceCounter
from repro.graphs.graph import Graph

__all__ = ["NSW"]


class NSW(GraphANNS):
    """Incremental undirected small-world graph."""

    name = "nsw"

    def __init__(
        self,
        max_m: int = 10,
        ef_construction: int = 40,
        num_seeds: int = 4,
        seed: int = 0,
        n_workers: int = 1,
    ):
        super().__init__(seed=seed, n_workers=n_workers)
        self.max_m = max_m
        self.ef_construction = ef_construction
        self.seed_provider = RandomSeeds(count=num_seeds, seed=seed)

    def _build_phases(self, data: np.ndarray, bctx):
        # sequential by nature: each insertion searches the graph built
        # by all previous ones, so n_workers has no effect here
        counter = bctx.counter
        n = len(data)
        state: dict = {}

        def init_phase():
            rng = np.random.default_rng(self.seed)
            state["rng"] = rng
            state["order"] = rng.permutation(n)
            state["graph"] = Graph(n)

        def insert_phase():
            rng = state["rng"]
            graph = state["graph"]
            inserted: list[int] = []
            for pos, p in enumerate(state["order"]):
                p = int(p)
                if pos == 0:
                    inserted.append(p)
                    continue
                m = min(self.max_m, len(inserted))
                entry = np.asarray(
                    [inserted[int(rng.integers(len(inserted)))]],
                    dtype=np.int64,
                )
                result = best_first_search(
                    graph, data, data[p], entry,
                    ef=max(self.ef_construction, m), counter=counter,
                )
                for neighbor in result.ids[:m]:
                    graph.add_undirected_edge(p, int(neighbor))
                inserted.append(p)
            self.graph = graph
            self._rng = rng

        return [("c1", init_phase), ("c2+c3", insert_phase)]

    def insert(self, vector: np.ndarray) -> int:
        """Incremental insertion — NSW's native construction step."""
        self._require_built()
        vector = self._validate_insert(vector)
        counter = DistanceCounter()
        entry = np.asarray(
            [int(self._rng.integers(self.graph.n))], dtype=np.int64
        )
        result = best_first_search(
            self.graph, self.data, vector, entry,
            ef=max(self.ef_construction, self.max_m), counter=counter,
        )
        self.data = np.vstack([self.data, vector[None, :]])
        new_id = self.graph.add_vertex()
        for neighbor in result.ids[: self.max_m]:
            self.graph.add_undirected_edge(new_id, int(neighbor))
        self.graph.finalize()
        self._grow_bookkeeping()
        return new_id
