"""KGraph (A6) — NN-Descent KNNG, the archetypal KNNG-based algorithm.

C1 random, C2 expansion (inside NN-Descent), C3 distance only,
C4/C6 random seeds, C5 none, C7 best-first search (Table 9 row 1).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.seeding import RandomSeeds
from repro.graphs.graph import Graph
from repro.nndescent import nn_descent

__all__ = ["KGraph"]


class KGraph(GraphANNS):
    """Directed approximate KNN graph built by NN-Descent."""

    name = "kgraph"

    def __init__(
        self,
        k: int = 20,
        iterations: int = 8,
        sample_rate: float = 1.0,
        num_seeds: int = 8,
        seed: int = 0,
        n_workers: int = 1,
    ):
        super().__init__(seed=seed, n_workers=n_workers)
        self.k = k
        self.iterations = iterations
        self.sample_rate = sample_rate
        self.seed_provider = RandomSeeds(count=num_seeds, seed=seed)

    def _build_phases(self, data: np.ndarray, bctx):
        def init_phase():
            result = nn_descent(
                data,
                self.k,
                iterations=self.iterations,
                counter=bctx.counter,
                seed=self.seed,
                sample_rate=self.sample_rate,
                bctx=bctx,
            )
            self.graph = Graph(len(data), result.ids.tolist())
            self.knn_ids = result.ids
            self.knn_dists = result.dists

        return [("c1", init_phase)]
