"""k-DR (Appendix N) — degree-reduced KNN graph (Aoyama et al.).

Build an exact KNNG by linear scan, then delete every edge whose
endpoints are already connected by an alternative path through kept
neighbors (the *strict* variant of NGT's path adjustment — Appendix N
explains the difference), and finally undirect the surviving edges.
Routing is best-first search (the paper lists "BFS or RS").
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.routing import SearchResult, range_search
from repro.components.selection import path_adjustment
from repro.components.seeding import RandomSeeds
from repro.graphs.graph import Graph
from repro.graphs.knng import exact_knn_lists

__all__ = ["KDR"]


class KDR(GraphANNS):
    """Exact KNNG pruned by strict alternative-path deletion."""

    name = "kdr"

    def __init__(
        self,
        k: int = 20,
        max_degree: int = 15,
        num_seeds: int = 8,
        routing: str = "bfs",
        epsilon: float = 0.1,
        seed: int = 0,
        n_workers: int = 1,
    ):
        if routing not in ("bfs", "rs"):
            raise ValueError(f"routing must be 'bfs' or 'rs', got {routing!r}")
        super().__init__(seed=seed, n_workers=n_workers)
        self.k = k
        self.max_degree = max_degree
        self.routing = routing
        self.epsilon = epsilon
        self.seed_provider = RandomSeeds(count=num_seeds, seed=seed)

    def _build_phases(self, data: np.ndarray, bctx):
        counter = bctx.counter
        state: dict = {}

        def init_phase():
            ids, _ = exact_knn_lists(data, self.k, counter=counter)
            state["knng"] = Graph(len(data), ids.tolist())

        def prune_phase():
            state["pruned"] = path_adjustment(
                state["knng"], data, self.max_degree, counter=counter,
                strict=True,
            )

        def undirect_phase():
            pruned = state["pruned"]
            # reverse edges are added back (Appendix H: "the actual number
            # of neighbors may exceed R due to the addition of reverse edges")
            for u, v in list(pruned.edges()):
                pruned.add_edge(v, u)
            self.graph = pruned

        return [
            ("c1", init_phase),
            ("c2+c3", prune_phase),
            ("c5", undirect_phase),
        ]

    def _route(self, query, seeds, ef, counter, ctx=None, budget=None) -> SearchResult:
        # the paper lists "BFS or RS" for k-DR (Table 9)
        if self.routing == "rs":
            return range_search(
                self.graph, self.data, query, seeds, ef, counter,
                epsilon=self.epsilon, ctx=ctx, budget=budget,
            )
        return super()._route(query, seeds, ef, counter, ctx=ctx, budget=budget)
