"""NSG (A10) — Navigating Spreading-out Graph.

C1 NN-Descent, C2 ANNS on the initial graph (candidates = search
results ∪ visited KNN list), C3 the MRNG rule (== HNSW's heuristic,
Appendix A), C4 approximate centroid entry, C5 DFS-based reachability
repair from the entry, C7 best-first search.  The resulting small
out-degree / small index / strong search tradeoff is the paper's
running example of a well-balanced design (Table 7: S1, S4, S5, S7).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.candidates import candidates_by_search
from repro.components.connectivity import ensure_reachable_from
from repro.components.context import BuildContext
from repro.components.refinement import map_refine, search_candidates
from repro.components.refinement import select_rng as fast_select_rng
from repro.components.selection import select_rng_heuristic
from repro.components.seeding import CentroidSeeds
from repro.distance import DistanceCounter, l2_batch
from repro.graphs.graph import Graph
from repro.nndescent import nn_descent

__all__ = ["NSG"]


class NSG(GraphANNS):
    """MRNG-pruned graph navigated from the dataset medoid."""

    name = "nsg"

    def __init__(
        self,
        init_k: int = 20,
        iterations: int = 8,
        candidate_ef: int = 40,
        max_degree: int = 20,
        seed: int = 0,
        n_workers: int = 1,
    ):
        super().__init__(seed=seed, n_workers=n_workers)
        self.init_k = init_k
        self.iterations = iterations
        self.candidate_ef = candidate_ef
        self.max_degree = max_degree
        self.seed_provider = CentroidSeeds()

    def _build_phases(self, data: np.ndarray, bctx: BuildContext):
        counter = bctx.counter
        n = len(data)
        state: dict = {}

        def init_phase():
            init = nn_descent(
                data, self.init_k, iterations=self.iterations,
                counter=counter, seed=self.seed, bctx=bctx,
            )
            state["init"] = init
            state["init_graph"] = Graph(n, init.ids.tolist()).finalize()

        def entry_phase():
            mean = data.mean(axis=0)
            state["medoid"] = int(np.argmin(counter.one_to_many(mean, data)))

        def refine_phase():
            init = state["init"]
            init_graph = state["init_graph"]
            graph = Graph(n)
            entry = np.asarray([state["medoid"]], dtype=np.int64)
            if bctx.parallel:
                def refine_point(p, worker):
                    found_ids, found_dists = search_candidates(
                        worker, init_graph, data, p, self.candidate_ef, entry
                    )
                    pool = np.unique(np.concatenate([found_ids, init.ids[p]]))
                    pool = pool[pool != p]
                    pool_dists = worker.counter.one_to_many(data[p], data[pool])
                    order = np.argsort(pool_dists, kind="stable")
                    return fast_select_rng(
                        data[p], pool[order], pool_dists[order], data,
                        self.max_degree, counter=worker.counter,
                    )

                map_refine(bctx, n, refine_point,
                           lambda p, selected: graph.set_neighbors(p, selected))
            else:
                for p in range(n):
                    found_ids, found_dists = candidates_by_search(
                        init_graph, data, p, self.candidate_ef, entry,
                        counter=counter,
                    )
                    # NSG pools the search results with the point's KNN list
                    pool = np.unique(np.concatenate([found_ids, init.ids[p]]))
                    pool = pool[pool != p]
                    pool_dists = counter.one_to_many(data[p], data[pool])
                    order = np.argsort(pool_dists, kind="stable")
                    selected = select_rng_heuristic(
                        data[p], pool[order], pool_dists[order], data,
                        self.max_degree, counter=counter,
                    )
                    graph.set_neighbors(p, selected)
            state["graph"] = graph

        def connect_phase():
            ensure_reachable_from(
                state["graph"], data, state["medoid"], counter=counter,
                ctx=bctx.search_context(),
            )
            self.graph = state["graph"]
            self.medoid = state["medoid"]

        return [
            ("c1", init_phase),
            ("c4", entry_phase),
            ("c2+c3", refine_phase),
            ("c5", connect_phase),
        ]
