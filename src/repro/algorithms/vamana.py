"""Vamana (A12) — DiskANN's graph (random init + two α-pruned passes).

C1 random neighbor lists, C2 ANNS on the evolving graph from the
medoid, C3 the α-relaxed RNG heuristic run in two passes (α = 1 then
α > 1, Appendix H), with reverse-edge insertion and re-pruning on
overflow.  No connectivity guarantee (the C5 gap Figure 10(e)
penalises).  Seeds: medoid; routing: best-first search.

Vamana's refinement is *not* embarrassingly parallel — each point
searches the graph as mutated by every previous point — so the build
engine cannot chunk it.  Instead, ``n_workers > 1`` selects a
sequential fast path that mirrors the evolving adjacency lists in a
padded int32 matrix the native kernel can traverse directly
(``best_first_build`` with per-row counts), with pruning in the C
occlusion scan; every search and selection is bit-identical to the
serial Python loop.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.candidates import candidates_by_search
from repro.components.context import BuildContext
from repro.components.refinement import search_candidates_padded
from repro.components.refinement import select_rng as fast_select_rng
from repro.components.selection import select_rng_heuristic
from repro.components.seeding import CentroidSeeds
from repro.graphs.graph import Graph

__all__ = ["Vamana"]


class Vamana(GraphANNS):
    """Two-pass α-RNG graph built from a random start."""

    name = "vamana"

    def __init__(
        self,
        max_degree: int = 30,
        candidate_ef: int = 40,
        alpha: float = 2.0,
        init_degree: int = 10,
        seed: int = 0,
        n_workers: int = 1,
    ):
        super().__init__(seed=seed, n_workers=n_workers)
        self.max_degree = max_degree
        self.candidate_ef = candidate_ef
        self.alpha = alpha
        self.init_degree = init_degree
        self.seed_provider = CentroidSeeds()

    def _build_phases(self, data: np.ndarray, bctx: BuildContext):
        from repro.components.initialization import random_neighbor_lists

        counter = bctx.counter
        n = len(data)
        state: dict = {}

        def init_phase():
            rng = np.random.default_rng(self.seed)
            init = random_neighbor_lists(n, min(self.init_degree, n - 1), rng)
            state["rng"] = rng
            state["graph"] = Graph(n, init.tolist()).finalize()

        def entry_phase():
            mean = data.mean(axis=0)
            state["medoid"] = int(np.argmin(counter.one_to_many(mean, data)))

        def refine_phase():
            graph = state["graph"]
            medoid = state["medoid"]
            entry = np.asarray([medoid], dtype=np.int64)
            order = state["rng"].permutation(n)
            if bctx.parallel and bctx.search_context().native:
                self._refine_padded(data, bctx, graph, entry, order)
            else:
                for alpha in (1.0, self.alpha):  # two passes, per the paper
                    for p in order:
                        p = int(p)
                        cand_ids, cand_dists = candidates_by_search(
                            graph, data, p, self.candidate_ef, entry,
                            counter=counter,
                        )
                        selected = select_rng_heuristic(
                            data[p], cand_ids, cand_dists, data,
                            self.max_degree, counter=counter, alpha=alpha,
                        )
                        graph.set_neighbors(p, selected)
                        # reverse edges with overflow re-pruning (RobustPrune)
                        for v in selected:
                            v = int(v)
                            nbrs = graph.neighbors(v)
                            if p not in nbrs:
                                nbrs.append(p)
                            if len(nbrs) > self.max_degree:
                                arr = np.asarray(nbrs, dtype=np.int64)
                                dists = counter.one_to_many(data[v], data[arr])
                                srt = np.argsort(dists, kind="stable")
                                pruned = select_rng_heuristic(
                                    data[v], arr[srt], dists[srt], data,
                                    self.max_degree, counter=counter,
                                    alpha=alpha,
                                )
                                graph.set_neighbors(v, pruned)
            self.graph = state["graph"]
            self.medoid = medoid

        return [
            ("c1", init_phase),
            ("c4", entry_phase),
            ("c2+c3", refine_phase),
        ]

    def _refine_padded(self, data, bctx, graph, entry, order) -> None:
        """The two refinement passes over a padded adjacency mirror.

        The matrix rows replicate the ``Graph`` list state exactly
        (same order, same dedup semantics), so the native traversal
        evaluates the same vertices as the Python frontier would.
        """
        counter = bctx.counter
        ctx = bctx.search_context()
        n = len(data)
        rows = [graph.neighbors(v) for v in range(n)]
        cap = max(self.max_degree, max(len(row) for row in rows)) + 1
        padded = np.zeros((n, cap), dtype=np.int32)
        counts = np.zeros(n, dtype=np.int32)
        for v, row in enumerate(rows):
            padded[v, : len(row)] = row
            counts[v] = len(row)
        flat = padded.reshape(-1)
        offsets = (np.arange(n, dtype=np.int64) * cap).astype(np.int32)

        for alpha in (1.0, self.alpha):
            for p in order:
                p = int(p)
                cand_ids, cand_dists = search_candidates_padded(
                    ctx, counter, offsets, flat, counts, data, p,
                    self.candidate_ef, entry,
                )
                selected = fast_select_rng(
                    data[p], cand_ids, cand_dists, data,
                    self.max_degree, counter=counter, alpha=alpha,
                )
                counts[p] = len(selected)
                padded[p, : len(selected)] = selected
                for v in selected:
                    v = int(v)
                    row = padded[v, : counts[v]]
                    if not (row == p).any():
                        padded[v, counts[v]] = p
                        counts[v] += 1
                    if counts[v] > self.max_degree:
                        arr = padded[v, : counts[v]].astype(np.int64)
                        dists = counter.one_to_many(data[v], data[arr])
                        srt = np.argsort(dists, kind="stable")
                        pruned = fast_select_rng(
                            data[v], arr[srt], dists[srt], data,
                            self.max_degree, counter=counter, alpha=alpha,
                        )
                        counts[v] = len(pruned)
                        padded[v, : len(pruned)] = pruned
        for v in range(n):
            graph.set_neighbors(v, padded[v, : counts[v]].tolist())
