"""Vamana (A12) — DiskANN's graph (random init + two α-pruned passes).

C1 random neighbor lists, C2 ANNS on the evolving graph from the
medoid, C3 the α-relaxed RNG heuristic run in two passes (α = 1 then
α > 1, Appendix H), with reverse-edge insertion and re-pruning on
overflow.  No connectivity guarantee (the C5 gap Figure 10(e)
penalises).  Seeds: medoid; routing: best-first search.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.candidates import candidates_by_search
from repro.components.selection import select_rng_heuristic
from repro.components.seeding import CentroidSeeds
from repro.distance import DistanceCounter
from repro.graphs.graph import Graph

__all__ = ["Vamana"]


class Vamana(GraphANNS):
    """Two-pass α-RNG graph built from a random start."""

    name = "vamana"

    def __init__(
        self,
        max_degree: int = 30,
        candidate_ef: int = 40,
        alpha: float = 2.0,
        init_degree: int = 10,
        seed: int = 0,
    ):
        super().__init__(seed=seed)
        self.max_degree = max_degree
        self.candidate_ef = candidate_ef
        self.alpha = alpha
        self.init_degree = init_degree
        self.seed_provider = CentroidSeeds()

    def _build(self, data: np.ndarray, counter: DistanceCounter) -> None:
        from repro.components.initialization import random_neighbor_lists

        n = len(data)
        rng = np.random.default_rng(self.seed)
        init = random_neighbor_lists(n, min(self.init_degree, n - 1), rng)
        graph = Graph(n, init.tolist()).finalize()
        mean = data.mean(axis=0)
        medoid = int(np.argmin(counter.one_to_many(mean, data)))
        entry = np.asarray([medoid], dtype=np.int64)

        order = rng.permutation(n)
        for alpha in (1.0, self.alpha):  # two passes, per the paper
            for p in order:
                p = int(p)
                cand_ids, cand_dists = candidates_by_search(
                    graph, data, p, self.candidate_ef, entry, counter=counter
                )
                selected = select_rng_heuristic(
                    data[p], cand_ids, cand_dists, data,
                    self.max_degree, counter=counter, alpha=alpha,
                )
                graph.set_neighbors(p, selected)
                # reverse edges with overflow re-pruning (RobustPrune)
                for v in selected:
                    v = int(v)
                    nbrs = graph.neighbors(v)
                    if p not in nbrs:
                        nbrs.append(p)
                    if len(nbrs) > self.max_degree:
                        arr = np.asarray(nbrs, dtype=np.int64)
                        dists = counter.one_to_many(data[v], data[arr])
                        srt = np.argsort(dists, kind="stable")
                        pruned = select_rng_heuristic(
                            data[v], arr[srt], dists[srt], data,
                            self.max_degree, counter=counter, alpha=alpha,
                        )
                        graph.set_neighbors(v, pruned)
        self.graph = graph
        self.medoid = medoid
