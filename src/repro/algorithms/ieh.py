"""IEH (A8) — Iterative Expanding Hashing.

The graph is an *exact* KNNG built by linear scan (hence GQ = 1.0 in
Table 4 and the O(|S|²·log|S|) build of Table 2); hash buckets provide
seeds close to the query (C4_IEH — the best seed strategy in the §5.4
study), and best-first search expands from them.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.seeding import LSHSeeds
from repro.distance import DistanceCounter
from repro.graphs.graph import Graph
from repro.graphs.knng import exact_knn_lists

__all__ = ["IEH"]


class IEH(GraphANNS):
    """Exact KNNG + LSH seed acquisition + BFS expansion."""

    name = "ieh"

    def __init__(self, k: int = 20, num_seeds: int = 10, seed: int = 0):
        super().__init__(seed=seed)
        self.k = k
        self.seed_provider = LSHSeeds(count=num_seeds, seed=seed)

    def _build(self, data: np.ndarray, counter: DistanceCounter) -> None:
        ids, dists = exact_knn_lists(data, self.k, counter=counter)
        self.graph = Graph(len(data), ids.tolist())
        self.knn_ids = ids
        self.knn_dists = dists
