"""IEH (A8) — Iterative Expanding Hashing.

The graph is an *exact* KNNG built by linear scan (hence GQ = 1.0 in
Table 4 and the O(|S|²·log|S|) build of Table 2); hash buckets provide
seeds close to the query (C4_IEH — the best seed strategy in the §5.4
study), and best-first search expands from them.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.seeding import LSHSeeds
from repro.graphs.graph import Graph
from repro.graphs.knng import exact_knn_lists

__all__ = ["IEH"]


class IEH(GraphANNS):
    """Exact KNNG + LSH seed acquisition + BFS expansion."""

    name = "ieh"

    def __init__(self, k: int = 20, num_seeds: int = 10, seed: int = 0,
                 n_workers: int = 1):
        super().__init__(seed=seed, n_workers=n_workers)
        self.k = k
        self.seed_provider = LSHSeeds(count=num_seeds, seed=seed)

    def _build_phases(self, data: np.ndarray, bctx):
        def init_phase():
            ids, dists = exact_knn_lists(data, self.k, counter=bctx.counter)
            self.graph = Graph(len(data), ids.tolist())
            self.knn_ids = ids
            self.knn_dists = dists

        return [("c1", init_phase)]
