"""String registry for all compared algorithms.

``create("nsg", max_degree=20)`` instantiates by name; the benchmark
suite iterates :data:`ALL_ALGORITHMS` to reproduce the paper's
all-algorithms figures.  Table 2 metadata (base-graph category, edge
type) is attached for the taxonomy-driven analyses (§3, Table 4
groupings).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import GraphANNS
from repro.algorithms.dpg import DPG
from repro.algorithms.efanna import EFANNA
from repro.algorithms.fanng import FANNG
from repro.algorithms.hcnng import HCNNG
from repro.algorithms.hnsw import HNSW
from repro.algorithms.ieh import IEH
from repro.algorithms.kdr import KDR
from repro.algorithms.kgraph import KGraph
from repro.algorithms.ngt import NGTOnng, NGTPanng
from repro.algorithms.nsg import NSG
from repro.algorithms.nssg import NSSG
from repro.algorithms.nsw import NSW
from repro.algorithms.optimized import OptimizedAlgorithm
from repro.algorithms.sptag import SPTAGBKT, SPTAGKDT
from repro.algorithms.vamana import Vamana

__all__ = ["AlgorithmInfo", "ALGORITHMS", "ALL_ALGORITHMS", "create", "info"]


@dataclass(frozen=True)
class AlgorithmInfo:
    """Table 2 row: taxonomy metadata for one algorithm."""

    name: str
    cls: type[GraphANNS]
    base_graph: str          # taxonomy of §3 (Figure 3 roadmap)
    edge_type: str           # directed / undirected
    construction: str        # refinement / increment / divide-and-conquer


ALGORITHMS: dict[str, AlgorithmInfo] = {
    item.name: item
    for item in [
        AlgorithmInfo("kgraph", KGraph, "KNNG", "directed", "refinement"),
        AlgorithmInfo("ngt-panng", NGTPanng, "KNNG+DG+RNG", "directed", "increment"),
        AlgorithmInfo("ngt-onng", NGTOnng, "KNNG+DG+RNG", "directed", "increment"),
        AlgorithmInfo("sptag-kdt", SPTAGKDT, "KNNG", "directed", "divide-and-conquer"),
        AlgorithmInfo("sptag-bkt", SPTAGBKT, "KNNG+RNG", "directed", "divide-and-conquer"),
        AlgorithmInfo("nsw", NSW, "DG", "undirected", "increment"),
        AlgorithmInfo("ieh", IEH, "KNNG", "directed", "refinement"),
        AlgorithmInfo("fanng", FANNG, "RNG", "directed", "refinement"),
        AlgorithmInfo("hnsw", HNSW, "DG+RNG", "directed", "increment"),
        AlgorithmInfo("efanna", EFANNA, "KNNG", "directed", "refinement"),
        AlgorithmInfo("dpg", DPG, "KNNG+RNG", "undirected", "refinement"),
        AlgorithmInfo("nsg", NSG, "KNNG+RNG", "directed", "refinement"),
        AlgorithmInfo("hcnng", HCNNG, "MST", "directed", "divide-and-conquer"),
        AlgorithmInfo("vamana", Vamana, "RNG", "directed", "refinement"),
        AlgorithmInfo("nssg", NSSG, "KNNG+RNG", "directed", "refinement"),
        AlgorithmInfo("kdr", KDR, "KNNG+RNG", "undirected", "refinement"),
        AlgorithmInfo("oa", OptimizedAlgorithm, "KNNG+RNG", "directed", "refinement"),
    ]
}

#: the 13 survey algorithms in paper order (Table 2), without k-DR/OA
ALL_ALGORITHMS: tuple[str, ...] = (
    "kgraph", "ngt-panng", "ngt-onng", "sptag-kdt", "sptag-bkt", "nsw",
    "ieh", "fanng", "hnsw", "efanna", "dpg", "nsg", "hcnng", "vamana",
    "nssg",
)


def create(name: str, **params) -> GraphANNS:
    """Instantiate an algorithm by registry name."""
    if name not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; known: {sorted(ALGORITHMS)}")
    return ALGORITHMS[name].cls(**params)


def info(name: str) -> AlgorithmInfo:
    """Taxonomy metadata for one algorithm."""
    if name not in ALGORITHMS:
        raise KeyError(f"unknown algorithm {name!r}; known: {sorted(ALGORITHMS)}")
    return ALGORITHMS[name]
