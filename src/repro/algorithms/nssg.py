"""NSSG (A11) — Navigating Satellite System Graph.

NSG's framework with two swaps: C2 is neighbor *expansion* on the
initial graph instead of per-point ANNS (the big construction-time win
the paper credits, §3.2), and C3 is the relaxed minimum-angle rule
(θ = 60° by default), which keeps more edges than MRNG.  Seeds are
random; DFS reachability repair keeps the graph navigable.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.candidates import candidates_by_expansion
from repro.components.connectivity import ensure_reachable_from
from repro.components.refinement import map_refine
from repro.components.selection import select_angle_threshold
from repro.components.seeding import RandomSeeds
from repro.graphs.graph import Graph
from repro.nndescent import nn_descent

__all__ = ["NSSG"]


class NSSG(GraphANNS):
    """Angle-threshold-pruned graph with expansion-based candidates."""

    name = "nssg"

    def __init__(
        self,
        init_k: int = 20,
        iterations: int = 8,
        candidate_limit: int = 100,
        max_degree: int = 25,
        min_angle_deg: float = 60.0,
        num_seeds: int = 8,
        seed: int = 0,
        n_workers: int = 1,
    ):
        super().__init__(seed=seed, n_workers=n_workers)
        self.init_k = init_k
        self.iterations = iterations
        self.candidate_limit = candidate_limit
        self.max_degree = max_degree
        self.min_angle_deg = min_angle_deg
        self.seed_provider = RandomSeeds(count=num_seeds, seed=seed)

    def _build_phases(self, data: np.ndarray, bctx):
        counter = bctx.counter
        n = len(data)
        state: dict = {}

        def init_phase():
            state["init"] = nn_descent(
                data, self.init_k, iterations=self.iterations,
                counter=counter, seed=self.seed, bctx=bctx,
            )

        def refine_phase():
            init = state["init"]
            graph = Graph(n)
            if bctx.parallel:
                def refine_point(p, worker):
                    cand_ids, cand_dists = candidates_by_expansion(
                        init.ids, data, p, self.candidate_limit,
                        counter=worker.counter,
                    )
                    return select_angle_threshold(
                        data[p], cand_ids, cand_dists, data,
                        self.max_degree, min_angle_deg=self.min_angle_deg,
                    )

                map_refine(bctx, n, refine_point,
                           lambda p, sel: graph.set_neighbors(p, sel))
            else:
                for p in range(n):
                    cand_ids, cand_dists = candidates_by_expansion(
                        init.ids, data, p, self.candidate_limit,
                        counter=counter,
                    )
                    selected = select_angle_threshold(
                        data[p], cand_ids, cand_dists, data,
                        self.max_degree, min_angle_deg=self.min_angle_deg,
                    )
                    graph.set_neighbors(p, selected)
            state["graph"] = graph

        def connect_phase():
            graph = state["graph"]
            root = int(np.random.default_rng(self.seed).integers(n))
            ensure_reachable_from(
                graph, data, root, counter=counter,
                ctx=bctx.search_context(),
            )
            self.graph = graph

        return [
            ("c1", init_phase),
            ("c2+c3", refine_phase),
            ("c5", connect_phase),
        ]
