"""The 13 surveyed graph-based ANNS algorithms, plus k-DR and OA (§3.2, §6)."""

from repro.algorithms.base import BatchStats, BuildReport, GraphANNS
from repro.algorithms.dpg import DPG
from repro.algorithms.efanna import EFANNA
from repro.algorithms.fanng import FANNG
from repro.algorithms.hcnng import HCNNG
from repro.algorithms.hnsw import HNSW
from repro.algorithms.ieh import IEH
from repro.algorithms.kdr import KDR
from repro.algorithms.kgraph import KGraph
from repro.algorithms.ngt import NGTOnng, NGTPanng
from repro.algorithms.nsg import NSG
from repro.algorithms.nssg import NSSG
from repro.algorithms.nsw import NSW
from repro.algorithms.optimized import OptimizedAlgorithm
from repro.algorithms.registry import ALGORITHMS, ALL_ALGORITHMS, create, info
from repro.algorithms.sptag import SPTAGBKT, SPTAGKDT
from repro.algorithms.vamana import Vamana

__all__ = [
    "GraphANNS",
    "BuildReport",
    "BatchStats",
    "KGraph",
    "NGTPanng",
    "NGTOnng",
    "SPTAGKDT",
    "SPTAGBKT",
    "NSW",
    "IEH",
    "FANNG",
    "HNSW",
    "EFANNA",
    "DPG",
    "NSG",
    "HCNNG",
    "Vamana",
    "NSSG",
    "KDR",
    "OptimizedAlgorithm",
    "ALGORITHMS",
    "ALL_ALGORITHMS",
    "create",
    "info",
]
