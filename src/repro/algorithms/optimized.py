"""The optimized algorithm (OA) designed in §6 "Improvement".

Component recipe (verbatim from the paper):

* C1 — NN-Descent initialization with *appropriate* (not maximal)
  graph quality;
* C2 — NSSG's expansion-based candidate acquisition (no ANNS cost);
* C3 — NSG/HNSW's RNG heuristic to trim redundant neighbors;
* C4/C6 — a fixed pool of random entries (no auxiliary index);
* C5 — depth-first-traversal connectivity repair;
* C7 — two-stage routing: guided search first, best-first search after.

Figure 11 / Tables 19–22 show OA beating the state of the art on the
efficiency-accuracy tradeoff while keeping construction cheap and
memory low; the Figure 11 bench reproduces that comparison.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.candidates import candidates_by_expansion
from repro.components.connectivity import ensure_reachable_from
from repro.components.refinement import map_refine
from repro.components.refinement import select_rng as fast_select_rng
from repro.components.routing import SearchResult, two_stage_search
from repro.components.selection import select_rng_heuristic
from repro.components.seeding import FixedSeeds
from repro.graphs.graph import Graph
from repro.nndescent import nn_descent

__all__ = ["OptimizedAlgorithm"]


class OptimizedAlgorithm(GraphANNS):
    """The survey's own best-of-all-components design (§6)."""

    name = "oa"

    def __init__(
        self,
        init_k: int = 20,
        iterations: int = 8,
        candidate_limit: int = 100,
        max_degree: int = 20,
        num_entries: int = 8,
        seed: int = 0,
        n_workers: int = 1,
    ):
        super().__init__(seed=seed, n_workers=n_workers)
        self.init_k = init_k
        self.iterations = iterations
        self.candidate_limit = candidate_limit
        self.max_degree = max_degree
        self.num_entries = num_entries

    def _build_phases(self, data: np.ndarray, bctx):
        counter = bctx.counter
        n = len(data)
        state: dict = {}

        def init_phase():
            state["init"] = nn_descent(
                data, self.init_k, iterations=self.iterations,
                counter=counter, seed=self.seed, bctx=bctx,
            )

        def refine_phase():
            init = state["init"]
            graph = Graph(n)
            if bctx.parallel:
                def refine_point(p, worker):
                    cand_ids, cand_dists = candidates_by_expansion(
                        init.ids, data, p, self.candidate_limit,
                        counter=worker.counter,
                    )
                    return fast_select_rng(
                        data[p], cand_ids, cand_dists, data, self.max_degree,
                        counter=worker.counter,
                    )

                map_refine(bctx, n, refine_point,
                           lambda p, sel: graph.set_neighbors(p, sel))
            else:
                for p in range(n):
                    cand_ids, cand_dists = candidates_by_expansion(
                        init.ids, data, p, self.candidate_limit,
                        counter=counter,
                    )
                    selected = select_rng_heuristic(
                        data[p], cand_ids, cand_dists, data, self.max_degree,
                        counter=counter,
                    )
                    graph.set_neighbors(p, selected)
            state["graph"] = graph

        def entry_phase():
            rng = np.random.default_rng(self.seed)
            state["entries"] = rng.choice(
                n, size=min(self.num_entries, n), replace=False
            )

        def connect_phase():
            graph = state["graph"]
            entries = state["entries"]
            # C5: every vertex reachable from the fixed entries
            ensure_reachable_from(
                graph, data, int(entries[0]), counter=counter,
                ctx=bctx.search_context(),
            )
            self.graph = graph
            self.seed_provider = FixedSeeds(entries)

        return [
            ("c1", init_phase),
            ("c2+c3", refine_phase),
            ("c4", entry_phase),
            ("c5", connect_phase),
        ]

    def _route(self, query, seeds, ef, counter, ctx=None, budget=None) -> SearchResult:
        return two_stage_search(
            self.graph, self.data, query, seeds, ef, counter, ctx=ctx,
            budget=budget,
        )
