"""EFANNA (A7) — KGraph with KD-tree initialization and KD-tree seeds.

Identical refinement to KGraph except C1 (KD-tree ANNS instead of
random lists) and C4/C6 (the same KD-trees provide query seeds).  The
paper finds this changes only the constant factor of construction
(Appendix D).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.initialization import kdtree_neighbor_lists
from repro.components.seeding import KDTreeSeeds
from repro.graphs.graph import Graph
from repro.nndescent import nn_descent

__all__ = ["EFANNA"]


class EFANNA(GraphANNS):
    """NN-Descent over a KD-tree-initialized KNN graph."""

    name = "efanna"

    def __init__(
        self,
        k: int = 20,
        iterations: int = 6,
        num_trees: int = 4,
        num_seeds: int = 8,
        seed: int = 0,
        n_workers: int = 1,
    ):
        super().__init__(seed=seed, n_workers=n_workers)
        self.k = k
        self.iterations = iterations
        self.num_trees = num_trees
        self.seed_provider = KDTreeSeeds(
            num_trees=num_trees, count=num_seeds, seed=seed
        )

    def _build_phases(self, data: np.ndarray, bctx):
        def init_phase():
            initial = kdtree_neighbor_lists(
                data, self.k, num_trees=self.num_trees, counter=bctx.counter,
                seed=self.seed,
            )
            result = nn_descent(
                data,
                self.k,
                iterations=self.iterations,
                counter=bctx.counter,
                seed=self.seed,
                initial_ids=initial,
                bctx=bctx,
            )
            self.graph = Graph(len(data), result.ids.tolist())
            self.knn_ids = result.ids
            self.knn_dists = result.dists

        return [("c1", init_phase)]
