"""SPTAG (A5) — Space Partition Tree And Graph (Microsoft).

Divide-and-conquer construction: TP-tree partitions are repeated
``num_divisions`` times; an exact KNN subgraph is built inside every
leaf subset and the per-vertex neighbor lists are merged by distance
(Definition 4.1/4.4 "subspace" candidates).  A neighborhood-propagation
pass then improves the merged graph.

* **SPTAG-KDT** — plain KNN lists, KD-tree seeds;
* **SPTAG-BKT** — adds the RNG-heuristic pruning option and takes
  seeds from a balanced k-means tree.

Routing is iterated best-first search: when a pass gets stuck in a
local optimum, fresh tree seeds restart it (§4.2 C7).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.refinement import map_refine
from repro.components.refinement import select_rng as fast_select_rng
from repro.components.routing import SearchResult, iterated_search
from repro.components.selection import select_rng_heuristic
from repro.components.seeding import KDTreeSeeds, KMeansTreeSeeds
from repro.distance import DistanceCounter, pairwise_l2
from repro.graphs.graph import Graph
from repro.trees.tp_tree import TPTree

__all__ = ["SPTAGKDT", "SPTAGBKT"]


class _SPTAGBase(GraphANNS):
    """Shared divide-and-conquer KNNG construction."""

    def __init__(
        self,
        k: int = 16,
        num_divisions: int = 4,
        leaf_size: int = 100,
        propagation_rounds: int = 1,
        max_restarts: int = 4,
        seed: int = 0,
        n_workers: int = 1,
    ):
        super().__init__(seed=seed, n_workers=n_workers)
        self.k = k
        self.num_divisions = num_divisions
        self.leaf_size = leaf_size
        self.propagation_rounds = propagation_rounds
        self.max_restarts = max_restarts

    def _merged_knn_lists(
        self, data: np.ndarray, counter: DistanceCounter
    ) -> tuple[np.ndarray, np.ndarray]:
        """Union of per-leaf exact KNN lists over repeated divisions."""
        n = len(data)
        best_ids = np.full((n, self.k), -1, dtype=np.int64)
        best_d = np.full((n, self.k), np.inf)
        for division in range(self.num_divisions):
            tree = TPTree(data, leaf_size=self.leaf_size, seed=self.seed + division)
            for leaf in tree.partition():
                if len(leaf) < 2:
                    continue
                block = pairwise_l2(data[leaf], data[leaf])
                counter.count += len(leaf) ** 2
                np.fill_diagonal(block, np.inf)
                k_here = min(self.k, len(leaf) - 1)
                part = np.argpartition(block, k_here - 1, axis=1)[:, :k_here]
                for row, p in enumerate(leaf):
                    cand_ids = leaf[part[row]]
                    cand_d = block[row, part[row]]
                    merged_ids = np.concatenate([best_ids[p], cand_ids])
                    merged_d = np.concatenate([best_d[p], cand_d])
                    # dedupe keeping smallest distance per id
                    order = np.argsort(merged_d, kind="stable")
                    seen: set[int] = set()
                    keep_ids, keep_d = [], []
                    for pos in order:
                        idx = int(merged_ids[pos])
                        if idx < 0 or idx in seen or idx == p:
                            continue
                        seen.add(idx)
                        keep_ids.append(idx)
                        keep_d.append(float(merged_d[pos]))
                        if len(keep_ids) == self.k:
                            break
                    best_ids[p, : len(keep_ids)] = keep_ids
                    best_d[p, : len(keep_d)] = keep_d
        # fill any residual -1 slots with random vertices
        rng = np.random.default_rng(self.seed)
        for p in range(n):
            missing = np.flatnonzero(best_ids[p] < 0)
            if len(missing):
                fillers = rng.integers(0, n, size=len(missing))
                fillers[fillers == p] = (p + 1) % n
                best_ids[p, missing] = fillers
                best_d[p, missing] = counter.one_to_many(
                    data[p], data[best_ids[p, missing]]
                )
        return best_ids, best_d

    def _propagate(
        self,
        ids: np.ndarray,
        dists: np.ndarray,
        data: np.ndarray,
        counter: DistanceCounter,
        bctx=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Neighborhood propagation: one NN-expansion round per call."""
        from repro.nndescent import nn_descent

        result = nn_descent(
            data, self.k, iterations=self.propagation_rounds,
            counter=counter, seed=self.seed, initial_ids=ids, bctx=bctx,
        )
        return result.ids, result.dists

    def _route(self, query, seeds, ef, counter, ctx=None, budget=None) -> SearchResult:
        provider = self.seed_provider

        def batches(restart: int) -> np.ndarray:
            if restart == 0:
                return seeds
            return provider.acquire(query, counter)

        return iterated_search(
            self.graph, self.data, query, batches, ef, counter,
            max_restarts=self.max_restarts, ctx=ctx, budget=budget,
        )


class SPTAGKDT(_SPTAGBase):
    """Original SPTAG: merged KNNG + KD-tree seeds."""

    name = "sptag-kdt"

    def __init__(self, num_trees: int = 3, num_seeds: int = 8, **kwargs):
        super().__init__(**kwargs)
        self.seed_provider = KDTreeSeeds(
            num_trees=num_trees, count=num_seeds, seed=self.seed
        )

    def _build_phases(self, data: np.ndarray, bctx):
        counter = bctx.counter
        state: dict = {}

        def init_phase():
            state["ids"], state["dists"] = self._merged_knn_lists(
                data, counter
            )

        def propagate_phase():
            ids, _ = self._propagate(
                state["ids"], state["dists"], data, counter, bctx=bctx
            )
            self.graph = Graph(len(data), ids.tolist())

        return [("c1", init_phase), ("c2+c3", propagate_phase)]


class SPTAGBKT(_SPTAGBase):
    """Improved SPTAG: RNG pruning option + balanced k-means tree seeds."""

    name = "sptag-bkt"

    def __init__(self, num_seeds: int = 8, rng_prune: bool = True, **kwargs):
        super().__init__(**kwargs)
        self.rng_prune = rng_prune
        self.seed_provider = KMeansTreeSeeds(count=num_seeds, seed=self.seed)

    def _build_phases(self, data: np.ndarray, bctx):
        counter = bctx.counter
        state: dict = {}

        def init_phase():
            state["ids"], state["dists"] = self._merged_knn_lists(
                data, counter
            )

        def refine_phase():
            ids, dists = self._propagate(
                state["ids"], state["dists"], data, counter, bctx=bctx
            )
            if not self.rng_prune:
                self.graph = Graph(len(data), ids.tolist())
                return
            graph = Graph(len(data))
            if bctx.parallel:
                def prune_point(p, worker):
                    return fast_select_rng(
                        data[p], ids[p], dists[p], data, self.k,
                        counter=worker.counter,
                    )

                map_refine(bctx, len(data), prune_point,
                           lambda p, sel: graph.set_neighbors(p, sel))
            else:
                for p in range(len(data)):
                    selected = select_rng_heuristic(
                        data[p], ids[p], dists[p], data, self.k,
                        counter=counter,
                    )
                    graph.set_neighbors(p, selected)
            self.graph = graph

        return [("c1", init_phase), ("c2+c3", refine_phase)]
