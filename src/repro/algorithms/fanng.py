"""FANNG (A3) — occlusion-rule RNG approximation over brute-force candidates.

Unlike HNSW, FANNG applies the occlusion (RNG) rule to *all* other
points sorted by distance, which is what makes its construction
O(|S|²·log|S|) (Table 2).  The original paper itself proposes candidate
truncation to keep this tractable; ``scan_limit`` reproduces that
optimisation.  Search is best-first with backtracking (C7_FANNG).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.refinement import map_refine
from repro.components.refinement import select_rng as fast_select_rng
from repro.components.routing import backtracking_search
from repro.components.selection import select_rng_heuristic
from repro.components.seeding import RandomSeeds
from repro.graphs.graph import Graph
from repro.graphs.knng import exact_knn_lists

__all__ = ["FANNG"]


class FANNG(GraphANNS):
    """Occlusion-pruned graph with backtracking search."""

    name = "fanng"

    def __init__(
        self,
        max_degree: int = 30,
        scan_limit: int = 300,
        backtracks: int = 10,
        num_seeds: int = 8,
        seed: int = 0,
        n_workers: int = 1,
    ):
        super().__init__(seed=seed, n_workers=n_workers)
        self.max_degree = max_degree
        self.scan_limit = scan_limit
        self.backtracks = backtracks
        self.seed_provider = RandomSeeds(count=num_seeds, seed=seed)

    def _build_phases(self, data: np.ndarray, bctx):
        counter = bctx.counter
        n = len(data)
        state: dict = {}

        def init_phase():
            scan = min(self.scan_limit, n - 1)
            state["ids"], state["dists"] = exact_knn_lists(
                data, scan, counter=counter
            )

        def prune_phase():
            ids, dists = state["ids"], state["dists"]
            graph = Graph(n)
            if bctx.parallel:
                def refine_point(p, worker):
                    return fast_select_rng(
                        data[p], ids[p], dists[p], data, self.max_degree,
                        counter=worker.counter,
                    )

                map_refine(bctx, n, refine_point,
                           lambda p, sel: graph.set_neighbors(p, sel))
            else:
                for p in range(n):
                    selected = select_rng_heuristic(
                        data[p], ids[p], dists[p], data, self.max_degree,
                        counter=counter,
                    )
                    graph.set_neighbors(p, selected)
            self.graph = graph

        return [("c1", init_phase), ("c2+c3", prune_phase)]

    def _route(self, query, seeds, ef, counter, ctx=None, budget=None):
        return backtracking_search(
            self.graph, self.data, query, seeds, ef, counter,
            backtracks=self.backtracks, ctx=ctx, budget=budget,
        )
