"""Uniform interface for every graph-based ANNS algorithm in the survey.

``build`` constructs the graph index (and any C4 auxiliary structure)
over a dataset; ``search`` answers one query, charging *all* distance
evaluations — seed acquisition included — to a per-query counter so the
Speedup/NDC numbers match the paper's accounting.  ``batch_search``
aggregates the per-query statistics the evaluation section reports.
"""

from __future__ import annotations

import copy
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro import observability as obs
from repro.components.context import BuildContext, SearchContext
from repro.components.routing import SearchResult, best_first_search
from repro.components.seeding import RandomSeeds, SeedProvider
from repro.delta import DeltaTier
from repro.distance import DistanceCounter
from repro.graphs.graph import Graph
from repro.resilience import InvalidQueryError, QueryBudget, validate_query

__all__ = ["BuildReport", "BatchStats", "ConsolidationReport", "GraphANNS"]


@dataclass
class BuildReport:
    """Construction-side metrics (Figure 5/6, Table 4 inputs).

    ``phases`` maps C1–C5 labels ("c1", "c2+c3", "c4", "c5") to
    :class:`~repro.components.context.PhaseStats`; the per-phase
    wall-clocks and NDCs sum exactly to ``build_time_s`` /
    ``build_ndc`` because the engine derives the totals from them.
    ``index_size_bytes`` is the paper's full index-size definition:
    the base graph (``graph_bytes``) plus every C4 auxiliary structure
    (``aux_bytes`` — HNSW upper layers, SPTAG trees, IEH hash tables,
    NGT VP-trees, ...).
    """

    build_time_s: float
    build_ndc: int
    index_size_bytes: int
    graph_bytes: int = 0
    aux_bytes: int = 0
    n_workers: int = 1
    phases: dict = field(default_factory=dict)


@dataclass
class ConsolidationReport:
    """Outcome of one delta consolidation (Table 7 S1 churn telemetry).

    ``n_base``/``n_delta`` are the sizes of the two tiers that were
    merged; ``n_carried`` counts inserts that raced the background
    rebuild and were re-inserted into the fresh delta (their external
    ids are preserved).  ``build_report`` is the phased build engine's
    report for the rebuild.
    """

    n_base: int
    n_delta: int
    wall_s: float
    n_carried: int = 0
    build_report: "BuildReport | None" = None

    @property
    def n_total(self) -> int:
        return self.n_base + self.n_delta


@dataclass
class BatchStats:
    """Aggregated search metrics over a query batch (§5.1).

    Latency percentiles cover the tail behaviour a mean hides — the
    production-side counterpart of the paper's QPS numbers.
    """

    recall: float
    qps: float
    mean_ndc: float
    mean_hops: float
    speedup: float
    per_query_recall: np.ndarray = field(repr=False, default=None)
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0


class GraphANNS:
    """Base class: one graph index + one seed provider + one router."""

    name = "base"
    default_ef = 40

    def __init__(self, seed: int = 0, n_workers: int = 1):
        self.seed = seed
        self.n_workers = max(1, int(n_workers))
        self.data: np.ndarray | None = None
        self.graph: Graph | None = None
        self.seed_provider: SeedProvider = RandomSeeds(seed=seed)
        self.build_report: BuildReport | None = None
        self._deleted: np.ndarray | None = None  # tombstones (S1 updates)
        self._compressed = None  # CompressedTier for ADC traversal
        self._search_ctx: SearchContext | None = None
        # After reorder(): internal vertex id -> original dataset id.
        # None means the identity (never reordered).
        self._id_map: np.ndarray | None = None
        self._id_inv: np.ndarray | None = None  # lazy inverse of _id_map
        # Mutable delta tier (S1 updates): points inserted after build()
        # live in a small NSW-style side-graph searched alongside the
        # frozen base; None until the first delta insert.
        self._delta: DeltaTier | None = None
        self._update_lock = threading.RLock()
        self._consolidation_thread: threading.Thread | None = None
        self._consolidation_error: BaseException | None = None
        self._last_consolidation: ConsolidationReport | None = None
        #: delta insertion parameters (NSW-style side-graph)
        self.delta_max_m = 10
        self.delta_ef_construction = 40
        #: auto-consolidation triggers: background rebuild kicks in when
        #: delta_n / base_n exceeds the ratio or delta_n exceeds the
        #: absolute cap (None disables the cap).
        self.delta_max_ratio: float = 0.25
        self.delta_max_points: int | None = None
        self.auto_consolidate = True

    # -- construction ---------------------------------------------------

    def build(self, data: np.ndarray,
              n_workers: int | None = None) -> BuildReport:
        """Construct the index; returns (and stores) the build report.

        The phases declared by :meth:`_build_phases` run in order under
        a :class:`BuildContext`, which charges each phase's wall-clock
        and NDC to its C1–C5 label; a final epilogue (graph freeze +
        seed-provider preparation, i.e. the C4 entry structures) is
        charged to ``"c4"``.  ``n_workers`` (default: the constructor's
        value) engages the deterministic chunked refinement engine —
        the adjacency is bit-identical for every worker count.
        """
        if len(data) < 2:
            raise ValueError(f"cannot index fewer than 2 points, got {len(data)}")
        self.data = np.ascontiguousarray(data, dtype=np.float32)
        workers = self.n_workers if n_workers is None else int(n_workers)
        bctx = BuildContext(self.data, seed=self.seed, n_workers=workers)
        try:
            for label, phase_fn in self._build_phases(self.data, bctx):
                bctx.run_phase(label, phase_fn)
            if self.graph is None:
                raise RuntimeError(f"{self.name}._build did not produce a graph")
            bctx.run_phase("c4", self._finish_build)
        finally:
            bctx.close()
        self._deleted = np.zeros(len(self.data), dtype=bool)
        self._compressed = None  # codes belong to the previous dataset
        self._search_ctx = None
        self._id_map = None   # a rebuild starts from the identity labeling
        self._id_inv = None
        self._delta = None    # a rebuild absorbs (and resets) the delta tier
        graph_bytes = self.graph.index_size_bytes()
        aux_bytes = self.aux_size_bytes()
        self.build_report = BuildReport(
            build_time_s=sum(s.wall_s for s in bctx.phases.values()),
            build_ndc=bctx.counter.count,
            index_size_bytes=graph_bytes + aux_bytes,
            graph_bytes=graph_bytes,
            aux_bytes=aux_bytes,
            n_workers=bctx.n_workers,
            phases=bctx.phases,
        )
        if obs.enabled():
            handles = obs.instruments()
            handles.builds_total.inc()
            handles.build_seconds.observe(self.build_report.build_time_s)
            obs.record_span(
                "build", self.build_report.build_time_s,
                algorithm=self.name, n=len(self.data),
                ndc=self.build_report.build_ndc,
                n_workers=bctx.n_workers,
                index_size_bytes=self.build_report.index_size_bytes,
            )
        return self.build_report

    def _finish_build(self) -> None:
        """Engine epilogue: freeze the graph, build the C4 entry state."""
        self.graph.finalize()
        self.seed_provider.prepare(self.data, self.graph)

    def _build_phases(self, data: np.ndarray, bctx: BuildContext):
        """Ordered ``(label, fn)`` phases; labels are C1–C5 component
        names ("c1", "c2+c3", "c4", "c5").  The default wraps a legacy
        monolithic ``_build`` so subclasses may migrate incrementally.
        """
        return [("c2+c3", lambda: self._build(data, bctx.counter))]

    def _build(self, data: np.ndarray, counter: DistanceCounter) -> None:
        raise NotImplementedError

    def index_size_bytes(self) -> int:
        """Graph storage plus any C4 auxiliary structure (Figure 6)."""
        if self.graph is None:
            return 0
        return self.graph.index_size_bytes() + self.aux_size_bytes()

    def aux_size_bytes(self) -> int:
        """Bytes held by C4 auxiliary structures (seed trees/tables...).

        Algorithms with index-resident structures beyond the seed
        provider's (HNSW's upper layers) add them by overriding.
        """
        return self.seed_provider.extra_bytes

    def _require_built(self) -> None:
        if self.graph is None or self.data is None:
            raise RuntimeError(f"{self.name}: call build() before search()")

    # -- updates (Table 7 scenario S1) -------------------------------------

    def _validate_insert(self, vector: np.ndarray) -> np.ndarray:
        """Up-front insert validation (mirrors PR 2's query validation).

        A NaN or mis-shaped vector must be rejected before it touches
        any graph — a non-finite coordinate silently poisons every
        distance comparison that ever visits the vertex.
        """
        reason = validate_query(vector, self.data.shape[1])
        if reason is not None:
            raise InvalidQueryError(f"{self.name}: cannot insert: {reason}")
        return np.ascontiguousarray(vector, dtype=np.float32)

    def _drop_compressed_on_insert(self) -> None:
        """Drop the PQ tier when an insert invalidates it (loudly).

        The new vector has no PQ code; serving compressed searches that
        can never reach it would silently cap recall, so the tier is
        dropped — callers re-enable after consolidation to refit.
        """
        if self._compressed is None:
            return
        self._compressed = None
        obs.get_logger("repro.updates").warning(
            "compressed.tier_dropped",
            algorithm=self.name, n=len(self.data),
            reason="insert invalidates PQ codes; re-enable after consolidation",
        )
        if obs.enabled():
            obs.instruments().compressed_tier_dropped_total.inc()

    def insert(self, vector: np.ndarray) -> int:
        """Insert one point into a built index; returns its external id.

        Increment-strategy algorithms (NSW, HNSW) override this to grow
        their own graph natively.  Every other construction — the
        refinement and divide-and-conquer families that Table 7's S1
        scenario says must be rebuilt — takes this universal path: the
        point goes into a small mutable NSW-style *delta* side-graph
        (:class:`repro.delta.DeltaTier`) searched alongside the frozen
        base, and a background :meth:`consolidate` pass later folds it
        into a fresh base snapshot.  External ids are stable across
        consolidation: the j-th delta insert is id ``base_n + j``
        forever.
        """
        self._require_built()
        vector = self._validate_insert(vector)
        with self._update_lock:
            self._drop_compressed_on_insert()
            delta = self._delta
            if delta is None:
                delta = self._delta = DeltaTier(
                    self.data.shape[1], len(self.data),
                    max_m=self.delta_max_m,
                    ef_construction=self.delta_ef_construction,
                )
            new_id = delta.insert(vector)
        self._observe_insert(delta)
        self._maybe_consolidate()
        return new_id

    def _observe_insert(self, delta: DeltaTier | None) -> None:
        if not obs.enabled():
            return
        handles = obs.instruments()
        handles.inserts_total.inc()
        if delta is not None:
            handles.delta_points.set(delta.n)
            if delta.first_insert_at is not None:
                handles.consolidation_lag_seconds.set(
                    time.monotonic() - delta.first_insert_at
                )

    def delete(self, vertex_id: int) -> None:
        """Tombstone one vertex: routing may pass through it, but it can
        no longer appear in results (the standard graph-ANNS deletion).
        Accepts both base ids and delta-tier ids (``>= base_n``)."""
        self._require_built()
        vertex_id = int(vertex_id)
        with self._update_lock:
            delta = self._delta
            if delta is not None and delta.contains(vertex_id):
                delta.delete(vertex_id)
                return
            if not 0 <= vertex_id < len(self.data):
                raise IndexError(f"vertex {vertex_id} out of range")
            self._deleted[self._internal_id(vertex_id)] = True

    @property
    def num_deleted(self) -> int:
        """How many vertices are tombstoned (both tiers)."""
        base = 0 if self._deleted is None else int(self._deleted.sum())
        delta = self._delta
        return base + (delta.num_deleted if delta is not None else 0)

    @property
    def num_points(self) -> int:
        """Total points across base + delta (including tombstoned)."""
        base = 0 if self.data is None else len(self.data)
        delta = self._delta
        return base + (delta.n if delta is not None else 0)

    @property
    def delta_points(self) -> int:
        """Points currently in the mutable delta tier."""
        delta = self._delta
        return delta.n if delta is not None else 0

    # -- consolidation: fold the delta into a fresh base snapshot ----------

    def _maybe_consolidate(self) -> None:
        """Kick a background consolidation when the delta outgrows its
        thresholds (ratio of base size, or absolute point cap)."""
        if not self.auto_consolidate:
            return
        delta = self._delta
        if delta is None or delta.n == 0 or self.data is None:
            return
        over_points = (self.delta_max_points is not None
                       and delta.n >= self.delta_max_points)
        over_ratio = delta.n / max(1, len(self.data)) > self.delta_max_ratio
        if over_points or over_ratio:
            thread = self._consolidation_thread
            if thread is None or not thread.is_alive():
                self.consolidate(wait=False)

    def consolidate(self, wait: bool = True):
        """Rebuild base + delta into one fresh snapshot and swap it in.

        The merged dataset (base rows in original order, then delta rows
        in insertion order) goes through the phased build engine — on a
        worker thread when ``wait=False`` — while reads continue on the
        old snapshot; the finished snapshot is installed atomically
        (single attribute swap under the update lock), preserving
        external ids.  Tombstones set *during* the rebuild survive, and
        inserts that race it are re-inserted into a fresh delta with
        their ids intact.

        Returns a :class:`ConsolidationReport` when ``wait=True`` (or
        when joining an in-flight background pass), else the worker
        :class:`threading.Thread`.
        """
        thread = self._consolidation_thread
        if thread is not None and thread.is_alive():
            if not wait:
                return thread
            thread.join()
            if self._consolidation_error is not None:
                raise self._consolidation_error
            return self._last_consolidation
        if wait:
            return self._consolidate_now()
        self._consolidation_error = None
        thread = threading.Thread(
            target=self._consolidate_in_background,
            name=f"repro-consolidate-{self.name}", daemon=True,
        )
        self._consolidation_thread = thread
        thread.start()
        return thread

    def _consolidate_in_background(self) -> None:
        try:
            self._consolidate_now()
        except BaseException as exc:  # surfaced on the next consolidate()
            self._consolidation_error = exc
            obs.get_logger("repro.updates").warning(
                "delta.consolidation_failed",
                algorithm=self.name, error=f"{type(exc).__name__}: {exc}",
            )

    def _consolidate_now(self) -> ConsolidationReport:
        from repro import faults

        self._require_built()
        started = time.perf_counter()
        plan = faults.active()
        with self._update_lock:
            delta = self._delta
            dim = self.data.shape[1]
            if delta is not None and delta.n:
                dvecs, _ddel, dcount = delta.snapshot()
            else:
                dvecs = np.empty((0, dim), dtype=np.float32)
                dcount = 0
            base_original = self._original_order_data()
            base_n = len(base_original)
        if plan is not None:
            plan.before_consolidate("build")
        merged = np.vstack([base_original, dvecs]) if dcount else base_original
        clone = self._clone_for_rebuild()
        build_report = clone.build(merged, n_workers=self.n_workers)
        with self._update_lock:
            if plan is not None:
                plan.before_consolidate("swap")
            # Tombstones are re-read *now* so deletes that raced the
            # rebuild land in the new snapshot (both tiers).
            new_deleted = np.zeros(base_n + dcount, dtype=bool)
            if self._deleted is not None and self._deleted.any():
                if self._id_map is not None:
                    new_deleted[self._id_map] = self._deleted
                else:
                    new_deleted[:base_n] = self._deleted
            live_delta = self._delta
            if live_delta is not None and dcount:
                new_deleted[base_n:] = live_delta.deleted_flags(dcount)
            if live_delta is not None:
                tail_vecs, tail_del = live_delta.tail_after(dcount)
            else:
                tail_vecs = np.empty((0, dim), dtype=np.float32)
                tail_del = np.zeros(0, dtype=bool)
            clone._deleted = new_deleted
            self._install_snapshot(clone)
            # Inserts that raced the rebuild restart a fresh delta with
            # their external ids preserved (new base_n == old total).
            for vec, dead in zip(tail_vecs, tail_del):
                carried_id = self._insert_without_consolidation(vec)
                if dead:
                    self._delta.delete(carried_id)
        wall_s = time.perf_counter() - started
        report = ConsolidationReport(
            n_base=base_n, n_delta=dcount, wall_s=wall_s,
            n_carried=len(tail_vecs), build_report=build_report,
        )
        self._last_consolidation = report
        obs.get_logger("repro.updates").info(
            "delta.consolidated", algorithm=self.name,
            n_base=base_n, n_delta=dcount, n_carried=len(tail_vecs),
            wall_s=round(wall_s, 6),
        )
        if obs.enabled():
            handles = obs.instruments()
            handles.consolidations_total.inc()
            handles.delta_points.set(self.delta_points)
            handles.consolidation_lag_seconds.set(0.0)
            obs.record_span(
                "consolidate", wall_s, algorithm=self.name,
                n_base=base_n, n_delta=dcount, n_carried=len(tail_vecs),
            )
        return report

    def _insert_without_consolidation(self, vector: np.ndarray) -> int:
        """Delta insert that never triggers auto-consolidation (used to
        carry racing inserts across a snapshot swap)."""
        vector = self._validate_insert(vector)
        with self._update_lock:
            delta = self._delta
            if delta is None:
                delta = self._delta = DeltaTier(
                    self.data.shape[1], len(self.data),
                    max_m=self.delta_max_m,
                    ef_construction=self.delta_ef_construction,
                )
            return delta.insert(vector)

    def _original_order_data(self) -> np.ndarray:
        """Base vectors in original-id order (undoing any reorder())."""
        data = np.asarray(self.data)
        if self._id_map is None:
            return data
        out = np.empty_like(data)
        out[self._id_map] = data
        return out

    def _clone_for_rebuild(self):
        """A detached copy of this index that can build() the merged
        dataset without touching the live snapshot."""
        clone = copy.copy(self)
        clone.seed_provider = copy.deepcopy(self.seed_provider)
        clone.data = None
        clone.graph = None
        clone._deleted = None
        clone._compressed = None
        clone._search_ctx = None
        clone._delta = None
        clone._id_map = None
        clone._id_inv = None
        clone._update_lock = threading.RLock()
        clone._consolidation_thread = None
        clone._consolidation_error = None
        return clone

    #: live attributes that must NOT be overwritten by a snapshot swap
    _SWAP_EXCLUDE = frozenset({
        "_update_lock", "_consolidation_thread", "_consolidation_error",
        "_last_consolidation",
    })

    def _install_snapshot(self, clone) -> None:
        """Atomically adopt a rebuilt snapshot's state.

        Ordering matters for readers racing the swap without the lock:
        ``data`` (a row-superset of the old array) lands first, then the
        tombstones sized for the new graph, then the graph itself — so a
        torn read sees at worst the old graph over the new data, never
        an out-of-range index.
        """
        self.data = clone.data
        self._deleted = clone._deleted
        self._id_map = clone._id_map
        self._id_inv = clone._id_inv
        self.graph = clone.graph
        for key, value in clone.__dict__.items():
            if key in self._SWAP_EXCLUDE or key in (
                "data", "graph", "_deleted", "_id_map", "_id_inv",
            ):
                continue
            setattr(self, key, value)

    def _internal_id(self, vertex_id: int) -> int:
        """Original-space id -> internal vertex id (identity pre-reorder)."""
        if self._id_map is None:
            return int(vertex_id)
        if self._id_inv is None:
            self._id_inv = np.empty(len(self._id_map), dtype=np.int64)
            self._id_inv[self._id_map] = np.arange(
                len(self._id_map), dtype=np.int64
            )
        return int(self._id_inv[vertex_id])

    def _grow_bookkeeping(self) -> None:
        """Extend per-vertex state after a native (in-graph) insertion."""
        self._deleted = np.append(self._deleted, False)
        self._drop_compressed_on_insert()
        self._observe_insert(None)
        if self._id_map is not None:
            # the new vertex is appended in both labelings: its original
            # id is the next fresh one, its internal id the last row
            self._id_map = np.append(self._id_map, len(self._id_map))
            self._id_inv = None
        self.seed_provider.prepare(self.data, self.graph)
        self._search_ctx = None

    # -- cache-locality reordering ------------------------------------------

    #: subclasses whose auxiliary structures hard-code internal vertex
    #: ids (e.g. HNSW's upper-layer graphs) set this False to refuse
    _reorder_ok = True

    def reorder(self, strategy: str = "bfs") -> np.ndarray:
        """Relabel vertices so graph neighbors sit close in memory.

        Best-first search touches ``data[neighbors]`` in adjacency
        order; after a BFS (or degree) relabeling those rows — and the
        CSR adjacency slices — are largely sequential, so the native
        kernel's gathers hit warm cache lines.  The permutation is
        invisible to callers: an inverse map is kept and every returned
        id (``search``/``search_batch``) stays in the *original* dataset
        space, tombstones follow their vertices, and ``delete`` keeps
        accepting original ids.  Deterministic seed providers (centroid,
        fixed entries) yield bit-identical results before and after;
        stateful ones (random draws, rebuilt trees) stay
        recall-equivalent but may pick different seed points.

        Returns the applied permutation ``order`` (new row -> old row).
        Raises :class:`NotImplementedError` for algorithms whose C4
        structures hard-code internal ids (HNSW's layer graphs).
        """
        self._require_built()
        if not self._reorder_ok:
            raise NotImplementedError(
                f"{self.name}: auxiliary structures reference internal "
                "vertex ids; reordering is not supported"
            )
        started = time.perf_counter()
        roots = self._reorder_roots()
        order = self.graph.reorder_permutation(strategy, roots=roots)
        inverse = np.empty(len(order), dtype=np.int64)
        inverse[order] = np.arange(len(order), dtype=np.int64)
        self.graph = self.graph.permute(order)
        self.data = np.ascontiguousarray(self.data[order])
        if self._deleted is not None:
            self._deleted = self._deleted[order]
        if self._compressed is not None:  # codes follow their rows
            self._compressed = self._compressed.permute(order)
        # compose with any earlier reorder so internal ids always map
        # straight back to the original dataset rows
        self._id_map = (
            order.copy() if self._id_map is None else self._id_map[order]
        )
        self._id_inv = None
        self.seed_provider.permute(inverse)
        self.seed_provider.prepare(self.data, self.graph)
        if hasattr(self, "medoid"):   # NSG/Vamana keep the entry id too
            self.medoid = int(inverse[self.medoid])
        self._search_ctx = None
        if obs.enabled():
            obs.record_span(
                "reorder", time.perf_counter() - started,
                algorithm=self.name, n=len(self.data), strategy=strategy,
            )
        return order

    def _reorder_roots(self) -> np.ndarray | None:
        """Preferred BFS start vertices (internal ids); providers with a
        natural entry (the medoid) anchor the relabeling at id 0."""
        medoid = getattr(self.seed_provider, "medoid", None)
        if medoid is not None:
            return np.asarray([int(medoid)], dtype=np.int64)
        return None

    def _context(self) -> SearchContext:
        """The index's reusable search scratch, rebuilt if ``data`` moved."""
        ctx = self._search_ctx
        if ctx is None or not ctx.compatible(self.data):
            ctx = self._search_ctx = SearchContext(self.data)
        return ctx

    # -- compressed (ADC) tier ---------------------------------------------

    def enable_compressed(
        self,
        num_subspaces: int = 8,
        codebook_size: int = 32,
        kmeans_iterations: int = 8,
        seed: int | None = None,
    ):
        """Fit the uint8 PQ tier that powers ``search(compressed=True)``.

        One-time cost over the built data; afterwards compressed
        searches walk the graph on codes + per-query LUTs and read
        float32 rows only to re-rank.  Returns the fitted
        :class:`~repro.quantization.CompressedTier` (also kept on the
        index and persisted by index format v4).
        """
        from repro.quantization import CompressedTier

        self._require_built()
        self._compressed = CompressedTier.fit(
            self.data,
            num_subspaces=num_subspaces,
            codebook_size=codebook_size,
            kmeans_iterations=kmeans_iterations,
            seed=self.seed if seed is None else seed,
        )
        return self._compressed

    @property
    def compressed_tier(self):
        """The attached :class:`CompressedTier`, or None."""
        return self._compressed

    def _require_compressed(self):
        if self._compressed is None:
            raise RuntimeError(
                f"{self.name}: no compressed tier — call enable_compressed() "
                "or load a format-v4 index carrying PQ codes"
            )
        return self._compressed

    # -- search -----------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int = 10,
        ef: int | None = None,
        counter: DistanceCounter | None = None,
        budget: QueryBudget | None = None,
        compressed: bool = False,
        rerank_factor: int | None = None,
        seeds: np.ndarray | None = None,
    ) -> SearchResult:
        """Approximate k nearest neighbors for one query.

        ``ef`` is the candidate-set size (CS); seed-acquisition distance
        evaluations are included in the reported NDC.  Malformed
        queries (wrong dtype/shape/dimension, NaN/Inf) raise
        :class:`InvalidQueryError` before touching the index.  With a
        :class:`QueryBudget`, a search that hits a limit returns its
        current best-k flagged ``degraded=True`` instead of raising;
        seed-acquisition NDC is charged against ``budget.max_ndc`` so
        the reported total never exceeds the cap.

        ``seeds`` overrides the provider's acquisition with explicit
        entry vertex ids (internal id space, already charged by the
        caller) — the sharded layer uses this to hand *identical* seeds
        to every replica of a hedged request, making the hedge's result
        bit-identical whether or not it fires.

        ``compressed=True`` routes on the ADC tier (see
        :meth:`enable_compressed`): the traversal scores frontier
        neighbors from uint8 PQ codes through a per-query LUT and never
        reads a float32 row; the best ``rerank_factor * k`` candidates
        (default ``repro.compressed.DEFAULT_RERANK_FACTOR``) are then
        re-ranked exactly.  ``result.ndc`` keeps counting only true
        distance computations (seeds + re-rank) while the traversal's
        table lookups land in ``result.adc_lookups``; an NDC budget caps
        that total work (seed NDC plus ADC lookups) in this mode.

        Observability: with metrics on, the query lands in the
        ``repro_query_*`` instrument family; with tracing on, a
        hop-level :class:`~repro.observability.QueryTrace` is recorded
        and ``result.trace_id`` set.  Disabled mode costs two global
        reads — ids, distances and NDC are bit-identical either way.
        """
        self._require_built()
        reason = validate_query(query, self.data.shape[1])
        if reason is not None:
            raise InvalidQueryError(f"{self.name}: {reason}")
        ef = max(k, ef if ef is not None else self.default_ef)
        if compressed:
            from repro.compressed import DEFAULT_RERANK_FACTOR, finish_compressed

            tier = self._require_compressed()
            factor = (
                DEFAULT_RERANK_FACTOR if rerank_factor is None
                else int(rerank_factor)
            )
            if factor < 1:
                raise ValueError(f"rerank_factor must be >= 1, got {factor}")
            # the traversal must hold a pool worth re-ranking
            ef = max(ef, factor * k)
        counter = counter if counter is not None else DistanceCounter()
        metrics = obs.enabled()
        trace = obs.start_query_trace(self.name, k, ef) if obs.tracing() else None
        started = time.perf_counter() if metrics else 0.0
        start = counter.count
        ctx = self._context()
        if trace is not None:
            trace.attach(start)
            ctx.trace = trace
        try:
            if seeds is None:
                seeds = self.seed_provider.acquire(query, counter)
            if trace is not None:
                trace.record_seeds(seeds, counter.count)
            if budget is not None:
                budget = budget.after_spending(counter.count - start)
            if compressed:
                # the router's counter counts ADC lookups in this mode;
                # true NDC resumes at the re-rank below
                adc_counter = DistanceCounter()
                ctx.compressed = tier
                try:
                    route = self._route(
                        query, np.asarray(seeds, dtype=np.int64), ef,
                        adc_counter, ctx=ctx, budget=budget,
                    )
                finally:
                    ctx.compressed = None
                    ctx.lut = None
                result = finish_compressed(
                    route, self.data, ctx.query64, self._deleted,
                    adc_counter.count, counter, max_pool=factor * k,
                )
            else:
                result = self._route(
                    query, np.asarray(seeds, dtype=np.int64), ef, counter,
                    ctx=ctx, budget=budget,
                )
        finally:
            if trace is not None:
                ctx.trace = None
        result.ndc = counter.count - start
        if self._deleted is not None and self._deleted.any() and len(result.ids):
            keep = ~self._deleted[result.ids]
            result.ids = result.ids[keep]
            result.dists = result.dists[keep]
        result.ids = result.ids[:k]
        result.dists = result.dists[:k]
        if self._id_map is not None and len(result.ids):
            result.ids = self._id_map[result.ids]
        delta = self._delta
        if delta is not None and delta.n:
            self._merge_delta(result, query, k, ef, counter, budget, start)
        if metrics:
            elapsed = time.perf_counter() - started
            if trace is not None:
                obs.finish_query_trace(trace, result, elapsed)
            obs.observe_query(result, elapsed)
        return result

    def search_batch(
        self,
        queries: np.ndarray,
        k: int = 10,
        ef: int | None = None,
        workers: int = 1,
        budget=None,
        compressed: bool = False,
        rerank_factor: int | None = None,
    ):
        """Answer many queries through :func:`repro.batch.search_batch`.

        Method form of the batch API so a bare index satisfies the same
        duck type as :class:`~repro.sharding.ShardedIndex` — anything
        exposing ``search_batch`` can sit behind the serving coalescer.
        ``budget`` may be a single :class:`QueryBudget` or one per query
        (``None`` entries = unbudgeted); results are bit-identical (ids
        and NDC) to a sequential ``search`` loop.
        """
        from repro.batch import search_batch as _search_batch

        return _search_batch(
            self, queries, k=k, ef=ef, workers=workers, budget=budget,
            compressed=compressed, rerank_factor=rerank_factor,
        )

    def _merge_delta(
        self,
        result: SearchResult,
        query: np.ndarray,
        k: int,
        ef: int,
        counter: DistanceCounter,
        budget: QueryBudget | None,
        start: int,
    ) -> None:
        """Fold the delta tier's top-k into a finished base result.

        The global top-k is a subset of (base top-k ∪ delta top-k), so
        merging the two finished lists by ``(distance, id)`` and
        truncating is exact.  The delta walk is charged to the same
        counter with whatever budget remains after the base spend, so a
        two-tier search never exceeds its NDC cap.  Only called when the
        delta is non-empty — the empty-delta path is bit-identical
        (ids and NDC) to the single-tier code.
        """
        delta = self._delta
        remaining = (
            None if budget is None
            else budget.after_spending(counter.count - start)
        )
        dres = delta.search(
            np.ascontiguousarray(query, dtype=np.float64), k, ef,
            counter, budget=remaining,
        )
        result.hops += dres.hops
        result.visited += dres.visited
        if dres.degraded:
            result.degraded = True
            if result.budget is None:
                result.budget = dres.budget
        if len(dres.ids):
            all_ids = np.concatenate([result.ids, dres.ids])
            all_dists = np.concatenate([result.dists, dres.dists])
            order = np.lexsort((all_ids, all_dists))[:k]
            result.ids = all_ids[order]
            result.dists = all_dists[order]
        result.ndc = counter.count - start

    def _route(
        self,
        query: np.ndarray,
        seeds: np.ndarray,
        ef: int,
        counter: DistanceCounter,
        ctx: SearchContext | None = None,
        budget: QueryBudget | None = None,
    ) -> SearchResult:
        """Default C7: best-first search; algorithms override as needed."""
        return best_first_search(
            self.graph, self.data, query, seeds, ef, counter, ctx=ctx,
            budget=budget,
        )

    def batch_search(
        self,
        queries: np.ndarray,
        ground_truth: np.ndarray,
        k: int = 10,
        ef: int | None = None,
        compressed: bool = False,
        rerank_factor: int | None = None,
    ) -> BatchStats:
        """Search a batch and aggregate recall/QPS/NDC/speedup.

        ``compressed``/``rerank_factor`` select per-query ADC traversal
        (see :meth:`search`); the reported ``mean_ndc`` then covers only
        true distance computations, matching the paper's accounting.
        """
        self._require_built()
        n = len(self.data)
        recalls = np.empty(len(queries))
        ndcs = np.empty(len(queries))
        hops = np.empty(len(queries))
        latencies = np.empty(len(queries))
        started = time.perf_counter()
        for i, query in enumerate(queries):
            query_started = time.perf_counter()
            result = self.search(
                query, k=k, ef=ef, compressed=compressed,
                rerank_factor=rerank_factor,
            )
            latencies[i] = time.perf_counter() - query_started
            truth = set(int(t) for t in ground_truth[i][:k])
            recalls[i] = len(truth.intersection(int(r) for r in result.ids)) / k
            ndcs[i] = result.ndc
            hops[i] = result.hops
        elapsed = max(time.perf_counter() - started, 1e-9)
        mean_ndc = float(ndcs.mean())
        return BatchStats(
            recall=float(recalls.mean()),
            qps=len(queries) / elapsed,
            mean_ndc=mean_ndc,
            mean_hops=float(hops.mean()),
            speedup=n / max(mean_ndc, 1.0),
            per_query_recall=recalls,
            latency_p50_ms=float(np.percentile(latencies, 50) * 1000),
            latency_p95_ms=float(np.percentile(latencies, 95) * 1000),
            latency_p99_ms=float(np.percentile(latencies, 99) * 1000),
        )
