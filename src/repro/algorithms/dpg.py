"""DPG (A9) — Diversified Proximity Graph.

Diversifies a KGraph by angle-sum neighbor selection (keep κ/2 of κ,
Appendix C proves this approximates RNG) and then *undirects* every
edge — the reverse edges give DPG its single connected component and
cluster robustness (Table 4) at the price of a large index (Figure 6,
some vertices' degree "surges back" per Appendix H).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.refinement import map_refine
from repro.components.selection import select_angle_sum
from repro.components.seeding import RandomSeeds
from repro.graphs.graph import Graph
from repro.nndescent import nn_descent

__all__ = ["DPG"]


class DPG(GraphANNS):
    """Angle-diversified, undirected KGraph."""

    name = "dpg"

    def __init__(
        self,
        k: int = 40,
        iterations: int = 8,
        num_seeds: int = 8,
        seed: int = 0,
        n_workers: int = 1,
    ):
        super().__init__(seed=seed, n_workers=n_workers)
        self.k = k
        self.iterations = iterations
        self.seed_provider = RandomSeeds(count=num_seeds, seed=seed)

    def _build_phases(self, data: np.ndarray, bctx):
        state: dict = {}

        def init_phase():
            state["knn"] = nn_descent(
                data, self.k, iterations=self.iterations,
                counter=bctx.counter, seed=self.seed, bctx=bctx,
            )

        def diversify_phase():
            result = state["knn"]
            keep = max(1, self.k // 2)
            graph = Graph(len(data))
            if bctx.parallel:
                def refine_point(p, worker):
                    return select_angle_sum(
                        data[p], result.ids[p], result.dists[p], data, keep
                    )

                map_refine(bctx, len(data), refine_point,
                           lambda p, sel: graph.set_neighbors(p, sel))
            else:
                for p in range(len(data)):
                    selected = select_angle_sum(
                        data[p], result.ids[p], result.dists[p], data, keep
                    )
                    graph.set_neighbors(p, selected)
            state["graph"] = graph

        def undirect_phase():
            graph = state["graph"]
            # add reverse edges: DPG keeps bi-directed edges (§3.2 A9)
            for u, v in list(graph.edges()):
                graph.add_edge(v, u)
            self.graph = graph

        return [
            ("c1", init_phase),
            ("c2+c3", diversify_phase),
            ("c5", undirect_phase),
        ]
