"""DPG (A9) — Diversified Proximity Graph.

Diversifies a KGraph by angle-sum neighbor selection (keep κ/2 of κ,
Appendix C proves this approximates RNG) and then *undirects* every
edge — the reverse edges give DPG its single connected component and
cluster robustness (Table 4) at the price of a large index (Figure 6,
some vertices' degree "surges back" per Appendix H).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.selection import select_angle_sum
from repro.components.seeding import RandomSeeds
from repro.distance import DistanceCounter
from repro.graphs.graph import Graph
from repro.nndescent import nn_descent

__all__ = ["DPG"]


class DPG(GraphANNS):
    """Angle-diversified, undirected KGraph."""

    name = "dpg"

    def __init__(
        self,
        k: int = 40,
        iterations: int = 8,
        num_seeds: int = 8,
        seed: int = 0,
    ):
        super().__init__(seed=seed)
        self.k = k
        self.iterations = iterations
        self.seed_provider = RandomSeeds(count=num_seeds, seed=seed)

    def _build(self, data: np.ndarray, counter: DistanceCounter) -> None:
        result = nn_descent(
            data, self.k, iterations=self.iterations, counter=counter,
            seed=self.seed,
        )
        keep = max(1, self.k // 2)
        graph = Graph(len(data))
        for p in range(len(data)):
            selected = select_angle_sum(
                data[p], result.ids[p], result.dists[p], data, keep
            )
            graph.set_neighbors(p, selected)
        # add reverse edges: DPG keeps bi-directed edges (§3.2 A9)
        for u, v in list(graph.edges()):
            graph.add_edge(v, u)
        self.graph = graph
