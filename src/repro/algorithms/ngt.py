"""NGT (A4) — Neighborhood Graph and Tree (Yahoo Japan).

Construction: an ANNG is grown incrementally like NSW but using *range
search* for candidate acquisition; degree is then reduced:

* **NGT-panng** — path adjustment (the RNG approximation of Appendix B)
  caps each vertex at ``max_degree``;
* **NGT-onng** — out-degree/in-degree adjustment first (keep the best
  ``out_edges`` per vertex, then guarantee ``in_edges`` incoming edges),
  followed by the same path adjustment.

Search: seeds from a VP-tree, routing by range search with ε.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.routing import SearchResult, range_search
from repro.components.selection import path_adjustment
from repro.components.seeding import VPTreeSeeds
from repro.distance import DistanceCounter
from repro.graphs.graph import Graph

__all__ = ["NGTPanng", "NGTOnng"]


class _NGTBase(GraphANNS):
    """Shared ANNG construction + range-search routing."""

    def __init__(
        self,
        k: int = 10,
        ef_construction: int = 40,
        max_degree: int = 20,
        epsilon: float = 0.1,
        num_seeds: int = 4,
        seed: int = 0,
        n_workers: int = 1,
    ):
        super().__init__(seed=seed, n_workers=n_workers)
        self.k = k
        self.ef_construction = ef_construction
        self.max_degree = max_degree
        self.epsilon = epsilon
        self.seed_provider = VPTreeSeeds(count=num_seeds, seed=seed)

    def _build_anng(self, data: np.ndarray, counter: DistanceCounter) -> Graph:
        n = len(data)
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n)
        graph = Graph(n)
        inserted: list[int] = []
        for pos, p in enumerate(order):
            p = int(p)
            if pos == 0:
                inserted.append(p)
                continue
            m = min(self.k, len(inserted))
            entry = np.asarray(
                [inserted[int(rng.integers(len(inserted)))]], dtype=np.int64
            )
            result = range_search(
                graph, data, data[p], entry,
                ef=max(self.ef_construction, m), counter=counter,
                epsilon=self.epsilon,
            )
            for neighbor in result.ids[:m]:
                graph.add_undirected_edge(p, int(neighbor))
            inserted.append(p)
        return graph

    def _route(self, query, seeds, ef, counter, ctx=None, budget=None) -> SearchResult:
        return range_search(
            self.graph, self.data, query, seeds, ef, counter,
            epsilon=self.epsilon, ctx=ctx, budget=budget,
        )


class NGTPanng(_NGTBase):
    """ANNG + path adjustment (pruned ANNG)."""

    name = "ngt-panng"

    def _build_phases(self, data: np.ndarray, bctx):
        counter = bctx.counter
        state: dict = {}

        def init_phase():
            state["anng"] = self._build_anng(data, counter)

        def adjust_phase():
            self.graph = path_adjustment(
                state["anng"], data, self.max_degree, counter=counter
            )

        return [("c1", init_phase), ("c2+c3", adjust_phase)]


class NGTOnng(_NGTBase):
    """ANNG + out/in-degree adjustment + path adjustment."""

    name = "ngt-onng"

    def __init__(self, out_edges: int = 10, in_edges: int = 12, **kwargs):
        super().__init__(**kwargs)
        self.out_edges = out_edges
        self.in_edges = in_edges

    def _build_phases(self, data: np.ndarray, bctx):
        counter = bctx.counter
        state: dict = {}

        def init_phase():
            state["anng"] = self._build_anng(data, counter)

        def adjust_phase():
            anng = state["anng"]
            adjusted = Graph(anng.n)
            # out-degree adjustment: keep each vertex's closest out_edges
            for p in range(anng.n):
                nbrs = anng.neighbor_array(p)
                if len(nbrs) == 0:
                    continue
                dists = counter.one_to_many(data[p], data[nbrs])
                order = np.argsort(dists, kind="stable")[: self.out_edges]
                adjusted.set_neighbors(p, nbrs[order])
            # in-degree adjustment: ensure each vertex receives in_edges edges
            in_degree = np.zeros(anng.n, dtype=np.int64)
            for _, v in adjusted.edges():
                in_degree[v] += 1
            for v in range(anng.n):
                if in_degree[v] >= self.in_edges:
                    continue
                nbrs = anng.neighbor_array(v)
                if len(nbrs) == 0:
                    continue
                dists = counter.one_to_many(data[v], data[nbrs])
                for u in nbrs[np.argsort(dists, kind="stable")]:
                    if in_degree[v] >= self.in_edges:
                        break
                    u = int(u)
                    if v not in adjusted.neighbors(u):
                        adjusted.add_edge(u, v)
                        in_degree[v] += 1
            self.graph = path_adjustment(
                adjusted, data, self.max_degree, counter=counter
            )

        return [("c1", init_phase), ("c2+c3", adjust_phase)]
