"""HCNNG (A13) — Hierarchical Clustering-based Nearest Neighbor Graph.

The only MST-based algorithm in the survey: ``num_clusterings`` random
two-pivot hierarchical clusterings each contribute the exact MST of
every leaf cluster; the union of MST edges (undirected, degree-capped
by keeping the shortest) is the index.  Seeds come from KD-trees
descended by pure value comparison (zero NDC) and routing is guided
search (§4.2 C7_HCNNG).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.clustering import hierarchical_two_pivot_clusters
from repro.components.routing import SearchResult, guided_search
from repro.components.seeding import KDTreeDescendSeeds
from repro.graphs.graph import Graph
from repro.graphs.mst import euclidean_mst

__all__ = ["HCNNG"]


class HCNNG(GraphANNS):
    """Union of per-cluster MSTs with guided search."""

    name = "hcnng"

    def __init__(
        self,
        num_clusterings: int = 8,
        min_cluster_size: int = 50,
        max_degree: int = 40,
        num_trees: int = 3,
        num_seeds: int = 8,
        seed: int = 0,
        n_workers: int = 1,
    ):
        super().__init__(seed=seed, n_workers=n_workers)
        self.num_clusterings = num_clusterings
        self.min_cluster_size = min_cluster_size
        self.max_degree = max_degree
        self.seed_provider = KDTreeDescendSeeds(
            num_trees=num_trees, count=num_seeds, seed=seed
        )

    def _build_phases(self, data: np.ndarray, bctx):
        counter = bctx.counter
        n = len(data)
        state: dict = {}

        def cluster_phase():
            # the shared rng threads through all clusterings, so this loop
            # is inherently sequential; n_workers is a no-op for HCNNG
            rng = np.random.default_rng(self.seed)
            edge_weights: dict[tuple[int, int], float] = {}
            for _ in range(self.num_clusterings):
                clusters = hierarchical_two_pivot_clusters(
                    data, self.min_cluster_size, rng, counter=counter
                )
                for cluster in clusters:
                    if len(cluster) < 2:
                        continue
                    for u, v, w in euclidean_mst(
                        data[cluster], counter=counter
                    ):
                        a, b = int(cluster[u]), int(cluster[v])
                        key = (a, b) if a < b else (b, a)
                        edge_weights.setdefault(key, w)
            state["edge_weights"] = edge_weights

        def cap_phase():
            per_vertex: list[list[tuple[float, int]]] = [[] for _ in range(n)]
            for (a, b), w in state["edge_weights"].items():
                per_vertex[a].append((w, b))
                per_vertex[b].append((w, a))
            graph = Graph(n)
            for v, incident in enumerate(per_vertex):
                incident.sort()
                graph.set_neighbors(
                    v, [u for _, u in incident[: self.max_degree]]
                )
            self.graph = graph

        return [("c2+c3", cluster_phase), ("c2+c3", cap_phase)]

    def _route(self, query, seeds, ef, counter, ctx=None, budget=None) -> SearchResult:
        return guided_search(
            self.graph, self.data, query, seeds, ef, counter, ctx=ctx,
            budget=budget,
        )
