"""HNSW (A2) — Hierarchical Navigable Small World graphs.

Each point draws a level from an exponential distribution; upper layers
form a coarse-to-fine navigation hierarchy, and every layer's neighbors
are chosen by the heuristic (RNG) rule of Appendix A.  Search descends
greedily from the fixed top-layer entry to layer 1, then runs
best-first search on the base layer.  The extra layers are the memory
overhead the paper notes (§3.2 A2); base-layer statistics (GQ/AD/CC)
are what Table 4 reports.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.routing import SearchResult, best_first_search
from repro.components.selection import select_rng_heuristic
from repro.components.seeding import FixedSeeds
from repro.distance import DistanceCounter
from repro.graphs.graph import Graph

__all__ = ["HNSW"]


class HNSW(GraphANNS):
    """Multi-layer graph with heuristic neighbor selection."""

    name = "hnsw"
    # the upper-layer graphs and entry point hard-code base-layer
    # vertex ids; a base-layer relabeling would orphan them
    _reorder_ok = False

    def __init__(
        self,
        m: int = 10,
        ef_construction: int = 40,
        seed: int = 0,
        n_workers: int = 1,
    ):
        super().__init__(seed=seed, n_workers=n_workers)
        self.m = m
        self.m0 = 2 * m           # base-layer degree bound, per the paper
        self.ef_construction = ef_construction
        self.level_mult = 1.0 / math.log(m)
        self.layers: list[Graph] = []
        self.entry_point = 0
        self.max_level = 0

    # -- construction ---------------------------------------------------

    def _build_phases(self, data: np.ndarray, bctx):
        # incremental insertion is inherently sequential (each point
        # searches the graph every earlier point mutated), so the
        # refinement loop runs on one thread at any worker count
        counter = bctx.counter
        n = len(data)
        state: dict = {}

        def init_phase():
            rng = np.random.default_rng(self.seed)
            levels = np.minimum(
                (-np.log(rng.random(n)) * self.level_mult).astype(np.int64),
                12,
            )
            self.max_level = int(levels.max())
            self.layers = [Graph(n) for _ in range(self.max_level + 1)]
            order = rng.permutation(n)
            # start with the first point as the global entry
            first = int(order[0])
            self.entry_point = first
            state["levels"] = levels
            state["order"] = order
            state["current_max"] = int(levels[first])
            state["rng"] = rng

        def insert_phase():
            levels = state["levels"]
            current_max = state["current_max"]
            inserted_any = False
            for p in state["order"]:
                p = int(p)
                if not inserted_any:
                    inserted_any = True
                    continue
                self._insert(p, int(levels[p]), data, counter)
                if levels[p] > current_max:
                    current_max = int(levels[p])
                    self.entry_point = p
            self.graph = self.layers[0]
            self.seed_provider = FixedSeeds(np.asarray([self.entry_point]))
            self._rng = state["rng"]

        return [("c1", init_phase), ("c2+c3", insert_phase)]

    def insert(self, vector: np.ndarray) -> int:
        """Incremental insertion — HNSW's native construction step."""
        self._require_built()
        vector = self._validate_insert(vector)
        level = min(int(-math.log(self._rng.random()) * self.level_mult), 12)
        while level > self.max_level:
            self.layers.append(Graph(self.graph.n))
            self.max_level += 1
        self.data = np.vstack([self.data, vector[None, :]])
        new_id = None
        for layer in self.layers:
            new_id = layer.add_vertex()
        counter = DistanceCounter()
        self._insert(new_id, level, self.data, counter)
        if level >= self._vertex_top_level(self.entry_point):
            self.entry_point = new_id
        for layer in self.layers:
            layer.finalize()
        self.seed_provider = FixedSeeds(np.asarray([self.entry_point]))
        self._grow_bookkeeping()
        return new_id

    def _insert(
        self, p: int, level: int, data: np.ndarray, counter: DistanceCounter
    ) -> None:
        entry = self.entry_point
        entry_level = self._vertex_top_level(entry)
        # greedy descent through layers above the insertion level
        for layer in range(entry_level, level, -1):
            entry = self._greedy_step(layer, entry, data[p], counter)
        entries = np.asarray([entry], dtype=np.int64)
        for layer in range(min(level, entry_level), -1, -1):
            graph = self.layers[layer]
            result = best_first_search(
                graph, data, data[p], entries, ef=self.ef_construction,
                counter=counter,
            )
            cap = self.m0 if layer == 0 else self.m
            selected = select_rng_heuristic(
                data[p], result.ids, result.dists, data, cap, counter=counter
            )
            for v in selected:
                v = int(v)
                graph.add_edge(p, v)
                graph.add_edge(v, p)
                nbrs = graph.neighbors(v)
                if len(nbrs) > cap:
                    arr = np.asarray(nbrs, dtype=np.int64)
                    dists = counter.one_to_many(data[v], data[arr])
                    srt = np.argsort(dists, kind="stable")
                    pruned = select_rng_heuristic(
                        data[v], arr[srt], dists[srt], data, cap, counter=counter
                    )
                    graph.set_neighbors(v, pruned)
            entries = result.ids if len(result.ids) else entries

    def _vertex_top_level(self, v: int) -> int:
        top = 0
        for layer in range(self.max_level, 0, -1):
            if self.layers[layer].neighbors(v) or layer == 0:
                top = layer
                break
        return top

    def _greedy_step(
        self, layer: int, entry: int, query: np.ndarray, counter: DistanceCounter
    ) -> int:
        graph = self.layers[layer]
        current = entry
        current_dist = counter.pair(query, self.data[current])
        improved = True
        while improved:
            improved = False
            nbrs = graph.neighbor_array(current)
            if len(nbrs) == 0:
                break
            dists = counter.one_to_many(query, self.data[nbrs])
            best = int(np.argmin(dists))
            if dists[best] < current_dist:
                current = int(nbrs[best])
                current_dist = float(dists[best])
                improved = True
        return current

    # -- search -----------------------------------------------------------

    def _route(
        self,
        query: np.ndarray,
        seeds: np.ndarray,
        ef: int,
        counter: DistanceCounter,
        ctx=None,
        budget=None,
    ) -> SearchResult:
        entry = int(seeds[0])
        hops = 0
        descent_start = counter.count
        trace = ctx.trace if ctx is not None else None
        for layer in range(self.max_level, 0, -1):
            before = counter.count
            entry = self._greedy_step(layer, entry, query, counter)
            hops += 1
            if trace is not None:  # upper-layer descent is a hop too
                trace.hop(entry, counter.count, counter.count - before)
        if budget is not None:
            # the upper-layer descent spent NDC too; charge it so the
            # base-layer search cannot blow the per-query cap
            budget = budget.after_spending(counter.count - descent_start)
        result = best_first_search(
            self.graph, self.data, query,
            np.asarray([entry], dtype=np.int64), ef, counter, ctx=ctx,
            budget=budget,
        )
        result.hops += hops
        return result

    def aux_size_bytes(self) -> int:
        """The hierarchy's upper layers (the paper's memory-usage caveat
        for HNSW) — the C4 auxiliary structure over the base graph."""
        upper = sum(g.index_size_bytes() for g in self.layers[1:])
        return upper + self.seed_provider.extra_bytes
