"""The paper's synthetic dataset generator (Table 10, Appendix G).

Twelve synthetic datasets vary four knobs — dimension, cardinality,
number of clusters, and the standard deviation of the distribution in
each cluster — around the default point (d=32, n=100,000, 10 clusters,
SD=5).  We reproduce that generator: cluster centers are drawn uniformly
in a fixed box, points are isotropic Gaussians around their centers,
queries come from the same mixture.

Cardinalities are scaled down (documented in DESIGN.md §2); the knob
*ratios* (10x steps) are preserved so the scalability trends of Table 12
remain comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import Dataset
from repro.datasets.ground_truth import brute_force_knn, estimate_lid

__all__ = ["SyntheticSpec", "SYNTHETIC_SPECS", "make_clustered"]

# Cluster centers are drawn uniformly in [0, _CENTER_BOX]^d.  The box is
# sized so that at the default SD=5 clusters overlap moderately (like
# real feature data), SD=1 separates them and SD=10 merges them — the
# difficulty gradient Table 12's standard-deviation sweep relies on.
_CENTER_BOX = 18.0


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of one synthetic dataset (one row of Table 10)."""

    name: str
    dim: int
    cardinality: int
    num_clusters: int
    std_dev: float
    num_queries: int


# The paper's 12 synthetic datasets (Table 10), cardinalities scaled
# 1:20 so that the 10^4 / 10^5 / 10^6 ratio ladder becomes
# 500 / 5,000 / 50,000 — still two decades of scale.
_SCALE = 20
SYNTHETIC_SPECS: dict[str, SyntheticSpec] = {
    spec.name: spec
    for spec in [
        SyntheticSpec("d_8", 8, 100_000 // _SCALE, 10, 5.0, 100),
        SyntheticSpec("d_32", 32, 100_000 // _SCALE, 10, 5.0, 100),
        SyntheticSpec("d_128", 128, 100_000 // _SCALE, 10, 5.0, 100),
        SyntheticSpec("n_10000", 32, 10_000 // _SCALE, 10, 5.0, 50),
        SyntheticSpec("n_100000", 32, 100_000 // _SCALE, 10, 5.0, 100),
        SyntheticSpec("n_1000000", 32, 1_000_000 // _SCALE, 10, 5.0, 100),
        SyntheticSpec("c_1", 32, 100_000 // _SCALE, 1, 5.0, 100),
        SyntheticSpec("c_10", 32, 100_000 // _SCALE, 10, 5.0, 100),
        SyntheticSpec("c_100", 32, 100_000 // _SCALE, 100, 5.0, 100),
        SyntheticSpec("s_1", 32, 100_000 // _SCALE, 10, 1.0, 100),
        SyntheticSpec("s_5", 32, 100_000 // _SCALE, 10, 5.0, 100),
        SyntheticSpec("s_10", 32, 100_000 // _SCALE, 10, 10.0, 100),
    ]
}


def make_clustered(
    dim: int,
    cardinality: int,
    num_clusters: int,
    std_dev: float,
    num_queries: int = 100,
    gt_depth: int = 100,
    seed: int = 7,
    name: str | None = None,
    measure_lid: bool = False,
) -> Dataset:
    """Generate one clustered-Gaussian dataset with exact ground truth."""
    if cardinality < gt_depth:
        gt_depth = max(1, cardinality // 2)
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.0, _CENTER_BOX, size=(num_clusters, dim))

    def sample(count: int) -> np.ndarray:
        assignment = rng.integers(0, num_clusters, size=count)
        noise = rng.normal(0.0, std_dev, size=(count, dim))
        return (centers[assignment] + noise).astype(np.float32)

    base = sample(cardinality)
    queries = sample(num_queries)
    gt, _ = brute_force_knn(base, queries, gt_depth)
    metadata = {
        "dim": dim,
        "cardinality": cardinality,
        "num_clusters": num_clusters,
        "std_dev": std_dev,
        "seed": seed,
    }
    if measure_lid:
        metadata["lid"] = estimate_lid(base)
    label = name or f"synth(d={dim},n={cardinality},c={num_clusters},s={std_dev:g})"
    return Dataset(label, base, queries, gt, metadata)


def make_from_spec(spec: SyntheticSpec, seed: int = 7) -> Dataset:
    """Materialise one named Table 10 dataset."""
    return make_clustered(
        spec.dim,
        spec.cardinality,
        spec.num_clusters,
        spec.std_dev,
        num_queries=spec.num_queries,
        seed=seed,
        name=spec.name,
    )
