"""Seeded stand-ins for the paper's eight real-world datasets (Table 3).

The real corpora (SIFT1M, GIST1M, GloVe, Crawl, Msong, Audio, UQ-V,
Enron) cannot be fetched offline and million-point builds are outside a
pure-Python budget, so each dataset is replaced by a generated stand-in
that preserves the two properties the survey's conclusions rest on:

* the **ambient dimension** of Table 3 (SIFT 128, GIST 960, ...), and
* the **relative difficulty ordering** via local intrinsic
  dimensionality: Audio (LID 5.6) is the easiest, GloVe (LID 20.0) the
  hardest.  We control LID by sampling a latent Gaussian of the target
  intrinsic dimension per cluster and embedding it into the ambient
  space with a random linear map plus small ambient noise.

Cardinalities are scaled ~1:125 (1M -> 8k); every algorithm sees the
same data so the paper's *relative* comparisons are preserved (see
DESIGN.md §2 for the substitution argument).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import Dataset
from repro.datasets.ground_truth import brute_force_knn, estimate_lid

__all__ = ["RealWorldSpec", "REALWORLD_SPECS", "make_standin"]


@dataclass(frozen=True)
class RealWorldSpec:
    """Stand-in recipe for one Table 3 dataset."""

    name: str
    dim: int               # ambient dimension from Table 3
    paper_cardinality: int
    paper_lid: float       # LID column of Table 3
    intrinsic_dim: int     # latent dimension controlling difficulty
    num_clusters: int
    cardinality: int       # scaled-down base size used here
    num_queries: int


REALWORLD_SPECS: dict[str, RealWorldSpec] = {
    spec.name: spec
    for spec in [
        RealWorldSpec("audio", 192, 53_387, 5.6, 6, 12, 4_000, 80),
        RealWorldSpec("uqv", 256, 1_000_000, 7.2, 8, 16, 8_000, 100),
        RealWorldSpec("sift1m", 128, 1_000_000, 9.3, 10, 16, 8_000, 100),
        RealWorldSpec("msong", 420, 992_272, 9.5, 10, 12, 8_000, 80),
        RealWorldSpec("enron", 1_369, 94_987, 11.7, 12, 10, 4_000, 80),
        RealWorldSpec("crawl", 300, 1_989_995, 15.7, 16, 20, 8_000, 100),
        RealWorldSpec("gist1m", 960, 1_000_000, 18.9, 19, 16, 8_000, 100),
        RealWorldSpec("glove", 100, 1_183_514, 20.0, 24, 16, 8_000, 100),
    ]
}


def make_standin(
    name: str,
    cardinality: int | None = None,
    num_queries: int | None = None,
    gt_depth: int = 100,
    seed: int = 11,
    measure_lid: bool = False,
) -> Dataset:
    """Generate the stand-in for one named real-world dataset.

    ``cardinality``/``num_queries`` override the spec defaults — the
    benchmark suite uses smaller slices where a full 8k build per
    algorithm would be wasteful.
    """
    if name not in REALWORLD_SPECS:
        raise KeyError(
            f"unknown real-world dataset {name!r}; "
            f"choose from {sorted(REALWORLD_SPECS)}"
        )
    spec = REALWORLD_SPECS[name]
    n = cardinality or spec.cardinality
    q = num_queries or spec.num_queries
    gt_depth = min(gt_depth, max(1, n // 2))
    # zlib.crc32 rather than hash(): Python string hashing is salted per
    # process, which would make "the same dataset" differ between runs
    rng = np.random.default_rng(seed + zlib.crc32(name.encode()) % 10_000)

    # Per-cluster random embeddings give locally low-dimensional sheets
    # whose LID tracks intrinsic_dim.  Center spread is scaled so the
    # typical center separation is ~3 cluster radii: multi-modal like
    # real feature data but not artificially disconnected.
    # 1.2 radii of separation: multi-modal density without fragmenting
    # the KNN graph — difficulty must come from intrinsic dimension (as
    # in the real corpora), not from artificial cluster isolation
    radius = np.sqrt(spec.intrinsic_dim)
    spread = 1.2 * radius * np.sqrt(3.0 / (2.0 * spec.dim))
    centers = rng.uniform(-spread, spread, size=(spec.num_clusters, spec.dim))
    embeddings = rng.normal(
        0.0, 1.0, size=(spec.num_clusters, spec.intrinsic_dim, spec.dim)
    ) / np.sqrt(spec.intrinsic_dim)

    def sample(count: int) -> np.ndarray:
        assignment = rng.integers(0, spec.num_clusters, size=count)
        latent = rng.normal(0.0, 1.0, size=(count, spec.intrinsic_dim))
        points = np.empty((count, spec.dim), dtype=np.float64)
        for c in range(spec.num_clusters):
            mask = assignment == c
            if not np.any(mask):
                continue
            points[mask] = centers[c] + latent[mask] @ embeddings[c]
        points += rng.normal(0.0, 0.01, size=points.shape)  # ambient noise
        return points.astype(np.float32)

    base = sample(n)
    queries = sample(q)
    gt, _ = brute_force_knn(base, queries, gt_depth)
    metadata = {
        "paper_dim": spec.dim,
        "paper_cardinality": spec.paper_cardinality,
        "paper_lid": spec.paper_lid,
        "intrinsic_dim": spec.intrinsic_dim,
        "seed": seed,
    }
    if measure_lid:
        metadata["measured_lid"] = estimate_lid(base)
    return Dataset(f"{name}-standin", base, queries, gt, metadata)
