"""Dataset substrate: synthetic generators, real-world stand-ins, ground truth.

The paper evaluates on eight real-world datasets (Table 3) and twelve
synthetic datasets (Table 10).  Real-world data is not redistributable
offline, so :mod:`repro.datasets.realworld` provides seeded synthetic
stand-ins matching each dataset's dimension and relative difficulty
(local intrinsic dimensionality); :mod:`repro.datasets.synthetic` is the
paper's own clustered-Gaussian generator.
"""

from repro.datasets.dataset import Dataset
from repro.datasets.synthetic import make_clustered, SyntheticSpec, SYNTHETIC_SPECS
from repro.datasets.realworld import make_standin, REALWORLD_SPECS, RealWorldSpec
from repro.datasets.ground_truth import brute_force_knn, estimate_lid
from repro.datasets.registry import load_dataset, available_datasets

__all__ = [
    "Dataset",
    "make_clustered",
    "SyntheticSpec",
    "SYNTHETIC_SPECS",
    "make_standin",
    "REALWORLD_SPECS",
    "RealWorldSpec",
    "brute_force_knn",
    "estimate_lid",
    "load_dataset",
    "available_datasets",
]
