"""Exact ground truth by linear scan, and the LID difficulty estimator.

The paper's ground-truth files are the queries' exact 20/100 nearest
neighbors computed by linear scanning (§2.2); :func:`brute_force_knn`
is that linear scan.  :func:`estimate_lid` is the maximum-likelihood
local-intrinsic-dimensionality estimator the ANNS literature uses for
the LID column of Table 3 — larger LID means a harder dataset.
"""

from __future__ import annotations

import numpy as np

from repro.distance import pairwise_l2

__all__ = ["brute_force_knn", "estimate_lid"]


def brute_force_knn(
    base: np.ndarray,
    queries: np.ndarray,
    k: int,
    chunk_size: int = 256,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``k`` nearest base points for every query.

    Returns ``(ids, dists)`` of shape ``(len(queries), k)``, rows in
    ascending distance order.
    """
    n = len(base)
    if k > n:
        raise ValueError(f"k={k} exceeds base size {n}")
    q = len(queries)
    ids = np.empty((q, k), dtype=np.int64)
    dists = np.empty((q, k), dtype=np.float64)
    for start in range(0, q, chunk_size):
        stop = min(start + chunk_size, q)
        block = pairwise_l2(queries[start:stop], base)
        if k < n:
            part = np.argpartition(block, k - 1, axis=1)[:, :k]
        else:
            part = np.tile(np.arange(n), (stop - start, 1))
        part_d = np.take_along_axis(block, part, axis=1)
        order = np.argsort(part_d, axis=1, kind="stable")
        ids[start:stop] = np.take_along_axis(part, order, axis=1)
        dists[start:stop] = np.take_along_axis(part_d, order, axis=1)
    return ids, dists


def estimate_lid(data: np.ndarray, k: int = 20, sample: int = 500,
                 seed: int = 0) -> float:
    """Average maximum-likelihood LID over a random sample of points.

    For a point with sorted neighbor distances ``r_1 <= ... <= r_k``,
    the MLE is ``-(1/k * sum(log(r_i / r_k)))^-1`` (Amsaleg et al.);
    the dataset LID reported in Table 3 is the average over points.
    """
    n = len(data)
    if n <= k:
        raise ValueError(f"need more than k={k} points, got {n}")
    rng = np.random.default_rng(seed)
    idx = rng.choice(n, size=min(sample, n), replace=False)
    dmat = pairwise_l2(data[idx], data)
    dmat[np.arange(len(idx)), idx] = np.inf
    knn = np.sort(np.partition(dmat, k - 1, axis=1)[:, :k], axis=1)
    r_k = knn[:, -1:]
    with np.errstate(divide="ignore"):
        logs = np.log(knn / r_k)
    # guard zero distances (duplicate points)
    logs = np.where(np.isfinite(logs), logs, 0.0)
    mean_log = logs.mean(axis=1)
    valid = mean_log < 0
    if not np.any(valid):
        return float("nan")
    lids = -1.0 / mean_log[valid]
    return float(np.mean(lids))
