"""The :class:`Dataset` container used throughout the library.

A dataset bundles the base vectors, the query vectors and the exact
ground-truth neighbors (computed by linear scan, as the paper does for
its ground-truth files).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """Base vectors + queries + exact ground truth.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"sift1m-standin"``).
    base:
        ``(n, d)`` float32 array of indexable points.
    queries:
        ``(q, d)`` float32 array of query points (disjoint from base).
    ground_truth:
        ``(q, k_gt)`` int array; row ``i`` holds the exact nearest
        neighbors of query ``i`` in ascending distance order.
    metadata:
        Free-form provenance (generator parameters, measured LID, ...).
    """

    name: str
    base: np.ndarray
    queries: np.ndarray
    ground_truth: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.base.ndim != 2:
            raise ValueError(f"base must be 2-D, got shape {self.base.shape}")
        if self.queries.ndim != 2:
            raise ValueError(f"queries must be 2-D, got shape {self.queries.shape}")
        if self.base.shape[1] != self.queries.shape[1]:
            raise ValueError(
                "base and queries must share a dimension: "
                f"{self.base.shape[1]} vs {self.queries.shape[1]}"
            )
        if len(self.ground_truth) != len(self.queries):
            raise ValueError(
                "one ground-truth row per query required: "
                f"{len(self.ground_truth)} rows vs {len(self.queries)} queries"
            )

    @property
    def n(self) -> int:
        """Cardinality of the base set (|S| in the paper)."""
        return len(self.base)

    @property
    def dim(self) -> int:
        """Vector dimensionality d."""
        return self.base.shape[1]

    @property
    def num_queries(self) -> int:
        """Number of query vectors."""
        return len(self.queries)

    @property
    def gt_depth(self) -> int:
        """How many exact neighbors are stored per query."""
        return self.ground_truth.shape[1]

    def subset(self, n: int, num_queries: int | None = None) -> "Dataset":
        """First ``n`` base points with ground truth recomputed.

        Useful for cardinality sweeps (Table 12, Figure 14) where the
        same generated cloud is evaluated at several scales.
        """
        from repro.datasets.ground_truth import brute_force_knn

        if n > self.n:
            raise ValueError(f"cannot take {n} points from a base of {self.n}")
        queries = self.queries if num_queries is None else self.queries[:num_queries]
        base = self.base[:n]
        gt, _ = brute_force_knn(base, queries, self.gt_depth)
        return Dataset(
            name=f"{self.name}[:{n}]",
            base=base,
            queries=queries,
            ground_truth=gt,
            metadata=dict(self.metadata, parent=self.name, subset_n=n),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset({self.name!r}, n={self.n}, dim={self.dim}, "
            f"queries={self.num_queries})"
        )
