"""Named dataset lookup with in-process caching.

Benchmarks and examples refer to datasets by name; the registry
materialises them lazily and memoises the result so the eight-dataset
benchmark suite generates each cloud exactly once per process.
"""

from __future__ import annotations

from functools import lru_cache

from repro.datasets.dataset import Dataset
from repro.datasets.realworld import REALWORLD_SPECS, make_standin
from repro.datasets.synthetic import SYNTHETIC_SPECS, make_from_spec

__all__ = ["available_datasets", "load_dataset"]


def available_datasets() -> list[str]:
    """All names accepted by :func:`load_dataset`."""
    return sorted(REALWORLD_SPECS) + sorted(SYNTHETIC_SPECS)


@lru_cache(maxsize=None)
def _load_cached(name: str, cardinality: int | None, num_queries: int | None) -> Dataset:
    if name in REALWORLD_SPECS:
        return make_standin(name, cardinality=cardinality, num_queries=num_queries)
    if name in SYNTHETIC_SPECS:
        dataset = make_from_spec(SYNTHETIC_SPECS[name])
        if cardinality is not None:
            dataset = dataset.subset(cardinality, num_queries)
        return dataset
    raise KeyError(
        f"unknown dataset {name!r}; available: {available_datasets()}"
    )


def load_dataset(
    name: str,
    cardinality: int | None = None,
    num_queries: int | None = None,
) -> Dataset:
    """Load (and cache) a named dataset, optionally down-sized."""
    return _load_cached(name, cardinality, num_queries)
