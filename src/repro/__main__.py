"""Command-line interface:  python -m repro <command>.

Commands
--------
``list``      — registered algorithms with their Table 2 taxonomy row.
``datasets``  — available dataset names (real-world stand-ins + synthetic).
``eval``      — build one algorithm on one dataset and print recall / QPS
                / speedup at a given candidate-set size; ``--trace`` /
                ``--metrics`` dump the run's observability artifacts.
``recommend`` — Table 7 advice for a named dataset.
``stats``     — summarize a JSONL query-trace file (total/mean NDC,
                hops, degradations, termination reasons).
``serve``     — build an index and run the async HTTP front door
                (dynamic micro-batching onto the fused MT kernel);
                SIGINT/SIGTERM drain gracefully.
"""

from __future__ import annotations

import argparse
import sys

from repro import ALGORITHMS, available_datasets, create, load_dataset, observability as obs
from repro.advisor import recommend_for_data
from repro.observability.exporters import format_stats, read_jsonl, summarize_traces


def _cmd_list(_args) -> int:
    print(f"{'name':11s} {'base graph':13s} {'edges':11s} {'construction':20s}")
    for name, meta in ALGORITHMS.items():
        print(
            f"{name:11s} {meta.base_graph:13s} {meta.edge_type:11s} "
            f"{meta.construction:20s}"
        )
    return 0


def _cmd_datasets(_args) -> int:
    for name in available_datasets():
        print(name)
    return 0


def _cmd_eval_sharded(args, dataset) -> int:
    import time

    import numpy as np

    from repro.metrics.recall import recall_at_k
    from repro.sharding import ShardedIndex

    t0 = time.perf_counter()
    index = ShardedIndex.build(
        dataset.base, num_shards=args.shards,
        algorithm=args.algorithm, seed=args.seed,
    )
    build_s = time.perf_counter() - t0
    if args.replicas > 1:
        index.replicate(args.replicas)
    result = index.search_batch(
        dataset.queries, k=args.k, ef=args.ef, fanout=args.fanout
    )
    recalls = [
        recall_at_k(result.ids[i][result.ids[i] >= 0],
                    dataset.ground_truth[i], args.k)
        for i in range(len(dataset.queries))
    ]
    recall = float(np.mean(recalls)) if recalls else float("nan")
    report = result.shard_report
    print(
        f"{args.algorithm} on {dataset.name} "
        f"[sharded S={args.shards} P={report.fanout} R={args.replicas}]: "
        f"build={build_s:.2f}s "
        f"index={index.index_size_bytes() / 1024:.0f}KiB "
        f"recall@{args.k}={recall:.3f} qps={result.qps:.0f} "
        f"degraded={result.num_degraded}/{len(dataset.queries)} "
        f"quarantined={len(report.quarantined)}"
    )
    if args.check:
        failures = []
        if recall != recall:
            failures.append("recall is NaN")
        if recall < args.check_recall:
            failures.append(
                f"recall@{args.k}={recall:.3f} "
                f"< required {args.check_recall:.3f}"
            )
        if failures:
            print("CHECK FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
        print("CHECK OK")
    if args.trace:
        n = obs.dump_traces(args.trace)
        print(f"wrote {n} traces to {args.trace}")
    if args.metrics:
        with open(args.metrics, "w") as fh:
            fh.write(obs.prometheus_text())
        print(f"wrote metrics to {args.metrics}")
    return 0


def _cmd_eval(args) -> int:
    if args.trace:
        obs.enable(metrics=True, trace=True)
    elif args.metrics:
        obs.enable(metrics=True, trace=False)
    dataset = load_dataset(args.dataset, cardinality=args.n, num_queries=args.queries)
    if args.shards > 1:
        for flag, name in ((args.compressed, "--compressed"),
                           (args.mmap_vectors, "--mmap-vectors"),
                           (args.reorder, "--reorder"),
                           (args.inserts, "--inserts"),
                           (args.seed_provider, "--seed-provider")):
            if flag:
                print(f"{name} is not supported with --shards",
                      file=sys.stderr)
                return 2
        return _cmd_eval_sharded(args, dataset)
    index = create(args.algorithm, seed=args.seed)
    report = index.build(dataset.base)
    if args.seed_provider:
        # post-build so it also covers algorithms that install their own
        # provider during construction (prepare runs immediately)
        from repro.presets import apply_seed_provider

        apply_seed_provider(index, args.seed_provider)
    if args.reorder:
        index.reorder(args.reorder)
    if args.inserts:
        import time

        import numpy as np

        rng = np.random.default_rng(args.seed + 1)
        picks = rng.integers(len(dataset.base), size=args.inserts)
        jitter = rng.standard_normal(
            (args.inserts, dataset.base.shape[1])
        ).astype(np.float32)
        index.auto_consolidate = False  # explicit lifecycle via flags
        t0 = time.perf_counter()
        for row, noise in zip(picks, jitter):
            index.insert(dataset.base[row] + 0.01 * noise)
        insert_s = max(time.perf_counter() - t0, 1e-9)
        line = (f"inserted {args.inserts} points "
                f"({args.inserts / insert_s:.0f} inserts/s, "
                f"delta={index.delta_points})")
        if args.consolidate:
            t0 = time.perf_counter()
            index.consolidate()
            line += f"; consolidated in {time.perf_counter() - t0:.2f}s"
        print(line)
    if args.compressed:
        index.enable_compressed()
    if args.mmap_vectors:
        # exercise the tiered deployment shape: persist with a raw
        # float32 sidecar, reload with the vectors memory-mapped
        import tempfile
        from pathlib import Path

        from repro.io import load_index, save_index

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "index.npz"
            save_index(index, path, vector_tier="sidecar")
            index = load_index(path, mmap_vectors=True)
            stats = index.batch_search(
                dataset.queries, dataset.ground_truth, k=args.k, ef=args.ef,
                compressed=args.compressed, rerank_factor=args.rerank_factor,
            )
    else:
        stats = index.batch_search(
            dataset.queries, dataset.ground_truth, k=args.k, ef=args.ef,
            compressed=args.compressed, rerank_factor=args.rerank_factor,
        )
    mode = "compressed" if args.compressed else "exact"
    print(
        f"{args.algorithm} on {dataset.name} [{mode}]: "
        f"build={report.build_time_s:.2f}s "
        f"index={report.index_size_bytes / 1024:.0f}KiB "
        f"recall@{args.k}={stats.recall:.3f} "
        f"qps={stats.qps:.0f} speedup={stats.speedup:.1f}x"
    )
    if args.check:
        failures = []
        if not (stats.recall == stats.recall):  # NaN guard
            failures.append("recall is NaN")
        if stats.recall < args.check_recall:
            failures.append(
                f"recall@{args.k}={stats.recall:.3f} "
                f"< required {args.check_recall:.3f}"
            )
        if stats.qps <= 0:
            failures.append("qps is not positive")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures), file=sys.stderr)
            return 1
        print("CHECK OK")
    if args.trace:
        n = obs.dump_traces(args.trace)
        print(f"wrote {n} traces to {args.trace}")
    if args.metrics:
        with open(args.metrics, "w") as fh:
            fh.write(obs.prometheus_text())
        print(f"wrote metrics to {args.metrics}")
    return 0


def _cmd_serve(args) -> int:
    from repro.serving import ServingConfig, serve

    obs.enable(metrics=True, trace=False)
    dataset = load_dataset(args.dataset, cardinality=args.n, num_queries=1)
    if args.shards > 1:
        from repro.sharding import ShardedIndex

        if args.compressed or args.mmap_vectors:
            print("--compressed/--mmap-vectors are not supported with "
                  "--shards", file=sys.stderr)
            return 2
        index = ShardedIndex.build(
            dataset.base, num_shards=args.shards,
            algorithm=args.algorithm, seed=args.seed,
        )
    else:
        index = create(args.algorithm, seed=args.seed)
        index.build(dataset.base)
        if args.compressed:
            index.enable_compressed()
        if args.mmap_vectors:
            import tempfile
            from pathlib import Path

            from repro.io import load_index, save_index

            tmp = tempfile.mkdtemp(prefix="repro-serve-")
            path = Path(tmp) / "index.npz"
            save_index(index, path, vector_tier="sidecar")
            index = load_index(path, mmap_vectors=True)
    config = ServingConfig(
        host=args.host, port=args.port,
        max_wait_ms=args.max_wait_ms, max_batch=args.max_batch,
        queue_depth=args.queue_depth, deadline_ms=args.deadline_ms,
        workers=args.workers, default_k=args.k, default_ef=args.ef,
        compressed=args.compressed, rerank_factor=args.rerank_factor,
    )
    serve(index, config)
    return 0


def _cmd_stats(args) -> int:
    traces = read_jsonl(args.trace_file)
    if not traces:
        print(f"no traces in {args.trace_file}", file=sys.stderr)
        return 1
    print(format_stats(summarize_traces(traces)))
    return 0


def _cmd_recommend(args) -> int:
    dataset = load_dataset(args.dataset, cardinality=args.n, num_queries=10)
    picks = recommend_for_data(
        dataset.base,
        updates_frequent=args.frequent_updates,
        memory_limited=args.limited_memory,
        external_memory=args.external_memory,
    )
    print(", ".join(picks))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="graph-based ANNS survey reproduction"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list algorithms").set_defaults(run=_cmd_list)
    commands.add_parser("datasets", help="list datasets").set_defaults(
        run=_cmd_datasets
    )

    evaluate = commands.add_parser("eval", help="build + evaluate one algorithm")
    evaluate.add_argument("algorithm", choices=sorted(ALGORITHMS))
    evaluate.add_argument("dataset")
    evaluate.add_argument("--n", type=int, default=2000)
    evaluate.add_argument("--queries", type=int, default=30)
    evaluate.add_argument("--k", type=int, default=10)
    evaluate.add_argument("--ef", type=int, default=60)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument(
        "--seed-provider", choices=("pq", "lsh", "random"), default=None,
        help="swap the algorithm's C4/C6 entry component "
             "(pq = zero-NDC ADC scan over compressed vectors)",
    )
    evaluate.add_argument(
        "--reorder", choices=("bfs", "degree"), default=None,
        help="relabel vertices for cache locality before searching",
    )
    evaluate.add_argument(
        "--compressed", action="store_true",
        help="traverse on uint8 PQ codes (ADC) and re-rank the best "
             "rerank_factor*k candidates exactly",
    )
    evaluate.add_argument(
        "--rerank-factor", type=int, default=None,
        help="over-fetch multiplier for the exact re-rank "
             "(compressed mode; default 3)",
    )
    evaluate.add_argument(
        "--shards", type=int, default=1,
        help="partition the dataset into S shards and serve with the "
             "scatter-gather layer (repro.sharding)",
    )
    evaluate.add_argument(
        "--fanout", type=int, default=None,
        help="shards queried per request (default: all alive shards)",
    )
    evaluate.add_argument(
        "--replicas", type=int, default=1,
        help="replicas per shard for hedged requests (sharded mode)",
    )
    evaluate.add_argument(
        "--mmap-vectors", action="store_true",
        help="round-trip the index through a float32 sidecar and "
             "search with the vectors memory-mapped",
    )
    evaluate.add_argument(
        "--inserts", type=int, default=0, metavar="N",
        help="after building, insert N perturbed base points (delta "
             "tier on refinement-built algorithms) and search both "
             "tiers — the S1 online-update scenario",
    )
    evaluate.add_argument(
        "--consolidate", action="store_true",
        help="fold the delta tier into a fresh base snapshot before "
             "searching (requires --inserts)",
    )
    evaluate.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless the run clears --check-recall "
             "(CI smoke gate)",
    )
    evaluate.add_argument(
        "--check-recall", type=float, default=0.5,
        help="recall floor enforced by --check (default 0.5)",
    )
    evaluate.add_argument(
        "--trace", metavar="PATH",
        help="enable tracing; write per-query JSONL traces here",
    )
    evaluate.add_argument(
        "--metrics", metavar="PATH",
        help="enable metrics; write a Prometheus text scrape here",
    )
    evaluate.set_defaults(run=_cmd_eval)

    serving = commands.add_parser(
        "serve", help="run the async HTTP serving front door"
    )
    serving.add_argument("algorithm", choices=sorted(ALGORITHMS))
    serving.add_argument("dataset")
    serving.add_argument("--n", type=int, default=10000,
                         help="dataset cardinality to build (default 10000)")
    serving.add_argument("--seed", type=int, default=0)
    serving.add_argument("--host", default="127.0.0.1")
    serving.add_argument("--port", type=int, default=8080,
                         help="listen port (0 = ephemeral)")
    serving.add_argument("--max-wait-ms", type=float, default=2.0,
                         help="coalescing window before a partial batch "
                              "flushes (default 2ms)")
    serving.add_argument("--max-batch", type=int, default=64,
                         help="flush immediately at this many queries")
    serving.add_argument("--queue-depth", type=int, default=256,
                         help="admission bound: queued + in-flight "
                              "requests before 429s")
    serving.add_argument("--deadline-ms", type=float, default=None,
                         help="default per-request SLO mapped onto a "
                              "QueryBudget (requests may override)")
    serving.add_argument("--workers", type=int, default=2,
                         help="MT kernel threads per batch")
    serving.add_argument("--k", type=int, default=10,
                         help="default neighbors per request")
    serving.add_argument("--ef", type=int, default=64,
                         help="default candidate-set size per request")
    serving.add_argument("--shards", type=int, default=1,
                         help="serve a sharded scatter-gather index")
    serving.add_argument("--compressed", action="store_true",
                         help="serve the ADC (PQ) traversal tier")
    serving.add_argument("--rerank-factor", type=int, default=None,
                         help="compressed-mode exact re-rank multiplier")
    serving.add_argument("--mmap-vectors", action="store_true",
                         help="serve with vectors memory-mapped from a "
                              "float32 sidecar")
    serving.set_defaults(run=_cmd_serve)

    stats = commands.add_parser(
        "stats", help="summarize a JSONL query-trace file"
    )
    stats.add_argument("trace_file")
    stats.set_defaults(run=_cmd_stats)

    advise = commands.add_parser("recommend", help="Table 7 advice for a dataset")
    advise.add_argument("dataset")
    advise.add_argument("--n", type=int, default=2000)
    advise.add_argument("--frequent-updates", action="store_true")
    advise.add_argument("--limited-memory", action="store_true")
    advise.add_argument("--external-memory", action="store_true")
    advise.set_defaults(run=_cmd_recommend)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.run(args)


if __name__ == "__main__":
    sys.exit(main())
