"""Extensions beyond the survey's core evaluation, from its §6 outlook:

* :mod:`attribute_filter` — hybrid queries with structured attribute
  constraints during graph routing ("the latest research adds
  structured attribute constraints to the search process");
* :mod:`io_model` — external-memory cost modelling, the rationale
  behind Table 7's S3 recommendation (query path length ≈ I/O count).
"""

from repro.extensions.attribute_filter import AttributeFilteredIndex
from repro.extensions.io_model import DiskIOModel

__all__ = ["AttributeFilteredIndex", "DiskIOModel"]
