"""External-memory cost model for graph search.

Table 7's S3 recommendation (DPG/HCNNG for data on SSD) rests on the
observation that the *query path length* determines the number of I/O
round trips when vectors live on external storage (§5.3, citing
DiskANN [88]).  This model makes that argument executable: given a
built index and a storage profile, it estimates per-query latency as

    latency = hops * read_latency + ndc * compute_per_distance

so the PL-vs-NDC tradeoff between algorithms can be compared under
different storage speeds (the crossover moves as storage slows down).

Compressed (ADC) traversal changes the I/O shape entirely: the walk
reads only resident uint8 codes and its per-query LUT, so the storage
tier is touched *once per re-ranked candidate* instead of once per hop
— ``rerank_factor * k`` random row reads per query, independent of
``ef``.  :meth:`DiskIOModel.estimate_compressed` prices that regime;
``benchmarks/bench_compressed_traversal.py`` validates the predicted
read count against the measured ``rerank_ndc``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import BatchStats, GraphANNS
from repro.datasets.dataset import Dataset

__all__ = ["DiskIOModel", "StorageProfile", "IOEstimate",
           "CompressedIOEstimate"]


@dataclass(frozen=True)
class StorageProfile:
    """Latency parameters of one storage tier."""

    name: str
    read_latency_s: float        # one vertex-block fetch
    compute_per_distance_s: float

    @classmethod
    def ram(cls) -> "StorageProfile":
        """In-memory serving: compute-only latency."""
        return cls("ram", read_latency_s=0.0, compute_per_distance_s=5e-8)

    @classmethod
    def ssd(cls) -> "StorageProfile":
        """NVMe-class storage (DiskANN's regime)."""
        return cls("ssd", read_latency_s=1e-4, compute_per_distance_s=5e-8)

    @classmethod
    def hdd(cls) -> "StorageProfile":
        """Spinning disk: I/O utterly dominates."""
        return cls("hdd", read_latency_s=5e-3, compute_per_distance_s=5e-8)


@dataclass(frozen=True)
class IOEstimate:
    """Modelled per-query cost for one (index, storage) pair."""

    io_count: float
    ndc: float
    latency_s: float


@dataclass(frozen=True)
class CompressedIOEstimate:
    """Modelled per-query cost of compressed (ADC) traversal.

    ``io_count`` is the number of storage reads — the exact re-rank's
    row fetches, nothing else, because the traversal itself touches only
    resident codes.  ``adc_lookups`` are priced as cache-speed table
    gathers (``adc_lookup_s``), not distance computations.
    """

    io_count: float
    adc_lookups: float
    rerank_ndc: float
    latency_s: float


class DiskIOModel:
    """Estimate external-memory query latency from measured search stats."""

    def __init__(self, profile: StorageProfile):
        self.profile = profile

    def estimate(self, stats: BatchStats) -> IOEstimate:
        """Cost model applied to measured batch statistics."""
        latency = (
            stats.mean_hops * self.profile.read_latency_s
            + stats.mean_ndc * self.profile.compute_per_distance_s
        )
        return IOEstimate(
            io_count=stats.mean_hops, ndc=stats.mean_ndc, latency_s=latency
        )

    def evaluate(
        self,
        index: GraphANNS,
        dataset: Dataset,
        k: int = 10,
        ef: int | None = None,
    ) -> IOEstimate:
        """Measure a query batch and apply the cost model."""
        stats = index.batch_search(
            dataset.queries, dataset.ground_truth, k=k, ef=ef
        )
        return self.estimate(stats)

    #: one LUT gather — an L1/L2 access, orders of magnitude below a
    #: full d-dimensional distance
    ADC_LOOKUP_S = 2e-9

    def estimate_compressed(
        self,
        adc_lookups: float,
        rerank_ndc: float,
        adc_lookup_s: float | None = None,
    ) -> CompressedIOEstimate:
        """Cost model for a compressed query.

        The traversal performs ``adc_lookups`` table gathers against
        resident memory; only the exact re-rank reaches the vector
        tier, costing one row read plus one true distance per pooled
        candidate.
        """
        adc_lookup_s = self.ADC_LOOKUP_S if adc_lookup_s is None else adc_lookup_s
        latency = (
            rerank_ndc * self.profile.read_latency_s
            + rerank_ndc * self.profile.compute_per_distance_s
            + adc_lookups * adc_lookup_s
        )
        return CompressedIOEstimate(
            io_count=rerank_ndc, adc_lookups=adc_lookups,
            rerank_ndc=rerank_ndc, latency_s=latency,
        )

    def evaluate_compressed(
        self,
        index: GraphANNS,
        dataset: Dataset,
        k: int = 10,
        ef: int | None = None,
        rerank_factor: int | None = None,
    ) -> CompressedIOEstimate:
        """Measure a compressed query batch and apply the cost model."""
        from repro.batch import search_batch

        result = search_batch(
            index, dataset.queries, k=k, ef=ef,
            compressed=True, rerank_factor=rerank_factor,
        )
        return self.estimate_compressed(
            float(np.mean(result.adc_lookups)),
            float(np.mean(result.rerank_ndc)),
        )
