"""External-memory cost model for graph search.

Table 7's S3 recommendation (DPG/HCNNG for data on SSD) rests on the
observation that the *query path length* determines the number of I/O
round trips when vectors live on external storage (§5.3, citing
DiskANN [88]).  This model makes that argument executable: given a
built index and a storage profile, it estimates per-query latency as

    latency = hops * read_latency + ndc * compute_per_distance

so the PL-vs-NDC tradeoff between algorithms can be compared under
different storage speeds (the crossover moves as storage slows down).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import BatchStats, GraphANNS
from repro.datasets.dataset import Dataset

__all__ = ["DiskIOModel", "StorageProfile"]


@dataclass(frozen=True)
class StorageProfile:
    """Latency parameters of one storage tier."""

    name: str
    read_latency_s: float        # one vertex-block fetch
    compute_per_distance_s: float

    @classmethod
    def ram(cls) -> "StorageProfile":
        """In-memory serving: compute-only latency."""
        return cls("ram", read_latency_s=0.0, compute_per_distance_s=5e-8)

    @classmethod
    def ssd(cls) -> "StorageProfile":
        """NVMe-class storage (DiskANN's regime)."""
        return cls("ssd", read_latency_s=1e-4, compute_per_distance_s=5e-8)

    @classmethod
    def hdd(cls) -> "StorageProfile":
        """Spinning disk: I/O utterly dominates."""
        return cls("hdd", read_latency_s=5e-3, compute_per_distance_s=5e-8)


@dataclass(frozen=True)
class IOEstimate:
    """Modelled per-query cost for one (index, storage) pair."""

    io_count: float
    ndc: float
    latency_s: float


class DiskIOModel:
    """Estimate external-memory query latency from measured search stats."""

    def __init__(self, profile: StorageProfile):
        self.profile = profile

    def estimate(self, stats: BatchStats) -> IOEstimate:
        """Cost model applied to measured batch statistics."""
        latency = (
            stats.mean_hops * self.profile.read_latency_s
            + stats.mean_ndc * self.profile.compute_per_distance_s
        )
        return IOEstimate(
            io_count=stats.mean_hops, ndc=stats.mean_ndc, latency_s=latency
        )

    def evaluate(
        self,
        index: GraphANNS,
        dataset: Dataset,
        k: int = 10,
        ef: int | None = None,
    ) -> IOEstimate:
        """Measure a query batch and apply the cost model."""
        stats = index.batch_search(
            dataset.queries, dataset.ground_truth, k=k, ef=ef
        )
        return self.estimate(stats)
