"""Hybrid queries: ANNS with structured attribute constraints.

The survey's Tendencies section points at hybrid vector+attribute
search (AnalyticDB-V [104], NSW with multi-attribute constraints [106])
as where graph ANNS is heading.  This extension implements the standard
*filtered routing* approach on top of any built index in the library:

* the routing still walks the **unfiltered** graph (filtering edges
  would disconnect it — the same reason the base algorithms guarantee
  connectivity), but
* only vertices whose attributes satisfy the predicate may enter the
  result set, and
* the candidate set keeps expanding until ``ef`` *matching* results are
  found or the frontier is exhausted.
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.routing import SearchResult
from repro.distance import DistanceCounter

__all__ = ["AttributeFilteredIndex"]


class AttributeFilteredIndex:
    """Wrap a built index with per-vertex attributes and filtered search."""

    def __init__(self, base: GraphANNS, attributes):
        if base.graph is None:
            raise RuntimeError("base index must be built before wrapping")
        if len(attributes) != len(base.data):
            raise ValueError(
                f"need one attribute record per vertex: "
                f"{len(attributes)} != {len(base.data)}"
            )
        self.base = base
        self.attributes = attributes

    def search(
        self,
        query: np.ndarray,
        predicate: Callable[[object], bool],
        k: int = 10,
        ef: int | None = None,
        counter: DistanceCounter | None = None,
        max_hops: int | None = None,
    ) -> SearchResult:
        """k nearest neighbors among vertices satisfying ``predicate``.

        ``max_hops`` bounds the extra exploration a very selective
        predicate can cause (default: 4x the unfiltered budget).
        """
        base = self.base
        graph, data = base.graph, base.data
        ef = max(k, ef if ef is not None else base.default_ef)
        counter = counter if counter is not None else DistanceCounter()
        start_ndc = counter.count
        if max_hops is None:
            max_hops = 4 * ef

        seeds = np.unique(
            np.asarray(base.seed_provider.acquire(query, counter), dtype=np.int64)
        )
        visited = np.zeros(graph.n, dtype=bool)
        visited[seeds] = True
        dists = counter.one_to_many(query, data[seeds])
        candidates = [(float(d), int(s)) for d, s in zip(dists, seeds)]
        heapq.heapify(candidates)
        results: list[tuple[float, int]] = []  # max-heap of matching vertices
        for d, s in zip(dists, seeds):
            if predicate(self.attributes[int(s)]):
                heapq.heappush(results, (-float(d), int(s)))
        while len(results) > ef:
            heapq.heappop(results)

        hops = 0
        while candidates and hops < max_hops:
            dist, u = heapq.heappop(candidates)
            # termination: frontier is worse than the worst *matching*
            # result and we already have enough matches
            if len(results) >= ef and dist > -results[0][0]:
                break
            hops += 1
            nbrs = graph.neighbor_array(u)
            nbrs = nbrs[~visited[nbrs]]
            if len(nbrs) == 0:
                continue
            visited[nbrs] = True
            true_d = counter.one_to_many(query, data[nbrs])
            for idx, d in zip(nbrs, true_d):
                idx, d = int(idx), float(d)
                heapq.heappush(candidates, (d, idx))
                if not predicate(self.attributes[idx]):
                    continue
                if len(results) < ef:
                    heapq.heappush(results, (-d, idx))
                elif d < -results[0][0]:
                    heapq.heapreplace(results, (-d, idx))
        ordered = sorted((-negd, idx) for negd, idx in results)[:k]
        return SearchResult(
            ids=np.asarray([i for _, i in ordered], dtype=np.int64),
            dists=np.asarray([d for d, _ in ordered]),
            ndc=counter.count - start_ndc,
            hops=hops,
            visited=int(visited.sum()),
        )
