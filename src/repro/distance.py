"""Distance kernels with exact distance-computation accounting.

The survey's hardware-independent efficiency metric is *Speedup* =
``|S| / NDC``, where NDC is the number of distance computations an
algorithm performs for one query (§5.1 of the paper).  Every distance
evaluated anywhere in this library therefore flows through a
:class:`DistanceCounter`, which counts one unit per vector pair whether
the evaluation happened singly or as part of a vectorised batch.

All kernels operate on ``float32``/``float64`` NumPy arrays and return
true (not squared) Euclidean distances so that scale-sensitive rules —
e.g. Vamana's ``alpha * delta(x, y) > delta(y, p)`` — behave exactly as
the paper describes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "l2",
    "l2_batch",
    "pairwise_l2",
    "DistanceCounter",
]


def l2(x: np.ndarray, y: np.ndarray) -> float:
    """Euclidean distance between two vectors (Equation 1 of the paper)."""
    diff = x - y
    return float(np.sqrt(np.dot(diff, diff)))


def l2_batch(query: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Euclidean distances from one query to each row of ``points``."""
    diff = points - query
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def pairwise_l2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense ``(len(a), len(b))`` Euclidean distance matrix.

    Uses the expanded form ``|a|^2 - 2ab + |b|^2`` which is much faster
    than explicit differences for large blocks; negative rounding
    artefacts are clamped before the square root.
    """
    a_sq = np.einsum("ij,ij->i", a, a)[:, None]
    b_sq = np.einsum("ij,ij->i", b, b)[None, :]
    sq = a_sq - 2.0 * (a @ b.T) + b_sq
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


class DistanceCounter:
    """Counts every vector-pair distance evaluation.

    Instances are cheap; builders and searchers create one per phase so
    construction cost and per-query NDC can be reported separately.
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def reset(self) -> None:
        """Zero the counter (e.g. between construction and search)."""
        self.count = 0

    def pair(self, x: np.ndarray, y: np.ndarray) -> float:
        """Distance between two vectors; counts one evaluation."""
        self.count += 1
        return l2(x, y)

    def one_to_many(self, query: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Distances from ``query`` to each row; counts ``len(points)``."""
        self.count += len(points)
        return l2_batch(query, points)

    def many_to_many(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full distance matrix; counts ``len(a) * len(b)``."""
        self.count += len(a) * len(b)
        return pairwise_l2(a, b)
