"""Distance kernels with exact distance-computation accounting.

The survey's hardware-independent efficiency metric is *Speedup* =
``|S| / NDC``, where NDC is the number of distance computations an
algorithm performs for one query (§5.1 of the paper).  Every distance
evaluated anywhere in this library therefore flows through a
:class:`DistanceCounter`, which counts one unit per vector pair whether
the evaluation happened singly or as part of a vectorised batch.

All kernels operate on ``float32``/``float64`` NumPy arrays and return
true (not squared) Euclidean distances so that scale-sensitive rules —
e.g. Vamana's ``alpha * delta(x, y) > delta(y, p)`` — behave exactly as
the paper describes.
"""

from __future__ import annotations

import weakref

import numpy as np

__all__ = [
    "l2",
    "l2_batch",
    "pairwise_l2",
    "squared_norms",
    "invalidate_norms",
    "sq_dists_to_rows",
    "DistanceCounter",
]


def l2(x: np.ndarray, y: np.ndarray) -> float:
    """Euclidean distance between two vectors (Equation 1 of the paper)."""
    diff = x - y
    return float(np.sqrt(np.dot(diff, diff)))


def l2_batch(query: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Euclidean distances from one query to each row of ``points``."""
    diff = points - query
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def pairwise_l2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense ``(len(a), len(b))`` Euclidean distance matrix.

    Uses the expanded form ``|a|^2 - 2ab + |b|^2`` which is much faster
    than explicit differences for large blocks; negative rounding
    artefacts are clamped before the square root.
    """
    a_sq = np.einsum("ij,ij->i", a, a)[:, None]
    b_sq = np.einsum("ij,ij->i", b, b)[None, :]
    sq = a_sq - 2.0 * (a @ b.T) + b_sq
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


# -- norm cache -------------------------------------------------------
#
# The routing hot path evaluates distances with the expanded form
# ``|q|^2 - 2 q.x + |x|^2`` against cached per-row squared norms, which
# avoids materializing a ``points - query`` difference matrix on every
# expansion.  The cache is keyed by array identity and evicted when the
# data array is garbage-collected, so every search path (sequential,
# context-reuse, lockstep batch) slices the *same* norm array and
# produces bit-identical distances.

_NORM_CACHE: dict[int, tuple[weakref.ref, np.ndarray]] = {}


def squared_norms(points: np.ndarray) -> np.ndarray:
    """Cached float64 squared norms of every row of ``points``."""
    key = id(points)
    entry = _NORM_CACHE.get(key)
    if entry is not None and entry[0]() is points:
        return entry[1]
    norms = np.einsum("ij,ij->i", points, points, dtype=np.float64)
    try:
        ref = weakref.ref(points, lambda _unused, k=key: _NORM_CACHE.pop(k, None))
    except TypeError:  # pragma: no cover - non-weakrefable array subclass
        return norms
    _NORM_CACHE[key] = (ref, norms)
    return norms


def invalidate_norms(points: np.ndarray) -> None:
    """Drop the cached squared norms of ``points``.

    Required after mutating a data array in place (integrity repair
    zeroes non-finite rows): the cache is keyed by array identity, so
    without eviction every later search would keep using norms of the
    pre-repair contents.
    """
    _NORM_CACHE.pop(id(points), None)


def sq_dists_to_rows(
    query64: np.ndarray,
    rows: np.ndarray,
    rows_sq: np.ndarray,
    query_sq: float,
) -> np.ndarray:
    """Squared distances from a float64 query to gathered float32 rows.

    The single kernel every routing path funnels through: the native
    extension (``repro._native``) provides a drop-in C version whose
    summation order matches its in-kernel search, keeping the Python
    frontier, the lockstep batch engine and the native best-first search
    mutually bit-identical.
    """
    from repro import _native

    if _native.LIB is not None and rows.dtype == np.float32:
        return _native.sq_dists_to_rows(query64, rows, rows_sq, query_sq)
    dot = np.einsum("ij,j->i", rows, query64, dtype=np.float64)
    sq = query_sq - 2.0 * dot
    sq += rows_sq
    np.maximum(sq, 0.0, out=sq)
    return sq


class DistanceCounter:
    """Counts every vector-pair distance evaluation.

    Instances are cheap; builders and searchers create one per phase so
    construction cost and per-query NDC can be reported separately.
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def reset(self) -> None:
        """Zero the counter (e.g. between construction and search)."""
        self.count = 0

    def pair(self, x: np.ndarray, y: np.ndarray) -> float:
        """Distance between two vectors; counts one evaluation."""
        self.count += 1
        return l2(x, y)

    def one_to_many(self, query: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Distances from ``query`` to each row; counts ``len(points)``."""
        self.count += len(points)
        return l2_batch(query, points)

    def many_to_many(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full distance matrix; counts ``len(a) * len(b)``."""
        self.count += len(a) * len(b)
        return pairwise_l2(a, b)
