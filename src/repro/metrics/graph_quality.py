"""Index-characteristic metrics: GQ, out-degree stats, components (Table 4/11).

*Graph quality* is the fraction of exact-KNNG edges present in the
index: ``GQ = |E' ∩ E| / |E|`` where ``E`` is the exact KNNG's edge set
on the same data [21, 26, 97].  A central finding of the survey is that
maximal GQ is *not* necessary for maximal search performance (I3 /
Appendix L) — the Table 4 bench reproduces that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.knng import exact_knn_lists

__all__ = [
    "graph_quality",
    "degree_stats",
    "DegreeStats",
    "graph_index_stats",
    "GraphIndexStats",
]


@dataclass(frozen=True)
class DegreeStats:
    """Out-degree summary (Table 4 AD, Table 11 D_max/D_min)."""

    average: float
    maximum: int
    minimum: int


@dataclass(frozen=True)
class GraphIndexStats:
    """One Table 4 row: GQ / AD / CC plus the Table 11 extremes."""

    graph_quality: float
    average_out_degree: float
    max_out_degree: int
    min_out_degree: int
    connected_components: int
    index_size_bytes: int


def graph_quality(
    graph: Graph,
    data: np.ndarray,
    k: int = 10,
    exact_ids: np.ndarray | None = None,
) -> float:
    """Fraction of exact k-NN edges the index contains.

    ``exact_ids`` (from :func:`exact_knn_lists`) can be supplied to
    amortise the brute-force scan across algorithms on one dataset.
    """
    if exact_ids is None:
        exact_ids, _ = exact_knn_lists(data, k)
    hits = 0
    total = 0
    for u in range(graph.n):
        nbrs = set(graph.neighbors(u))
        row = exact_ids[u]
        total += len(row)
        hits += sum(1 for v in row if int(v) in nbrs)
    return hits / max(total, 1)


def degree_stats(graph: Graph) -> DegreeStats:
    """Out-degree summary of one graph index."""
    return DegreeStats(
        average=graph.average_out_degree,
        maximum=graph.max_out_degree,
        minimum=graph.min_out_degree,
    )


def graph_index_stats(
    graph: Graph,
    data: np.ndarray,
    k: int = 10,
    exact_ids: np.ndarray | None = None,
) -> GraphIndexStats:
    """All Table 4 / Table 11 statistics in one pass."""
    return GraphIndexStats(
        graph_quality=graph_quality(graph, data, k=k, exact_ids=exact_ids),
        average_out_degree=graph.average_out_degree,
        max_out_degree=graph.max_out_degree,
        min_out_degree=graph.min_out_degree,
        connected_components=graph.num_connected_components(),
        index_size_bytes=graph.index_size_bytes(),
    )
