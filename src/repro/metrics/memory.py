"""Peak search memory estimate — Table 5's MO column.

The paper measures peak RSS during search; in-process that decomposes
into (i) the raw vectors, (ii) the graph index, (iii) any C4 auxiliary
structure, and (iv) the per-query candidate set.  The estimate below
reproduces the *ordering* drivers the paper discusses: bigger AD and CS
and attached trees raise MO, RNG-pruned graphs lower it.
"""

from __future__ import annotations

from repro.algorithms.base import GraphANNS

__all__ = ["search_memory_bytes"]

_CANDIDATE_ENTRY_BYTES = 16  # (distance float64, id int64) per heap slot


def search_memory_bytes(algorithm: GraphANNS, ef: int) -> int:
    """Estimated peak bytes while answering queries at candidate size ``ef``."""
    if algorithm.data is None or algorithm.graph is None:
        raise RuntimeError("build the index before estimating search memory")
    vectors = algorithm.data.nbytes
    index = algorithm.index_size_bytes()
    visited_bitmap = algorithm.graph.n  # one byte per vertex
    candidate_set = ef * _CANDIDATE_ENTRY_BYTES * 2  # candidates + results
    return vectors + index + visited_bitmap + candidate_set
