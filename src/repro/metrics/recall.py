"""Recall@k — the paper's accuracy metric (§2.1, §5.1)."""

from __future__ import annotations

import numpy as np

__all__ = ["recall_at_k"]


def recall_at_k(result_ids: np.ndarray, truth_ids: np.ndarray, k: int) -> float:
    """``|R ∩ T| / |T|`` with ``|T| = k`` (ties broken by the ground truth).

    ``result_ids`` may be shorter than ``k`` (a search that could not
    fill its result set scores what it found).
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    truth = set(int(t) for t in np.asarray(truth_ids).ravel()[:k])
    found = set(int(r) for r in np.asarray(result_ids).ravel()[:k])
    return len(truth & found) / k
