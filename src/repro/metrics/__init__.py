"""Evaluation metrics of §5.1: construction-side and search-side."""

from repro.metrics.graph_quality import (
    graph_quality,
    degree_stats,
    DegreeStats,
    graph_index_stats,
    GraphIndexStats,
)
from repro.metrics.recall import recall_at_k
from repro.metrics.memory import search_memory_bytes

__all__ = [
    "graph_quality",
    "degree_stats",
    "DegreeStats",
    "graph_index_stats",
    "GraphIndexStats",
    "recall_at_k",
    "search_memory_bytes",
]
