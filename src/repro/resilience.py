"""Serving-grade resilience: budgets, degradation, validation, integrity.

The survey measures search cost in NDC precisely because it is the
hardware-independent unit of work (§5.3); the learned-termination line
(ML2, "Learning to Route in Similarity Graphs") shows that cutting a
query off early trades recall for cost *predictably*.  This module
turns that observation into serving machinery:

* :class:`QueryBudget` — per-query limits (wall-clock deadline, max
  NDC, max hops) threaded through every routing strategy and the
  native kernel.  An exhausted budget does not raise: the search stops
  and returns its current best-k flagged ``degraded=True`` with a
  :class:`BudgetReport` saying which limit fired and what was spent.
* query validation — :func:`validate_query` rejects malformed input
  (wrong dtype/shape/dimension, NaN/Inf) *before* it can poison a
  visited array or a distance heap; the batch engine rejects per query
  instead of failing the batch.
* integrity — :func:`verify_index` checks the CSR invariants every
  search path relies on (monotone offsets, in-range int32 neighbor
  ids, no self-loops, finite vectors, reachability from the entry
  points) and can *repair* a damaged index: out-of-range edges and
  self-loops are dropped, non-finite vectors are zeroed and
  tombstoned, stranded vertices are reconnected through the existing
  C5 connectivity component.

Nothing here changes an unbudgeted, fault-free search: ids, distances
and NDC stay bit-identical to the plain hot path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "QueryBudget",
    "BudgetReport",
    "BudgetTracker",
    "InvalidQueryError",
    "IndexFormatError",
    "IndexIntegrityError",
    "IntegrityReport",
    "validate_query",
    "verify_index",
    "repair_csr_arrays",
]


# -- errors -------------------------------------------------------------


class InvalidQueryError(ValueError):
    """A query vector failed up-front validation (dtype/shape/NaN)."""


class IndexFormatError(ValueError):
    """A persisted index could not be parsed (truncated file, missing
    keys, version/checksum mismatch).  Carries the path and the reason."""

    def __init__(self, path, reason: str):
        self.path = str(path)
        self.reason = reason
        super().__init__(f"cannot load index from {self.path}: {reason}")


class IndexIntegrityError(RuntimeError):
    """An index violates a structural invariant search depends on."""

    def __init__(self, report: "IntegrityReport"):
        self.report = report
        super().__init__(
            "index integrity check failed: " + "; ".join(report.issues)
        )


# -- budgets ------------------------------------------------------------


@dataclass(frozen=True)
class QueryBudget:
    """Per-query resource limits.  ``None`` means unlimited.

    ``max_ndc`` is a hard cap on distance computations during routing
    (the paper's NDC); ``max_hops`` caps expanded vertices (the query
    path length of Table 5); ``deadline_s`` is a wall-clock limit
    checked between hops.  The deadline cannot be enforced inside the
    native kernel, so a budget with a deadline routes through the pure
    NumPy path — NDC and hop caps are honored natively.
    """

    deadline_s: float | None = None
    max_ndc: int | None = None
    max_hops: int | None = None

    def __post_init__(self):
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.max_ndc is not None and self.max_ndc < 0:
            raise ValueError(f"max_ndc must be non-negative, got {self.max_ndc}")
        if self.max_hops is not None and self.max_hops < 0:
            raise ValueError(f"max_hops must be non-negative, got {self.max_hops}")

    @property
    def unlimited(self) -> bool:
        return self.deadline_s is None and self.max_ndc is None and self.max_hops is None

    @property
    def native_ok(self) -> bool:
        """Whether the C kernel can honor every limit in this budget."""
        return self.deadline_s is None

    def after_spending(self, ndc: int) -> "QueryBudget":
        """The budget left once ``ndc`` computations (e.g. seed
        acquisition) have already been charged against ``max_ndc``."""
        if self.max_ndc is None or ndc <= 0:
            return self
        return replace(self, max_ndc=max(0, self.max_ndc - ndc))


@dataclass
class BudgetReport:
    """What a budget-terminated search actually spent.

    ``limit`` names the limit that fired (``"deadline"``, ``"ndc"`` or
    ``"hops"``); the remaining fields are honest telemetry for the
    degraded result that was returned anyway.  When hop-level tracing
    is on, ``trace_id`` joins this report to its recorded
    :class:`~repro.observability.QueryTrace`.
    """

    limit: str
    ndc: int
    hops: int
    elapsed_s: float
    trace_id: str | None = None


class BudgetTracker:
    """Enforces one :class:`QueryBudget` over one routing invocation.

    The tracker never changes the *order* in which vertices would be
    evaluated — it only truncates: :meth:`clip` cuts a bulk evaluation
    to the remaining NDC allowance, and :meth:`stop_before_hop` halts
    the loop once any limit is reached.  A search that finishes without
    hitting a limit reports ``fired is None`` and is not degraded.
    """

    __slots__ = ("budget", "counter", "start_ndc", "started", "deadline", "fired")

    def __init__(self, budget: QueryBudget, counter):
        self.budget = budget
        self.counter = counter
        self.start_ndc = counter.count
        self.started = time.perf_counter()
        self.deadline = (
            None if budget.deadline_s is None
            else self.started + budget.deadline_s
        )
        self.fired: str | None = None

    def spent(self) -> int:
        return self.counter.count - self.start_ndc

    def clip(self, ids: np.ndarray) -> np.ndarray:
        """Truncate a bulk evaluation to the remaining NDC allowance."""
        max_ndc = self.budget.max_ndc
        if max_ndc is None:
            return ids
        remaining = max_ndc - self.spent()
        if len(ids) > remaining:
            self.fired = "ndc"
            return ids[:max(remaining, 0)]
        return ids

    def stop_before_hop(self, hops: int) -> bool:
        """Whether the routing loop must stop before its next expansion."""
        budget = self.budget
        if self.deadline is not None and time.perf_counter() >= self.deadline:
            self.fired = "deadline"
            return True
        if budget.max_hops is not None and hops >= budget.max_hops:
            self.fired = "hops"
            return True
        if budget.max_ndc is not None and self.spent() >= budget.max_ndc:
            self.fired = "ndc"
            return True
        return False

    def report(self, hops: int) -> BudgetReport:
        return BudgetReport(
            limit=self.fired or "none",
            ndc=self.spent(),
            hops=hops,
            elapsed_s=time.perf_counter() - self.started,
        )


# -- query validation ---------------------------------------------------


def validate_query(query, dim: int) -> str | None:
    """Reason a query is unusable against a ``dim``-dimensional index,
    or ``None`` if it is fine.  Never raises, never copies valid input."""
    try:
        arr = np.asarray(query)
    except Exception as exc:  # noqa: BLE001 - anything array-hostile
        return f"not convertible to an array ({type(exc).__name__})"
    if arr.dtype == object or not np.issubdtype(arr.dtype, np.number):
        return f"non-numeric dtype {arr.dtype}"
    if np.issubdtype(arr.dtype, np.complexfloating):
        return f"complex dtype {arr.dtype} is not supported"
    if arr.ndim != 1:
        return f"expected a 1-D query vector, got shape {arr.shape}"
    if arr.shape[0] != dim:
        return f"dimension mismatch: index is {dim}-d, query is {arr.shape[0]}-d"
    if np.issubdtype(arr.dtype, np.floating) and not np.isfinite(arr).all():
        return "query contains non-finite values (NaN/Inf)"
    return None


# -- integrity ----------------------------------------------------------


@dataclass
class IntegrityReport:
    """Outcome of :func:`verify_index`: what was checked, what was wrong,
    and (in repair mode) what was fixed."""

    n_vertices: int = 0
    n_edges: int = 0
    issues: list[str] = field(default_factory=list)
    repairs: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues


def _csr_issues(indptr: np.ndarray, indices: np.ndarray, n: int) -> list[str]:
    issues = []
    if len(indptr) != n + 1:
        issues.append(f"indptr has {len(indptr)} entries, expected {n + 1}")
        return issues
    if len(indptr) == 0 or int(indptr[0]) != 0:
        issues.append("indptr does not start at 0")
    if np.any(np.diff(indptr.astype(np.int64)) < 0):
        issues.append("indptr is not monotone non-decreasing")
    elif int(indptr[-1]) != len(indices):
        issues.append(
            f"indptr[-1]={int(indptr[-1])} != len(indices)={len(indices)}"
        )
    if len(indices):
        lo, hi = int(indices.min()), int(indices.max())
        if lo < 0 or hi >= n:
            bad = int(((indices < 0) | (indices >= n)).sum())
            issues.append(f"{bad} neighbor ids outside [0, {n})")
    return issues


def repair_csr_arrays(
    indptr: np.ndarray, indices: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """Best-effort repair of a damaged CSR pair.

    Clamps the offsets back to a monotone in-range sequence, then drops
    every out-of-range neighbor id and self-loop.  Returns the cleaned
    ``(indptr, indices)`` plus human-readable notes on what was done.
    The result always satisfies :class:`~repro.graphs.graph.Graph`'s
    ``from_csr`` invariants (possibly with empty neighbor lists).
    """
    notes: list[str] = []
    indptr = np.asarray(indptr, dtype=np.int64).copy()
    indices = np.asarray(indices, dtype=np.int64).copy()

    if len(indptr) != n + 1:
        old = len(indptr)
        fixed = np.zeros(n + 1, dtype=np.int64)
        m = min(old, n + 1)
        fixed[:m] = indptr[:m]
        if m < n + 1 and m > 0:
            fixed[m:] = fixed[m - 1]
        indptr = fixed
        notes.append(f"resized indptr from {old} to {n + 1} entries")
    if len(indptr) and indptr[0] != 0:
        notes.append("reset indptr[0] to 0")
        indptr[0] = 0
    clipped = np.minimum(np.maximum.accumulate(np.maximum(indptr, 0)), len(indices))
    if not np.array_equal(clipped, indptr):
        notes.append("clamped indptr to a monotone in-range sequence")
        indptr = clipped
    if int(indptr[-1]) != len(indices):
        notes.append(
            f"truncated indices from {len(indices)} to {int(indptr[-1])} entries"
        )
        indices = indices[: int(indptr[-1])]

    owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    keep = (indices >= 0) & (indices < n) & (indices != owner)
    dropped = int(len(indices) - keep.sum())
    if dropped:
        notes.append(f"dropped {dropped} out-of-range or self-loop edges")
        new_counts = np.zeros(n, dtype=np.int64)
        np.add.at(new_counts, owner[keep], 1)
        indices = indices[keep]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(new_counts, out=indptr[1:])
    return (
        indptr.astype(np.int32, copy=False),
        indices.astype(np.int32, copy=False),
        notes,
    )


def _entry_points(index) -> np.ndarray:
    """The entry vertices a generic query would start from (best effort)."""
    try:
        probe = index.data.mean(axis=0)
        seeds = np.unique(np.asarray(index.seed_provider.acquire(probe),
                                     dtype=np.int64))
    except Exception:  # noqa: BLE001 - a broken provider is itself a finding
        return np.empty(0, dtype=np.int64)
    n = index.graph.n
    return seeds[(seeds >= 0) & (seeds < n)]


def verify_index(
    index,
    repair: bool = False,
    check_reachability: bool = True,
    strict: bool = True,
) -> IntegrityReport:
    """Check (and optionally repair) the structural invariants of a
    built index.

    Checks: CSR offset monotonicity and bounds, neighbor ids in
    ``[0, n)``, no self-loops, data row count and finiteness, a
    compressed tier's code/codebook consistency (row count, subspace
    boundaries, code values inside each codebook) when one is attached,
    a delta tier's structure (dimension, id-range alignment, edge
    bounds, vector finiteness) when one is attached,
    and — when ``check_reachability`` — that every vertex is reachable
    from the index's entry points, which is exactly the guarantee the
    C5 connectivity component exists to provide.

    With ``repair=True`` the index is fixed in place: bad edges are
    dropped, non-finite vectors are zeroed *and tombstoned* (so they
    can never appear in a result), an inconsistent compressed tier is
    dropped (exact search keeps working; re-enable to rebuild it), a
    corrupt delta tier is dropped (base search keeps working; the
    unconsolidated inserts are lost), and
    stranded vertices are reconnected with
    :func:`repro.components.connectivity.ensure_reachable_from`.
    Without it, a failing check raises :class:`IndexIntegrityError`
    (pass ``strict=False`` to get the report back instead).

    Memory-mapped vector tiers (``load_index(..., mmap_vectors=True)``)
    skip the full-data finiteness scan: paging every vector in would
    defeat the point of the map, and the sidecar's size was already
    validated at load time.
    """
    from repro.components.connectivity import ensure_reachable_from
    from repro.distance import invalidate_norms
    from repro.graphs.graph import Graph

    if index.graph is None or index.data is None:
        raise RuntimeError("build or load the index before verifying it")
    graph = index.graph
    data = index.data
    report = IntegrityReport(n_vertices=graph.n, n_edges=graph.num_edges)

    indptr, indices = graph.csr()
    structural = _csr_issues(indptr, indices, graph.n)
    owner = None
    if not structural:
        owner = np.repeat(np.arange(graph.n, dtype=np.int64), np.diff(indptr))
        loops = int((indices == owner).sum())
        if loops:
            structural.append(f"{loops} self-loop edges")
    if structural:
        if not repair:
            report.issues.extend(structural)
        else:
            fixed_indptr, fixed_indices, notes = repair_csr_arrays(
                indptr, indices, graph.n
            )
            index.graph = graph = Graph.from_csr(fixed_indptr, fixed_indices)
            report.repairs.extend(structural)
            report.repairs.extend(notes)
            indptr, indices = graph.csr()

    if len(data) != graph.n:
        report.issues.append(
            f"{len(data)} data rows for {graph.n} vertices"
        )
        return _finish(report, repair, strict)
    if data.ndim != 2:
        report.issues.append(f"data must be 2-D, got shape {data.shape}")
        return _finish(report, repair, strict)

    if not isinstance(data, np.memmap):
        # a mapped tier is read-only and intentionally non-resident:
        # scanning (or zeroing) it would page the whole file in
        finite = np.isfinite(data).all(axis=1)
        if not finite.all():
            bad = np.flatnonzero(~finite)
            msg = f"{len(bad)} vectors contain NaN/Inf (first: {int(bad[0])})"
            if not repair:
                report.issues.append(msg)
            else:
                data[bad] = 0.0
                invalidate_norms(data)
                if getattr(index, "_deleted", None) is not None:
                    index._deleted[bad] = True
                report.repairs.append(msg + " — zeroed and tombstoned")

    tier = getattr(index, "_compressed", None)
    if tier is not None:
        tier_issues = tier.consistency_issues(graph.n, data.shape[1])
        if tier_issues:
            if not repair:
                report.issues.extend(
                    f"compressed tier: {issue}" for issue in tier_issues
                )
            else:
                # codes that disagree with the graph/vectors can only
                # produce wrong ADC rankings; exact search is unharmed
                index._compressed = None
                report.repairs.extend(
                    f"compressed tier: {issue}" for issue in tier_issues
                )
                report.repairs.append(
                    "compressed tier dropped (exact search unaffected; "
                    "re-run enable_compressed() to rebuild)"
                )

    delta = getattr(index, "_delta", None)
    if delta is not None:
        delta_issues = delta.consistency_issues(
            int(data.shape[1]), base_n=len(data)
        )
        if delta_issues:
            if not repair:
                report.issues.extend(
                    f"delta tier: {issue}" for issue in delta_issues
                )
            else:
                # a structurally damaged delta cannot be trusted to
                # route; base search keeps working without it
                index._delta = None
                report.repairs.extend(
                    f"delta tier: {issue}" for issue in delta_issues
                )
                report.repairs.append(
                    "delta tier dropped (points inserted since the last "
                    "consolidation are lost; base search unaffected)"
                )

    id_map = getattr(index, "_id_map", None)
    if id_map is not None:
        id_map = np.asarray(id_map)
        bad_map = None
        if len(id_map) != graph.n:
            bad_map = f"id_map has {len(id_map)} entries for {graph.n} vertices"
        elif graph.n and not np.array_equal(
            np.sort(id_map), np.arange(graph.n)
        ):
            bad_map = "id_map is not a permutation of 0..n-1"
        if bad_map is not None:
            if not repair:
                report.issues.append(bad_map)
            else:
                # nothing can recover the original labeling; fall back
                # to internal ids rather than returning garbage ids
                index._id_map = None
                index._id_inv = None
                report.repairs.append(
                    bad_map + " — dropped (results use internal ids)"
                )

    if check_reachability and report.ok and graph.n:
        entries = _entry_points(index)
        if len(entries) == 0:
            report.issues.append("no valid entry points could be acquired")
        else:
            reachable = graph.reachable_mask(entries)
            stranded = int((~reachable).sum())
            if stranded:
                msg = (f"{stranded} vertices unreachable from the "
                       f"{len(entries)} entry points")
                if not repair:
                    report.issues.append(msg)
                else:
                    ensure_reachable_from(graph, data, int(entries[0]))
                    report.repairs.append(msg + " — reconnected")
    return _finish(report, repair, strict)


def _finish(report: IntegrityReport, repair: bool, strict: bool) -> IntegrityReport:
    from repro import observability as obs

    if report.issues or report.repairs:
        if obs.enabled():
            handles = obs.instruments()
            handles.integrity_issues_total.inc(
                len(report.issues) + len(report.repairs))
            handles.repairs_total.inc(len(report.repairs))
        obs.get_logger("repro.resilience").warning(
            "index.integrity",
            issues=len(report.issues), repairs=len(report.repairs),
            detail="; ".join(report.issues + report.repairs)[:500],
        )
    if report.issues and strict and not repair:
        raise IndexIntegrityError(report)
    return report
