"""Optional C acceleration for the routing hot path.

The survey's §5.3 point is that NDC, not wall-clock, is the
hardware-independent cost of a search — which licenses making the
wall-clock side as fast as the machine allows without touching the
algorithm.  This module compiles a small C library implementing

* ``sq_dists_to_rows``  — the expanded-form distance kernel,
* ``best_first``        — Algorithm 1 over the frozen CSR layout,
* ``best_first_batch``  — the same loop over a whole query block,
* ``best_first_batch_mt`` — the GIL-free scaling path: a pthread worker
  pool answers a whole batch in one ctypes call (the GIL is released
  exactly once), each thread owning its own epoch-visited array and
  heap scratch allocated in C, with every query writing to a fixed
  output slot so results are bit-identical to the serial kernel for
  any thread count,
* ``best_first_build``  — the construction-side variant: records every
  evaluated ``(vertex, distance)`` pair (the *visited set* that C2
  candidate acquisition pools) and optionally walks a padded adjacency
  matrix instead of CSR, so it can search a graph that is still being
  mutated (Vamana's evolving graph), and
* ``select_rng``        — the RNG-heuristic selection scan over a
  NumPy-computed cross-distance matrix,

with bookkeeping (visited epochs, candidate/result heaps, tie-breaking
on ``(distance, id)``) that matches the pure-Python frontier exactly, so
NDC, hop counts, visited counts and returned ids are identical whether
or not the native path is active.  ``select_rng`` deliberately consumes
the same float32 distance matrix NumPy computed (rather than
recomputing distances in C) and replicates the comparison's IEEE
semantics, so its accept/reject decisions are provably identical to the
Python scan's.

Compilation happens once per interpreter on first import: the source is
written next to this file and built with the system C compiler into
``_native_build/`` (git-ignored, keyed by a source hash).  Anything
going wrong — no compiler, read-only package dir, loading failure —
degrades to ``LIB = None`` with a one-time ``RuntimeWarning`` (the
reason is kept in ``LOAD_ERROR``) and the NumPy implementations take
over; setting ``REPRO_NO_NATIVE`` opts out silently.  No third-party
packages are involved.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sysconfig
import tempfile

import numpy as np

__all__ = [
    "LIB",
    "sq_dists_to_rows",
    "best_first",
    "best_first_adc",
    "best_first_batch",
    "best_first_batch_mt",
    "best_first_batch_adc_mt",
    "best_first_build",
    "select_rng_scan",
]

_C_SOURCE = r"""
#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <pthread.h>
#include <time.h>

/* Coarse wall-clock reads for deadline budgets and per-thread busy
   accounting.  CLOCK_MONOTONIC, read at most once every
   DEADLINE_CHECK_GRAIN expansions, so the deadline branch costs a
   predictable O(hops / grain) syscalls and nothing on the unbudgeted
   path (deadline <= 0 short-circuits before the modulo). */
static double mono_now(void) {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}

#define DEADLINE_CHECK_GRAIN 16

/* Deterministic unrolled dot product: four partial sums combined as
   (s0+s1)+(s2+s3).  Both entry points below use this same routine, so
   every distance the library ever reports is computed identically. */
static double dot_row(const float *x, const double *q, int64_t d) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    int64_t j = 0;
    for (; j + 4 <= d; j += 4) {
        s0 += (double)x[j] * q[j];
        s1 += (double)x[j + 1] * q[j + 1];
        s2 += (double)x[j + 2] * q[j + 2];
        s3 += (double)x[j + 3] * q[j + 3];
    }
    double s = (s0 + s1) + (s2 + s3);
    for (; j < d; j++) s += (double)x[j] * q[j];
    return s;
}

static double sq_dist(const float *row, const double *q, int64_t d,
                      double qsq, double norm) {
    double sq = (qsq - 2.0 * dot_row(row, q, d)) + norm;
    return sq < 0.0 ? 0.0 : sq;
}

/* ADC surrogate distance: gather one float32 LUT entry per subspace
   code and accumulate into a float64 total in subspace order — the
   exact operation the NumPy fallback performs (float64 zeros += float32
   gathered row, m ascending), so both scorers are bit-identical. */
static double adc_dist(const unsigned char *code, const float *lut,
                       int64_t pqm, int64_t pqk) {
    double acc = 0.0;
    for (int64_t m = 0; m < pqm; m++)
        acc += (double)lut[m * pqk + (int64_t)code[m]];
    return acc;
}

void sq_dists_to_rows(const float *rows, int64_t m, int64_t d,
                      const double *q, double qsq,
                      const double *norms, double *out) {
    for (int64_t i = 0; i < m; i++)
        out[i] = sq_dist(rows + i * d, q, d, qsq, norms[i]);
}

/* -- heaps ---------------------------------------------------------- */
/* Candidates: min-heap ordered by (dist asc, id asc) — matches Python
   heapq over (dist, id) tuples.  Results: capped heap whose root is the
   eviction victim under heapq's ordering of (-dist, id) tuples, i.e.
   the entry with the largest dist and, among ties, the smallest id. */

static int cand_less(double d1, int32_t i1, double d2, int32_t i2) {
    return d1 < d2 || (d1 == d2 && i1 < i2);
}

static void cand_push(double *hd, int32_t *hi, int64_t *len,
                      double d, int32_t id) {
    int64_t k = (*len)++;
    while (k > 0) {
        int64_t parent = (k - 1) / 2;
        if (!cand_less(d, id, hd[parent], hi[parent])) break;
        hd[k] = hd[parent]; hi[k] = hi[parent];
        k = parent;
    }
    hd[k] = d; hi[k] = id;
}

static void cand_pop(double *hd, int32_t *hi, int64_t *len,
                     double *d, int32_t *id) {
    *d = hd[0]; *id = hi[0];
    int64_t n = --(*len);
    if (n == 0) return;
    double ld = hd[n]; int32_t li = hi[n];
    int64_t k = 0;
    for (;;) {
        int64_t child = 2 * k + 1;
        if (child >= n) break;
        if (child + 1 < n &&
            cand_less(hd[child + 1], hi[child + 1], hd[child], hi[child]))
            child++;
        if (!cand_less(hd[child], hi[child], ld, li)) break;
        hd[k] = hd[child]; hi[k] = hi[child];
        k = child;
    }
    hd[k] = ld; hi[k] = li;
}

static int res_evict_first(double d1, int32_t i1, double d2, int32_t i2) {
    /* "more evictable": larger dist, ties broken toward smaller id */
    return d1 > d2 || (d1 == d2 && i1 < i2);
}

static void res_sift_down(double *hd, int32_t *hi, int64_t len, int64_t k,
                          double d, int32_t id) {
    for (;;) {
        int64_t child = 2 * k + 1;
        if (child >= len) break;
        if (child + 1 < len &&
            res_evict_first(hd[child + 1], hi[child + 1], hd[child], hi[child]))
            child++;
        if (!res_evict_first(hd[child], hi[child], d, id)) break;
        hd[k] = hd[child]; hi[k] = hi[child];
        k = child;
    }
    hd[k] = d; hi[k] = id;
}

static void res_push(double *hd, int32_t *hi, int64_t *len,
                     double d, int32_t id) {
    int64_t k = (*len)++;
    while (k > 0) {
        int64_t parent = (k - 1) / 2;
        if (!res_evict_first(d, id, hd[parent], hi[parent])) break;
        hd[k] = hd[parent]; hi[k] = hi[parent];
        k = parent;
    }
    hd[k] = d; hi[k] = id;
}

/* -- best-first search (Algorithm 1 / Definition 4.7) ---------------
   max_ndc / max_hops implement the QueryBudget caps: a negative value
   means unlimited, in which case every budget branch below is dead and
   the loop is byte-for-byte the unbudgeted Algorithm 1.  ``deadline``
   is an absolute CLOCK_MONOTONIC second count (<= 0 means none),
   checked coarsely — once every DEADLINE_CHECK_GRAIN expansions — so
   wall-clock SLO budgets can ride the kernel instead of falling back
   to the Python pool.  When a cap fires the search stops where it
   stands and the current result heap is returned as a degraded
   best-k; stats[3] records which cap fired (0 none, 1 ndc, 2 hops,
   3 deadline) so Python can attach a BudgetReport. */

/* The shared search core.  ``counts`` selects the adjacency layout:
   NULL walks the frozen CSR arrays (indptr[u]..indptr[u+1]); non-NULL
   walks a padded matrix flattened into ``indices`` where row u starts
   at indptr[u] and holds counts[u] live entries — that is how the
   construction path searches a graph that is still being mutated
   without re-freezing it per point.  ``vis_ids``/``vis_sq`` (NULL to
   skip) record every evaluated (vertex, squared distance) pair in
   evaluation order — the visited set that C2 candidate acquisition
   pools; the order is irrelevant because Python re-sorts by
   (distance, id), exactly like the pure-Python frontier's finish().
   ``lut`` (NULL for exact search) switches scoring to the compressed
   ADC mode: vertices are scored from their uint8 PQ codes via the
   per-query float32 table and ``data``/``q``/``norms`` may be NULL —
   the float32 tier is never dereferenced.  Everything else (heaps,
   epochs, budget caps, tie-breaking) is shared, so the compressed walk
   inherits the exact walk's determinism guarantees. */
static int64_t bf_core(
    const float *data, int64_t d, const double *norms,
    const int32_t *indptr, const int32_t *indices, const int32_t *counts,
    const unsigned char *codes, const float *lut, int64_t pqm, int64_t pqk,
    const double *q, double qsq,
    const int64_t *seeds, int64_t nseeds, int64_t ef,
    int64_t max_ndc, int64_t max_hops, double deadline,
    int64_t *visit_gen, int64_t gen,
    double *cd, int32_t *ci,          /* candidate heap, capacity n  */
    double *rd, int32_t *ri,          /* result heap, capacity ef    */
    int32_t *out_ids, double *out_sq, /* capacity ef                 */
    int32_t *vis_ids, double *vis_sq, /* capacity n, NULL to skip    */
    int64_t *stats)                   /* {ndc, hops, visited, fired} */
{
    int64_t clen = 0, rlen = 0;
    int64_t ndc = 0, hops = 0, fired = 0;

    for (int64_t s = 0; s < nseeds; s++) {
        int64_t v = seeds[s];
        if (visit_gen[v] == gen) continue;
        if (max_ndc >= 0 && ndc >= max_ndc) { fired = 1; break; }
        visit_gen[v] = gen;
        double sq = lut ? adc_dist(codes + v * pqm, lut, pqm, pqk)
                        : sq_dist(data + v * d, q, d, qsq, norms[v]);
        if (vis_ids) { vis_ids[ndc] = (int32_t)v; vis_sq[ndc] = sq; }
        ndc++;
        if (rlen < ef) {
            res_push(rd, ri, &rlen, sq, (int32_t)v);
            cand_push(cd, ci, &clen, sq, (int32_t)v);
        } else if (sq < rd[0]) {
            res_sift_down(rd, ri, rlen, 0, sq, (int32_t)v);
            cand_push(cd, ci, &clen, sq, (int32_t)v);
        }
    }

    while (clen > 0 && !fired) {
        if (max_hops >= 0 && hops >= max_hops) { fired = 2; break; }
        if (max_ndc >= 0 && ndc >= max_ndc) { fired = 1; break; }
        if (deadline > 0.0 && hops % DEADLINE_CHECK_GRAIN == 0 &&
            mono_now() >= deadline) { fired = 3; break; }
        double du; int32_t u;
        cand_pop(cd, ci, &clen, &du, &u);
        if (rlen == ef && du > rd[0]) break;
        hops++;
        int64_t start = indptr[u];
        int64_t stop = counts ? start + counts[u] : indptr[u + 1];
        for (int64_t k = start; k < stop; k++) {
            int32_t v = indices[k];
            if (visit_gen[v] == gen) continue;
            if (max_ndc >= 0 && ndc >= max_ndc) { fired = 1; break; }
            visit_gen[v] = gen;
            double sq = lut
                ? adc_dist(codes + (int64_t)v * pqm, lut, pqm, pqk)
                : sq_dist(data + (int64_t)v * d, q, d, qsq, norms[v]);
            if (vis_ids) { vis_ids[ndc] = v; vis_sq[ndc] = sq; }
            ndc++;
            if (rlen < ef) {
                res_push(rd, ri, &rlen, sq, v);
                cand_push(cd, ci, &clen, sq, v);
            } else if (sq < rd[0]) {
                res_sift_down(rd, ri, rlen, 0, sq, v);
                cand_push(cd, ci, &clen, sq, v);
            }
        }
    }

    /* ascending (dist, id) — the order Python's finish() sorts into */
    for (int64_t i = 0; i < rlen; i++) {
        out_sq[i] = rd[i];
        out_ids[i] = ri[i];
    }
    for (int64_t i = 1; i < rlen; i++) {
        double dv = out_sq[i]; int32_t iv = out_ids[i];
        int64_t j = i - 1;
        while (j >= 0 && (out_sq[j] > dv ||
                          (out_sq[j] == dv && out_ids[j] > iv))) {
            out_sq[j + 1] = out_sq[j]; out_ids[j + 1] = out_ids[j];
            j--;
        }
        out_sq[j + 1] = dv; out_ids[j + 1] = iv;
    }

    stats[0] = ndc; stats[1] = hops; stats[2] = ndc; stats[3] = fired;
    return rlen;
}

int64_t best_first(
    const float *data, int64_t n, int64_t d, const double *norms,
    const int32_t *indptr, const int32_t *indices,
    const double *q, double qsq,
    const int64_t *seeds, int64_t nseeds, int64_t ef,
    int64_t max_ndc, int64_t max_hops,
    int64_t *visit_gen, int64_t gen,
    double *cd, int32_t *ci,
    double *rd, int32_t *ri,
    int32_t *out_ids, double *out_sq,
    int64_t *stats)
{
    (void)n;
    return bf_core(data, d, norms, indptr, indices, 0, 0, 0, 0, 0,
                   q, qsq, seeds, nseeds, ef, max_ndc, max_hops, 0.0,
                   visit_gen, gen, cd, ci, rd, ri, out_ids, out_sq,
                   0, 0, stats);
}

/* Compressed traversal entry point: scores every vertex from its uint8
   PQ code row via the per-query float32 LUT (pqm subspaces × pqk
   centroids).  No float32 data row is ever read; stats[0] therefore
   counts ADC lookups, not true distance computations. */
int64_t best_first_adc(
    const unsigned char *codes, int64_t n, int64_t pqm, int64_t pqk,
    const float *lut,
    const int32_t *indptr, const int32_t *indices,
    const int64_t *seeds, int64_t nseeds, int64_t ef,
    int64_t max_ndc, int64_t max_hops,
    int64_t *visit_gen, int64_t gen,
    double *cd, int32_t *ci,
    double *rd, int32_t *ri,
    int32_t *out_ids, double *out_sq,
    int64_t *stats)
{
    (void)n;
    return bf_core(0, 0, 0, indptr, indices, 0, codes, lut, pqm, pqk,
                   0, 0.0, seeds, nseeds, ef, max_ndc, max_hops, 0.0,
                   visit_gen, gen, cd, ci, rd, ri, out_ids, out_sq,
                   0, 0, stats);
}

/* Construction-side entry point: unbudgeted, visited-recording, and
   layout-flexible via ``counts`` (see bf_core). */
int64_t best_first_build(
    const float *data, int64_t d, const double *norms,
    const int32_t *indptr, const int32_t *indices, const int32_t *counts,
    const double *q, double qsq,
    const int64_t *seeds, int64_t nseeds, int64_t ef,
    int64_t *visit_gen, int64_t gen,
    double *cd, int32_t *ci,
    double *rd, int32_t *ri,
    int32_t *out_ids, double *out_sq,
    int32_t *vis_ids, double *vis_sq,
    int64_t *stats)
{
    return bf_core(data, d, norms, indptr, indices, counts, 0, 0, 0, 0,
                   q, qsq, seeds, nseeds, ef, -1, -1, 0.0,
                   visit_gen, gen, cd, ci, rd, ri, out_ids, out_sq,
                   vis_ids, vis_sq, stats);
}

/* -- RNG-heuristic selection scan (C3) -------------------------------
   ``cross`` is the float32 pairwise distance matrix NumPy computed for
   the sorted candidate list; candidate pos is accepted iff no already
   selected s occludes it, i.e. no (float)(alpha*cross[pos][s]) strictly
   below cand_d[pos].  The float multiply then double compare replicates
   NumPy's scalar-times-float32-array promotion followed by the mixed
   float32/float64 comparison, so every accept/reject bit matches the
   Python scan.  Returns the number of selected positions in out. */
int64_t select_rng(
    const float *cross, int64_t m, int64_t stride,
    const double *cand_d, int64_t max_degree, double alpha,
    int64_t *out)
{
    float alpha_f = (float)alpha;
    int64_t nsel = 0;
    for (int64_t pos = 0; pos < m && nsel < max_degree; pos++) {
        const float *row = cross + pos * stride;
        int occluded = 0;
        for (int64_t s = 0; s < nsel; s++) {
            float scaled = alpha_f * row[out[s]];
            if ((double)scaled < cand_d[pos]) { occluded = 1; break; }
        }
        if (!occluded) out[nsel++] = pos;
    }
    return nsel;
}

void best_first_batch(
    const float *data, int64_t n, int64_t d, const double *norms,
    const int32_t *indptr, const int32_t *indices,
    const double *queries, const double *qsqs, int64_t nq,
    const int64_t *seed_indptr, const int64_t *seeds, int64_t ef,
    const int64_t *max_ndcs, int64_t max_hops,
    int64_t *visit_gen, int64_t gen,
    double *cd, int32_t *ci, double *rd, int32_t *ri,
    int32_t *out_ids, double *out_sq, int64_t *out_len,
    int64_t *stats)
{
    for (int64_t i = 0; i < nq; i++) {
        out_len[i] = best_first(
            data, n, d, norms, indptr, indices,
            queries + i * d, qsqs[i],
            seeds + seed_indptr[i], seed_indptr[i + 1] - seed_indptr[i],
            ef, max_ndcs[i], max_hops, visit_gen, gen + i, cd, ci, rd, ri,
            out_ids + i * ef, out_sq + i * ef, stats + i * 4);
    }
}

/* -- multi-threaded batch (the GIL-free scaling path) ----------------
   A pthread worker pool pulls grains of queries off an atomic cursor.
   Every per-query state (epoch array, both heaps) is thread-private
   and allocated here in C; every query writes only to its own fixed
   output slot (out_ids/out_sq/out_len/stats row i), so the results
   are bit-identical to the serial kernel regardless of thread count
   or scheduling order.  Per-thread wall-clock is recorded so Python
   can report worker utilization without re-entering the loop. */

#define MT_GRAIN 8

typedef struct {
    const float *data; int64_t n, d; const double *norms;
    const int32_t *indptr; const int32_t *indices;
    const unsigned char *codes;  /* compressed mode; NULL for exact */
    const float *luts;           /* nq stacked (pqm × pqk) tables    */
    int64_t pqm, pqk;
    const double *queries; const double *qsqs; int64_t nq;
    const int64_t *seed_indptr; const int64_t *seeds;
    int64_t ef;
    const int64_t *max_ndcs;
    const int64_t *max_hops;     /* per query, -1 = unlimited */
    const double *deadlines;     /* per query, seconds of wall-clock
                                    allowed from kernel entry; <= 0 = none */
    double deadline_base;        /* CLOCK_MONOTONIC at kernel entry */
    int32_t *out_ids; double *out_sq; int64_t *out_len; int64_t *stats;
    double *thread_busy;
    int64_t next;          /* atomic work cursor */
    int failed;            /* any thread could not allocate scratch */
} mt_job;

typedef struct { mt_job *job; int64_t tid; } mt_arg;

static void *mt_worker(void *argp) {
    mt_arg *arg = (mt_arg *)argp;
    mt_job *job = arg->job;
    double started = mono_now();
    int64_t n = job->n, ef = job->ef;
    int64_t *visit_gen = (int64_t *)calloc((size_t)n, sizeof(int64_t));
    double *cd = (double *)malloc((size_t)n * sizeof(double));
    int32_t *ci = (int32_t *)malloc((size_t)n * sizeof(int32_t));
    double *rd = (double *)malloc((size_t)ef * sizeof(double));
    int32_t *ri = (int32_t *)malloc((size_t)ef * sizeof(int32_t));
    if (!visit_gen || !cd || !ci || !rd || !ri) {
        job->failed = 1;
    } else {
        int64_t gen = 0;
        for (;;) {
            int64_t start = __sync_fetch_and_add(&job->next, MT_GRAIN);
            if (start >= job->nq) break;
            int64_t stop = start + MT_GRAIN;
            if (stop > job->nq) stop = job->nq;
            for (int64_t i = start; i < stop; i++) {
                gen++;
                /* a query's wall-clock allowance is measured from the
                   single kernel entry point — the deadline the serving
                   layer computed against request arrival — not from
                   whenever a thread happens to dequeue it */
                double dl = (job->deadlines && job->deadlines[i] > 0.0)
                    ? job->deadline_base + job->deadlines[i] : 0.0;
                job->out_len[i] = bf_core(
                    job->data, job->d, job->norms,
                    job->indptr, job->indices, 0,
                    job->codes,
                    job->luts ? job->luts + i * job->pqm * job->pqk : 0,
                    job->pqm, job->pqk,
                    job->queries ? job->queries + i * job->d : 0,
                    job->qsqs ? job->qsqs[i] : 0.0,
                    job->seeds + job->seed_indptr[i],
                    job->seed_indptr[i + 1] - job->seed_indptr[i],
                    ef, job->max_ndcs[i], job->max_hops[i], dl,
                    visit_gen, gen, cd, ci, rd, ri,
                    job->out_ids + i * ef, job->out_sq + i * ef,
                    0, 0, job->stats + i * 4);
            }
        }
    }
    free(visit_gen); free(cd); free(ci); free(rd); free(ri);
    job->thread_busy[arg->tid] = mono_now() - started;
    return 0;
}

/* Shared pool runner.  Returns 0 on success; non-zero means scratch
   allocation or thread creation failed and the caller must fall back
   (outputs undefined). */
static int64_t mt_run(mt_job *job, int64_t n_threads) {
    if (n_threads > job->nq) n_threads = job->nq;
    if (n_threads < 1) n_threads = 1;
    for (int64_t t = 0; t < n_threads; t++) job->thread_busy[t] = 0.0;

    if (n_threads == 1) {
        mt_arg arg; arg.job = job; arg.tid = 0;
        mt_worker(&arg);
        return job->failed ? 1 : 0;
    }

    pthread_t *tids = (pthread_t *)malloc((size_t)n_threads * sizeof(pthread_t));
    mt_arg *args = (mt_arg *)malloc((size_t)n_threads * sizeof(mt_arg));
    if (!tids || !args) { free(tids); free(args); return 1; }
    int64_t created = 0;
    for (; created < n_threads; created++) {
        args[created].job = job; args[created].tid = created;
        if (pthread_create(&tids[created], 0, mt_worker, &args[created]) != 0) {
            job->failed = 1;
            break;
        }
    }
    for (int64_t t = 0; t < created; t++) pthread_join(tids[t], 0);
    free(tids); free(args);
    return job->failed ? 1 : 0;
}

int64_t best_first_batch_mt(
    const float *data, int64_t n, int64_t d, const double *norms,
    const int32_t *indptr, const int32_t *indices,
    const double *queries, const double *qsqs, int64_t nq,
    const int64_t *seed_indptr, const int64_t *seeds, int64_t ef,
    const int64_t *max_ndcs, const int64_t *max_hops,
    const double *deadlines,
    int32_t *out_ids, double *out_sq, int64_t *out_len,
    int64_t *stats, int64_t n_threads, double *thread_busy)
{
    mt_job job;
    job.data = data; job.n = n; job.d = d; job.norms = norms;
    job.indptr = indptr; job.indices = indices;
    job.codes = 0; job.luts = 0; job.pqm = 0; job.pqk = 0;
    job.queries = queries; job.qsqs = qsqs; job.nq = nq;
    job.seed_indptr = seed_indptr; job.seeds = seeds; job.ef = ef;
    job.max_ndcs = max_ndcs; job.max_hops = max_hops;
    job.deadlines = deadlines; job.deadline_base = mono_now();
    job.out_ids = out_ids; job.out_sq = out_sq; job.out_len = out_len;
    job.stats = stats; job.thread_busy = thread_busy;
    job.next = 0; job.failed = 0;
    return mt_run(&job, n_threads);
}

/* Compressed batch on the same pool: query i scores vertices through
   its own LUT slice (luts + i*pqm*pqk) against the shared uint8 code
   matrix; the float32 tier is never touched.  Fixed output slots keep
   the bit-identical-at-any-thread-count guarantee. */
int64_t best_first_batch_adc_mt(
    const unsigned char *codes, int64_t n, int64_t pqm, int64_t pqk,
    const float *luts,
    const int32_t *indptr, const int32_t *indices, int64_t nq,
    const int64_t *seed_indptr, const int64_t *seeds, int64_t ef,
    const int64_t *max_ndcs, const int64_t *max_hops,
    const double *deadlines,
    int32_t *out_ids, double *out_sq, int64_t *out_len,
    int64_t *stats, int64_t n_threads, double *thread_busy)
{
    mt_job job;
    job.data = 0; job.n = n; job.d = 0; job.norms = 0;
    job.indptr = indptr; job.indices = indices;
    job.codes = codes; job.luts = luts; job.pqm = pqm; job.pqk = pqk;
    job.queries = 0; job.qsqs = 0; job.nq = nq;
    job.seed_indptr = seed_indptr; job.seeds = seeds; job.ef = ef;
    job.max_ndcs = max_ndcs; job.max_hops = max_hops;
    job.deadlines = deadlines; job.deadline_base = mono_now();
    job.out_ids = out_ids; job.out_sq = out_sq; job.out_len = out_len;
    job.stats = stats; job.thread_busy = thread_busy;
    job.next = 0; job.failed = 0;
    return mt_run(&job, n_threads);
}
"""

_I64 = ctypes.c_int64
_PF32 = np.ctypeslib.ndpointer(np.float32, flags="C_CONTIGUOUS")
_PF64 = np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS")
_PI32 = np.ctypeslib.ndpointer(np.int32, flags="C_CONTIGUOUS")
_PI64 = np.ctypeslib.ndpointer(np.int64, flags="C_CONTIGUOUS")
_PU8 = np.ctypeslib.ndpointer(np.uint8, flags="C_CONTIGUOUS")

#: why the native kernel is unavailable (None when LIB loaded, or the
#: deliberate-opt-out/compile/load failure reason otherwise)
LOAD_ERROR: str | None = None

#: structured classification of LOAD_ERROR for the observability event:
#: None (loaded), "disabled", "compile", "link_pthread" (the -lpthread /
#: thread-runtime link step failed — the MT batch kernel's dependency),
#: or "load" (the built .so would not dlopen)
LOAD_ERROR_KIND: str | None = None


def _classify_failure(kind: str, detail: str) -> str:
    """Refine a failure stage into the structured event kind.

    A missing/broken pthread link is singled out because it is the one
    failure mode the multi-threaded batch kernel introduced: a box that
    compiled PR-1's serial kernels fine can still fail here, and a prod
    log that only said "compile failed" would hide that regression.
    """
    if "pthread" in detail.lower():
        return "link_pthread"
    return kind


def _build_library() -> ctypes.CDLL | None:
    global LOAD_ERROR, LOAD_ERROR_KIND
    if os.environ.get("REPRO_NO_NATIVE"):
        LOAD_ERROR = "disabled via REPRO_NO_NATIVE"
        LOAD_ERROR_KIND = "disabled"
        return None
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    build_dir = os.environ.get("REPRO_NATIVE_BUILD_DIR") or os.path.join(
        os.path.dirname(__file__), "_native_build"
    )
    so_path = os.path.join(build_dir, f"kernels-{digest}.so")
    if not os.path.exists(so_path):
        compiler = (
            sysconfig.get_config_var("CC") or os.environ.get("CC") or "cc"
        ).split()[0]
        try:
            os.makedirs(build_dir, exist_ok=True)
            fd, src_path = tempfile.mkstemp(suffix=".c", dir=build_dir)
            with os.fdopen(fd, "w") as handle:
                handle.write(_C_SOURCE)
            result = subprocess.run(
                [compiler, "-O2", "-ffp-contract=off", "-shared", "-fPIC",
                 src_path, "-o", so_path, "-lm", "-lpthread"],
                capture_output=True, timeout=120,
            )
            os.unlink(src_path)
            if result.returncode != 0:
                stderr = result.stderr.decode(errors="replace")[:500]
                LOAD_ERROR = (
                    f"{compiler} failed with code {result.returncode}: "
                    + stderr
                )
                LOAD_ERROR_KIND = _classify_failure("compile", stderr)
                return None
        except (OSError, subprocess.SubprocessError) as exc:
            LOAD_ERROR = f"compilation failed: {exc}"
            LOAD_ERROR_KIND = _classify_failure("compile", str(exc))
            return None
    try:
        lib = ctypes.CDLL(so_path)
    except OSError as exc:
        LOAD_ERROR = f"could not load {so_path}: {exc}"
        LOAD_ERROR_KIND = _classify_failure("load", str(exc))
        return None
    lib.sq_dists_to_rows.argtypes = [
        _PF32, _I64, _I64, _PF64, ctypes.c_double, _PF64, _PF64,
    ]
    lib.sq_dists_to_rows.restype = None
    lib.best_first.argtypes = [
        _PF32, _I64, _I64, _PF64, _PI32, _PI32, _PF64, ctypes.c_double,
        _PI64, _I64, _I64, _I64, _I64, _PI64, _I64,
        _PF64, _PI32, _PF64, _PI32, _PI32, _PF64, _PI64,
    ]
    lib.best_first.restype = _I64
    lib.best_first_batch.argtypes = [
        _PF32, _I64, _I64, _PF64, _PI32, _PI32, _PF64, _PF64, _I64,
        _PI64, _PI64, _I64, _PI64, _I64, _PI64, _I64,
        _PF64, _PI32, _PF64, _PI32, _PI32, _PF64, _PI64, _PI64,
    ]
    lib.best_first_batch.restype = None
    lib.best_first_batch_mt.argtypes = [
        _PF32, _I64, _I64, _PF64, _PI32, _PI32, _PF64, _PF64, _I64,
        _PI64, _PI64, _I64, _PI64, _PI64, _PF64,
        _PI32, _PF64, _PI64, _PI64, _I64, _PF64,
    ]
    lib.best_first_batch_mt.restype = _I64
    lib.best_first_adc.argtypes = [
        _PU8, _I64, _I64, _I64, _PF32, _PI32, _PI32,
        _PI64, _I64, _I64, _I64, _I64, _PI64, _I64,
        _PF64, _PI32, _PF64, _PI32, _PI32, _PF64, _PI64,
    ]
    lib.best_first_adc.restype = _I64
    lib.best_first_batch_adc_mt.argtypes = [
        _PU8, _I64, _I64, _I64, _PF32, _PI32, _PI32, _I64,
        _PI64, _PI64, _I64, _PI64, _PI64, _PF64,
        _PI32, _PF64, _PI64, _PI64, _I64, _PF64,
    ]
    lib.best_first_batch_adc_mt.restype = _I64
    lib.best_first_build.argtypes = [
        _PF32, _I64, _PF64, _PI32, _PI32, ctypes.c_void_p,
        _PF64, ctypes.c_double, _PI64, _I64, _I64, _PI64, _I64,
        _PF64, _PI32, _PF64, _PI32, _PI32, _PF64, _PI32, _PF64, _PI64,
    ]
    lib.best_first_build.restype = _I64
    lib.select_rng.argtypes = [
        _PF32, _I64, _I64, _PF64, _I64, ctypes.c_double, _PI64,
    ]
    lib.select_rng.restype = _I64
    LOAD_ERROR = None
    LOAD_ERROR_KIND = None
    return lib


LIB = _build_library()


def _report_load_state() -> None:
    """Expose the kernel's availability through the observability layer.

    A serving deployment silently degrading to NumPy is the classic
    invisible incident: results stay identical while throughput drops
    ~8x.  The one-time ``RuntimeWarning`` is kept for interactive use,
    but the durable signals are structural — the
    ``repro_native_kernel_loaded`` gauge (scrapeable: alert on 0), a
    ``repro_native_kernel_load_failures_total`` counter, and a
    structured ``native.kernel_load_failed`` event carrying
    ``LOAD_ERROR`` in the machine-readable log.
    """
    from repro import observability as obs

    obs.REGISTRY.gauge(
        "repro_native_kernel_loaded",
        "Whether the C search kernel is active (1) or the pure-NumPy "
        "fallback is serving (0).",
    ).set(1 if LIB is not None else 0)
    if LIB is None and not os.environ.get("REPRO_NO_NATIVE"):
        obs.REGISTRY.counter(
            "repro_native_kernel_load_failures_total",
            "Times the C kernel failed to compile or load "
            "(deliberate REPRO_NO_NATIVE opt-outs are not counted).",
        ).inc()
        obs.get_logger("repro.native").warning(
            "native.kernel_load_failed", error=LOAD_ERROR or "unknown",
            error_kind=LOAD_ERROR_KIND or "unknown",
        )
        # Degrading to NumPy is safe (identical results, slower), but a
        # production operator should know it happened — warn exactly once.
        import warnings

        warnings.warn(
            f"repro: native search kernel unavailable ({LOAD_ERROR}); "
            "falling back to the pure-NumPy implementation",
            RuntimeWarning,
            stacklevel=2,
        )


_report_load_state()


def sq_dists_to_rows(
    query64: np.ndarray,
    rows: np.ndarray,
    rows_sq: np.ndarray,
    query_sq: float,
) -> np.ndarray:
    """C version of the expanded-form kernel (rows must be float32)."""
    out = np.empty(len(rows), dtype=np.float64)
    LIB.sq_dists_to_rows(
        rows, len(rows), rows.shape[1] if rows.ndim == 2 else 0,
        query64, query_sq, rows_sq, out,
    )
    return out


def best_first(ctx, graph, query64, query_sq, seeds, ef,
               max_ndc=-1, max_hops=-1):
    """Run the whole best-first search in C against a frozen CSR graph.

    ``ctx`` is a :class:`repro.components.context.SearchContext` whose
    scratch buffers (epoch array, heaps) this call borrows.  Negative
    ``max_ndc`` / ``max_hops`` mean unlimited (QueryBudget caps).
    Returns ``(ids, sq_dists, ndc, hops, visited, budget_fired)`` where
    ``budget_fired`` is ``None``, ``"ndc"`` or ``"hops"``.
    """
    indptr, indices = graph.csr()
    cd, ci, rd, ri = ctx.native_scratch(ef)
    out_ids = np.empty(ef, dtype=np.int32)
    out_sq = np.empty(ef, dtype=np.float64)
    stats = np.empty(4, dtype=np.int64)
    rlen = LIB.best_first(
        ctx.data, len(ctx.data), ctx.data.shape[1], ctx.norms_sq,
        indptr, indices, query64, query_sq,
        seeds, len(seeds), ef, max_ndc, max_hops,
        ctx.visit_gen, ctx.generation,
        cd, ci, rd, ri, out_ids, out_sq, stats,
    )
    return (
        out_ids[:rlen].astype(np.int64),
        out_sq[:rlen],
        int(stats[0]), int(stats[1]), int(stats[2]),
        _FIRED_LABELS[int(stats[3])],
    )


_FIRED_LABELS = {0: None, 1: "ndc", 2: "hops", 3: "deadline"}


def _per_query_caps(nq, max_ndcs, max_hops, deadlines):
    """Normalize the MT kernels' per-query budget arrays.

    ``max_ndcs``/``max_hops`` accept ``None`` (unlimited), a scalar
    applied to every query, or an int64 array; ``deadlines`` accepts
    ``None`` or a float64 array of per-query wall-clock allowances in
    seconds measured from kernel entry (``<= 0`` = none).
    """
    if max_ndcs is None:
        max_ndcs = np.full(nq, -1, dtype=np.int64)
    else:
        max_ndcs = np.ascontiguousarray(max_ndcs, dtype=np.int64)
    if max_hops is None:
        max_hops = np.full(nq, -1, dtype=np.int64)
    elif np.isscalar(max_hops):
        max_hops = np.full(nq, int(max_hops), dtype=np.int64)
    else:
        max_hops = np.ascontiguousarray(max_hops, dtype=np.int64)
    if deadlines is None:
        deadlines = np.zeros(nq, dtype=np.float64)
    else:
        deadlines = np.ascontiguousarray(deadlines, dtype=np.float64)
    return max_ndcs, max_hops, deadlines


def best_first_adc(ctx, graph, codes, lut, seeds, ef,
                   max_ndc=-1, max_hops=-1):
    """Compressed best-first search in C: ADC scoring from uint8 codes.

    ``codes`` is the tier's contiguous ``(n, M)`` uint8 matrix and
    ``lut`` this query's ``(M, K)`` float32 table; no float32 data row
    is read.  Borrows ``ctx``'s scratch like :func:`best_first`.
    Returns ``(ids, adc_sq, lookups, hops, visited, budget_fired)`` —
    the first stat counts ADC lookups, not true NDC.
    """
    indptr, indices = graph.csr()
    cd, ci, rd, ri = ctx.native_scratch(ef)
    out_ids = np.empty(ef, dtype=np.int32)
    out_sq = np.empty(ef, dtype=np.float64)
    stats = np.empty(4, dtype=np.int64)
    rlen = LIB.best_first_adc(
        codes, len(codes), codes.shape[1], lut.shape[1], lut,
        indptr, indices, seeds, len(seeds), ef, max_ndc, max_hops,
        ctx.visit_gen, ctx.generation,
        cd, ci, rd, ri, out_ids, out_sq, stats,
    )
    return (
        out_ids[:rlen].astype(np.int64),
        out_sq[:rlen],
        int(stats[0]), int(stats[1]), int(stats[2]),
        _FIRED_LABELS[int(stats[3])],
    )


def best_first_batch_adc_mt(codes, luts, graph, nq, seed_indptr, seeds,
                            ef, n_threads, max_ndcs=None, max_hops=-1,
                            deadlines=None):
    """Compressed whole-batch search on the pthread pool.

    ``luts`` is the stacked ``(nq, M, K)`` float32 table block (one GEMM
    per subspace built it for the whole batch); query ``i`` walks the
    shared uint8 ``codes`` through its own slice.  Same fixed-slot
    output contract as :func:`best_first_batch_mt`, so results are
    bit-identical for any thread count — and, because the Python
    fallback gathers from the same float32 tables in the same subspace
    order, bit-identical to the pure-NumPy path too.  Raises
    :class:`MemoryError` on scratch/thread failure.
    """
    indptr, indices = graph.csr()
    n_threads = max(1, min(int(n_threads), max(nq, 1)))
    max_ndcs, max_hops, deadlines = _per_query_caps(
        nq, max_ndcs, max_hops, deadlines
    )
    out_ids = np.empty((nq, ef), dtype=np.int32)
    out_sq = np.empty((nq, ef), dtype=np.float64)
    out_len = np.empty(nq, dtype=np.int64)
    stats = np.empty((nq, 4), dtype=np.int64)
    thread_busy = np.zeros(n_threads, dtype=np.float64)
    rc = LIB.best_first_batch_adc_mt(
        codes, len(codes), codes.shape[1], luts.shape[2], luts,
        indptr, indices, nq, seed_indptr, seeds, ef,
        max_ndcs, max_hops, deadlines,
        out_ids, out_sq, out_len, stats, n_threads, thread_busy,
    )
    if rc != 0:
        raise MemoryError(
            "best_first_batch_adc_mt could not allocate per-thread scratch"
        )
    return out_ids, out_sq, out_len, stats, thread_busy


def best_first_batch(ctx, graph, queries64, qsqs, seed_indptr, seeds, ef,
                     max_ndcs=None, max_hops=-1):
    """Batch counterpart of :func:`best_first`: one C call per chunk.

    Consumes ``len(queries64)`` visited generations from ``ctx`` and
    returns ``(ids, sq, lengths, stats)`` with rows padded to ``ef``;
    ``stats`` columns are {ndc, hops, visited, budget_fired_code}.
    ``max_ndcs`` is a per-query int64 NDC cap array (-1 = unlimited).
    """
    indptr, indices = graph.csr()
    cd, ci, rd, ri = ctx.native_scratch(ef)
    nq = len(queries64)
    if max_ndcs is None:
        max_ndcs = np.full(nq, -1, dtype=np.int64)
    out_ids = np.empty((nq, ef), dtype=np.int32)
    out_sq = np.empty((nq, ef), dtype=np.float64)
    out_len = np.empty(nq, dtype=np.int64)
    stats = np.empty((nq, 4), dtype=np.int64)
    LIB.best_first_batch(
        ctx.data, len(ctx.data), ctx.data.shape[1], ctx.norms_sq,
        indptr, indices, queries64, qsqs, nq,
        seed_indptr, seeds, ef, max_ndcs, max_hops,
        ctx.visit_gen, ctx.generation + 1,
        cd, ci, rd, ri, out_ids, out_sq, out_len, stats,
    )
    ctx.generation += nq
    return out_ids, out_sq, out_len, stats


def best_first_batch_mt(data, norms_sq, graph, queries64, qsqs,
                        seed_indptr, seeds, ef, n_threads,
                        max_ndcs=None, max_hops=-1, deadlines=None):
    """Whole-batch search on a pthread pool: one GIL-released C call.

    Unlike :func:`best_first_batch` this needs no
    :class:`~repro.components.context.SearchContext` — every thread
    allocates its own epoch array and heaps in C and every query writes
    a fixed output slot, so ids/dists/stats are bit-identical to the
    serial kernel for any ``n_threads``.  Returns ``(ids, sq, lengths,
    stats, thread_busy)``; ``thread_busy`` holds per-thread busy
    seconds for utilization accounting.  Raises :class:`MemoryError`
    when the kernel could not allocate scratch or spawn threads —
    callers fall back to the chunked Python-orchestrated engine.
    """
    indptr, indices = graph.csr()
    nq = len(queries64)
    n_threads = max(1, min(int(n_threads), max(nq, 1)))
    max_ndcs, max_hops, deadlines = _per_query_caps(
        nq, max_ndcs, max_hops, deadlines
    )
    out_ids = np.empty((nq, ef), dtype=np.int32)
    out_sq = np.empty((nq, ef), dtype=np.float64)
    out_len = np.empty(nq, dtype=np.int64)
    stats = np.empty((nq, 4), dtype=np.int64)
    thread_busy = np.zeros(n_threads, dtype=np.float64)
    rc = LIB.best_first_batch_mt(
        data, len(data), data.shape[1], norms_sq,
        indptr, indices, queries64, qsqs, nq,
        seed_indptr, seeds, ef, max_ndcs, max_hops, deadlines,
        out_ids, out_sq, out_len, stats, n_threads, thread_busy,
    )
    if rc != 0:
        raise MemoryError(
            "best_first_batch_mt could not allocate per-thread scratch"
        )
    return out_ids, out_sq, out_len, stats, thread_busy


def best_first_build(ctx, indptr, indices, counts, query64, query_sq,
                     seeds, ef):
    """Visited-recording best-first search for the construction path.

    ``indptr``/``indices`` are either a frozen CSR pair (``counts`` is
    None) or, with an int32 ``counts`` array, per-row offsets into a
    flattened padded adjacency matrix — the layout Vamana uses while its
    graph is still evolving.  ``seeds`` must be unique int64 ids (the
    Python frontier uniques them too).  Consumes one visited generation
    from ``ctx``.  Returns ``(visited_ids, visited_sq, ndc)`` in
    evaluation order; callers sort by ``(sq, id)`` to match the Python
    frontier's output.
    """
    cd, ci, rd, ri = ctx.native_scratch(ef)
    vis_ids, vis_sq = ctx.visited_scratch()
    out_ids = np.empty(ef, dtype=np.int32)
    out_sq = np.empty(ef, dtype=np.float64)
    stats = np.empty(4, dtype=np.int64)
    ctx.generation += 1
    LIB.best_first_build(
        ctx.data, ctx.data.shape[1], ctx.norms_sq,
        indptr, indices,
        counts.ctypes.data if counts is not None else None,
        query64, query_sq, seeds, len(seeds), ef,
        ctx.visit_gen, ctx.generation,
        cd, ci, rd, ri, out_ids, out_sq, vis_ids, vis_sq, stats,
    )
    nvis = int(stats[2])
    return vis_ids[:nvis], vis_sq[:nvis], int(stats[0])


def select_rng_scan(cross, cand_dists, max_degree, alpha=1.0):
    """C scan of the RNG-heuristic occlusion rule.

    ``cross`` is the float32 pairwise matrix for the (sorted) candidate
    list and ``cand_dists`` their float64 distances to the point being
    linked.  Returns the selected *positions* (int64) in selection
    order; decisions are bit-identical to the Python scan because the
    comparison floats are the same objects.
    """
    m = len(cand_dists)
    out = np.empty(m, dtype=np.int64)
    nsel = LIB.select_rng(
        cross, m, cross.shape[1], cand_dists, max_degree, alpha, out,
    )
    return out[:nsel]
