"""Mutable delta tier: the side-graph that makes every index insertable.

The paper's Table 7 / scenario S1 names the update asymmetry of graph
indexes: increment-built graphs (NSW, HNSW, NGT) absorb inserts
natively, while refinement and divide-and-conquer graphs (NSG, Vamana,
DPG, HCNNG, ...) are frozen at build time and must be rebuilt.  The
:class:`DeltaTier` removes that asymmetry at the serving layer: new
points land in a small NSW-style mutable side-graph with its own id
range *above* the frozen base, every search walks both tiers (the base
on the existing serial/MT C kernels, the delta in Python/NumPy — it is
small by construction), and the two result lists merge deterministically
by ``(distance, id)``.

Design points:

* **Append-grown storage.**  Vectors live in a geometrically doubled
  float32 block, adjacency in per-vertex Python lists — O(1) amortized
  insertion, no CSR rebuild per insert.
* **Deterministic NSW insertion.**  Each new point greedy-searches the
  existing delta graph from vertex 0 (the first delta insert) with an
  ef-bounded best-first walk and links undirected edges to its best
  ``max_m`` neighbors.  No RNG: replaying the same insert sequence
  rebuilds the same side-graph bit for bit, which keeps consolidation
  carry-over and save/load round-trips reproducible.
* **External ids.**  Delta-local vertex ``j`` is addressed everywhere
  as ``base_n + j``; tombstoned delta points still route (standard
  graph-ANNS deletion) but never surface in results.
* **Budget honesty.**  The walk charges every distance evaluation to
  the caller's counter and honors a :class:`QueryBudget` through the
  same :class:`BudgetTracker` the base routing uses, so a two-tier
  search never exceeds its NDC cap.

Consolidation (rebuilding base+delta into a fresh frozen snapshot) is
orchestrated by :meth:`repro.algorithms.base.GraphANNS.consolidate`;
this module only has to export/import its state (index format v5) and
answer queries.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro.components.routing import SearchResult
from repro.distance import DistanceCounter
from repro.resilience import BudgetTracker, QueryBudget

__all__ = ["DeltaTier"]

_INITIAL_CAPACITY = 16


class DeltaTier:
    """NSW-style mutable side-graph over the points inserted post-build."""

    def __init__(self, dim: int, base_n: int, max_m: int = 10,
                 ef_construction: int = 40):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if base_n < 0:
            raise ValueError(f"base_n must be >= 0, got {base_n}")
        self.dim = int(dim)
        #: external ids of delta vertices are ``base_n + local``
        self.base_n = int(base_n)
        self.max_m = max(1, int(max_m))
        self.ef_construction = max(1, int(ef_construction))
        self._vectors = np.empty((_INITIAL_CAPACITY, dim), dtype=np.float32)
        self._count = 0
        self._adj: list[list[int]] = []
        self._deleted: list[bool] = []
        #: NDC spent inside insert-time greedy searches (churn telemetry)
        self.insert_ndc = 0
        #: wall-clock of the first insert since the last consolidation,
        #: driving the consolidation-lag gauge
        self.first_insert_at: float | None = None

    # -- bookkeeping -----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of delta points (tombstoned ones included)."""
        return self._count

    def __len__(self) -> int:
        return self._count

    @property
    def vectors(self) -> np.ndarray:
        """The live float32 rows (a view into the growable block)."""
        return self._vectors[: self._count]

    @property
    def num_deleted(self) -> int:
        return sum(self._deleted)

    def size_bytes(self) -> int:
        edges = sum(len(nbrs) for nbrs in self._adj)
        return int(self._vectors[: self._count].nbytes + 8 * edges
                   + len(self._deleted))

    def _ensure_capacity(self, needed: int) -> None:
        cap = len(self._vectors)
        if needed <= cap:
            return
        while cap < needed:
            cap *= 2
        grown = np.empty((cap, self.dim), dtype=np.float32)
        grown[: self._count] = self._vectors[: self._count]
        self._vectors = grown

    # -- mutation --------------------------------------------------------

    def insert(self, vector: np.ndarray) -> int:
        """Add one float32 vector; returns its *external* id.

        The caller (``GraphANNS.insert``) validates the vector first;
        this method assumes a finite, contiguous ``(dim,)`` float32 row.
        """
        if self.first_insert_at is None:
            self.first_insert_at = time.monotonic()
        local = self._count
        self._ensure_capacity(local + 1)
        self._vectors[local] = vector
        self._adj.append([])
        self._deleted.append(False)
        self._count = local + 1
        if local > 0:
            counter = DistanceCounter()
            result = self._walk(
                np.ascontiguousarray(vector, dtype=np.float64),
                ef=max(self.ef_construction, self.max_m),
                counter=counter, budget=None, exclude=local,
            )
            self.insert_ndc += counter.count
            for neighbor in result[0][: self.max_m]:
                self._add_undirected_edge(local, int(neighbor))
        return self.base_n + local

    def _add_undirected_edge(self, u: int, v: int) -> None:
        if u == v:
            return
        if v not in self._adj[u]:
            self._adj[u].append(v)
        if u not in self._adj[v]:
            self._adj[v].append(u)

    def delete(self, external_id: int) -> None:
        """Tombstone one delta point (addressed by its external id)."""
        local = external_id - self.base_n
        if not 0 <= local < self._count:
            raise IndexError(f"vertex {external_id} is not a delta point")
        self._deleted[local] = True

    def contains(self, external_id: int) -> bool:
        return self.base_n <= external_id < self.base_n + self._count

    # -- search ----------------------------------------------------------

    def _walk(
        self,
        query64: np.ndarray,
        ef: int,
        counter: DistanceCounter,
        budget: QueryBudget | None,
        exclude: int | None = None,
    ):
        """ef-bounded best-first walk over the delta adjacency.

        Returns ``(local_ids, sq_dists, hops, visited, tracker)`` with
        ids in ascending ``(squared distance, id)`` order.  ``exclude``
        hides one vertex (the point being inserted) from the walk.
        Tombstoned vertices route but are *not* filtered here — result
        filtering happens in :meth:`search`, exactly like the base
        tier's tombstone handling.
        """
        n = self._count
        tracker = (
            None if budget is None or budget.unlimited
            else BudgetTracker(budget, counter)
        )
        # entry is always local vertex 0: the delta graph is connected
        # by construction (every insert links to an earlier vertex), so
        # vertex 0 reaches everything and the walk is deterministic
        visited = np.zeros(n, dtype=bool)
        if exclude is not None:
            visited[exclude] = True
        rows = self._vectors[:n].astype(np.float64, copy=False)

        def score(ids: np.ndarray) -> np.ndarray:
            diff = rows[ids] - query64
            counter.count += len(ids)
            return np.einsum("ij,ij->i", diff, diff)

        entry = np.asarray([0], dtype=np.int64)
        entry = entry[~visited[entry]]
        if tracker is not None:
            entry = tracker.clip(entry)
        candidates: list[tuple[float, int]] = []   # min-heap on sq dist
        results: list[tuple[float, int]] = []      # max-heap (negated)
        visited_count = 0
        if len(entry):
            visited[entry] = True
            visited_count += len(entry)
            for vertex, sq in zip(entry.tolist(), score(entry).tolist()):
                heapq.heappush(candidates, (sq, vertex))
                heapq.heappush(results, (-sq, vertex))
        hops = 0
        while candidates:
            if tracker is not None and tracker.stop_before_hop(hops):
                break
            sq, u = heapq.heappop(candidates)
            worst = -results[0][0] if len(results) >= ef else np.inf
            if sq > worst:
                break
            hops += 1
            nbrs = np.asarray(self._adj[u], dtype=np.int64)
            if len(nbrs):
                nbrs = nbrs[~visited[nbrs]]
            if tracker is not None:
                nbrs = tracker.clip(nbrs)
            if len(nbrs) == 0:
                continue
            visited[nbrs] = True
            visited_count += len(nbrs)
            worst = -results[0][0] if len(results) >= ef else np.inf
            for vertex, value in zip(nbrs.tolist(), score(nbrs).tolist()):
                if len(results) < ef:
                    heapq.heappush(results, (-value, vertex))
                    heapq.heappush(candidates, (value, vertex))
                    worst = -results[0][0] if len(results) >= ef else np.inf
                elif value < worst:
                    heapq.heapreplace(results, (-value, vertex))
                    heapq.heappush(candidates, (value, vertex))
                    worst = -results[0][0]
        ordered = sorted((-negsq, vertex) for negsq, vertex in results)
        ids = np.asarray([vertex for _, vertex in ordered], dtype=np.int64)
        sqs = np.asarray([sq for sq, _ in ordered], dtype=np.float64)
        return ids, sqs, hops, visited_count, tracker

    def search(
        self,
        query64: np.ndarray,
        k: int,
        ef: int,
        counter: DistanceCounter,
        budget: QueryBudget | None = None,
    ) -> SearchResult:
        """Top-k of the delta tier for one query (external ids).

        ``query64`` is the float64 contiguous query row; distances are
        true (square-rooted) L2 so they merge directly with the base
        tier's.  Tombstoned points are filtered from the result but
        still routed through, matching the base search semantics.
        """
        if self._count == 0:
            return SearchResult(ids=np.empty(0, dtype=np.int64),
                                dists=np.empty(0))
        start = counter.count
        ids, sqs, hops, visited_count, tracker = self._walk(
            query64, ef=max(ef, k), counter=counter, budget=budget,
        )
        if self.num_deleted and len(ids):
            keep = ~np.asarray(self._deleted, dtype=bool)[ids]
            ids, sqs = ids[keep], sqs[keep]
        ids, sqs = ids[:k], sqs[:k]
        degraded = tracker is not None and tracker.fired is not None
        return SearchResult(
            ids=self.base_n + ids,
            dists=np.sqrt(sqs),
            ndc=counter.count - start,
            hops=hops,
            visited=visited_count,
            degraded=degraded,
            budget=tracker.report(hops) if degraded else None,
        )

    # -- consolidation support -------------------------------------------

    def snapshot(self) -> tuple[np.ndarray, np.ndarray, int]:
        """A consistent copy of ``(vectors, deleted, count)`` for the
        consolidation worker to rebuild from while inserts continue."""
        count = self._count
        return (
            self._vectors[:count].copy(),
            np.asarray(self._deleted[:count], dtype=bool),
            count,
        )

    def deleted_flags(self, count: int) -> np.ndarray:
        """Tombstone flags for the first ``count`` delta points."""
        return np.asarray(self._deleted[:count], dtype=bool)

    def tail_after(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """Vectors (and tombstones) inserted after position ``count`` —
        the inserts that raced a consolidation and must be re-inserted
        into the fresh delta, in order, to keep their external ids."""
        return (
            self._vectors[count: self._count].copy(),
            np.asarray(self._deleted[count: self._count], dtype=bool),
        )

    # -- persistence (index format v5) -----------------------------------

    def export_state(self):
        """``(vectors, indptr, neighbors, deleted, meta)`` for v5 files."""
        counts = [len(self._adj[i]) for i in range(self._count)]
        indptr = np.zeros(self._count + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        neighbors = (
            np.concatenate([
                np.asarray(self._adj[i], dtype=np.int64)
                for i in range(self._count)
            ]) if indptr[-1] else np.empty(0, dtype=np.int64)
        ).astype(np.int32)
        meta = {
            "base_n": self.base_n,
            "max_m": self.max_m,
            "ef_construction": self.ef_construction,
        }
        return (
            self._vectors[: self._count].copy(),
            indptr,
            neighbors,
            np.asarray(self._deleted, dtype=bool),
            meta,
        )

    @classmethod
    def from_state(cls, vectors, indptr, neighbors, deleted, meta) -> "DeltaTier":
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim != 2:
            raise ValueError(f"delta vectors must be 2-D, got {vectors.shape}")
        n, dim = vectors.shape
        indptr = np.asarray(indptr, dtype=np.int64)
        neighbors = np.asarray(neighbors, dtype=np.int64)
        if len(indptr) != n + 1 or (n and int(indptr[-1]) != len(neighbors)):
            raise ValueError("delta adjacency arrays are inconsistent")
        tier = cls(dim or 1, int(meta["base_n"]),
                   max_m=int(meta.get("max_m", 10)),
                   ef_construction=int(meta.get("ef_construction", 40)))
        tier.dim = dim
        tier._ensure_capacity(n)
        tier._vectors[:n] = vectors
        tier._count = n
        tier._adj = [
            neighbors[int(indptr[i]): int(indptr[i + 1])].tolist()
            for i in range(n)
        ]
        tier._deleted = list(np.asarray(deleted, dtype=bool)[:n])
        while len(tier._deleted) < n:
            tier._deleted.append(False)
        return tier

    # -- integrity -------------------------------------------------------

    def consistency_issues(self, dim: int, base_n: int | None = None) -> list[str]:
        """Structural problems :func:`repro.resilience.verify_index`
        reports (and repairs by dropping the delta)."""
        issues: list[str] = []
        n = self._count
        if self.dim != dim:
            issues.append(
                f"delta is {self.dim}-d but the base data is {dim}-d"
            )
        if base_n is not None and self.base_n != base_n:
            issues.append(
                f"delta id range starts at {self.base_n} but the base "
                f"holds {base_n} points"
            )
        if len(self._adj) != n or len(self._deleted) != n:
            issues.append(
                f"delta bookkeeping out of sync: {n} vectors, "
                f"{len(self._adj)} adjacency lists, "
                f"{len(self._deleted)} tombstone slots"
            )
            return issues
        if n and not np.isfinite(self._vectors[:n]).all():
            bad = int((~np.isfinite(self._vectors[:n]).all(axis=1)).sum())
            issues.append(f"{bad} delta vectors contain NaN/Inf")
        for u in range(n):
            for v in self._adj[u]:
                if not 0 <= v < n:
                    issues.append(
                        f"delta edge {u}->{v} points outside [0, {n})"
                    )
                    return issues
                if v == u:
                    issues.append(f"delta self-loop at vertex {u}")
                    return issues
        return issues
