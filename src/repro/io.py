"""Index persistence: save a built index, reload it for search-only use.

Production deployments build once and serve many times (the paper's S1
discussion of update/construction cost).  ``save_index`` persists the
vectors, the adjacency lists (CSR-style: one offsets array + one
neighbor array) and the entry points to a single ``.npz``;
``load_index`` restores a :class:`StaticGraphIndex` that answers
queries with best-first search from the stored entries.

Auxiliary seed structures (KD-trees, LSH tables, ...) are *not*
serialized as bytes; instead the provider's construction recipe
(kind + parameters, :meth:`SeedProvider.spec`) is stored and the
structure is rebuilt deterministically on load.  Stochastic providers
(e.g. random entries) therefore stay stochastic after a round-trip
instead of being frozen into a fixed seed snapshot.  A seed snapshot
is still stored as a fallback for providers without a recipe and for
version-1 files.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro import faults
from repro.algorithms.base import GraphANNS
from repro.components.seeding import FixedSeeds, provider_from_spec
from repro.delta import DeltaTier
from repro.distance import DistanceCounter
from repro.graphs.graph import Graph
from repro.quantization import CompressedTier
from repro.resilience import (
    IndexFormatError,
    IndexIntegrityError,
    repair_csr_arrays,
    verify_index,
)

__all__ = [
    "save_index",
    "load_index",
    "save_sharded",
    "load_sharded",
    "StaticGraphIndex",
]

# v1: raw arrays; v2: + checksum and seed_spec recipes; v3: + optional
# id_map (cache-locality reordering, internal id -> original dataset id);
# v4: + optional compressed tier (pq_codes/pq_codebook/pq_meta) and
# optional vector_manifest pointing the float32 vectors at a raw ``.vec``
# sidecar that loaders may memory-map instead of resident-loading;
# v5: + optional delta tier (delta_vectors/delta_indptr/delta_neighbors/
# delta_deleted/delta_meta — the mutable side-graph of points inserted
# since the last consolidation, serialized beside the frozen base).
# Indexes using no v4/v5 feature are still written as v3, byte-compatible
# with the previous release.
_FORMAT_VERSION = 3
_COMPRESSED_FORMAT_VERSION = 4
_DELTA_FORMAT_VERSION = 5
_READABLE_VERSIONS = frozenset({1, 2, 3, 4, 5})

_REQUIRED_KEYS = frozenset(
    {"format_version", "algorithm", "data", "offsets", "neighbors", "seeds"}
)


def _content_checksum(data, offsets, neighbors, seeds, deleted,
                      id_map=None, pq_arrays=(), delta_arrays=()) -> str:
    """sha256 over the payload arrays (bytes + dtype + shape).

    ``id_map`` (v3), the pq arrays (v4) and the delta arrays (v5) join
    the digest only when present, so checksums of files not using those
    features equal what the earlier writers would have stored.
    """
    digest = hashlib.sha256()
    arrays = [data, offsets, neighbors, seeds, deleted]
    if id_map is not None:
        arrays.append(id_map)
    arrays.extend(pq_arrays)
    arrays.extend(delta_arrays)
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def save_index(
    index: GraphANNS,
    path: str | Path,
    num_seed_samples: int = 8,
    vector_tier: str = "embedded",
) -> None:
    """Persist a built index to ``path`` (``.npz``).

    ``vector_tier`` chooses where the float32 vectors live:

    * ``"embedded"`` (default) — inside the ``.npz``, as always.
    * ``"sidecar"`` — in a raw little-endian float32 file next to the
      archive (``<path>.vec``); the archive stores a manifest (dtype,
      shape, file name, sha256) instead of the rows.  A sidecar is what
      lets :func:`load_index` hand the vectors to ``np.memmap`` so a
      compressed deployment keeps only PQ codes resident.

    If the index carries a compressed tier
    (:meth:`~repro.algorithms.base.GraphANNS.enable_compressed`), its
    codes and codebooks are persisted too.  Either feature bumps the
    file to format v4; plain saves stay v3.  A non-empty delta tier
    (points inserted since the last consolidation) is serialized beside
    the base as format v5.

    Every file is written to a temp name and published with an atomic
    ``os.replace`` (stages ``"vector_commit"``/``"index_commit"`` for
    fault injection), so an interrupted save never clobbers a previous
    index at the same path.
    """
    if index.graph is None or index.data is None:
        raise RuntimeError("build the index before saving it")
    if vector_tier not in ("embedded", "sidecar"):
        raise ValueError(
            f"vector_tier must be 'embedded' or 'sidecar', got {vector_tier!r}"
        )
    graph = index.graph
    offsets, neighbors = graph.finalize().csr()
    # snapshot the seeds this index would use for a generic query
    seeds = np.unique(
        np.asarray(
            index.seed_provider.acquire(index.data.mean(axis=0)),
            dtype=np.int64,
        )
    )[:num_seed_samples]
    deleted = (
        index._deleted
        if index._deleted is not None
        else np.zeros(graph.n, dtype=bool)
    )
    extra: dict[str, np.ndarray] = {}
    try:
        spec = index.seed_provider.spec()
    except NotImplementedError:
        spec = None  # provider has no recipe; loader falls back to snapshot
    if spec is not None:
        extra["seed_spec"] = np.asarray(json.dumps(spec))
    id_map = getattr(index, "_id_map", None)
    if id_map is not None:
        extra["id_map"] = np.asarray(id_map, dtype=np.int64)
    path = Path(path)
    tier = getattr(index, "_compressed", None)
    pq_arrays: tuple = ()
    if tier is not None:
        codes, codebook, meta = tier.export_state()
        extra["pq_codes"] = codes
        extra["pq_codebook"] = codebook
        extra["pq_meta"] = np.asarray(json.dumps(meta))
        pq_arrays = (codes, codebook)
    delta = getattr(index, "_delta", None)
    delta_arrays: tuple = ()
    if delta is not None and delta.n:
        dvecs, dindptr, dneighbors, ddeleted, dmeta = delta.export_state()
        extra["delta_vectors"] = dvecs
        extra["delta_indptr"] = dindptr
        extra["delta_neighbors"] = dneighbors
        extra["delta_deleted"] = ddeleted
        extra["delta_meta"] = np.asarray(json.dumps(dmeta))
        delta_arrays = (dvecs, dindptr, dneighbors, ddeleted)
    data = np.ascontiguousarray(index.data, dtype=np.float32)
    stored_data = data
    if vector_tier == "sidecar":
        vec_path = path.with_name(path.name + ".vec")
        vec_tmp = path.with_name(path.name + ".vec.tmp")
        data.tofile(vec_tmp)
        _commit(vec_tmp, vec_path, "vector_commit")
        extra["vector_manifest"] = np.asarray(json.dumps({
            "dtype": "float32",
            "shape": list(data.shape),
            "file": vec_path.name,
            "sha256": hashlib.sha256(data.tobytes()).hexdigest(),
        }))
        # the archive keeps a zero-row placeholder; the rows live in the
        # sidecar, where a loader can memory-map them
        stored_data = np.empty((0, data.shape[1]), dtype=np.float32)
    if delta_arrays:
        version = _DELTA_FORMAT_VERSION
    elif tier is not None or vector_tier == "sidecar":
        version = _COMPRESSED_FORMAT_VERSION
    else:
        version = _FORMAT_VERSION
    final = path if path.suffix == ".npz" else path.with_name(path.name + ".npz")
    tmp = final.with_name(final.stem + ".tmp.npz")
    np.savez_compressed(
        tmp,
        format_version=np.asarray(version),
        algorithm=np.asarray(index.name),
        data=stored_data,
        offsets=offsets,
        neighbors=neighbors,
        seeds=seeds,
        deleted=deleted,
        checksum=np.asarray(
            _content_checksum(stored_data, offsets, neighbors, seeds, deleted,
                              id_map=extra.get("id_map"),
                              pq_arrays=pq_arrays,
                              delta_arrays=delta_arrays)
        ),
        **extra,
    )
    _commit(tmp, final, "index_commit")


class StaticGraphIndex(GraphANNS):
    """Search-only index restored from disk (fixed seeds, BFS routing)."""

    name = "static"

    def __init__(self, data: np.ndarray, graph: Graph, seeds: np.ndarray,
                 source: str = "?", deleted: np.ndarray | None = None,
                 provider=None, id_map: np.ndarray | None = None,
                 compressed: CompressedTier | None = None,
                 delta=None):
        super().__init__()
        if (isinstance(data, np.memmap) and data.dtype == np.float32
                and data.flags["C_CONTIGUOUS"]):
            # keep the map: ascontiguousarray would fault every page in
            # and materialize the whole tier in RAM
            self.data = data
        else:
            self.data = np.ascontiguousarray(data, dtype=np.float32)
        self.graph = graph.finalize()
        self._compressed = compressed
        if id_map is not None:
            self._id_map = np.asarray(id_map, dtype=np.int64)
        if provider is not None:
            provider.prepare(self.data, self.graph)
            self.seed_provider = provider
        else:
            self.seed_provider = FixedSeeds(seeds)
        self.source_algorithm = source
        self._deleted = (
            deleted.astype(bool)
            if deleted is not None
            else np.zeros(graph.n, dtype=bool)
        )
        # restored delta tier (v5); further insert()s extend it, but
        # consolidation needs the original builder (build() raises here)
        self._delta = delta

    def build(self, data):  # pragma: no cover - explicit API misuse
        """Loaded indexes are immutable; always raises."""
        raise RuntimeError(
            "StaticGraphIndex is loaded, not built; use load_index()"
        )

    def _build(self, data, counter: DistanceCounter) -> None:
        raise NotImplementedError


def load_index(
    path: str | Path,
    verify: bool = True,
    repair: bool = False,
    mmap_vectors: bool = False,
) -> StaticGraphIndex:
    """Restore a :class:`StaticGraphIndex` saved by :func:`save_index`.

    File-level problems (truncation, bad zip, missing keys, version or
    checksum mismatch) raise :class:`~repro.resilience.IndexFormatError`
    naming the path and the reason.  With ``verify=True`` (the default)
    the restored index additionally passes
    :func:`~repro.resilience.verify_index`, which raises
    :class:`~repro.resilience.IndexIntegrityError` on structural damage
    the checksum cannot explain; ``repair=True`` fixes what it can
    (dropping bad edges, reconnecting stranded vertices, tombstoning
    non-finite rows, dropping an inconsistent compressed tier) instead
    of raising.

    v4 files saved with ``vector_tier="sidecar"`` keep their float32
    rows in a raw file next to the archive; ``mmap_vectors=True`` opens
    that sidecar read-only through ``np.memmap``, so only the pages the
    exact re-rank actually touches become resident — the deployment
    mode compressed search is built for.  The flag is a no-op for
    embedded-vector files.  A persisted compressed tier is restored
    automatically; search the result with ``compressed=True``.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            files = set(archive.files)
            missing = _REQUIRED_KEYS - files
            if missing:
                raise IndexFormatError(
                    path, f"missing keys {sorted(missing)}"
                )
            version = int(archive["format_version"])
            if version not in _READABLE_VERSIONS:
                raise IndexFormatError(
                    path,
                    f"unsupported index format {version}; "
                    f"this build reads versions "
                    f"{sorted(_READABLE_VERSIONS)}",
                )
            data = archive["data"]
            offsets = archive["offsets"]
            neighbors = archive["neighbors"]
            seeds = archive["seeds"]
            source = str(archive["algorithm"])
            deleted = archive["deleted"] if "deleted" in files else None
            stored_sum = str(archive["checksum"]) if "checksum" in files else None
            seed_spec = (
                str(archive["seed_spec"]) if "seed_spec" in files else None
            )
            id_map = archive["id_map"] if "id_map" in files else None
            pq_codes = archive["pq_codes"] if "pq_codes" in files else None
            pq_codebook = (
                archive["pq_codebook"] if "pq_codebook" in files else None
            )
            pq_meta = str(archive["pq_meta"]) if "pq_meta" in files else None
            manifest = (
                str(archive["vector_manifest"])
                if "vector_manifest" in files else None
            )
            delta_vectors = (
                archive["delta_vectors"] if "delta_vectors" in files else None
            )
            delta_indptr = (
                archive["delta_indptr"] if "delta_indptr" in files else None
            )
            delta_neighbors = (
                archive["delta_neighbors"]
                if "delta_neighbors" in files else None
            )
            delta_deleted = (
                archive["delta_deleted"] if "delta_deleted" in files else None
            )
            delta_meta = (
                str(archive["delta_meta"]) if "delta_meta" in files else None
            )
    except IndexFormatError:
        raise
    except (OSError, EOFError, KeyError, ValueError,
            zipfile.BadZipFile, zlib.error) as exc:
        raise IndexFormatError(path, f"{type(exc).__name__}: {exc}") from exc
    if pq_codes is not None and (pq_codebook is None or pq_meta is None):
        raise IndexFormatError(
            path, "compressed tier is incomplete "
                  "(pq_codes without pq_codebook/pq_meta)"
        )
    if delta_vectors is not None and (
        delta_indptr is None or delta_neighbors is None
        or delta_deleted is None or delta_meta is None
    ):
        raise IndexFormatError(
            path, "delta tier is incomplete "
                  "(delta_vectors without indptr/neighbors/deleted/meta)"
        )
    if stored_sum is not None:  # absent in pre-checksum files
        actual = _content_checksum(
            data, offsets, neighbors, seeds,
            deleted if deleted is not None else np.zeros(0, dtype=bool),
            id_map=id_map,
            pq_arrays=(
                () if pq_codes is None else (pq_codes, pq_codebook)
            ),
            delta_arrays=(
                () if delta_vectors is None
                else (delta_vectors, delta_indptr, delta_neighbors,
                      delta_deleted)
            ),
        )
        if actual != stored_sum:
            raise IndexFormatError(
                path,
                f"checksum mismatch (stored {stored_sum[:12]}..., "
                f"computed {actual[:12]}...): payload is corrupt",
            )
    if manifest is not None:
        try:
            spec = json.loads(manifest)
            shape = tuple(int(x) for x in spec["shape"])
            vec_path = path.parent / str(spec["file"])
        except (ValueError, KeyError, TypeError) as exc:
            raise IndexFormatError(
                path, f"bad vector_manifest: {type(exc).__name__}: {exc}"
            ) from exc
        if spec.get("dtype", "float32") != "float32":
            raise IndexFormatError(
                path, f"vector tier dtype {spec.get('dtype')!r} unsupported"
            )
        expected_bytes = int(np.prod(shape)) * np.dtype(np.float32).itemsize
        if not vec_path.is_file():
            raise IndexFormatError(
                path, f"vector tier sidecar {vec_path.name} is missing"
            )
        if vec_path.stat().st_size != expected_bytes:
            raise IndexFormatError(
                path,
                f"vector tier sidecar {vec_path.name} is "
                f"{vec_path.stat().st_size} bytes, expected {expected_bytes}",
            )
        if mmap_vectors:
            # pages fault in on demand; the sha256 in the manifest is
            # deliberately NOT verified here — a full scan would defeat
            # the point of mapping.  verify_index checks structure only.
            data = np.memmap(vec_path, dtype=np.float32, mode="r",
                             shape=shape)
        else:
            data = np.fromfile(vec_path, dtype=np.float32).reshape(shape)
            actual = hashlib.sha256(data.tobytes()).hexdigest()
            if "sha256" in spec and actual != str(spec["sha256"]):
                raise IndexFormatError(
                    path,
                    f"vector tier sidecar {vec_path.name} checksum "
                    f"mismatch (stored {str(spec['sha256'])[:12]}..., "
                    f"computed {actual[:12]}...)",
                )
    tier = None
    if pq_codes is not None:
        try:
            tier = CompressedTier.from_state(
                pq_codes, pq_codebook, json.loads(pq_meta)
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise IndexFormatError(
                path, f"bad compressed tier: {type(exc).__name__}: {exc}"
            ) from exc
    delta = None
    if delta_vectors is not None:
        try:
            delta = DeltaTier.from_state(
                delta_vectors, delta_indptr, delta_neighbors,
                delta_deleted, json.loads(delta_meta),
            )
        except (ValueError, KeyError, TypeError) as exc:
            raise IndexFormatError(
                path, f"bad delta tier: {type(exc).__name__}: {exc}"
            ) from exc
    if repair:
        offsets, neighbors, _ = repair_csr_arrays(offsets, neighbors, len(data))
    provider = None
    if seed_spec is not None:
        try:
            provider = provider_from_spec(json.loads(seed_spec))
        except (ValueError, KeyError, TypeError) as exc:
            raise IndexFormatError(
                path, f"bad seed_spec: {type(exc).__name__}: {exc}"
            ) from exc
    index = StaticGraphIndex(
        data,
        Graph.from_csr(offsets, neighbors, validate=not (verify or repair)),
        seeds, source=source, deleted=deleted, provider=provider,
        id_map=id_map, compressed=tier, delta=delta,
    )
    if verify or repair:
        verify_index(index, repair=repair)
    return index


# -- sharded manifests ---------------------------------------------------

# A sharded index persists as a JSON manifest naming one ``.npz`` per
# shard (each a normal v3/v4 index file) plus one meta member holding
# the routing centroids and the shard -> global id maps.  Member files
# carry the manifest *generation* in their names, every member records
# its sha256 + byte size in the manifest, and every file — members and
# manifest alike — is written to a temp name and committed with
# ``os.replace``.  The manifest rename is the single publication point:
# until it happens the previous generation's manifest still names the
# previous generation's members (which are only deleted *after* the new
# manifest is committed), so a crash at any instant of a save leaves a
# loadable index on disk.
_SHARDED_MANIFEST_FORMAT = "repro-sharded-manifest"
_SHARDED_MANIFEST_VERSION = 1


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _commit(tmp: Path, final: Path, stage: str) -> None:
    """Atomically publish ``tmp`` as ``final`` (fault hook first)."""
    plan = faults.active()
    if plan is not None:
        plan.before_save_commit(stage, tmp)
    os.replace(tmp, final)


def save_sharded(index, path: str | Path, num_seed_samples: int = 8) -> dict:
    """Persist a :class:`~repro.sharding.ShardedIndex` under a JSON
    manifest at ``path``.

    Only live shards are written — a quarantined shard has nothing
    trustworthy to persist, so saving a degraded index compacts it to
    its survivors.  Saving over an existing manifest bumps the
    generation: new members are written and committed under new names,
    the manifest rename publishes them atomically, and only then are
    the previous generation's members deleted.  An interruption at any
    stage (see :meth:`~repro.faults.FaultPlan.fail_save_stage`) leaves
    the previous index fully loadable.  Returns the manifest dict.
    """
    path = Path(path)
    alive = index.alive_shards
    if not alive:
        raise RuntimeError("every shard is quarantined; nothing to save")
    previous = None
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except (OSError, ValueError):
            previous = None  # unreadable old manifest; overwrite it
    generation = int(previous.get("generation", 0)) + 1 if previous else 1
    base = path.name[:-5] if path.name.endswith(".json") else path.name

    entries = []
    for pos, s in enumerate(alive):
        member_name = f"{base}.g{generation}.s{pos}.npz"
        member = path.parent / member_name
        tmp = path.parent / (member_name + ".tmp.npz")
        save_index(index.shards[s], tmp, num_seed_samples=num_seed_samples)
        entries.append({
            "file": member_name,
            "sha256": _file_sha256(tmp),
            "bytes": tmp.stat().st_size,
            "num_points": int(len(index.shard_ids[s])),
        })
        _commit(tmp, member, f"shard_commit:{pos}")

    meta_name = f"{base}.g{generation}.meta.npz"
    meta_tmp = path.parent / (meta_name + ".tmp.npz")
    lengths = [len(index.shard_ids[s]) for s in alive]
    indptr = np.zeros(len(alive) + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    np.savez_compressed(
        meta_tmp,
        centroids=index.centroids[np.asarray(alive)],
        shard_gids=np.concatenate(
            [index.shard_ids[s] for s in alive]
        ).astype(np.int64),
        shard_indptr=indptr,
        algorithm=np.asarray(index.algorithm),
        seed=np.asarray(int(index.seed)),
    )
    meta_entry = {
        "file": meta_name,
        "sha256": _file_sha256(meta_tmp),
        "bytes": meta_tmp.stat().st_size,
    }
    _commit(meta_tmp, path.parent / meta_name, "meta_commit")

    spec = {
        "format": _SHARDED_MANIFEST_FORMAT,
        "manifest_version": _SHARDED_MANIFEST_VERSION,
        "generation": generation,
        "algorithm": str(index.algorithm),
        "seed": int(index.seed),
        "dim": int(index.dim),
        "num_shards": len(alive),
        "num_points": int(sum(lengths)),
        "meta": meta_entry,
        "shards": entries,
    }
    manifest_tmp = path.parent / (path.name + ".tmp")
    manifest_tmp.write_text(json.dumps(spec, indent=2) + "\n")
    _commit(manifest_tmp, path, "manifest_commit")

    if previous is not None:
        # the new manifest is live; the old generation's members are
        # now unreferenced and safe to drop (best effort)
        keep = {entry["file"] for entry in entries} | {meta_name}
        old = list(previous.get("shards", []))
        old.append(previous.get("meta", {}))
        for entry in old:
            name = entry.get("file") if isinstance(entry, dict) else None
            if name and name not in keep:
                try:
                    (path.parent / name).unlink()
                except OSError:
                    pass
    return spec


def _checked_member(manifest_path: Path, entry, what: str) -> Path:
    """Resolve and validate one manifest member; every failure mode is
    an :class:`IndexFormatError` naming the member (or manifest) path."""
    if not isinstance(entry, dict) or "file" not in entry:
        raise IndexFormatError(
            manifest_path, f"manifest entry for {what} has no 'file' key"
        )
    member = manifest_path.parent / str(entry["file"])
    if not member.is_file():
        raise IndexFormatError(member, f"{what} member file is missing")
    expected_bytes = entry.get("bytes")
    if expected_bytes is not None:
        actual_bytes = member.stat().st_size
        if actual_bytes != int(expected_bytes):
            raise IndexFormatError(
                member,
                f"{what} member is {actual_bytes} bytes, expected "
                f"{int(expected_bytes)} (short read or torn write)",
            )
    stored = entry.get("sha256")
    if stored is not None:
        actual = _file_sha256(member)
        if actual != str(stored):
            raise IndexFormatError(
                member,
                f"{what} member checksum mismatch (stored "
                f"{str(stored)[:12]}..., computed {actual[:12]}...)",
            )
    return member


def load_sharded(path: str | Path, verify: bool = True, repair: bool = False):
    """Restore a :class:`~repro.sharding.ShardedIndex` saved by
    :func:`save_sharded`.

    Every file-level problem on a manifest member — missing file, size
    mismatch (short read), sha256 mismatch, unreadable archive —
    surfaces as :class:`~repro.resilience.IndexFormatError` naming the
    member's path, never a raw ``OSError``/``KeyError``.  With
    ``repair=True`` a bad *shard* member is quarantined (the index
    loads and serves its survivors, reporting ``degraded`` results)
    instead of failing the whole load; the meta member (centroids and
    id maps) has no fallback, so its corruption is always fatal, as is
    the loss of every shard.
    """
    from repro.sharding import ShardedIndex

    path = Path(path)
    try:
        spec = json.loads(path.read_text())
    except OSError as exc:
        raise IndexFormatError(
            path, f"{type(exc).__name__}: {exc}"
        ) from exc
    except ValueError as exc:
        raise IndexFormatError(
            path, f"manifest is not valid JSON: {exc}"
        ) from exc
    if not isinstance(spec, dict) or spec.get("format") != _SHARDED_MANIFEST_FORMAT:
        raise IndexFormatError(
            path, "not a sharded index manifest "
                  f"(expected format {_SHARDED_MANIFEST_FORMAT!r})"
        )
    if int(spec.get("manifest_version", 0)) != _SHARDED_MANIFEST_VERSION:
        raise IndexFormatError(
            path,
            f"unsupported manifest version {spec.get('manifest_version')}; "
            f"this build reads version {_SHARDED_MANIFEST_VERSION}",
        )
    shard_entries = spec.get("shards")
    if not isinstance(shard_entries, list) or not shard_entries:
        raise IndexFormatError(path, "manifest names no shard members")

    meta_member = _checked_member(path, spec.get("meta"), "meta")
    try:
        with np.load(meta_member, allow_pickle=False) as archive:
            centroids = archive["centroids"]
            shard_gids = archive["shard_gids"]
            shard_indptr = archive["shard_indptr"]
            algorithm = str(archive["algorithm"])
            seed = int(archive["seed"])
    except (OSError, EOFError, KeyError, ValueError,
            zipfile.BadZipFile, zlib.error) as exc:
        raise IndexFormatError(
            meta_member, f"{type(exc).__name__}: {exc}"
        ) from exc
    if (len(shard_indptr) != len(shard_entries) + 1
            or len(centroids) != len(shard_entries)
            or int(shard_indptr[-1]) != len(shard_gids)):
        raise IndexFormatError(
            path,
            f"meta member disagrees with manifest: {len(shard_entries)} "
            f"shard entries vs {len(centroids)} centroids / "
            f"{len(shard_indptr) - 1} id ranges",
        )

    shards: list = []
    shard_ids: list = []
    quarantined: dict[int, str] = {}
    for pos, entry in enumerate(shard_entries):
        ids = shard_gids[int(shard_indptr[pos]):int(shard_indptr[pos + 1])]
        shard_ids.append(np.asarray(ids, dtype=np.int64))
        try:
            member = _checked_member(path, entry, f"shard {pos}")
            shard = load_index(member, verify=verify, repair=repair)
            if len(ids) != shard.num_points:  # base + delta tiers
                raise IndexFormatError(
                    member,
                    f"shard {pos} holds {shard.num_points} points but the "
                    f"manifest maps {len(ids)} global ids",
                )
        except (IndexFormatError, IndexIntegrityError) as exc:
            if not repair:
                raise
            shards.append(None)
            quarantined[pos] = str(exc)
            continue
        shards.append(shard)
    if all(shard is None for shard in shards):
        raise IndexFormatError(
            path,
            "every shard member failed to load: "
            + "; ".join(quarantined.values())[:500],
        )
    return ShardedIndex(
        shards, shard_ids, centroids,
        algorithm=spec.get("algorithm", algorithm),
        seed=int(spec.get("seed", seed)),
        quarantined=quarantined,
    )
