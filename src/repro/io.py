"""Index persistence: save a built index, reload it for search-only use.

Production deployments build once and serve many times (the paper's S1
discussion of update/construction cost).  ``save_index`` persists the
vectors, the adjacency lists (CSR-style: one offsets array + one
neighbor array) and the entry points to a single ``.npz``;
``load_index`` restores a :class:`StaticGraphIndex` that answers
queries with best-first search from the stored entries.

Auxiliary seed structures (KD-trees, LSH tables, ...) are *not*
serialized as bytes; instead the provider's construction recipe
(kind + parameters, :meth:`SeedProvider.spec`) is stored and the
structure is rebuilt deterministically on load.  Stochastic providers
(e.g. random entries) therefore stay stochastic after a round-trip
instead of being frozen into a fixed seed snapshot.  A seed snapshot
is still stored as a fallback for providers without a recipe and for
version-1 files.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.seeding import FixedSeeds, provider_from_spec
from repro.distance import DistanceCounter
from repro.graphs.graph import Graph
from repro.resilience import IndexFormatError, repair_csr_arrays, verify_index

__all__ = ["save_index", "load_index", "StaticGraphIndex"]

# v1: raw arrays; v2: + checksum and seed_spec recipes; v3: + optional
# id_map (cache-locality reordering, internal id -> original dataset id)
_FORMAT_VERSION = 3
_READABLE_VERSIONS = frozenset({1, 2, 3})

_REQUIRED_KEYS = frozenset(
    {"format_version", "algorithm", "data", "offsets", "neighbors", "seeds"}
)


def _content_checksum(data, offsets, neighbors, seeds, deleted,
                      id_map=None) -> str:
    """sha256 over the payload arrays (bytes + dtype + shape).

    ``id_map`` joins the digest only when present, so checksums of
    never-reordered v3 files equal what a v2 writer would have stored.
    """
    digest = hashlib.sha256()
    arrays = [data, offsets, neighbors, seeds, deleted]
    if id_map is not None:
        arrays.append(id_map)
    for array in arrays:
        array = np.ascontiguousarray(array)
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def save_index(
    index: GraphANNS,
    path: str | Path,
    num_seed_samples: int = 8,
) -> None:
    """Persist a built index to ``path`` (``.npz``)."""
    if index.graph is None or index.data is None:
        raise RuntimeError("build the index before saving it")
    graph = index.graph
    offsets, neighbors = graph.finalize().csr()
    # snapshot the seeds this index would use for a generic query
    seeds = np.unique(
        np.asarray(
            index.seed_provider.acquire(index.data.mean(axis=0)),
            dtype=np.int64,
        )
    )[:num_seed_samples]
    deleted = (
        index._deleted
        if index._deleted is not None
        else np.zeros(graph.n, dtype=bool)
    )
    extra: dict[str, np.ndarray] = {}
    try:
        spec = index.seed_provider.spec()
    except NotImplementedError:
        spec = None  # provider has no recipe; loader falls back to snapshot
    if spec is not None:
        extra["seed_spec"] = np.asarray(json.dumps(spec))
    id_map = getattr(index, "_id_map", None)
    if id_map is not None:
        extra["id_map"] = np.asarray(id_map, dtype=np.int64)
    np.savez_compressed(
        Path(path),
        format_version=np.asarray(_FORMAT_VERSION),
        algorithm=np.asarray(index.name),
        data=index.data,
        offsets=offsets,
        neighbors=neighbors,
        seeds=seeds,
        deleted=deleted,
        checksum=np.asarray(
            _content_checksum(index.data, offsets, neighbors, seeds, deleted,
                              id_map=extra.get("id_map"))
        ),
        **extra,
    )


class StaticGraphIndex(GraphANNS):
    """Search-only index restored from disk (fixed seeds, BFS routing)."""

    name = "static"

    def __init__(self, data: np.ndarray, graph: Graph, seeds: np.ndarray,
                 source: str = "?", deleted: np.ndarray | None = None,
                 provider=None, id_map: np.ndarray | None = None):
        super().__init__()
        self.data = np.ascontiguousarray(data, dtype=np.float32)
        self.graph = graph.finalize()
        if id_map is not None:
            self._id_map = np.asarray(id_map, dtype=np.int64)
        if provider is not None:
            provider.prepare(self.data, self.graph)
            self.seed_provider = provider
        else:
            self.seed_provider = FixedSeeds(seeds)
        self.source_algorithm = source
        self._deleted = (
            deleted.astype(bool)
            if deleted is not None
            else np.zeros(graph.n, dtype=bool)
        )

    def build(self, data):  # pragma: no cover - explicit API misuse
        """Loaded indexes are immutable; always raises."""
        raise RuntimeError(
            "StaticGraphIndex is loaded, not built; use load_index()"
        )

    def _build(self, data, counter: DistanceCounter) -> None:
        raise NotImplementedError


def load_index(
    path: str | Path,
    verify: bool = True,
    repair: bool = False,
) -> StaticGraphIndex:
    """Restore a :class:`StaticGraphIndex` saved by :func:`save_index`.

    File-level problems (truncation, bad zip, missing keys, version or
    checksum mismatch) raise :class:`~repro.resilience.IndexFormatError`
    naming the path and the reason.  With ``verify=True`` (the default)
    the restored index additionally passes
    :func:`~repro.resilience.verify_index`, which raises
    :class:`~repro.resilience.IndexIntegrityError` on structural damage
    the checksum cannot explain; ``repair=True`` fixes what it can
    (dropping bad edges, reconnecting stranded vertices, tombstoning
    non-finite rows) instead of raising.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as archive:
            files = set(archive.files)
            missing = _REQUIRED_KEYS - files
            if missing:
                raise IndexFormatError(
                    path, f"missing keys {sorted(missing)}"
                )
            version = int(archive["format_version"])
            if version not in _READABLE_VERSIONS:
                raise IndexFormatError(
                    path,
                    f"unsupported index format {version}; "
                    f"this build reads versions "
                    f"{sorted(_READABLE_VERSIONS)}",
                )
            data = archive["data"]
            offsets = archive["offsets"]
            neighbors = archive["neighbors"]
            seeds = archive["seeds"]
            source = str(archive["algorithm"])
            deleted = archive["deleted"] if "deleted" in files else None
            stored_sum = str(archive["checksum"]) if "checksum" in files else None
            seed_spec = (
                str(archive["seed_spec"]) if "seed_spec" in files else None
            )
            id_map = archive["id_map"] if "id_map" in files else None
    except IndexFormatError:
        raise
    except (OSError, EOFError, KeyError, ValueError,
            zipfile.BadZipFile, zlib.error) as exc:
        raise IndexFormatError(path, f"{type(exc).__name__}: {exc}") from exc
    if stored_sum is not None:  # absent in pre-checksum files
        actual = _content_checksum(
            data, offsets, neighbors, seeds,
            deleted if deleted is not None else np.zeros(0, dtype=bool),
            id_map=id_map,
        )
        if actual != stored_sum:
            raise IndexFormatError(
                path,
                f"checksum mismatch (stored {stored_sum[:12]}..., "
                f"computed {actual[:12]}...): payload is corrupt",
            )
    if repair:
        offsets, neighbors, _ = repair_csr_arrays(offsets, neighbors, len(data))
    provider = None
    if seed_spec is not None:
        try:
            provider = provider_from_spec(json.loads(seed_spec))
        except (ValueError, KeyError, TypeError) as exc:
            raise IndexFormatError(
                path, f"bad seed_spec: {type(exc).__name__}: {exc}"
            ) from exc
    index = StaticGraphIndex(
        data,
        Graph.from_csr(offsets, neighbors, validate=not (verify or repair)),
        seeds, source=source, deleted=deleted, provider=provider,
        id_map=id_map,
    )
    if verify or repair:
        verify_index(index, repair=repair)
    return index
