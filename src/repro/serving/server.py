"""Asyncio HTTP/1.1 front door over the :class:`Coalescer`.

Stdlib-only by design (the repo's no-new-dependencies rule): a minimal
HTTP/1.1 server on ``asyncio`` streams with keep-alive, enough for a
JSON search API and its operational endpoints — not a general web
server.

Routes:

* ``POST /search`` — one query vector (see ``protocol.py``); answers
  200 with the bit-identical search result, 400 on a malformed
  request, 429 when the bounded queue is full, 503 while draining,
  504 when the request's deadline expired before its batch flushed.
* ``GET /healthz`` — 200 ``{"status": "ok"}`` (503 while draining).
* ``GET /stats`` — coalescer counters as JSON.
* ``GET /metrics`` — Prometheus text exposition of the process
  registry (serving instruments included when metrics are enabled).

Shutdown is a graceful drain: SIGINT/SIGTERM stop admissions (new
requests see 503), queued buckets flush, in-flight batches finish and
their responses go out, then the listener closes.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from dataclasses import dataclass

import repro.observability as obs

from repro.serving.coalescer import (
    Coalescer,
    DeadlineExceeded,
    Draining,
    Overloaded,
    RequestFailed,
)
from repro.serving.protocol import (
    ProtocolError,
    encode_error,
    encode_result,
    parse_search_request,
)

__all__ = ["ServingConfig", "Server", "serve", "BackgroundServer"]

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}
_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 64 * 1024 * 1024


@dataclass
class ServingConfig:
    """Everything ``repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 8080
    max_wait_ms: float = 2.0        # coalescing window
    max_batch: int = 64             # flush threshold
    queue_depth: int = 256          # admission bound (queued + in flight)
    deadline_ms: float | None = None  # default per-request SLO
    workers: int = 1                # MT kernel threads per batch
    inflight_batches: int = 1       # concurrent search_batch calls
    default_k: int = 10
    default_ef: int = 64
    compressed: bool = False        # serve the ADC tier
    rerank_factor: int | None = None
    drain_timeout_s: float = 30.0


class Server:
    """One listening socket + one :class:`Coalescer` over one index."""

    def __init__(self, index, config: ServingConfig | None = None):
        self.config = config or ServingConfig()
        self.index = index
        self.dim = int(self._index_dim(index))
        self.coalescer = Coalescer(
            index,
            max_wait_ms=self.config.max_wait_ms,
            max_batch=self.config.max_batch,
            queue_depth=self.config.queue_depth,
            workers=self.config.workers,
            inflight_batches=self.config.inflight_batches,
        )
        self._server: asyncio.base_events.Server | None = None
        self._drained = asyncio.Event()

    @staticmethod
    def _index_dim(index) -> int:
        dim = getattr(index, "dim", None)
        if dim is not None:
            return dim
        data = getattr(index, "data", None)
        if data is not None:
            return data.shape[1]
        raise TypeError(
            "index exposes neither .dim nor .data — cannot infer "
            "query dimensionality"
        )

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
        )
        if self.config.port == 0:
            self.config.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        return f"http://{self.config.host}:{self.config.port}"

    async def drain_and_stop(self) -> None:
        """Graceful shutdown: 503 new work, finish in-flight, close."""
        await self.coalescer.drain(self.config.drain_timeout_s)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.coalescer.close()
        self._drained.set()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # -- HTTP ------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body, keep_alive = request
                status, payload = await self._dispatch(method, path, body)
                await self._write_response(
                    writer, status, payload, keep_alive
                )
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; None at EOF / on an unparseable preamble."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None
        except asyncio.LimitOverrunError:
            return None
        if len(head) > _MAX_HEADER_BYTES:
            return None
        try:
            preamble = head.decode("latin-1")
            request_line, *header_lines = preamble.split("\r\n")
            method, path, _version = request_line.split(" ", 2)
        except ValueError:
            return None
        headers = {}
        for line in header_lines:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        keep_alive = headers.get("connection", "").lower() != "close"
        length = 0
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                return None
            if length < 0 or length > _MAX_BODY_BYTES:
                return None
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return None
        return method.upper(), path, body, keep_alive

    async def _write_response(
        self, writer, status: int, payload: bytes, keep_alive: bool,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def _dispatch(self, method: str, path: str, body: bytes):
        path = path.split("?", 1)[0]
        if path == "/search":
            if method != "POST":
                return 405, encode_error("use POST /search")
            return await self._handle_search(body)
        if path == "/healthz":
            if self.coalescer.draining:
                return 503, json.dumps({"status": "draining"}).encode()
            return 200, json.dumps({"status": "ok"}).encode()
        if path == "/stats":
            stats = self.coalescer.stats.snapshot()
            stats["queue_depth"] = self.coalescer.outstanding
            stats["draining"] = self.coalescer.draining
            return 200, json.dumps(stats).encode()
        if path == "/metrics":
            return 200, obs.prometheus_text().encode()
        return 404, encode_error(f"no route for {path}")

    async def _handle_search(self, body: bytes):
        cfg = self.config
        try:
            request = parse_search_request(
                body, self.dim,
                default_k=cfg.default_k, default_ef=cfg.default_ef,
                default_deadline_ms=cfg.deadline_ms,
                compressed=cfg.compressed,
                rerank_factor=cfg.rerank_factor,
            )
        except ProtocolError as exc:
            return 400, encode_error(exc.message)
        try:
            result = await self.coalescer.submit(request)
        except Overloaded as exc:
            return 429, encode_error(str(exc))
        except Draining as exc:
            return 503, encode_error(str(exc))
        except DeadlineExceeded as exc:
            return 504, encode_error(str(exc))
        except RequestFailed as exc:
            return 400, encode_error(exc.reason)
        except Exception as exc:  # noqa: BLE001 - never kill the conn
            return 500, encode_error(f"{type(exc).__name__}: {exc}")
        return 200, encode_result(
            result["ids"], result["dists"], result["ndc"],
            result["degraded"],
            batch_size=result["batch_size"],
            kernel_path=result["kernel_path"],
            wait_ms=result["wait_ms"],
            total_ms=result["total_ms"],
        )


def serve(index, config: ServingConfig | None = None) -> None:
    """Blocking entry point: run the server until SIGINT/SIGTERM, then
    drain gracefully (in-flight batches finish, new requests 503)."""

    async def main():
        server = Server(index, config)
        await server.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        print(
            f"repro serving on {server.address} "
            f"(window={server.config.max_wait_ms}ms, "
            f"max_batch={server.config.max_batch}, "
            f"queue_depth={server.config.queue_depth})",
            flush=True,
        )
        forever = asyncio.ensure_future(server.serve_forever())
        await stop.wait()
        print("repro serving: draining...", flush=True)
        await server.drain_and_stop()
        forever.cancel()
        print("repro serving: stopped", flush=True)

    asyncio.run(main())


class BackgroundServer:
    """Run a :class:`Server` on a daemon thread — the shape tests, the
    benchmark, and the CI smoke harness all want: start, get a port,
    fire requests from the calling thread, stop.

    ::

        with BackgroundServer(index, ServingConfig(port=0)) as srv:
            http.client.HTTPConnection("127.0.0.1", srv.port)...
    """

    def __init__(self, index, config: ServingConfig | None = None):
        self.config = config or ServingConfig(port=0)
        self.index = index
        self.server: Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.config.port

    @property
    def address(self) -> str:
        return f"http://{self.config.host}:{self.config.port}"

    def start(self) -> "BackgroundServer":
        def run():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            server = Server(self.index, self.config)
            self.server = server
            try:
                loop.run_until_complete(server.start())
            except BaseException as exc:  # noqa: BLE001 - surface to caller
                self._error = exc
                self._started.set()
                loop.close()
                return
            self._started.set()
            try:
                loop.run_until_complete(server.serve_forever())
                # closing the listener unblocks serve_forever before the
                # drain coroutine finishes — let it run to completion so
                # stop()'s future resolves
                loop.run_until_complete(server._drained.wait())
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-serving", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._error is not None:
            raise RuntimeError(
                f"serving thread failed to start: {self._error}"
            ) from self._error
        return self

    def begin_drain(self) -> None:
        """Flip the server to draining (503 for new requests) without
        waiting — tests poke at in-between states."""
        assert self._loop is not None and self.server is not None
        self.server.coalescer._draining = True  # noqa: SLF001

    def stop(self) -> None:
        if self._loop is None or self.server is None:
            return
        loop, server = self._loop, self.server
        fut = asyncio.run_coroutine_threadsafe(
            server.drain_and_stop(), loop
        )
        try:
            fut.result(timeout=self.config.drain_timeout_s + 10.0)
        finally:
            loop.call_soon_threadsafe(lambda: None)  # wake the loop
            if self._thread is not None:
                self._thread.join(timeout=10.0)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
