"""Async serving front door: dynamic micro-batching onto the fused
MT kernel.

Concurrent single-query HTTP requests coalesce in a bounded time/size
window into one ``search_batch`` call on the GIL-free multi-threaded C
kernel, then demultiplex — each response bit-identical (ids and NDC)
to a direct ``search()``.  Per-request deadlines ride the existing
:class:`~repro.resilience.QueryBudget` + ``degraded`` machinery;
admission control sheds load with 429/503 instead of collapsing; a
draining server finishes in-flight batches before exiting.  See
``docs/serving.md`` and ``python -m repro serve --help``.
"""

from repro.serving.coalescer import (
    Coalescer,
    CoalescerStats,
    DeadlineExceeded,
    Draining,
    Overloaded,
    RequestFailed,
)
from repro.serving.protocol import (
    ProtocolError,
    SearchRequest,
    encode_error,
    encode_result,
    parse_search_request,
)
from repro.serving.server import (
    BackgroundServer,
    Server,
    ServingConfig,
    serve,
)

__all__ = [
    "Coalescer", "CoalescerStats",
    "Overloaded", "Draining", "DeadlineExceeded", "RequestFailed",
    "ProtocolError", "SearchRequest", "parse_search_request",
    "encode_result", "encode_error",
    "Server", "ServingConfig", "serve", "BackgroundServer",
]
