"""Wire protocol of the serving front door: JSON in, JSON out.

One request = one query vector plus its search parameters and SLO:

``{"vector": [...], "k": 10, "ef": 64, "deadline_ms": 50,
   "max_ndc": 20000}``

``k``/``ef`` default to the server's configuration; ``deadline_ms``
(optional, overriding the server default) and ``max_ndc`` map onto the
existing :class:`~repro.resilience.QueryBudget` machinery — a request
that exhausts its budget still gets its best-k back, flagged
``"degraded": true``, never an error.  Validation happens *here*,
before a request can join a batch, so a malformed request 400s on its
own and cannot poison its batchmates.

The response carries exactly what a direct ``index.search()`` of the
same vector would produce — ids, distances and NDC are bit-identical —
plus serving telemetry (batch size, kernel path, wait/total timings).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

from repro.resilience import QueryBudget

__all__ = [
    "ProtocolError",
    "SearchRequest",
    "parse_search_request",
    "encode_result",
    "encode_error",
]

#: sanity ceilings — a front door should not let one request request
#: unbounded work (they are generous next to any real configuration)
MAX_K = 4096
MAX_EF = 65536
MAX_DIM = 16384


class ProtocolError(Exception):
    """A request the protocol rejects; maps to an HTTP 400."""

    def __init__(self, message: str):
        super().__init__(message)
        self.message = message


@dataclass
class SearchRequest:
    """A parsed, validated single-query request."""

    vector: np.ndarray                  # (dim,) float32, finite
    k: int
    ef: int
    deadline_ms: float | None = None    # SLO; None = no deadline
    max_ndc: int | None = None
    max_hops: int | None = None
    compressed: bool = False
    rerank_factor: int | None = None
    extras: dict = field(default_factory=dict)

    @property
    def batch_key(self) -> tuple:
        """Requests coalesce only with requests sharing this key —
        ``search_batch`` takes scalar ``k``/``ef``/``compressed``, and
        bit-identity to a direct ``search`` requires the exact same
        parameters."""
        return (self.k, self.ef, self.compressed, self.rerank_factor)

    def make_budget(self, remaining_s: float | None) -> QueryBudget | None:
        """The :class:`QueryBudget` for this request given ``remaining_s``
        seconds until its deadline (computed by the coalescer at flush
        time, so queue wait is charged against the SLO)."""
        if remaining_s is None and self.max_ndc is None and self.max_hops is None:
            return None
        return QueryBudget(
            deadline_s=remaining_s,
            max_ndc=self.max_ndc,
            max_hops=self.max_hops,
        )


def _require_int(obj: dict, name: str, default: int | None,
                 low: int, high: int) -> int | None:
    value = obj.get(name, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"'{name}' must be an integer")
    if not (low <= value <= high):
        raise ProtocolError(f"'{name}' must be in [{low}, {high}], got {value}")
    return value


def parse_search_request(
    body: bytes,
    dim: int,
    default_k: int,
    default_ef: int,
    default_deadline_ms: float | None = None,
    compressed: bool = False,
    rerank_factor: int | None = None,
) -> SearchRequest:
    """Parse and validate one request body; raises :class:`ProtocolError`
    (→ 400) on anything malformed.  ``dim`` is the index dimensionality;
    a wrong-length or non-finite vector is rejected here, before the
    coalescer ever sees it."""
    if len(body) > 64 * 1024 * 1024:
        raise ProtocolError("request body too large")
    try:
        obj = json.loads(body)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    vector = obj.get("vector")
    if not isinstance(vector, list) or not vector:
        raise ProtocolError("'vector' must be a non-empty JSON array")
    if len(vector) > MAX_DIM:
        raise ProtocolError(f"'vector' longer than {MAX_DIM}")
    try:
        arr = np.asarray(vector, dtype=np.float32)
    except (TypeError, ValueError):
        raise ProtocolError("'vector' must contain only numbers") from None
    if arr.ndim != 1:
        raise ProtocolError("'vector' must be one-dimensional")
    if arr.shape[0] != dim:
        raise ProtocolError(
            f"dimension mismatch: index is {dim}-d, vector is {arr.shape[0]}-d"
        )
    if not np.isfinite(arr).all():
        raise ProtocolError("'vector' contains non-finite values (NaN/Inf)")

    k = _require_int(obj, "k", default_k, 1, MAX_K)
    ef = _require_int(obj, "ef", None, 1, MAX_EF)
    if ef is None:
        ef = max(default_ef, k)
    ef = max(ef, k)
    max_ndc = _require_int(obj, "max_ndc", None, 1, 2**62)
    max_hops = _require_int(obj, "max_hops", None, 1, 2**62)

    deadline_ms = obj.get("deadline_ms", default_deadline_ms)
    if deadline_ms is not None:
        if isinstance(deadline_ms, bool) or not isinstance(
            deadline_ms, (int, float)
        ):
            raise ProtocolError("'deadline_ms' must be a number")
        deadline_ms = float(deadline_ms)
        if not math.isfinite(deadline_ms) or deadline_ms <= 0:
            raise ProtocolError("'deadline_ms' must be a positive number")

    unknown = set(obj) - {
        "vector", "k", "ef", "deadline_ms", "max_ndc", "max_hops",
    }
    if unknown:
        raise ProtocolError(f"unknown fields: {sorted(unknown)}")

    return SearchRequest(
        vector=np.ascontiguousarray(arr),
        k=k, ef=ef,
        deadline_ms=deadline_ms,
        max_ndc=max_ndc, max_hops=max_hops,
        compressed=compressed, rerank_factor=rerank_factor,
    )


def encode_result(
    ids: np.ndarray,
    dists: np.ndarray,
    ndc: int,
    degraded: bool,
    *,
    batch_size: int,
    kernel_path: str | None,
    wait_ms: float,
    total_ms: float,
) -> bytes:
    """One request's JSON response body (``-1`` padding stripped)."""
    keep = ids >= 0
    payload = {
        "ids": [int(v) for v in ids[keep]],
        "dists": [float(v) for v in dists[keep]],
        "ndc": int(ndc),
        "degraded": bool(degraded),
        "batch_size": int(batch_size),
        "kernel_path": kernel_path,
        "wait_ms": round(wait_ms, 3),
        "total_ms": round(total_ms, 3),
    }
    return json.dumps(payload).encode()


def encode_error(message: str) -> bytes:
    return json.dumps({"error": message}).encode()
