"""Dynamic micro-batching: many concurrent requests, one kernel call.

The single-query path answers ~thousands of QPS; the fused
``best_first_batch_mt`` kernel answers tens of thousands — but only if
someone hands it batches.  The :class:`Coalescer` is that someone: it
buffers concurrent single-query requests in a bounded window
(``max_wait_ms`` wall-clock or ``max_batch`` queries, whichever first),
runs the whole bucket through ``index.search_batch`` in one call, and
demultiplexes per-request results.  Each response is bit-identical (ids
and NDC) to a direct ``index.search()`` of that query — batching is a
throughput transform, never a semantic one.

Batches form per ``(k, ef, compressed, rerank_factor)`` key, because
``search_batch`` takes those as scalars and bit-identity demands exact
parameters.  Deadlines are charged end-to-end: the remaining SLO is
computed *at flush time* (queue wait already spent) and handed to the
kernel as a per-query :class:`QueryBudget`, so an SLO-budgeted batch
stays on the fused MT path and a request that runs out of time gets
its best-k back flagged ``degraded`` rather than an error.

Admission control is a simple bounded queue: more than ``queue_depth``
requests waiting or in flight → :class:`Overloaded` (HTTP 429); a
draining server → :class:`Draining` (503); a request whose deadline
expired before its batch flushed → :class:`DeadlineExceeded` (504)
without wasting kernel time on it.

The coalescer is duck-typed over anything exposing ``search_batch``
with the :func:`repro.batch.search_batch` signature — a bare
:class:`~repro.algorithms.base.GraphANNS`, a
:class:`~repro.sharding.ShardedIndex` (hedging and quarantine
compose), or a delta-tier mutable index all work unchanged.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

import repro.observability as obs

from repro.serving.protocol import SearchRequest

__all__ = [
    "Coalescer",
    "CoalescerStats",
    "Overloaded",
    "Draining",
    "DeadlineExceeded",
    "RequestFailed",
]


class Overloaded(Exception):
    """Bounded queue full — shed load (HTTP 429)."""


class Draining(Exception):
    """Server shutting down — no new admissions (HTTP 503)."""


class DeadlineExceeded(Exception):
    """The request's SLO expired while it waited in queue (HTTP 504)."""


class RequestFailed(Exception):
    """The index rejected this one query (its batchmates are fine)."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass
class _Pending:
    request: SearchRequest
    future: asyncio.Future
    enqueued: float                      # time.perf_counter()
    deadline_at: float | None            # absolute perf_counter deadline


@dataclass
class CoalescerStats:
    """Cumulative counters (also exported as metrics when enabled)."""

    admitted: int = 0
    answered: int = 0
    degraded: int = 0
    batches: int = 0
    rejected: dict = field(default_factory=lambda: {
        "overloaded": 0, "draining": 0, "expired": 0,
    })
    batch_sizes: list = field(default_factory=list)
    kernel_paths: dict = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        return (
            sum(self.batch_sizes) / len(self.batch_sizes)
            if self.batch_sizes else 0.0
        )

    def snapshot(self) -> dict:
        return {
            "admitted": self.admitted,
            "answered": self.answered,
            "degraded": self.degraded,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "rejected": dict(self.rejected),
            "kernel_paths": dict(self.kernel_paths),
        }


class Coalescer:
    """Buffers requests and flushes them as fused-kernel batches.

    Must be used from a single asyncio event loop (the server's); the
    ``search_batch`` calls themselves run in a small thread pool so the
    loop keeps accepting requests while a batch computes — arrivals
    during compute coalesce into the *next* batch, which is exactly the
    adaptive batching a loaded server wants.
    """

    def __init__(
        self,
        index,
        *,
        max_wait_ms: float = 2.0,
        max_batch: int = 64,
        queue_depth: int = 256,
        workers: int = 1,
        inflight_batches: int = 1,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.index = index
        self.max_wait_s = max(0.0, float(max_wait_ms)) / 1000.0
        self.max_batch = int(max_batch)
        self.queue_depth = int(queue_depth)
        self.workers = int(workers)
        self.stats = CoalescerStats()
        self._buckets: dict[tuple, list[_Pending]] = {}
        self._timers: dict[tuple, asyncio.TimerHandle] = {}
        self._outstanding = 0           # queued + in a flying batch
        self._draining = False
        self._idle = asyncio.Event()
        self._idle.set()
        self._lock = threading.Lock()   # stats touched from executor
        self._pool = ThreadPoolExecutor(
            max_workers=max(1, int(inflight_batches)),
            thread_name_prefix="repro-serve",
        )

    # -- admission -------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return self._outstanding

    @property
    def draining(self) -> bool:
        return self._draining

    async def submit(self, request: SearchRequest) -> dict:
        """Admit one request, wait for its batch, return its slice.

        Raises :class:`Draining`/:class:`Overloaded`/
        :class:`DeadlineExceeded` for admission failures and
        :class:`RequestFailed` when the index rejected this query.
        """
        if self._draining:
            self.stats.rejected["draining"] += 1
            self._observe_rejection("draining")
            raise Draining("server is draining")
        if self._outstanding >= self.queue_depth:
            self.stats.rejected["overloaded"] += 1
            self._observe_rejection("overloaded")
            raise Overloaded(
                f"queue depth {self.queue_depth} exceeded"
            )
        loop = asyncio.get_running_loop()
        now = time.perf_counter()
        pending = _Pending(
            request=request,
            future=loop.create_future(),
            enqueued=now,
            deadline_at=(
                now + request.deadline_ms / 1000.0
                if request.deadline_ms is not None else None
            ),
        )
        self._outstanding += 1
        self._idle.clear()
        self.stats.admitted += 1
        if obs.enabled():
            handles = obs.instruments()
            handles.serving_requests_total.inc()
            handles.serving_queue_depth.set(self._outstanding)
        key = request.batch_key
        bucket = self._buckets.setdefault(key, [])
        bucket.append(pending)
        if len(bucket) >= self.max_batch:
            self._flush(key)
        elif len(bucket) == 1:
            self._timers[key] = loop.call_later(
                self.max_wait_s, self._flush, key
            )
        try:
            return await pending.future
        finally:
            self._outstanding -= 1
            if obs.enabled():
                obs.instruments().serving_queue_depth.set(self._outstanding)
            if self._outstanding == 0:
                self._idle.set()

    # -- flushing --------------------------------------------------------

    def _flush(self, key: tuple) -> None:
        """Detach a bucket and compute it off-loop (called on the loop,
        from the window timer or the max_batch trigger)."""
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        bucket = self._buckets.pop(key, None)
        if not bucket:
            return
        loop = asyncio.get_running_loop()

        flush_at = time.perf_counter()
        live: list[_Pending] = []
        for p in bucket:
            if p.deadline_at is not None and flush_at >= p.deadline_at:
                # expired while queued — don't waste kernel time on it
                self.stats.rejected["expired"] += 1
                self._observe_rejection("expired")
                if not p.future.done():
                    p.future.set_exception(
                        DeadlineExceeded("deadline expired in queue")
                    )
                continue
            live.append(p)
        if not live:
            return

        k, ef, compressed, rerank_factor = key
        queries = np.stack([p.request.vector for p in live])
        budgets = [
            p.request.make_budget(
                None if p.deadline_at is None
                else max(1e-4, p.deadline_at - flush_at)
            )
            for p in live
        ]
        if all(b is None for b in budgets):
            budgets = None

        # duck-typing: ShardedIndex's search_batch has no compressed
        # mode — only pass those kwargs when a request actually set them
        kwargs: dict = {"budget": budgets}
        if compressed:
            kwargs["compressed"] = True
        if rerank_factor is not None:
            kwargs["rerank_factor"] = rerank_factor

        def compute():
            started = time.perf_counter()
            result = self.index.search_batch(
                queries, k=k, ef=ef, workers=self.workers, **kwargs,
            )
            return result, time.perf_counter() - started

        task = loop.run_in_executor(self._pool, compute)
        task.add_done_callback(
            lambda fut: self._resolve(fut, live, flush_at)
        )

    def _resolve(self, fut, live: list[_Pending], flush_at: float) -> None:
        """Demultiplex one finished batch back onto its futures (runs on
        the loop — run_in_executor futures complete there)."""
        done_at = time.perf_counter()
        try:
            result, index_s = fut.result()
        except Exception as exc:  # noqa: BLE001 - fail the whole bucket
            for p in live:
                if not p.future.done():
                    p.future.set_exception(
                        RequestFailed(f"{type(exc).__name__}: {exc}")
                    )
            return
        batch_size = len(live)
        kernel_path = result.kernel_path
        with self._lock:
            self.stats.batches += 1
            self.stats.batch_sizes.append(batch_size)
            self.stats.kernel_paths[kernel_path] = (
                self.stats.kernel_paths.get(kernel_path, 0) + 1
            )
        metrics = obs.enabled()
        handles = obs.instruments() if metrics else None
        if handles is not None:
            handles.serving_batch_size.observe(batch_size)
            handles.serving_index_seconds.observe(index_s)
        for i, p in enumerate(live):
            if p.future.done():
                continue
            if result.errors[i] is not None:
                p.future.set_exception(RequestFailed(result.errors[i]))
                continue
            wait_s = flush_at - p.enqueued
            total_s = done_at - p.enqueued
            degraded = bool(result.degraded[i])
            with self._lock:
                self.stats.answered += 1
                if degraded:
                    self.stats.degraded += 1
            if handles is not None:
                handles.serving_coalesce_wait_seconds.observe(wait_s)
                handles.serving_request_seconds.observe(total_s)
            p.future.set_result({
                "ids": result.ids[i],
                "dists": result.dists[i],
                "ndc": int(result.ndc[i]),
                "degraded": degraded,
                "batch_size": batch_size,
                "kernel_path": kernel_path,
                "wait_ms": wait_s * 1000.0,
                "total_ms": total_s * 1000.0,
            })

    def _observe_rejection(self, reason: str) -> None:
        if obs.enabled():
            obs.instruments().serving_rejected(reason).inc()

    # -- shutdown --------------------------------------------------------

    async def drain(self, timeout_s: float = 30.0) -> bool:
        """Stop admitting, flush everything queued, wait for in-flight
        batches to finish.  Returns True when fully drained."""
        self._draining = True
        for key in list(self._buckets):
            self._flush(key)
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=timeout_s)
            return True
        except asyncio.TimeoutError:
            return False

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
