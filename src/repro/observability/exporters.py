"""Exporters: Prometheus text exposition, JSON-lines, trace summaries.

Three consumers, three formats:

* a scraper pulls :func:`prometheus_text` (text exposition format
  0.0.4 — ``# HELP``/``# TYPE`` headers, cumulative ``le`` buckets);
* a log pipeline tails JSON lines written by :func:`write_jsonl`
  (query traces, spans and structured log events all serialize to
  dicts);
* a human runs ``python -m repro stats trace.jsonl``, which feeds
  :func:`summarize_traces` / :func:`format_stats`.

The summary's NDC totals are exact sums over the per-query records —
the same accounting the paper's Speedup definition uses — so a stats
report, a Prometheus scrape and the in-process telemetry always agree.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.observability.registry import Histogram, MetricsRegistry

__all__ = [
    "prometheus_text",
    "write_jsonl",
    "read_jsonl",
    "summarize_traces",
    "format_stats",
]


def _fmt(value: float) -> str:
    """Prometheus-friendly number rendering (no trailing zeros)."""
    if isinstance(value, int):
        return str(value)
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return f"{as_float:g}"


def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    parts = []
    for key, raw in sorted(labels.items()):
        value = str(raw).replace("\\", r"\\").replace('"', r"\"")
        value = value.replace("\n", r"\n")
        parts.append(f'{key}="{value}"')
    return "{" + ",".join(parts) + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every instrument in text exposition format 0.0.4."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for metric in registry.collect():
        if metric.name not in seen_headers:
            seen_headers.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        labels = metric.labels
        if isinstance(metric, Histogram):
            cumulative = metric.cumulative()
            for edge, count in zip(metric.edges, cumulative):
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_label_str({**labels, 'le': _fmt(edge)})} {count}"
                )
            lines.append(
                f"{metric.name}_bucket"
                f"{_label_str({**labels, 'le': '+Inf'})} {cumulative[-1]}"
            )
            lines.append(f"{metric.name}_sum{_label_str(labels)} "
                         f"{_fmt(metric.sum)}")
            lines.append(f"{metric.name}_count{_label_str(labels)} "
                         f"{metric.count}")
        else:
            lines.append(f"{metric.name}{_label_str(labels)} "
                         f"{_fmt(metric.value)}")
    return "\n".join(lines) + "\n"


def write_jsonl(path, records) -> int:
    """Write dict-like records (or objects with ``to_dict``) as JSON
    lines; returns how many were written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            if hasattr(record, "to_dict"):
                record = record.to_dict()
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")
            count += 1
    return count


def read_jsonl(path) -> list[dict]:
    records = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def summarize_traces(traces) -> dict:
    """Aggregate a sequence of trace dicts (or :class:`QueryTrace`\\ s).

    Every total is an exact sum over the per-query records; nothing is
    sampled or approximated, so ``total_ndc`` here always equals the
    sum of the matching per-query telemetry.
    """
    queries = 0
    total_ndc = 0
    total_hops = 0
    total_visited = 0
    degraded = 0
    terminations: dict[str, int] = {}
    algorithms: dict[str, int] = {}
    budget_limits: dict[str, int] = {}
    total_elapsed = 0.0
    for trace in traces:
        if hasattr(trace, "to_dict"):
            trace = trace.to_dict()
        queries += 1
        total_ndc += int(trace.get("ndc", 0))
        total_hops += int(trace.get("hops", 0))
        total_visited += int(trace.get("visited", 0))
        total_elapsed += float(trace.get("elapsed_s", 0.0))
        term = trace.get("termination", "unknown")
        terminations[term] = terminations.get(term, 0) + 1
        algo = trace.get("algorithm") or "unknown"
        algorithms[algo] = algorithms.get(algo, 0) + 1
        if trace.get("degraded"):
            degraded += 1
            budget = trace.get("budget") or {}
            limit = budget.get("limit", "unknown")
            budget_limits[limit] = budget_limits.get(limit, 0) + 1
    return {
        "queries": queries,
        "total_ndc": total_ndc,
        "mean_ndc": total_ndc / queries if queries else 0.0,
        "total_hops": total_hops,
        "mean_hops": total_hops / queries if queries else 0.0,
        "total_visited": total_visited,
        "degraded": degraded,
        "budget_limits": budget_limits,
        "terminations": terminations,
        "algorithms": algorithms,
        "total_elapsed_s": total_elapsed,
    }


def format_stats(summary: dict) -> str:
    """Human-readable ``repro stats`` rendering of a trace summary."""

    def join(mapping: dict) -> str:
        return " ".join(f"{k}={v}" for k, v in sorted(mapping.items())) or "-"

    lines = [
        f"queries        {summary['queries']}",
        f"total ndc      {summary['total_ndc']}",
        f"mean ndc       {summary['mean_ndc']:.1f}",
        f"total hops     {summary['total_hops']}",
        f"mean hops      {summary['mean_hops']:.1f}",
        f"visited        {summary['total_visited']}",
        f"degraded       {summary['degraded']} ({join(summary['budget_limits'])})",
        f"terminations   {join(summary['terminations'])}",
        f"algorithms     {join(summary['algorithms'])}",
        f"elapsed        {summary['total_elapsed_s']:.4f}s",
    ]
    return "\n".join(lines)
