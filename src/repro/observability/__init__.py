"""Unified observability: metrics registry, query tracing, exporters.

One subsystem replaces the isolated reporting the earlier layers grew
(per-query batch telemetry, ``BudgetReport``, ``BuildReport.phases``):

* a process-wide :class:`MetricsRegistry` (``REGISTRY``) with the
  standard instrument kinds and fixed log-scale buckets,
* a bounded :class:`TraceRecorder` (``RECORDER``) of hop-level
  :class:`QueryTrace` records, plus a :class:`SpanLog` (``SPANS``) fed
  by the phased build engine,
* exporters: Prometheus text exposition, JSON-lines dumps, and the
  ``python -m repro stats`` summary,
* a structured logger (:func:`get_logger`) whose events land in a
  machine-readable buffer as well as stderr.

**The disabled state is a strict no-op.**  ``enabled()`` / ``tracing()``
are single global reads; instrumented call sites check them once per
query (or once per batch) and skip *all* observability work when off,
so search and build results stay bit-identical and the hot-path cost is
negligible (measured by ``benchmarks/bench_observability_overhead.py``).
Enabling tracing routes searches through the pure-Python frontier —
whose ids/NDC are bit-identical to the C kernel's by construction — so
traces never change what a query returns.

Environment switches (read once at import): ``REPRO_TRACE=1`` enables
metrics + hop-level tracing; ``REPRO_METRICS=1`` enables metrics only.
"""

from __future__ import annotations

import os

from repro.observability.exporters import (
    format_stats,
    prometheus_text as _prometheus_text,
    read_jsonl,
    summarize_traces,
    write_jsonl,
)
from repro.observability.registry import (
    LATENCY_BUCKETS_S,
    NDC_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.slog import EVENTS, EventLog, StructuredLogger, get_logger
from repro.observability.tracing import (
    QueryTrace,
    Span,
    SpanLog,
    TraceRecorder,
    next_batch_id,
    next_trace_id,
)

__all__ = [
    "REGISTRY", "RECORDER", "SPANS", "EVENTS",
    "enabled", "tracing", "enable", "disable", "reset",
    "instruments", "Instruments",
    "start_query_trace", "finish_query_trace",
    "new_trace_id", "new_batch_id",
    "prometheus_text", "dump_traces", "dump_events", "dump_spans",
    "summarize_traces", "format_stats", "read_jsonl", "write_jsonl",
    "get_logger", "record_span",
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "QueryTrace", "TraceRecorder", "Span", "SpanLog",
    "StructuredLogger", "EventLog",
    "LATENCY_BUCKETS_S", "NDC_BUCKETS",
]

#: process-wide sinks — always importable, always safe to write to
REGISTRY = MetricsRegistry()
RECORDER = TraceRecorder()
SPANS = SpanLog()

_metrics_on = False
_trace_on = False
_instruments: "Instruments | None" = None


def enabled() -> bool:
    """Whether metrics collection is on (single global read)."""
    return _metrics_on


def tracing() -> bool:
    """Whether hop-level query tracing is on (single global read)."""
    return _trace_on


def enable(metrics: bool = True, trace: bool = True) -> None:
    """Turn instrumentation on.  Tracing implies metrics."""
    global _metrics_on, _trace_on
    _metrics_on = bool(metrics or trace)
    _trace_on = bool(trace)


def disable() -> None:
    """Back to the strict no-op fast path."""
    global _metrics_on, _trace_on
    _metrics_on = False
    _trace_on = False


def reset() -> None:
    """Clear every sink and cached instrument handle (test isolation)."""
    global _instruments
    REGISTRY.reset()
    RECORDER.clear()
    SPANS.clear()
    EVENTS.clear()
    _instruments = None


class Instruments:
    """Pre-resolved handles for the hot-path metric families.

    Resolving an instrument is a dict lookup under a lock; the search
    and batch paths instead grab this bundle once per query/batch via
    :func:`instruments` and touch plain attributes.
    """

    def __init__(self, registry: MetricsRegistry):
        self.queries_total = registry.counter(
            "repro_queries_total", "Queries answered by GraphANNS.search.")
        self.query_ndc = registry.histogram(
            "repro_query_ndc", "Distance computations per query "
            "(seed acquisition included).", buckets=NDC_BUCKETS)
        self.query_hops = registry.histogram(
            "repro_query_hops", "Expanded vertices per query "
            "(the paper's query path length).", buckets=NDC_BUCKETS)
        self.query_seconds = registry.histogram(
            "repro_query_seconds", "Wall-clock per query.")
        self.degraded_total = registry.counter(
            "repro_degraded_queries_total",
            "Queries cut short by a QueryBudget (best-k returned).")
        self.budget_exhausted = {
            limit: registry.counter(
                "repro_budget_exhausted_total",
                "Budget terminations by which limit fired.",
                labels={"limit": limit})
            for limit in ("deadline", "ndc", "hops")
        }
        self.compressed_queries_total = registry.counter(
            "repro_compressed_queries_total",
            "Queries answered by compressed (ADC) traversal.")
        self.query_adc_lookups = registry.histogram(
            "repro_query_adc_lookups",
            "PQ table lookups per compressed query (zero true NDC; the "
            "surrogate work the ADC traversal does instead of distances).",
            buckets=NDC_BUCKETS)
        self.query_rerank_ndc = registry.histogram(
            "repro_query_rerank_ndc",
            "Exact re-rank distance computations per compressed query "
            "(the only stage that reads float32 vectors).",
            buckets=NDC_BUCKETS)
        self.batch_queries_total = registry.counter(
            "repro_batch_queries_total", "Queries answered by search_batch.")
        self.batch_seconds = registry.histogram(
            "repro_batch_seconds", "Wall-clock per search_batch call.")
        self.batch_stage_seed_seconds = registry.histogram(
            "repro_batch_stage_seconds",
            "Per-stage wall-clock inside search_batch.",
            labels={"stage": "seed_acquisition"})
        self.batch_stage_compute_seconds = registry.histogram(
            "repro_batch_stage_seconds",
            "Per-stage wall-clock inside search_batch.",
            labels={"stage": "compute"})
        self.batch_chunk_seconds = registry.histogram(
            "repro_batch_chunk_seconds",
            "Busy wall-clock of one worker's chunk.")
        self.batch_worker_utilization = registry.gauge(
            "repro_batch_worker_utilization",
            "Mean worker busy fraction of the last search_batch call.")
        self.batch_degraded_total = registry.counter(
            "repro_batch_degraded_total",
            "Budget-degraded queries inside search_batch.")
        self.batch_errors_total = registry.counter(
            "repro_batch_query_errors_total",
            "Queries that failed even after the sequential retry.")
        self.chunk_retries_total = registry.counter(
            "repro_worker_chunk_retries_total",
            "Worker chunks that raised and were retried in pure NumPy.")
        self.sharded_queries_total = registry.counter(
            "repro_sharded_queries_total",
            "Queries answered by the sharded scatter-gather layer.")
        self.sharded_degraded_total = registry.counter(
            "repro_sharded_degraded_total",
            "Sharded queries that returned a degraded (partial or "
            "budget-cut) result.")
        self.shard_quarantines_total = registry.counter(
            "repro_shard_quarantines_total",
            "Shards dropped from a query or the serving set "
            "(raise, timeout, or checksum failure).")
        self.shard_hedge_fires_total = registry.counter(
            "repro_shard_hedge_fires_total",
            "Hedged replica requests fired after the latency trigger.")
        self.shard_hedge_wins_total = registry.counter(
            "repro_shard_hedge_wins_total",
            "Hedged replica requests that beat their primary.")
        self.shard_fanout = registry.gauge(
            "repro_shard_fanout",
            "Fan-out (shards queried) of the most recent sharded query.")
        self.build_seconds = registry.histogram(
            "repro_build_seconds", "Wall-clock per index build.")
        self.builds_total = registry.counter(
            "repro_builds_total", "Completed index builds.")
        self.inserts_total = registry.counter(
            "repro_inserts_total",
            "Points inserted into a built index (delta tier or native).")
        self.consolidations_total = registry.counter(
            "repro_consolidations_total",
            "Completed delta consolidations (rebuild + snapshot swap).")
        self.delta_points = registry.gauge(
            "repro_delta_points",
            "Points currently in the mutable delta tier.")
        self.consolidation_lag_seconds = registry.gauge(
            "repro_consolidation_lag_seconds",
            "Age of the oldest insert not yet folded into the base.")
        self.compressed_tier_dropped_total = registry.counter(
            "repro_compressed_tier_dropped_total",
            "Compressed tiers dropped because an insert invalidated "
            "the PQ codes.")
        self.repairs_total = registry.counter(
            "repro_index_repairs_total",
            "Repair actions applied by verify_index(repair=True).")
        self.integrity_issues_total = registry.counter(
            "repro_index_integrity_issues_total",
            "Integrity issues found by verify_index.")
        self.serving_requests_total = registry.counter(
            "repro_serving_requests_total",
            "Search requests admitted by the serving front door.")
        self.serving_queue_depth = registry.gauge(
            "repro_serving_queue_depth",
            "Requests queued or in flight inside the coalescer.")
        self.serving_batch_size = registry.histogram(
            "repro_serving_batch_size",
            "Queries per coalesced search_batch call.",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0))
        self.serving_coalesce_wait_seconds = registry.histogram(
            "repro_serving_coalesce_wait_seconds",
            "Time a request waited in the coalescing window before "
            "its batch flushed.")
        self.serving_request_seconds = registry.histogram(
            "repro_serving_request_seconds",
            "End-to-end request latency (enqueue to response ready).")
        self.serving_index_seconds = registry.histogram(
            "repro_serving_index_seconds",
            "In-index time of a coalesced batch (the search_batch call "
            "itself; subtract from end-to-end for queueing overhead).")
        self._registry = registry

    def serving_rejected(self, reason: str) -> Counter:
        """Admission rejections by reason (overloaded/draining/expired)."""
        return self._registry.counter(
            "repro_serving_rejected_total",
            "Requests rejected by serving admission control.",
            labels={"reason": reason})

    def batch_kernel_path(self, path: str) -> Counter:
        """Which compute path a search_batch call took."""
        return self._registry.counter(
            "repro_batch_kernel_path_total",
            "search_batch calls by compute path "
            "(fused_mt/fused_mt_adc/chunked_native/python).",
            labels={"path": path})

    def build_phase_seconds(self, phase: str) -> Histogram:
        """Per-phase build histogram (phases are dynamic labels)."""
        return self._registry.histogram(
            "repro_build_phase_seconds",
            "Wall-clock per C1-C5 build phase.", labels={"phase": phase})

    def shard_ndc(self, shard: int) -> Histogram:
        """Per-shard NDC histogram (shard ids are dynamic labels)."""
        return self._registry.histogram(
            "repro_shard_ndc",
            "Distance computations one shard spent on one sharded query.",
            labels={"shard": str(shard)}, buckets=NDC_BUCKETS)


def instruments() -> Instruments:
    """The lazily-built bundle of hot-path instrument handles."""
    global _instruments
    if _instruments is None:
        _instruments = Instruments(REGISTRY)
    return _instruments


# -- query-trace lifecycle ----------------------------------------------


def new_trace_id() -> str:
    return next_trace_id()


def new_batch_id() -> str:
    return next_batch_id()


def start_query_trace(algorithm: str, k: int, ef: int,
                      trace_id: str | None = None) -> QueryTrace:
    return QueryTrace(trace_id if trace_id is not None else next_trace_id(),
                      algorithm, k, ef)


def finish_query_trace(trace: QueryTrace, result, elapsed_s: float) -> None:
    """Finalize a trace from a ``SearchResult`` and hand it to the
    recorder; stamps ``trace_id`` onto the result (and its
    ``BudgetReport``, making degraded queries joinable to their trace).
    """
    budget_dict = None
    termination = "completed"
    report = getattr(result, "budget", None)
    if result.degraded:
        limit = report.limit if report is not None else "unknown"
        termination = f"budget:{limit}"
        if report is not None:
            report.trace_id = trace.trace_id
            budget_dict = {"limit": report.limit, "ndc": report.ndc,
                           "hops": report.hops,
                           "elapsed_s": report.elapsed_s}
    trace.finish(
        ndc=result.ndc, hops=result.hops, visited=result.visited,
        degraded=result.degraded, termination=termination,
        result_ids=result.ids, budget=budget_dict, elapsed_s=elapsed_s,
        adc_lookups=getattr(result, "adc_lookups", 0),
        rerank_ndc=getattr(result, "rerank_ndc", 0),
    )
    result.trace_id = trace.trace_id
    RECORDER.add(trace)


def observe_query(result, elapsed_s: float) -> None:
    """Record one search's metrics (call only when ``enabled()``)."""
    handles = instruments()
    handles.queries_total.inc()
    handles.query_ndc.observe(result.ndc)
    handles.query_hops.observe(result.hops)
    handles.query_seconds.observe(elapsed_s)
    adc = getattr(result, "adc_lookups", 0)
    if adc:
        handles.compressed_queries_total.inc()
        handles.query_adc_lookups.observe(adc)
        handles.query_rerank_ndc.observe(getattr(result, "rerank_ndc", 0))
    if result.degraded:
        handles.degraded_total.inc()
        report = getattr(result, "budget", None)
        limit = report.limit if report is not None else "ndc"
        counter = handles.budget_exhausted.get(limit)
        if counter is not None:
            counter.inc()


def record_span(name: str, wall_s: float, **attrs) -> None:
    SPANS.record(name, wall_s, **attrs)


# -- export conveniences -------------------------------------------------


def prometheus_text(registry: MetricsRegistry | None = None) -> str:
    return _prometheus_text(REGISTRY if registry is None else registry)


def dump_traces(path, clear: bool = False) -> int:
    """Write every recorded query trace as JSON lines; returns count."""
    count = write_jsonl(path, RECORDER.snapshot())
    if clear:
        RECORDER.clear()
    return count


def dump_spans(path, clear: bool = False) -> int:
    count = write_jsonl(path, SPANS.snapshot())
    if clear:
        SPANS.clear()
    return count


def dump_events(path, clear: bool = False) -> int:
    """Write the structured-log event buffer as JSON lines."""
    count = write_jsonl(path, EVENTS.snapshot())
    if clear:
        EVENTS.clear()
    return count


# -- environment switches ------------------------------------------------

_env_trace = os.environ.get("REPRO_TRACE", "")
_env_metrics = os.environ.get("REPRO_METRICS", "")
if _env_trace not in ("", "0"):
    enable(metrics=True, trace=True)
elif _env_metrics not in ("", "0"):
    enable(metrics=True, trace=False)
