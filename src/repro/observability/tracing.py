"""Span log and per-query hop-level search traces.

A :class:`QueryTrace` records what the paper's Figure 10-style component
analysis needs but aggregated telemetry destroys: the *path* one query
took through the graph — the seed set the C4 entry component produced,
every expanded vertex with the NDC spent up to that expansion, how the
search terminated (natural convergence vs. which :class:`QueryBudget`
limit fired) and the ids it returned.  Joined on ``trace_id`` with a
``BudgetReport`` or a ``BatchQueryResult`` row, a degraded production
query can be replayed hop by hop.

:class:`SpanLog` is the construction-side counterpart: the phased build
engine records one span per C1-C5 phase, so ``BuildReport.phases``
and an exported trace agree by construction.

Recording is append-only into bounded ring buffers (old entries fall
off) and thread-safe; nothing here imports any other ``repro`` module.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque

__all__ = ["QueryTrace", "TraceRecorder", "Span", "SpanLog"]


class QueryTrace:
    """Hop-level record of one search.

    Hop events are ``(vertex, ndc, evaluated)`` triples: the expanded
    vertex id, the query's running NDC *after* the expansion (seed
    acquisition included, matching ``SearchResult.ndc`` accounting) and
    how many fresh neighbors the expansion evaluated.  ``seed_events``
    records what the frontier was actually seeded with (deduplicated,
    budget-clipped — SPTAG's restarts append one event each), while
    ``seed_ids`` is the raw C4 provider output.
    """

    __slots__ = (
        "trace_id", "algorithm", "k", "ef",
        "seed_ids", "seed_ndc", "seed_events", "hop_events",
        "ndc", "hops", "visited", "degraded", "termination",
        "budget", "result_ids", "elapsed_s", "_base",
        "adc_lookups", "rerank_ndc",
    )

    def __init__(self, trace_id: str, algorithm: str = "",
                 k: int = 0, ef: int = 0):
        self.trace_id = trace_id
        self.algorithm = algorithm
        self.k = k
        self.ef = ef
        self.seed_ids: list[int] = []
        self.seed_ndc = 0
        self.seed_events: list[tuple[int, int]] = []   # (ndc, n_seeds)
        self.hop_events: list[tuple[int, int, int]] = []
        self.ndc = 0
        self.hops = 0
        self.visited = 0
        self.degraded = False
        self.termination = "unfinished"
        self.budget: dict | None = None
        self.result_ids: list[int] = []
        self.elapsed_s = 0.0
        self._base = 0
        # compressed (ADC) traversal only; stay 0 for exact searches
        self.adc_lookups = 0
        self.rerank_ndc = 0

    # -- recording (called from the hot path; keep them tiny) ----------

    def attach(self, counter_count: int, already_spent: int = 0) -> None:
        """Anchor running-NDC accounting to an absolute counter value.

        ``already_spent`` charges NDC paid before this counter started
        (the batch engine's up-front seed acquisition), so recorded
        running NDCs always match the per-query telemetry exactly.
        """
        self._base = counter_count - already_spent

    def record_seeds(self, seed_ids, counter_count: int) -> None:
        self.seed_ids = [int(s) for s in seed_ids]
        self.seed_ndc = counter_count - self._base

    def seed_event(self, n_seeds: int, counter_count: int) -> None:
        self.seed_events.append((counter_count - self._base, n_seeds))

    def hop(self, vertex: int, counter_count: int, evaluated: int) -> None:
        self.hop_events.append(
            (int(vertex), counter_count - self._base, evaluated)
        )

    def finish(
        self,
        ndc: int,
        hops: int,
        visited: int,
        degraded: bool,
        termination: str,
        result_ids,
        budget: dict | None = None,
        elapsed_s: float = 0.0,
        adc_lookups: int = 0,
        rerank_ndc: int = 0,
    ) -> None:
        self.ndc = int(ndc)
        self.hops = int(hops)
        self.visited = int(visited)
        self.degraded = bool(degraded)
        self.termination = termination
        self.budget = budget
        self.result_ids = [int(i) for i in result_ids]
        self.elapsed_s = float(elapsed_s)
        self.adc_lookups = int(adc_lookups)
        self.rerank_ndc = int(rerank_ndc)

    def to_dict(self) -> dict:
        """JSON-ready view (the JSONL trace schema of docs/observability.md)."""
        return {
            "trace_id": self.trace_id,
            "algorithm": self.algorithm,
            "k": self.k,
            "ef": self.ef,
            "seed_ids": self.seed_ids,
            "seed_ndc": self.seed_ndc,
            "seed_events": [list(e) for e in self.seed_events],
            "hop_events": [list(e) for e in self.hop_events],
            "ndc": self.ndc,
            "hops": self.hops,
            "visited": self.visited,
            "degraded": self.degraded,
            "termination": self.termination,
            "budget": self.budget,
            "result_ids": self.result_ids,
            "elapsed_s": self.elapsed_s,
            "adc_lookups": self.adc_lookups,
            "rerank_ndc": self.rerank_ndc,
        }


class TraceRecorder:
    """Bounded, thread-safe sink for finished :class:`QueryTrace`\\ s."""

    def __init__(self, capacity: int = 65536):
        self._traces: deque[QueryTrace] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def add(self, trace: QueryTrace) -> None:
        with self._lock:
            self._traces.append(trace)

    def discard(self, trace_ids: set[str]) -> None:
        """Drop traces by id (a failed worker chunk is retried, and the
        retry must not leave duplicate ids behind)."""
        with self._lock:
            kept = [t for t in self._traces if t.trace_id not in trace_ids]
            self._traces.clear()
            self._traces.extend(kept)

    def snapshot(self) -> list[QueryTrace]:
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class Span:
    """One timed unit of work (a build phase, a batch stage)."""

    __slots__ = ("name", "wall_s", "attrs", "ts")

    def __init__(self, name: str, wall_s: float, attrs: dict, ts: float):
        self.name = name
        self.wall_s = wall_s
        self.attrs = attrs
        self.ts = ts

    def to_dict(self) -> dict:
        return {"span": self.name, "wall_s": self.wall_s,
                "ts": self.ts, **self.attrs}


class SpanLog:
    """Bounded, thread-safe sink for finished :class:`Span`\\ s."""

    def __init__(self, capacity: int = 8192):
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, name: str, wall_s: float, **attrs) -> Span:
        span = Span(name, float(wall_s), attrs, time.time())
        with self._lock:
            self._spans.append(span)
        return span

    def snapshot(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_trace_counter = itertools.count()
_batch_counter = itertools.count()


def next_trace_id() -> str:
    return f"q-{next(_trace_counter):08d}"


def next_batch_id() -> str:
    return f"b-{next(_batch_counter):06d}"
