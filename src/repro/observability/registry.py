"""Metrics primitives: Counter, Gauge, Histogram, and their registry.

The survey's whole argument rests on *measurement* — NDC, Speedup, QPS
and their per-component attribution (§5.1, §5.4) — and a serving
deployment needs the same numbers continuously, not per benchmark run.
This module provides the three standard instrument kinds with fixed
log-scale buckets for the two quantities the paper tracks everywhere:
wall-clock latency (decade 1-2.5-5 steps from 1 µs to 10 s) and NDC
(powers of two), so histograms from different runs, algorithms and
machines are always mergeable bucket by bucket.

Instruments are cheap, thread-safe (one lock each — the batch engine
updates them from worker threads) and dependency-free; nothing here
imports any other ``repro`` module, so every layer of the system —
including :mod:`repro._native` at interpreter start — can record into
the shared registry without import cycles.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS_S",
    "NDC_BUCKETS",
]

#: log-scale latency edges: 1/2.5/5 per decade, 1 µs .. 10 s
LATENCY_BUCKETS_S: tuple[float, ...] = tuple(
    base * 10.0**exponent
    for exponent in range(-6, 1)
    for base in (1.0, 2.5, 5.0)
) + (10.0,)

#: log2-scale NDC / count edges: 1 .. 2^24 distance evaluations
NDC_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(25))


class _Instrument:
    """Shared identity: a name, a help string, and fixed labels."""

    __slots__ = ("name", "help", "labels", "_lock")

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: dict | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else {}
        self._lock = threading.Lock()

    def label_key(self) -> tuple:
        return tuple(sorted(self.labels.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, labels={self.labels})"


class Counter(_Instrument):
    """Monotonically increasing count (queries served, budgets fired)."""

    __slots__ = ("_value",)

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: dict | None = None):
        super().__init__(name, help, labels)
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        return self._value


class Gauge(_Instrument):
    """A value that goes both ways (worker utilization, kernel loaded)."""

    __slots__ = ("_value",)

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: dict | None = None):
        super().__init__(name, help, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram(_Instrument):
    """Fixed-bucket histogram with Prometheus ``le`` (inclusive) edges.

    ``counts[i]`` holds observations with ``value <= edges[i]`` (and
    greater than the previous edge); the final slot is the ``+Inf``
    overflow bucket.  Cumulation happens at export time, so merging two
    histograms is element-wise addition.
    """

    __slots__ = ("edges", "counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: dict | None = None,
        buckets: tuple[float, ...] = LATENCY_BUCKETS_S,
    ):
        super().__init__(name, help, labels)
        edges = tuple(float(e) for e in buckets)
        if list(edges) != sorted(set(edges)):
            raise ValueError(f"histogram {name} bucket edges must be "
                             f"strictly increasing, got {buckets}")
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.counts[bisect_left(self.edges, value)] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> list[int]:
        """Per-edge cumulative counts (the exposition-format view),
        ending with the ``+Inf`` total."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create store for every instrument in the process.

    Instruments are keyed by ``(name, sorted(labels))``; asking twice
    returns the same object, so call sites never need to cache handles
    for correctness (hot paths still should, for speed).  Mixing kinds
    under one name is an error — a scrape must be able to type each
    metric family exactly once.
    """

    def __init__(self):
        self._instruments: dict[tuple, _Instrument] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help: str,
                       labels: dict | None, **kwargs) -> _Instrument:
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            found = self._instruments.get(key)
            if found is not None:
                if not isinstance(found, cls):
                    raise TypeError(
                        f"metric {name!r} is already registered as a "
                        f"{found.kind}, not a {cls.kind}"
                    )
                return found
            instrument = cls(name, help, labels, **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labels: dict | None = None) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: dict | None = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: dict | None = None,
                  buckets: tuple[float, ...] = LATENCY_BUCKETS_S) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels,
                                   buckets=buckets)

    def collect(self) -> list[_Instrument]:
        """Every registered instrument, in stable (name, labels) order."""
        with self._lock:
            return sorted(self._instruments.values(),
                          key=lambda m: (m.name, m.label_key()))

    def get(self, name: str, labels: dict | None = None) -> _Instrument | None:
        key = (name, tuple(sorted((labels or {}).items())))
        with self._lock:
            return self._instruments.get(key)

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()
