"""Structured logging: key=value lines for humans, dicts for machines.

Every log call produces two artifacts: a conventional stdlib
``logging`` record (``event key=value ...`` on stderr, so operators can
re-route or silence it with standard handler configuration) and a
structured event dict appended to a bounded in-process buffer that
:func:`repro.observability.dump_events` exports as JSON lines.  A
serving deployment can therefore alert on, e.g., the native kernel
falling back to NumPy without scraping warning text.

``REPRO_LOG_LEVEL`` sets the stderr handler's threshold (default
``WARNING`` — benchmark progress events stay machine-only unless asked
for).  :meth:`StructuredLogger.echo` prints its text to stdout
*verbatim*, which is how the benchmark scripts keep their historical
output format while still emitting structured events.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import deque

__all__ = ["StructuredLogger", "EventLog", "get_logger"]


class EventLog:
    """Bounded, thread-safe buffer of structured log events."""

    def __init__(self, capacity: int = 8192):
        self._events: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    def snapshot(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


#: process-wide event buffer (exported via observability.dump_events)
EVENTS = EventLog()

_configured = False
_configure_lock = threading.Lock()


def _configure_root() -> None:
    """Attach one stderr handler to the ``repro`` logger, exactly once."""
    global _configured
    with _configure_lock:
        if _configured:
            return
        root = logging.getLogger("repro")
        if not root.handlers:
            handler = logging.StreamHandler()
            handler.setFormatter(
                logging.Formatter("%(levelname)s %(name)s %(message)s")
            )
            root.addHandler(handler)
        level = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()
        root.setLevel(getattr(logging, level, logging.WARNING))
        root.propagate = False
        _configured = True


def _render(event: str, fields: dict) -> str:
    parts = [event]
    for key, value in fields.items():
        text = str(value)
        if " " in text or '"' in text:
            text = '"' + text.replace('"', r"\"") + '"'
        parts.append(f"{key}={text}")
    return " ".join(parts)


class StructuredLogger:
    """A named logger whose records are both text and data."""

    __slots__ = ("name", "_logger")

    def __init__(self, name: str):
        _configure_root()
        self.name = name
        self._logger = logging.getLogger(name)

    def _emit(self, level: int, event: str, fields: dict) -> None:
        EVENTS.record({
            "ts": time.time(),
            "level": logging.getLevelName(level),
            "logger": self.name,
            "event": event,
            **fields,
        })
        if self._logger.isEnabledFor(level):
            self._logger.log(level, _render(event, fields))

    def debug(self, event: str, **fields) -> None:
        self._emit(logging.DEBUG, event, fields)

    def info(self, event: str, **fields) -> None:
        self._emit(logging.INFO, event, fields)

    def warning(self, event: str, **fields) -> None:
        self._emit(logging.WARNING, event, fields)

    def error(self, event: str, **fields) -> None:
        self._emit(logging.ERROR, event, fields)

    def echo(self, text: str, event: str = "echo", **fields) -> None:
        """Print ``text`` to stdout *unchanged* (legacy script output)
        while recording a structured event describing it."""
        print(text)
        self._emit(logging.INFO, event, fields)


_loggers: dict[str, StructuredLogger] = {}
_loggers_lock = threading.Lock()


def get_logger(name: str) -> StructuredLogger:
    """The process-wide :class:`StructuredLogger` for ``name``."""
    with _loggers_lock:
        logger = _loggers.get(name)
        if logger is None:
            logger = _loggers[name] = StructuredLogger(name)
        return logger
