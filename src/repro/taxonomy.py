"""The survey's taxonomy as data: Figure 3's roadmap and Table 9's
per-algorithm component characterization.

Figure 3 draws dependence/development arrows from the four base graphs
to algorithms and between algorithms; Table 9 classifies every
algorithm by its C1–C7 choices.  Exposing both as structures lets users
(and tests) query questions like "which algorithms derive from KGraph?"
or "which algorithms consider neighbor distribution in C3?".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "BASE_GRAPHS",
    "ROADMAP_EDGES",
    "derives_from",
    "descendants_of",
    "ComponentProfile",
    "COMPONENT_PROFILES",
    "algorithms_where",
]

#: the four base graphs of §3.1
BASE_GRAPHS = ("DG", "RNG", "KNNG", "MST")

#: Figure 3: (from, to) development/dependence arrows.  Base graphs are
#: upper-case; algorithms use their registry names.
ROADMAP_EDGES: tuple[tuple[str, str], ...] = (
    ("DG", "nsw"),
    ("DG", "ngt-panng"),
    ("RNG", "fanng"),
    ("RNG", "hnsw"),
    ("RNG", "ngt-panng"),
    ("RNG", "dpg"),
    ("RNG", "nsg"),
    ("RNG", "nssg"),
    ("RNG", "vamana"),
    ("RNG", "sptag-bkt"),
    ("KNNG", "kgraph"),
    ("KNNG", "ieh"),
    ("KNNG", "efanna"),
    ("KNNG", "sptag-kdt"),
    ("KNNG", "ngt-panng"),
    ("MST", "hcnng"),
    ("nsw", "hnsw"),
    ("kgraph", "efanna"),
    ("kgraph", "dpg"),
    ("kgraph", "nsg"),
    ("dpg", "nsg"),
    ("nsg", "nssg"),
    ("nsg", "vamana"),
    ("hnsw", "vamana"),
    ("sptag-kdt", "sptag-bkt"),
    ("ngt-panng", "ngt-onng"),
)


def derives_from(algorithm: str, ancestor: str) -> bool:
    """Does ``algorithm`` (transitively) derive from ``ancestor``?"""
    frontier = [algorithm]
    seen = set()
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        for parent, child in ROADMAP_EDGES:
            if child == node:
                if parent == ancestor:
                    return True
                frontier.append(parent)
    return False


def descendants_of(ancestor: str) -> set[str]:
    """All algorithms transitively derived from ``ancestor``."""
    result: set[str] = set()
    frontier = [ancestor]
    while frontier:
        node = frontier.pop()
        for parent, child in ROADMAP_EDGES:
            if parent == node and child not in result:
                result.add(child)
                frontier.append(child)
    return result


@dataclass(frozen=True)
class ComponentProfile:
    """One Table 9 row."""

    construction: str          # refinement / increment / divide-and-conquer
    initialization: str        # C1
    candidate: str             # C2: search / expansion / neighbors / subspace
    selection: str             # C3: distance / distance & distribution
    connectivity: bool         # C5 guarantee
    preprocessing: bool        # C4 auxiliary structure
    seed: str                  # C6
    routing: str               # C7: BFS / GS / RS


#: Table 9, verbatim (the paper's own characterization)
COMPONENT_PROFILES: dict[str, ComponentProfile] = {
    "kgraph": ComponentProfile(
        "refinement", "random", "expansion", "distance", False, False,
        "random", "BFS",
    ),
    "ngt-panng": ComponentProfile(
        "increment", "vp-tree", "search", "distance & distribution", False,
        True, "vp-tree", "RS",
    ),
    "ngt-onng": ComponentProfile(
        "increment", "vp-tree", "search", "distance & distribution", False,
        True, "vp-tree", "RS",
    ),
    "sptag-kdt": ComponentProfile(
        "divide-and-conquer", "tp-tree", "subspace",
        "distance & distribution", False, True, "kd-tree", "BFS",
    ),
    "sptag-bkt": ComponentProfile(
        "divide-and-conquer", "tp-tree", "subspace",
        "distance & distribution", False, True, "k-means tree", "BFS",
    ),
    "nsw": ComponentProfile(
        "increment", "random", "search", "distance", True, False, "random",
        "BFS",
    ),
    "ieh": ComponentProfile(
        "refinement", "brute force", "neighbors", "distance", False, True,
        "hashing", "BFS",
    ),
    "fanng": ComponentProfile(
        "refinement", "brute force", "neighbors",
        "distance & distribution", False, False, "random", "BFS",
    ),
    "hnsw": ComponentProfile(
        "increment", "top layer", "search", "distance & distribution",
        False, False, "top layer", "BFS",
    ),
    "efanna": ComponentProfile(
        "refinement", "kd-tree", "expansion", "distance", False, True,
        "kd-tree", "BFS",
    ),
    "dpg": ComponentProfile(
        "refinement", "nn-descent", "neighbors",
        "distance & distribution", False, False, "random", "BFS",
    ),
    "nsg": ComponentProfile(
        "refinement", "nn-descent", "search", "distance & distribution",
        True, True, "centroid", "BFS",
    ),
    "hcnng": ComponentProfile(
        "divide-and-conquer", "clustering", "subspace", "distance", False,
        True, "kd-tree", "GS",
    ),
    "vamana": ComponentProfile(
        "refinement", "random", "search", "distance & distribution",
        False, True, "centroid", "BFS",
    ),
    "nssg": ComponentProfile(
        "refinement", "nn-descent", "expansion",
        "distance & distribution", True, True, "random", "BFS",
    ),
    "kdr": ComponentProfile(
        "refinement", "brute force", "neighbors",
        "distance & distribution", False, False, "random", "BFS",
    ),
}


def algorithms_where(**criteria) -> list[str]:
    """Names of algorithms whose Table 9 profile matches all criteria.

    Example::

        algorithms_where(selection="distance & distribution", routing="BFS")
    """
    valid = set(ComponentProfile.__dataclass_fields__)
    unknown = set(criteria) - valid
    if unknown:
        raise KeyError(f"unknown profile fields: {sorted(unknown)}")
    return [
        name
        for name, profile in COMPONENT_PROFILES.items()
        if all(getattr(profile, key) == value for key, value in criteria.items())
    ]
