"""Algorithm recommendation — Table 7 of the paper, as an API.

The survey closes with rule-of-thumb recommendations mapping usage
scenarios to algorithms (§6, Table 7).  :func:`recommend` encodes that
table; :func:`profile_dataset` derives the relevant characteristics
(scale, difficulty via LID) from data so callers can ask directly:
"which index should I build for *this* corpus under *these*
constraints?" — the question the paper answers for practitioners.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.datasets.ground_truth import estimate_lid

__all__ = ["Scenario", "recommend", "profile_dataset", "DatasetProfile"]


class Scenario(str, Enum):
    """The seven usage scenarios of Table 7."""

    FREQUENT_UPDATES = "frequent-updates"       # S1
    RAPID_KNNG = "rapid-knng-construction"      # S2
    EXTERNAL_MEMORY = "external-memory"         # S3
    HARD_DATASET = "hard-dataset"               # S4
    SIMPLE_DATASET = "simple-dataset"           # S5
    GPU_ACCELERATION = "gpu-acceleration"       # S6
    LIMITED_MEMORY = "limited-memory"           # S7


#: Table 7, verbatim
_RECOMMENDATIONS: dict[Scenario, tuple[str, ...]] = {
    Scenario.FREQUENT_UPDATES: ("nsg", "nssg"),
    Scenario.RAPID_KNNG: ("kgraph", "efanna", "dpg"),
    Scenario.EXTERNAL_MEMORY: ("dpg", "hcnng"),
    Scenario.HARD_DATASET: ("hnsw", "nsg", "hcnng"),
    Scenario.SIMPLE_DATASET: ("dpg", "nsg", "hcnng", "nssg"),
    Scenario.GPU_ACCELERATION: ("ngt-panng",),
    Scenario.LIMITED_MEMORY: ("nsg", "nssg"),
}

#: LID above which the survey's "hard dataset" behaviours dominate
#: (Table 3: Crawl 15.7 / GIST 18.9 / GloVe 20.0 are the hard group)
HARD_LID_THRESHOLD = 14.0


def recommend(scenario: Scenario | str) -> tuple[str, ...]:
    """Registry names recommended for one Table 7 scenario."""
    scenario = Scenario(scenario)
    return _RECOMMENDATIONS[scenario]


@dataclass(frozen=True)
class DatasetProfile:
    """Characteristics that drive the Table 7 recommendation."""

    cardinality: int
    dim: int
    lid: float

    @property
    def is_hard(self) -> bool:
        """Above the hard-dataset LID threshold (Table 3's hard group)."""
        return self.lid >= HARD_LID_THRESHOLD


def profile_dataset(data: np.ndarray, sample: int = 500, seed: int = 0) -> DatasetProfile:
    """Measure the recommendation-relevant characteristics of a corpus."""
    if data.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {data.shape}")
    lid = estimate_lid(data, sample=sample, seed=seed)
    return DatasetProfile(cardinality=len(data), dim=data.shape[1], lid=lid)


def recommend_for_data(
    data: np.ndarray,
    updates_frequent: bool = False,
    memory_limited: bool = False,
    external_memory: bool = False,
) -> tuple[str, ...]:
    """Combined recommendation: constraints first, then data difficulty.

    Constraint scenarios (S1/S3/S7) override the difficulty-based pick
    (S4/S5), mirroring the way the paper's discussion prioritises them.
    """
    if updates_frequent:
        return recommend(Scenario.FREQUENT_UPDATES)
    if memory_limited:
        return recommend(Scenario.LIMITED_MEMORY)
    if external_memory:
        return recommend(Scenario.EXTERNAL_MEMORY)
    profile = profile_dataset(data)
    if profile.is_hard:
        return recommend(Scenario.HARD_DATASET)
    return recommend(Scenario.SIMPLE_DATASET)
