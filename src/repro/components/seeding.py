"""C4/C6 — seed preprocessing and acquisition.

C4 happens at build time (construct the auxiliary structure or fix the
entry vertices); C6 happens per query (produce the seed set S-hat of
Definition 4.3).  The two are interlocked — "after specifying C4, C6 is
also determined" (§5.4) — so a single :class:`SeedProvider` object
implements both: ``prepare`` is C4, ``acquire`` is C6.
"""

from __future__ import annotations

import numpy as np

from repro.distance import DistanceCounter, l2_batch
from repro.graphs.graph import Graph
from repro.hashing.lsh import RandomHyperplaneLSH
from repro.trees.kd_tree import KDTree
from repro.trees.kmeans_tree import BalancedKMeansTree
from repro.trees.vp_tree import VPTree

__all__ = [
    "SeedProvider",
    "RandomSeeds",
    "FixedSeeds",
    "CentroidSeeds",
    "KDTreeSeeds",
    "KDTreeDescendSeeds",
    "VPTreeSeeds",
    "KMeansTreeSeeds",
    "LSHSeeds",
    "provider_from_spec",
]


class SeedProvider:
    """Base class: C4 = :meth:`prepare`, C6 = :meth:`acquire`."""

    #: preprocessing bytes beyond the graph itself (Table 5 MO driver);
    #: measured from the actual auxiliary structure during :meth:`prepare`
    extra_bytes: int = 0

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        """Build whatever auxiliary structure C4 requires."""

    def acquire(
        self, query: np.ndarray, counter: DistanceCounter | None = None
    ) -> np.ndarray:
        """Return the seed ids for one query."""
        raise NotImplementedError

    def acquire_batch(
        self, queries: np.ndarray
    ) -> tuple[list[np.ndarray], np.ndarray]:
        """Seed ids and per-query acquisition NDC for a whole batch.

        Returns ``(seed_lists, ndc)`` where ``seed_lists[i]`` is the
        int64 seed array for ``queries[i]`` and ``ndc[i]`` the distance
        computations its acquisition charged.  The default runs
        :meth:`acquire` per query **in query order** with a fresh
        counter each — exactly what a sequential ``index.search`` loop
        does, so stateful providers (RNG draws, restart counters) stay
        bit-identical.  Providers whose acquisition is stateless or
        vectorizable without changing a single returned id override
        this (the batched query engine calls it once per batch).
        """
        ndc = np.zeros(len(queries), dtype=np.int64)
        lists: list[np.ndarray] = []
        for i, query in enumerate(queries):
            counter = DistanceCounter()
            lists.append(np.asarray(self.acquire(query, counter), dtype=np.int64))
            ndc[i] = counter.count
        return lists, ndc

    def permute(self, inverse: np.ndarray) -> None:
        """Remap stored vertex ids after a graph relabeling.

        ``inverse[old_id]`` is the new internal id.  Providers that
        rebuild their auxiliary structure in :meth:`prepare` (trees,
        hashes, centroid) need nothing here — ``reorder`` re-runs
        prepare right after; only providers holding literal vertex ids
        (:class:`FixedSeeds`) must translate them.
        """

    def spec(self) -> dict:
        """JSON-safe construction recipe (kind + parameters).

        ``provider_from_spec`` inverts this, so a persisted index can
        reconstruct the provider — including its stochastic state — by
        calling :meth:`prepare` on the loaded data, instead of freezing
        a snapshot of seeds at save time.
        """
        raise NotImplementedError


class RandomSeeds(SeedProvider):
    """KGraph/FANNG/NSW/DPG: random entries, no preprocessing."""

    def __init__(self, count: int = 8, seed: int = 0):
        self.count = count
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._n = 0

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        self._n = len(data)

    def acquire(self, query, counter=None) -> np.ndarray:
        return self._rng.integers(0, self._n, size=min(self.count, self._n))

    def acquire_batch(self, queries):
        # one vectorized draw: the bit generator consumes the stream
        # per element exactly as `len(queries)` successive size-`count`
        # calls would, so the ids match the sequential loop's draws
        size = min(self.count, self._n)
        block = self._rng.integers(0, self._n, size=(len(queries), size))
        return (
            [np.asarray(row, dtype=np.int64) for row in block],
            np.zeros(len(queries), dtype=np.int64),
        )

    def spec(self) -> dict:
        return {"kind": "random", "count": self.count, "seed": self.seed}


class FixedSeeds(SeedProvider):
    """Entries fixed at build time (HNSW top layer is a special case)."""

    def __init__(self, seed_ids: np.ndarray):
        self._ids = np.asarray(seed_ids, dtype=np.int64)

    def acquire(self, query, counter=None) -> np.ndarray:
        return self._ids

    def acquire_batch(self, queries):
        return (
            [self._ids] * len(queries),
            np.zeros(len(queries), dtype=np.int64),
        )

    def permute(self, inverse: np.ndarray) -> None:
        self._ids = inverse[self._ids]

    def spec(self) -> dict:
        return {"kind": "fixed", "ids": [int(i) for i in self._ids]}


class CentroidSeeds(SeedProvider):
    """NSG/Vamana: the approximate medoid of S as the single entry."""

    def __init__(self) -> None:
        self._medoid = 0

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        mean = data.mean(axis=0)
        self._medoid = int(np.argmin(l2_batch(mean, data)))

    @property
    def medoid(self) -> int:
        return self._medoid

    def acquire(self, query, counter=None) -> np.ndarray:
        return np.asarray([self._medoid], dtype=np.int64)

    def acquire_batch(self, queries):
        entry = np.asarray([self._medoid], dtype=np.int64)
        return [entry] * len(queries), np.zeros(len(queries), dtype=np.int64)

    def spec(self) -> dict:
        return {"kind": "centroid"}


class KDTreeSeeds(SeedProvider):
    """EFANNA/SPTAG-KDT: ANNS over randomized KD-trees (pays NDC)."""

    def __init__(self, num_trees: int = 4, count: int = 8, seed: int = 0):
        self.num_trees = num_trees
        self.count = count
        self.seed = seed
        self._trees: list[KDTree] = []

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        self._trees = [
            KDTree(data, seed=self.seed + t) for t in range(self.num_trees)
        ]
        self.extra_bytes = sum(tree.nbytes() for tree in self._trees)

    def acquire(self, query, counter=None) -> np.ndarray:
        per_tree = max(1, self.count // len(self._trees))
        found = [
            tree.search(query, per_tree, counter=counter, max_leaves=2)
            for tree in self._trees
        ]
        return np.unique(np.concatenate(found))[: self.count]

    def spec(self) -> dict:
        return {
            "kind": "kdtree",
            "num_trees": self.num_trees,
            "count": self.count,
            "seed": self.seed,
        }


class KDTreeDescendSeeds(SeedProvider):
    """HCNNG: descend KD-trees by value comparison only — zero NDC.

    The §5.4 C4 discussion singles this out: better than NGT/BKT seeds
    because locating the bucket costs no distance computations.
    """

    def __init__(self, num_trees: int = 3, count: int = 8, seed: int = 0):
        self.num_trees = num_trees
        self.count = count
        self.seed = seed
        self._trees: list[KDTree] = []
        self._rng = np.random.default_rng(seed)

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        self._trees = [
            KDTree(data, seed=self.seed + t) for t in range(self.num_trees)
        ]
        self.extra_bytes = sum(tree.nbytes() for tree in self._trees)

    def acquire(self, query, counter=None) -> np.ndarray:
        buckets = [tree.descend(query) for tree in self._trees]
        pool = np.unique(np.concatenate(buckets))
        if len(pool) <= self.count:
            return pool
        return self._rng.choice(pool, size=self.count, replace=False)

    def spec(self) -> dict:
        return {
            "kind": "kdtree-descend",
            "num_trees": self.num_trees,
            "count": self.count,
            "seed": self.seed,
        }


class VPTreeSeeds(SeedProvider):
    """NGT: vantage-point-tree entry (distance computations charged)."""

    def __init__(self, count: int = 4, seed: int = 0):
        self.count = count
        self.seed = seed
        self._tree: VPTree | None = None

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        self._tree = VPTree(data, seed=self.seed)
        self.extra_bytes = self._tree.nbytes()

    def acquire(self, query, counter=None) -> np.ndarray:
        return self._tree.search(query, self.count, counter=counter, max_nodes=24)

    def spec(self) -> dict:
        return {"kind": "vptree", "count": self.count, "seed": self.seed}


class KMeansTreeSeeds(SeedProvider):
    """SPTAG-BKT: balanced k-means tree entry."""

    def __init__(self, count: int = 8, seed: int = 0):
        self.count = count
        self.seed = seed
        self._tree: BalancedKMeansTree | None = None

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        self._tree = BalancedKMeansTree(data, seed=self.seed)
        self.extra_bytes = self._tree.nbytes()

    def acquire(self, query, counter=None) -> np.ndarray:
        return self._tree.search(query, self.count, counter=counter)

    def spec(self) -> dict:
        return {"kind": "kmeans-tree", "count": self.count, "seed": self.seed}


class LSHSeeds(SeedProvider):
    """IEH: hash-bucket entries — the best C4 in the study (§5.4)."""

    def __init__(self, count: int = 8, seed: int = 0):
        self.count = count
        self.seed = seed
        self._lsh: RandomHyperplaneLSH | None = None

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        self._lsh = RandomHyperplaneLSH(data, seed=self.seed)
        self.extra_bytes = self._lsh.nbytes()

    def acquire(self, query, counter=None) -> np.ndarray:
        return self._lsh.search(query, self.count, counter=counter)

    def spec(self) -> dict:
        return {"kind": "lsh", "count": self.count, "seed": self.seed}


def _pq_from_spec(spec: dict) -> SeedProvider:
    # deferred import: quantization imports this module for SeedProvider
    from repro.quantization import PQSeeds

    return PQSeeds(
        count=spec["count"],
        num_subspaces=spec["num_subspaces"],
        codebook_size=spec["codebook_size"],
        seed=spec["seed"],
    )


_SPEC_KINDS = {
    "random": lambda s: RandomSeeds(count=s["count"], seed=s["seed"]),
    "fixed": lambda s: FixedSeeds(np.asarray(s["ids"], dtype=np.int64)),
    "centroid": lambda s: CentroidSeeds(),
    "kdtree": lambda s: KDTreeSeeds(
        num_trees=s["num_trees"], count=s["count"], seed=s["seed"]
    ),
    "kdtree-descend": lambda s: KDTreeDescendSeeds(
        num_trees=s["num_trees"], count=s["count"], seed=s["seed"]
    ),
    "vptree": lambda s: VPTreeSeeds(count=s["count"], seed=s["seed"]),
    "kmeans-tree": lambda s: KMeansTreeSeeds(count=s["count"], seed=s["seed"]),
    "lsh": lambda s: LSHSeeds(count=s["count"], seed=s["seed"]),
    "pq": _pq_from_spec,
}


def provider_from_spec(spec: dict) -> SeedProvider:
    """Reconstruct a provider from its :meth:`SeedProvider.spec` recipe."""
    kind = spec.get("kind")
    if kind not in _SPEC_KINDS:
        raise ValueError(f"unknown seed-provider kind {kind!r}")
    return _SPEC_KINDS[kind](spec)
