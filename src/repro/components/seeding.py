"""C4/C6 — seed preprocessing and acquisition.

C4 happens at build time (construct the auxiliary structure or fix the
entry vertices); C6 happens per query (produce the seed set S-hat of
Definition 4.3).  The two are interlocked — "after specifying C4, C6 is
also determined" (§5.4) — so a single :class:`SeedProvider` object
implements both: ``prepare`` is C4, ``acquire`` is C6.
"""

from __future__ import annotations

import numpy as np

from repro.distance import DistanceCounter, l2_batch
from repro.graphs.graph import Graph
from repro.hashing.lsh import RandomHyperplaneLSH
from repro.trees.kd_tree import KDTree
from repro.trees.kmeans_tree import BalancedKMeansTree
from repro.trees.vp_tree import VPTree

__all__ = [
    "SeedProvider",
    "RandomSeeds",
    "FixedSeeds",
    "CentroidSeeds",
    "KDTreeSeeds",
    "KDTreeDescendSeeds",
    "VPTreeSeeds",
    "KMeansTreeSeeds",
    "LSHSeeds",
]


class SeedProvider:
    """Base class: C4 = :meth:`prepare`, C6 = :meth:`acquire`."""

    #: preprocessing bytes beyond the graph itself (Table 5 MO driver)
    extra_bytes: int = 0

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        """Build whatever auxiliary structure C4 requires."""

    def acquire(
        self, query: np.ndarray, counter: DistanceCounter | None = None
    ) -> np.ndarray:
        """Return the seed ids for one query."""
        raise NotImplementedError


class RandomSeeds(SeedProvider):
    """KGraph/FANNG/NSW/DPG: random entries, no preprocessing."""

    def __init__(self, count: int = 8, seed: int = 0):
        self.count = count
        self._rng = np.random.default_rng(seed)
        self._n = 0

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        self._n = len(data)

    def acquire(self, query, counter=None) -> np.ndarray:
        return self._rng.integers(0, self._n, size=min(self.count, self._n))


class FixedSeeds(SeedProvider):
    """Entries fixed at build time (HNSW top layer is a special case)."""

    def __init__(self, seed_ids: np.ndarray):
        self._ids = np.asarray(seed_ids, dtype=np.int64)

    def acquire(self, query, counter=None) -> np.ndarray:
        return self._ids


class CentroidSeeds(SeedProvider):
    """NSG/Vamana: the approximate medoid of S as the single entry."""

    def __init__(self) -> None:
        self._medoid = 0

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        mean = data.mean(axis=0)
        self._medoid = int(np.argmin(l2_batch(mean, data)))

    @property
    def medoid(self) -> int:
        return self._medoid

    def acquire(self, query, counter=None) -> np.ndarray:
        return np.asarray([self._medoid], dtype=np.int64)


class KDTreeSeeds(SeedProvider):
    """EFANNA/SPTAG-KDT: ANNS over randomized KD-trees (pays NDC)."""

    def __init__(self, num_trees: int = 4, count: int = 8, seed: int = 0):
        self.num_trees = num_trees
        self.count = count
        self.seed = seed
        self._trees: list[KDTree] = []

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        self._trees = [
            KDTree(data, seed=self.seed + t) for t in range(self.num_trees)
        ]
        self.extra_bytes = len(data) * 8 * self.num_trees

    def acquire(self, query, counter=None) -> np.ndarray:
        per_tree = max(1, self.count // len(self._trees))
        found = [
            tree.search(query, per_tree, counter=counter, max_leaves=2)
            for tree in self._trees
        ]
        return np.unique(np.concatenate(found))[: self.count]


class KDTreeDescendSeeds(SeedProvider):
    """HCNNG: descend KD-trees by value comparison only — zero NDC.

    The §5.4 C4 discussion singles this out: better than NGT/BKT seeds
    because locating the bucket costs no distance computations.
    """

    def __init__(self, num_trees: int = 3, count: int = 8, seed: int = 0):
        self.num_trees = num_trees
        self.count = count
        self.seed = seed
        self._trees: list[KDTree] = []
        self._rng = np.random.default_rng(seed)

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        self._trees = [
            KDTree(data, seed=self.seed + t) for t in range(self.num_trees)
        ]
        self.extra_bytes = len(data) * 8 * self.num_trees

    def acquire(self, query, counter=None) -> np.ndarray:
        buckets = [tree.descend(query) for tree in self._trees]
        pool = np.unique(np.concatenate(buckets))
        if len(pool) <= self.count:
            return pool
        return self._rng.choice(pool, size=self.count, replace=False)


class VPTreeSeeds(SeedProvider):
    """NGT: vantage-point-tree entry (distance computations charged)."""

    def __init__(self, count: int = 4, seed: int = 0):
        self.count = count
        self.seed = seed
        self._tree: VPTree | None = None

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        self._tree = VPTree(data, seed=self.seed)
        self.extra_bytes = len(data) * 12

    def acquire(self, query, counter=None) -> np.ndarray:
        return self._tree.search(query, self.count, counter=counter, max_nodes=24)


class KMeansTreeSeeds(SeedProvider):
    """SPTAG-BKT: balanced k-means tree entry."""

    def __init__(self, count: int = 8, seed: int = 0):
        self.count = count
        self.seed = seed
        self._tree: BalancedKMeansTree | None = None

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        self._tree = BalancedKMeansTree(data, seed=self.seed)
        self.extra_bytes = len(data) * 16

    def acquire(self, query, counter=None) -> np.ndarray:
        return self._tree.search(query, self.count, counter=counter)


class LSHSeeds(SeedProvider):
    """IEH: hash-bucket entries — the best C4 in the study (§5.4)."""

    def __init__(self, count: int = 8, seed: int = 0):
        self.count = count
        self.seed = seed
        self._lsh: RandomHyperplaneLSH | None = None

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        self._lsh = RandomHyperplaneLSH(data, seed=self.seed)
        self.extra_bytes = len(data) * 8 * self._lsh.num_tables

    def acquire(self, query, counter=None) -> np.ndarray:
        return self._lsh.search(query, self.count, counter=counter)
