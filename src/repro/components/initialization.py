"""C1 — initialization (Definitions 4.1–4.3).

Neighbor-initialization flavours for the *refinement* strategy:

* :func:`random_neighbor_lists` — KGraph's and Vamana's random start;
* :func:`kdtree_neighbor_lists` — EFANNA's KD-tree ANNS start;
* NN-Descent refinement itself lives in :mod:`repro.nndescent`;
* brute force uses :func:`repro.graphs.knng.exact_knn_lists`.

Dataset division (divide-and-conquer) is in :mod:`repro.trees.tp_tree`
and :mod:`repro.clustering`; incremental initialization is inside the
incremental builders (NSW/HNSW/NGT).
"""

from __future__ import annotations

import numpy as np

from repro.distance import DistanceCounter
from repro.trees.kd_tree import KDTree

__all__ = ["random_neighbor_lists", "kdtree_neighbor_lists"]


def random_neighbor_lists(
    n: int, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random neighbors, no self-loops — the cheapest C1."""
    if k > n - 1:
        raise ValueError(f"k={k} too large for n={n}")
    ids = np.empty((n, k), dtype=np.int64)
    for v in range(n):
        choice = rng.choice(n - 1, size=k, replace=False)
        choice[choice >= v] += 1
        ids[v] = choice
    return ids


def kdtree_neighbor_lists(
    data: np.ndarray,
    k: int,
    num_trees: int = 4,
    counter: DistanceCounter | None = None,
    seed: int = 0,
) -> np.ndarray:
    """EFANNA-style initialization: ANNS over several randomized KD-trees.

    Each point queries every tree; the union of leaf candidates is
    re-ranked by true distance (charged to ``counter``).
    """
    n = len(data)
    k = min(k, n - 1)
    trees = [KDTree(data, seed=seed + t) for t in range(num_trees)]
    ids = np.empty((n, k), dtype=np.int64)
    for v in range(n):
        buckets = [tree.descend(data[v]) for tree in trees]
        pool = np.unique(np.concatenate(buckets))
        pool = pool[pool != v]
        if len(pool) < k:
            extra = np.setdiff1d(np.arange(n), np.append(pool, v))
            pool = np.concatenate([pool, extra[: k - len(pool)]])
        dists = (
            counter.one_to_many(data[v], data[pool])
            if counter is not None
            else np.linalg.norm(data[pool] - data[v], axis=1)
        )
        order = np.argsort(dists, kind="stable")[:k]
        ids[v] = pool[order]
    return ids
