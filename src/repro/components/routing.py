"""C7 — routing strategies (§4.2, Definition 4.6/4.7, Appendix F).

All strategies operate on a finalized :class:`~repro.graphs.graph.Graph`
plus the raw vectors, count every distance evaluation through the
supplied :class:`DistanceCounter`, and report the per-query search
statistics the paper tracks: NDC, query path length (number of expanded
vertices, the hop count that drives I/O on external storage — Table 5
PL) and the number of visited vertices.

Mechanics (none of which change a single NDC): distances are evaluated
in the *squared* domain against the cached norms of a reusable
:class:`~repro.components.context.SearchContext` (square roots are
taken once, on the final result set), adjacency is read from the frozen
CSR layout, and — for plain best-first search on a frozen graph — the
whole loop runs inside the optional C kernel of :mod:`repro._native`.
Pass ``ctx`` to reuse scratch across queries; omitting it builds a
transient context with identical semantics.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from repro import _native
from repro.components.context import SearchContext
from repro.distance import DistanceCounter
from repro.graphs.graph import Graph
from repro.resilience import BudgetReport, BudgetTracker, QueryBudget

__all__ = [
    "SearchResult",
    "SearchContext",
    "best_first_search",
    "range_search",
    "backtracking_search",
    "guided_search",
    "iterated_search",
    "two_stage_search",
]


@dataclass
class SearchResult:
    """Ids/distances in ascending distance order, plus search telemetry.

    ``degraded`` marks a search cut short by a :class:`QueryBudget`:
    the ids/dists are the best-k found so far (never invalid, never
    silently wrong), and ``budget`` says which limit fired and what was
    spent.  Unbudgeted searches always report ``degraded=False``.

    Compressed (ADC) searches keep the survey's NDC accounting honest:
    ``ndc`` counts only *true* distance computations (seed acquisition
    plus the exact re-rank), while the traversal's table lookups — which
    never touch a float32 row — are reported separately in
    ``adc_lookups``; ``rerank_ndc`` is the exact-re-rank share of
    ``ndc``.  Both stay 0 for exact searches.
    """

    ids: np.ndarray
    dists: np.ndarray
    ndc: int = 0          # number of distance computations
    hops: int = 0         # expanded vertices ~= query path length (PL)
    visited: int = 0      # vertices whose distance was evaluated
    visited_ids: np.ndarray | None = None    # set by record_visited=True
    visited_dists: np.ndarray | None = None
    degraded: bool = False
    budget: BudgetReport | None = None
    trace_id: str | None = None   # joins a hop-level QueryTrace, if traced
    adc_lookups: int = 0  # compressed traversal's LUT gathers (not NDC)
    rerank_ndc: int = 0   # exact re-rank distance computations

    def top(self, k: int) -> np.ndarray:
        return self.ids[:k]


def _tracker_for(budget: QueryBudget | None, counter) -> BudgetTracker | None:
    if budget is None or budget.unlimited:
        return None
    return BudgetTracker(budget, counter)


def _attach_budget(result: SearchResult, tracker: BudgetTracker | None) -> SearchResult:
    if tracker is not None and tracker.fired is not None:
        result.degraded = True
        result.budget = tracker.report(result.hops)
    return result


def _context_for(ctx: SearchContext | None, data: np.ndarray) -> SearchContext:
    if ctx is not None and ctx.compatible(data):
        return ctx
    return SearchContext(data)


class _Frontier:
    """Shared candidate/result bookkeeping for the greedy searches.

    ``candidates`` is a min-heap of vertices to expand; ``results`` a
    max-heap (negated) capped at ``ef`` — the candidate set C of
    Definition 4.7 whose size is the paper's "candidate set size (CS)"
    knob.  Both heaps and the visited set live on the context and hold
    *squared* distances; :meth:`finish` converts once.
    """

    __slots__ = ("ef", "ctx", "candidates", "results", "visited", "log",
                 "tracker", "trace")

    def __init__(
        self,
        ctx: SearchContext,
        query: np.ndarray,
        ef: int,
        record_visited: bool = False,
        tracker: BudgetTracker | None = None,
    ):
        self.ef = ef
        self.ctx = ctx
        ctx.begin_query(query)
        self.candidates = ctx.candidates
        self.results = ctx.results
        self.visited = 0
        self.log: list[tuple[float, int]] | None = [] if record_visited else None
        self.tracker = tracker
        # hop-level trace attached by GraphANNS.search / the batch
        # engine; None (the common case) costs one check per expansion
        self.trace = ctx.trace

    def worst(self) -> float:
        return -self.results[0][0] if len(self.results) == self.ef else np.inf

    def _offer_bulk(self, ids: np.ndarray, sq: np.ndarray) -> None:
        """Feed newly evaluated vertices to both heaps.

        Pre-filtering against the current worst result is exact: the
        bound only tightens while survivors are inserted, and the
        sequential path discards those entries anyway.
        """
        self.visited += len(ids)
        if self.log is not None:
            self.log.extend(zip(sq.tolist(), ids.tolist()))
        results, candidates, ef = self.results, self.candidates, self.ef
        if len(results) == ef:
            keep = sq < -results[0][0]
            if not keep.any():
                return
            ids, sq = ids[keep], sq[keep]
        for dist, idx in zip(sq.tolist(), ids.tolist()):
            if len(results) < ef:
                heapq.heappush(results, (-dist, idx))
                heapq.heappush(candidates, (dist, idx))
            elif dist < -results[0][0]:
                heapq.heapreplace(results, (-dist, idx))
                heapq.heappush(candidates, (dist, idx))

    def seed(self, seeds: np.ndarray, counter: DistanceCounter) -> None:
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        seeds = self.ctx.fresh(seeds)
        if self.tracker is not None:
            seeds = self.tracker.clip(seeds)
        if len(seeds) == 0:
            return
        counter.count += len(seeds)
        if self.trace is not None:
            self.trace.seed_event(len(seeds), counter.count)
        self._offer_bulk(seeds, self.ctx.sq_dists(seeds))

    def expand(
        self,
        u: int,
        graph: Graph,
        counter: DistanceCounter,
        keep: np.ndarray | None = None,
    ) -> None:
        """Evaluate ``u``'s unvisited neighbors (optionally pre-filtered)."""
        nbrs = graph.neighbor_array(u)
        if keep is not None:
            nbrs = nbrs[keep[: len(nbrs)]] if keep.dtype == bool else nbrs[keep]
        if len(nbrs) == 0:
            if self.trace is not None:
                self.trace.hop(u, counter.count, 0)
            return
        nbrs = self.ctx.fresh(nbrs)
        if self.tracker is not None:
            nbrs = self.tracker.clip(nbrs)
        if len(nbrs) == 0:
            if self.trace is not None:
                self.trace.hop(u, counter.count, 0)
            return
        counter.count += len(nbrs)
        if self.trace is not None:
            self.trace.hop(u, counter.count, len(nbrs))
        self._offer_bulk(nbrs, self.ctx.sq_dists(nbrs))

    def finish(self, ndc: int, hops: int) -> SearchResult:
        ordered = sorted((-negd, idx) for negd, idx in self.results)
        ids = np.asarray([idx for _, idx in ordered], dtype=np.int64)
        dists = np.sqrt(np.asarray([d for d, _ in ordered], dtype=np.float64))
        result = SearchResult(ids, dists, ndc=ndc, hops=hops, visited=self.visited)
        if self.log is not None:
            self.log.sort()
            result.visited_dists = np.sqrt(np.asarray([d for d, _ in self.log]))
            result.visited_ids = np.asarray(
                [i for _, i in self.log], dtype=np.int64
            )
        return result


def _native_best_first(
    ctx: SearchContext,
    graph: Graph,
    query: np.ndarray,
    seeds: np.ndarray,
    ef: int,
    counter: DistanceCounter,
    budget: QueryBudget | None = None,
) -> SearchResult:
    """Whole-loop C fast path: identical bookkeeping, no Python frontier."""
    started = time.perf_counter()
    ctx.begin_query(query)
    seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    if len(seeds) and (seeds[0] < 0 or seeds[-1] >= graph.n):
        raise IndexError(
            f"seed ids must lie in [0, {graph.n}), got {seeds[0]}..{seeds[-1]}"
        )
    max_ndc = max_hops = -1
    if budget is not None:
        max_ndc = -1 if budget.max_ndc is None else budget.max_ndc
        max_hops = -1 if budget.max_hops is None else budget.max_hops
    if ctx.compressed is not None:
        # ADC fast path: walks uint8 codes against the per-query LUT
        # that begin_query just built; the float32 tier stays cold.
        ids, sq, ndc, hops, visited, fired = _native.best_first_adc(
            ctx, graph, ctx.compressed.codes, ctx.lut, seeds, ef,
            max_ndc, max_hops,
        )
    else:
        ids, sq, ndc, hops, visited, fired = _native.best_first(
            ctx, graph, ctx.query64, ctx.query_sq, seeds, ef, max_ndc, max_hops
        )
    counter.count += ndc
    result = SearchResult(
        ids, np.sqrt(sq), ndc=ndc, hops=hops, visited=visited
    )
    if fired is not None:
        result.degraded = True
        result.budget = BudgetReport(
            limit=fired, ndc=ndc, hops=hops,
            elapsed_s=time.perf_counter() - started,
        )
    return result


def best_first_search(
    graph: Graph,
    data: np.ndarray,
    query: np.ndarray,
    seeds: np.ndarray,
    ef: int,
    counter: DistanceCounter | None = None,
    record_visited: bool = False,
    ctx: SearchContext | None = None,
    budget: QueryBudget | None = None,
) -> SearchResult:
    """Best First Search (Algorithm 1 / Definition 4.7).

    The routing of NSW, HNSW, KGraph, IEH, EFANNA, DPG, NSG, NSSG and
    Vamana.  ``ef`` is the candidate-set size ``c``.  With
    ``record_visited`` the full evaluated set is returned — builders use
    it as the candidate pool (NSG/Vamana keep every vertex the search
    touched, which is where their long-range edges come from).  A
    ``budget`` with NDC/hop caps runs natively; a wall-clock deadline
    can only be enforced by the Python loop, so it forces the NumPy
    path.
    """
    counter = counter if counter is not None else DistanceCounter()
    ctx = _context_for(ctx, data)
    if (
        ctx.native and not record_visited and graph.finalized and graph.n > 0
        and (budget is None or budget.native_ok)
        # hop-level tracing needs the Python frontier; its ids/NDC are
        # bit-identical to the kernel's, so traces never change results
        and ctx.trace is None
    ):
        return _native_best_first(ctx, graph, query, seeds, ef, counter, budget)
    start_ndc = counter.count
    tracker = _tracker_for(budget, counter)
    frontier = _Frontier(ctx, query, ef, record_visited=record_visited,
                         tracker=tracker)
    frontier.seed(seeds, counter)
    hops = 0
    while frontier.candidates:
        if tracker is not None and tracker.stop_before_hop(hops):
            break
        dist, u = heapq.heappop(frontier.candidates)
        if dist > frontier.worst():
            break
        hops += 1
        frontier.expand(u, graph, counter)
    return _attach_budget(frontier.finish(counter.count - start_ndc, hops), tracker)


def range_search(
    graph: Graph,
    data: np.ndarray,
    query: np.ndarray,
    seeds: np.ndarray,
    ef: int,
    counter: DistanceCounter | None = None,
    epsilon: float = 0.1,
    ctx: SearchContext | None = None,
    budget: QueryBudget | None = None,
) -> SearchResult:
    """NGT's range search: BFS whose exploration radius is ``(1+ε)·r``.

    ``r`` is the current worst result distance; raising ε trades time
    for immunity to local optima (the C7_NGT "ceiling" of Figure 10(f)
    appears when ε is small).
    """
    counter = counter if counter is not None else DistanceCounter()
    ctx = _context_for(ctx, data)
    start_ndc = counter.count
    tracker = _tracker_for(budget, counter)
    frontier = _Frontier(ctx, query, ef, tracker=tracker)
    frontier.seed(seeds, counter)
    hops = 0
    # (1+ε)·r on true distances == (1+ε)²·r² in the squared domain
    factor = (1.0 + epsilon) ** 2
    while frontier.candidates:
        if tracker is not None and tracker.stop_before_hop(hops):
            break
        dist, u = heapq.heappop(frontier.candidates)
        if dist > frontier.worst() * factor:
            break
        hops += 1
        frontier.expand(u, graph, counter)
    return _attach_budget(frontier.finish(counter.count - start_ndc, hops), tracker)


def backtracking_search(
    graph: Graph,
    data: np.ndarray,
    query: np.ndarray,
    seeds: np.ndarray,
    ef: int,
    counter: DistanceCounter | None = None,
    backtracks: int = 10,
    ctx: SearchContext | None = None,
    budget: QueryBudget | None = None,
) -> SearchResult:
    """FANNG's BFS with backtracking.

    After normal BFS termination the search pops up to ``backtracks``
    further candidates (the "second-closest vertex with unexplored
    edges") — slightly better accuracy, noticeably more time (§4.2 C7).
    """
    counter = counter if counter is not None else DistanceCounter()
    ctx = _context_for(ctx, data)
    start_ndc = counter.count
    tracker = _tracker_for(budget, counter)
    frontier = _Frontier(ctx, query, ef, tracker=tracker)
    frontier.seed(seeds, counter)
    hops = 0
    remaining_backtracks = backtracks
    while frontier.candidates:
        if tracker is not None and tracker.stop_before_hop(hops):
            break
        dist, u = heapq.heappop(frontier.candidates)
        if dist > frontier.worst():
            if remaining_backtracks == 0:
                break
            remaining_backtracks -= 1  # backtrack: expand anyway
        hops += 1
        frontier.expand(u, graph, counter)
    return _attach_budget(frontier.finish(counter.count - start_ndc, hops), tracker)


def _toward_query(
    ctx: SearchContext, data: np.ndarray, u: int, nbrs: np.ndarray
) -> np.ndarray:
    """HCNNG's half-space test ``<q - u, x_n - u> > 0`` (costs no NDC)."""
    anchor = data[u]
    direction = ctx.query64 - anchor
    return (data[nbrs] - anchor) @ direction > 0.0


def guided_search(
    graph: Graph,
    data: np.ndarray,
    query: np.ndarray,
    seeds: np.ndarray,
    ef: int,
    counter: DistanceCounter | None = None,
    min_keep: int = 2,
    ctx: SearchContext | None = None,
    budget: QueryBudget | None = None,
) -> SearchResult:
    """HCNNG's guided search: skip neighbors pointing away from the query.

    When expanding ``u``, only neighbors in the query's half-space
    (``<q - u, x_n - u>  > 0``) are evaluated — a coordinate test that
    costs no NDC, mirroring HCNNG's KD-direction test.  This "avoids
    some redundant visits based on the query's location" at a small
    accuracy cost (§4.2 C7, Figure 10(f)).
    """
    counter = counter if counter is not None else DistanceCounter()
    ctx = _context_for(ctx, data)
    start_ndc = counter.count
    tracker = _tracker_for(budget, counter)
    frontier = _Frontier(ctx, query, ef, tracker=tracker)
    frontier.seed(seeds, counter)
    hops = 0
    while frontier.candidates:
        if tracker is not None and tracker.stop_before_hop(hops):
            break
        dist, u = heapq.heappop(frontier.candidates)
        if dist > frontier.worst():
            break
        hops += 1
        nbrs = graph.neighbor_array(u)
        if len(nbrs) > min_keep:
            toward = _toward_query(ctx, data, u, nbrs)
            if toward.sum() >= min_keep:
                frontier.expand(u, graph, counter, keep=toward)
                continue
        frontier.expand(u, graph, counter)
    return _attach_budget(frontier.finish(counter.count - start_ndc, hops), tracker)


def iterated_search(
    graph: Graph,
    data: np.ndarray,
    query: np.ndarray,
    seed_batches,
    ef: int,
    counter: DistanceCounter | None = None,
    max_restarts: int = 4,
    ctx: SearchContext | None = None,
    budget: QueryBudget | None = None,
) -> SearchResult:
    """SPTAG's iterated BFS: restart from fresh tree seeds when stuck.

    ``seed_batches`` is a callable ``restart_index -> seed ids`` (the
    KD-tree / BKT lookup); the visited set and result set persist across
    restarts, so each restart explores new territory.
    """
    counter = counter if counter is not None else DistanceCounter()
    ctx = _context_for(ctx, data)
    start_ndc = counter.count
    tracker = _tracker_for(budget, counter)
    frontier = _Frontier(ctx, query, ef, tracker=tracker)
    hops = 0
    for restart in range(max_restarts):
        seeds = np.asarray(seed_batches(restart), dtype=np.int64)
        before = -frontier.results[0][0] if len(frontier.results) == ef else np.inf
        frontier.seed(seeds, counter)
        while frontier.candidates:
            if tracker is not None and tracker.stop_before_hop(hops):
                break
            dist, u = heapq.heappop(frontier.candidates)
            if dist > frontier.worst():
                break
            hops += 1
            frontier.expand(u, graph, counter)
        if tracker is not None and tracker.fired is not None:
            break
        after = -frontier.results[0][0] if len(frontier.results) == ef else np.inf
        if after >= before:  # local optimum not escaped; stop restarting
            break
    return _attach_budget(frontier.finish(counter.count - start_ndc, hops), tracker)


def two_stage_search(
    graph: Graph,
    data: np.ndarray,
    query: np.ndarray,
    seeds: np.ndarray,
    ef: int,
    counter: DistanceCounter | None = None,
    guided_hops: int | None = None,
    min_keep: int = 2,
    ctx: SearchContext | None = None,
    budget: QueryBudget | None = None,
) -> SearchResult:
    """The optimized algorithm's routing (§6 Improvement).

    One frontier, two phases: the first ``guided_hops`` expansions use
    HCNNG-style guided filtering to approach the query cheaply, after
    which plain best-first expansion takes over for accuracy.  Sharing
    the frontier (rather than restarting) is what makes the combination
    cheaper than BFS alone — no vertex is ever evaluated twice.
    """
    counter = counter if counter is not None else DistanceCounter()
    ctx = _context_for(ctx, data)
    start_ndc = counter.count
    if guided_hops is None:
        guided_hops = max(4, ef // 2)
    tracker = _tracker_for(budget, counter)
    frontier = _Frontier(ctx, query, ef, tracker=tracker)
    frontier.seed(seeds, counter)
    hops = 0
    while frontier.candidates:
        if tracker is not None and tracker.stop_before_hop(hops):
            break
        dist, u = heapq.heappop(frontier.candidates)
        if dist > frontier.worst():
            break
        hops += 1
        if hops <= guided_hops:
            nbrs = graph.neighbor_array(u)
            if len(nbrs) > min_keep:
                toward = _toward_query(ctx, data, u, nbrs)
                if toward.sum() >= min_keep:
                    frontier.expand(u, graph, counter, keep=toward)
                    continue
        frontier.expand(u, graph, counter)
    return _attach_budget(frontier.finish(counter.count - start_ndc, hops), tracker)
