"""C5 — connectivity assurance.

NSG/NSSG attach a depth-first spanning step after refinement: every
vertex must be reachable *from the navigating entry point* or some
queries can never be answered.  :func:`ensure_reachable_from`
reproduces that repair: while unreachable vertices remain, link the
nearest reachable vertex (found by ANNS from the root) to one of them
and re-expand reachability.
"""

from __future__ import annotations

import numpy as np

from repro.components.routing import best_first_search
from repro.distance import DistanceCounter
from repro.graphs.graph import Graph

__all__ = ["ensure_reachable_from"]


def _reachable_from(graph: Graph, roots: np.ndarray) -> np.ndarray:
    return graph.reachable_mask(roots)


def ensure_reachable_from(
    graph: Graph,
    data: np.ndarray,
    root: int,
    counter: DistanceCounter | None = None,
    ef: int = 32,
    ctx=None,
) -> Graph:
    """Make every vertex reachable from ``root`` (directed), in place.

    For each stranded vertex the nearest *reachable* vertex is located
    by best-first search from the root (NSG's DFS-plus-search repair)
    and a bridging edge is added from it.
    """
    counter = counter if counter is not None else DistanceCounter()
    seen = _reachable_from(graph, np.asarray([root]))
    while not seen.all():
        graph.finalize()
        stranded = int(np.flatnonzero(~seen)[0])
        result = best_first_search(
            graph, data, data[stranded], np.asarray([root]), ef=ef,
            counter=counter, ctx=ctx,
        )
        attach = next((int(i) for i in result.ids if seen[i]), root)
        graph.add_edge(attach, stranded)
        newly = _reachable_from(graph, np.asarray([stranded]))
        seen |= newly
    graph.finalize()
    return graph
