"""The seven fine-grained components of the unified pipeline (Figure 4).

Construction components: C1 initialization, C2 candidate neighbor
acquisition, C3 neighbor selection, C4 seed preprocessing, C5
connectivity.  Search components: C6 seed acquisition, C7 routing.
Every algorithm in :mod:`repro.algorithms` is assembled from these
parts, which is what makes the §5.4 component-swapping study possible.
"""

from repro.components.context import SearchContext
from repro.components.routing import (
    SearchResult,
    best_first_search,
    range_search,
    backtracking_search,
    guided_search,
    iterated_search,
    two_stage_search,
)
from repro.components.selection import (
    select_closest,
    select_rng_heuristic,
    select_angle_sum,
    select_angle_threshold,
    select_mst,
    path_adjustment,
)
from repro.components.seeding import (
    SeedProvider,
    RandomSeeds,
    FixedSeeds,
    CentroidSeeds,
    KDTreeSeeds,
    KDTreeDescendSeeds,
    VPTreeSeeds,
    KMeansTreeSeeds,
    LSHSeeds,
)
from repro.components.candidates import (
    candidates_by_search,
    candidates_by_expansion,
    candidates_direct,
)
from repro.components.connectivity import ensure_reachable_from
from repro.components.initialization import (
    random_neighbor_lists,
    kdtree_neighbor_lists,
)

__all__ = [
    "SearchContext",
    "SearchResult",
    "best_first_search",
    "range_search",
    "backtracking_search",
    "guided_search",
    "iterated_search",
    "two_stage_search",
    "select_closest",
    "select_rng_heuristic",
    "select_angle_sum",
    "select_angle_threshold",
    "select_mst",
    "path_adjustment",
    "SeedProvider",
    "RandomSeeds",
    "FixedSeeds",
    "CentroidSeeds",
    "KDTreeSeeds",
    "KDTreeDescendSeeds",
    "VPTreeSeeds",
    "KMeansTreeSeeds",
    "LSHSeeds",
    "candidates_by_search",
    "candidates_by_expansion",
    "candidates_direct",
    "ensure_reachable_from",
    "random_neighbor_lists",
    "kdtree_neighbor_lists",
]
