"""Reusable per-query search state for the routing hot path.

Profiling the survey's evaluation loop shows the Python wall-clock is
dominated by per-query allocations rather than by the traversal the
paper measures: an O(n) visited mask zeroed for every query, fresh
candidate/result heaps, and a ``points - query`` difference matrix per
expansion.  A :class:`SearchContext` owns all of that scratch once and
is reused across queries:

* **epoch-stamped visited array** — instead of re-zeroing O(n) booleans
  per query, a generation counter is bumped and a vertex counts as
  visited iff its stamp equals the current generation;
* **preallocated heaps** — the candidate min-heap and capped result
  heap of Definition 4.7, cleared (not reallocated) per query;
* **cached squared norms** — ``|x|^2`` for every data row (shared
  across contexts via :func:`repro.distance.squared_norms`), so each
  expansion evaluates ``|q|^2 - 2 q.x + |x|^2`` against the cache with
  no difference matrix;
* **native scratch** — heap buffers for the C best-first kernel when
  the compiled extension is available.

One context serves one thread: workers in the batched query engine each
construct their own (sharing the norm cache, which is immutable).
"""

from __future__ import annotations

import numpy as np

from repro import _native, faults
from repro import observability as obs
from repro.distance import sq_dists_to_rows, squared_norms

__all__ = ["SearchContext", "BuildContext", "PhaseStats"]


class SearchContext:
    """Reusable scratch memory binding one dataset to one search thread."""

    __slots__ = (
        "data", "visit_gen", "generation",
        "candidates", "results", "query64", "query_sq", "native", "trace",
        "compressed", "lut", "lut_override",
        "_norms_sq", "_cand_d", "_cand_i", "_res_d", "_res_i",
        "_vis_i", "_vis_d",
    )

    def __init__(self, data: np.ndarray, norms_sq: np.ndarray | None = None):
        self.data = data
        # Lazily computed: compressed traversal over a memory-mapped
        # float32 tier must not page the whole tier in just to build a
        # norm cache it will never read.
        self._norms_sq = norms_sq
        self.visit_gen = np.zeros(len(data), dtype=np.int64)
        self.generation = 0
        self.candidates: list[tuple[float, int]] = []
        self.results: list[tuple[float, int]] = []
        self.query64: np.ndarray | None = None
        self.query_sq: float = 0.0
        #: hop-level QueryTrace for the in-flight query (None = untraced;
        #: set/cleared by GraphANNS.search and the batch engine)
        self.trace = None
        #: CompressedTier powering ADC traversal for the in-flight query
        #: (None = exact scoring; set/cleared around _route like trace)
        self.compressed = None
        #: this query's (M, K) float32 ADC table (built by begin_query)
        self.lut = None
        #: precomputed table injected by the batch engine so the Python
        #: fallback scores from the same GEMM output as the MT kernel
        self.lut_override = None
        self.native = (
            _native.LIB is not None
            and data.dtype == np.float32
            and data.ndim == 2
            and data.flags["C_CONTIGUOUS"]
        )
        self._cand_d: np.ndarray | None = None
        self._cand_i: np.ndarray | None = None
        self._res_d: np.ndarray | None = None
        self._res_i: np.ndarray | None = None
        self._vis_i: np.ndarray | None = None
        self._vis_d: np.ndarray | None = None

    @property
    def norms_sq(self) -> np.ndarray:
        """Cached ``|x|^2`` per data row, computed on first exact use."""
        ns = self._norms_sq
        if ns is None:
            ns = self._norms_sq = squared_norms(self.data)
        return ns

    def compatible(self, data: np.ndarray) -> bool:
        """Whether this context's scratch belongs to ``data``."""
        return self.data is data

    # -- per-query lifecycle -------------------------------------------

    def begin_query(self, query: np.ndarray) -> None:
        """Start a fresh query: bump the epoch, clear heaps, cache q."""
        self.generation += 1
        self.candidates.clear()
        self.results.clear()
        self.query64 = np.ascontiguousarray(query, dtype=np.float64)
        self.query_sq = float(np.dot(self.query64, self.query64))
        if self.compressed is not None:
            lut = self.lut_override
            self.lut = self.compressed.lut(self.query64) if lut is None else lut

    # -- visited bookkeeping -------------------------------------------

    def fresh(self, ids: np.ndarray) -> np.ndarray:
        """Drop already-visited ids and stamp the remainder visited."""
        stamps = self.visit_gen[ids]
        if stamps.max(initial=-1) == self.generation:
            ids = ids[stamps != self.generation]
        if len(ids):
            self.visit_gen[ids] = self.generation
        return ids

    # -- distances ------------------------------------------------------

    def sq_dists(self, ids: np.ndarray) -> np.ndarray:
        """Squared distances from the current query to ``data[ids]``.

        With a compressed tier attached these are ADC surrogates
        gathered from the per-query LUT — the float32 rows stay
        untouched and the caller's counter is counting table lookups,
        not true distance computations.
        """
        plan = faults.active()
        if plan is not None:  # fault-injection seam; None in production
            plan.before_distances()
        if self.compressed is not None:
            return self.compressed.score(self.lut, ids)
        return sq_dists_to_rows(
            self.query64, self.data[ids], self.norms_sq[ids], self.query_sq
        )

    # -- native kernel support -----------------------------------------

    def native_scratch(self, ef: int):
        """(Re)allocate the C kernel's heap buffers; reused across calls."""
        n = len(self.data)
        if self._cand_d is None or len(self._cand_d) < n:
            self._cand_d = np.empty(n, dtype=np.float64)
            self._cand_i = np.empty(n, dtype=np.int32)
        if self._res_d is None or len(self._res_d) < ef:
            self._res_d = np.empty(max(ef, 64), dtype=np.float64)
            self._res_i = np.empty(max(ef, 64), dtype=np.int32)
        return self._cand_d, self._cand_i, self._res_d, self._res_i

    def visited_scratch(self):
        """Buffers the build kernel fills with every evaluated (id, sq)."""
        if self._vis_i is None or len(self._vis_i) < len(self.data):
            self._vis_i = np.empty(len(self.data), dtype=np.int32)
            self._vis_d = np.empty(len(self.data), dtype=np.float64)
        return self._vis_i, self._vis_d


class PhaseStats:
    """Wall-clock + NDC accumulated for one build phase (C1..C5 label)."""

    __slots__ = ("wall_s", "ndc")

    def __init__(self, wall_s: float = 0.0, ndc: int = 0):
        self.wall_s = wall_s
        self.ndc = ndc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhaseStats(wall_s={self.wall_s:.4f}, ndc={self.ndc})"


class BuildContext:
    """Shared construction-time state threaded through every builder.

    Construction mirrors what :class:`SearchContext` did for routing:
    one object owns the distance counter, the cached squared norms, a
    reusable search context and (for ``n_workers > 1``) a worker pool,
    so the per-point refinement loop never re-creates scratch state.
    :meth:`run_phase` executes one declarative phase (see
    ``GraphANNS._build_phases``) and charges its wall-clock and NDC to
    the phase's C1–C5 label; repeated labels accumulate, so the recorded
    phases always sum exactly to the build totals.
    """

    def __init__(self, data: np.ndarray, seed: int = 0, n_workers: int = 1,
                 counter=None):
        from repro.distance import DistanceCounter

        self.data = data
        self.seed = seed
        self.n_workers = max(1, int(n_workers))
        self.counter = DistanceCounter() if counter is None else counter
        self.norms_sq = squared_norms(data)
        self.phases: dict[str, PhaseStats] = {}
        self._ctx: SearchContext | None = None
        self._pool = None

    @property
    def parallel(self) -> bool:
        """Whether the batched/parallel refinement engine is engaged."""
        return self.n_workers > 1

    def search_context(self) -> SearchContext:
        """The build's reusable main-thread search context."""
        if self._ctx is None:
            self._ctx = SearchContext(self.data, norms_sq=self.norms_sq)
        return self._ctx

    def run_phase(self, label: str, fn) -> None:
        """Execute ``fn()`` and charge its wall/NDC to phase ``label``.

        With observability enabled, each phase is additionally recorded
        as a ``build.<label>`` span and a per-phase histogram sample —
        the same wall/NDC numbers ``BuildReport.phases`` reports, so
        exported spans and the report agree by construction.
        """
        from time import perf_counter

        start_wall = perf_counter()
        start_ndc = self.counter.count
        fn()
        wall_s = perf_counter() - start_wall
        ndc = self.counter.count - start_ndc
        stats = self.phases.setdefault(label, PhaseStats())
        stats.wall_s += wall_s
        stats.ndc += ndc
        if obs.enabled():
            obs.record_span(f"build.{label}", wall_s, ndc=ndc,
                            n_workers=self.n_workers)
            obs.instruments().build_phase_seconds(label).observe(wall_s)

    def pool(self):
        """The lazily-created refinement thread pool (n_workers wide)."""
        from concurrent.futures import ThreadPoolExecutor

        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="repro-build"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
