"""Reusable per-query search state for the routing hot path.

Profiling the survey's evaluation loop shows the Python wall-clock is
dominated by per-query allocations rather than by the traversal the
paper measures: an O(n) visited mask zeroed for every query, fresh
candidate/result heaps, and a ``points - query`` difference matrix per
expansion.  A :class:`SearchContext` owns all of that scratch once and
is reused across queries:

* **epoch-stamped visited array** — instead of re-zeroing O(n) booleans
  per query, a generation counter is bumped and a vertex counts as
  visited iff its stamp equals the current generation;
* **preallocated heaps** — the candidate min-heap and capped result
  heap of Definition 4.7, cleared (not reallocated) per query;
* **cached squared norms** — ``|x|^2`` for every data row (shared
  across contexts via :func:`repro.distance.squared_norms`), so each
  expansion evaluates ``|q|^2 - 2 q.x + |x|^2`` against the cache with
  no difference matrix;
* **native scratch** — heap buffers for the C best-first kernel when
  the compiled extension is available.

One context serves one thread: workers in the batched query engine each
construct their own (sharing the norm cache, which is immutable).
"""

from __future__ import annotations

import numpy as np

from repro import _native, faults
from repro.distance import sq_dists_to_rows, squared_norms

__all__ = ["SearchContext"]


class SearchContext:
    """Reusable scratch memory binding one dataset to one search thread."""

    __slots__ = (
        "data", "norms_sq", "visit_gen", "generation",
        "candidates", "results", "query64", "query_sq", "native",
        "_cand_d", "_cand_i", "_res_d", "_res_i",
    )

    def __init__(self, data: np.ndarray, norms_sq: np.ndarray | None = None):
        self.data = data
        self.norms_sq = squared_norms(data) if norms_sq is None else norms_sq
        self.visit_gen = np.zeros(len(data), dtype=np.int64)
        self.generation = 0
        self.candidates: list[tuple[float, int]] = []
        self.results: list[tuple[float, int]] = []
        self.query64: np.ndarray | None = None
        self.query_sq: float = 0.0
        self.native = (
            _native.LIB is not None
            and data.dtype == np.float32
            and data.ndim == 2
            and data.flags["C_CONTIGUOUS"]
        )
        self._cand_d: np.ndarray | None = None
        self._cand_i: np.ndarray | None = None
        self._res_d: np.ndarray | None = None
        self._res_i: np.ndarray | None = None

    def compatible(self, data: np.ndarray) -> bool:
        """Whether this context's scratch belongs to ``data``."""
        return self.data is data

    # -- per-query lifecycle -------------------------------------------

    def begin_query(self, query: np.ndarray) -> None:
        """Start a fresh query: bump the epoch, clear heaps, cache q."""
        self.generation += 1
        self.candidates.clear()
        self.results.clear()
        self.query64 = np.ascontiguousarray(query, dtype=np.float64)
        self.query_sq = float(np.dot(self.query64, self.query64))

    # -- visited bookkeeping -------------------------------------------

    def fresh(self, ids: np.ndarray) -> np.ndarray:
        """Drop already-visited ids and stamp the remainder visited."""
        stamps = self.visit_gen[ids]
        if stamps.max(initial=-1) == self.generation:
            ids = ids[stamps != self.generation]
        if len(ids):
            self.visit_gen[ids] = self.generation
        return ids

    # -- distances ------------------------------------------------------

    def sq_dists(self, ids: np.ndarray) -> np.ndarray:
        """Squared distances from the current query to ``data[ids]``."""
        plan = faults.active()
        if plan is not None:  # fault-injection seam; None in production
            plan.before_distances()
        return sq_dists_to_rows(
            self.query64, self.data[ids], self.norms_sq[ids], self.query_sq
        )

    # -- native kernel support -----------------------------------------

    def native_scratch(self, ef: int):
        """(Re)allocate the C kernel's heap buffers; reused across calls."""
        n = len(self.data)
        if self._cand_d is None or len(self._cand_d) < n:
            self._cand_d = np.empty(n, dtype=np.float64)
            self._cand_i = np.empty(n, dtype=np.int32)
        if self._res_d is None or len(self._res_d) < ef:
            self._res_d = np.empty(max(ef, 64), dtype=np.float64)
            self._res_i = np.empty(max(ef, 64), dtype=np.int32)
        return self._cand_d, self._cand_i, self._res_d, self._res_i
