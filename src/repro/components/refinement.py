"""Deterministic chunked execution of the per-point refinement loop.

Every incremental builder in the survey spends its time in the same
shape of loop: for each point, acquire candidates (C2) over a frozen
input graph, prune them (C3), and write the result row.  The iterations
are independent — ParlayANN's observation that graph construction
parallelizes batch-synchronously — so :func:`map_refine` runs them over
chunks in the :class:`~repro.components.context.BuildContext` worker
pool and applies the results **in ascending point order on the calling
thread**.  Output is therefore a deterministic function of the seed
regardless of worker count or scheduling; with ``n_workers=1`` the
builders never call into this module and execute their original serial
loops verbatim.

The workers use two native fast paths (both bit-identical to the NumPy
code they replace, see ``_native.py``):

* :func:`search_candidates` — visited-recording best-first search in C
  instead of the Python frontier;
* :func:`select_rng` — the RNG-heuristic occlusion scan in C over the
  NumPy-computed cross-distance matrix.

When the compiled kernel is unavailable both fall back to the exact
Python component functions, so ``REPRO_NO_NATIVE`` parallel builds still
reproduce the serial adjacency bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro import _native
from repro.components.candidates import candidates_by_search
from repro.components.context import BuildContext, SearchContext
from repro.components.selection import select_rng_heuristic
from repro.distance import DistanceCounter, pairwise_l2

__all__ = [
    "BuildWorker",
    "map_refine",
    "search_candidates",
    "search_candidates_padded",
    "select_rng",
]

#: points handed to a worker per task — large enough to amortize the
#: executor round-trip, small enough to keep all workers busy
CHUNK_SIZE = 64


class BuildWorker:
    """Per-thread scratch for refinement: a search context + counter.

    Each worker owns a private :class:`SearchContext` (sharing the
    immutable norm cache) and a private :class:`DistanceCounter`;
    :func:`map_refine` merges the counters into the build's counter
    after the loop so the total NDC matches the serial build exactly.
    """

    __slots__ = ("ctx", "counter")

    def __init__(self, bctx: BuildContext):
        self.ctx = SearchContext(bctx.data, norms_sq=bctx.norms_sq)
        self.counter = DistanceCounter()


def map_refine(bctx: BuildContext, n_points: int, point_fn, apply_fn,
               chunk_size: int = CHUNK_SIZE) -> None:
    """Run ``point_fn(p, worker)`` for every point, apply results in order.

    ``point_fn`` must be a pure function of its inputs (it may only
    read state frozen before the loop and the worker's scratch);
    ``apply_fn(p, result)`` runs on the calling thread in ascending
    ``p`` order and is the only place output state may be mutated.
    """
    workers: list[BuildWorker] = [
        BuildWorker(bctx) for _ in range(bctx.n_workers)
    ]
    import queue

    free: queue.Queue[BuildWorker] = queue.Queue()
    for worker in workers:
        free.put(worker)

    def run_chunk(start: int, stop: int) -> list:
        worker = free.get()
        try:
            return [point_fn(p, worker) for p in range(start, stop)]
        finally:
            free.put(worker)

    starts = range(0, n_points, chunk_size)
    pool = bctx.pool()
    futures = [
        pool.submit(run_chunk, start, min(start + chunk_size, n_points))
        for start in starts
    ]
    for start, future in zip(starts, futures):
        for offset, result in enumerate(future.result()):
            apply_fn(start + offset, result)
    for worker in workers:
        bctx.counter.count += worker.counter.count


def _finish_visited(vis_ids: np.ndarray, vis_sq: np.ndarray,
                    point_id: int) -> tuple[np.ndarray, np.ndarray]:
    """Sort the raw visited log by (sq, id) and drop the point itself."""
    order = np.lexsort((vis_ids, vis_sq))
    ids = vis_ids[order].astype(np.int64)
    dists = np.sqrt(vis_sq[order])
    mask = ids != point_id
    return ids[mask], dists[mask]


def search_candidates(worker: BuildWorker, graph, data: np.ndarray,
                      point_id: int, ef: int,
                      seeds: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``candidates_by_search`` with the native visited-recording kernel.

    Returns the identical ``(ids, dists)`` the Python frontier would:
    the C core evaluates the same vertex set in the same traversal and
    the wrapper re-sorts by (distance, id) like ``finish()`` does.
    """
    ctx = worker.ctx
    if ctx.native and graph.finalized:
        indptr, indices = graph.csr()
        ctx.begin_query(data[point_id])
        unique_seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        vis_ids, vis_sq, ndc = _native.best_first_build(
            ctx, indptr, indices, None, ctx.query64, ctx.query_sq,
            unique_seeds, ef,
        )
        worker.counter.count += ndc
        return _finish_visited(vis_ids, vis_sq, point_id)
    return candidates_by_search(
        graph, data, point_id, ef, seeds, counter=worker.counter, ctx=ctx,
    )


def search_candidates_padded(ctx: SearchContext, counter: DistanceCounter,
                             offsets: np.ndarray, flat: np.ndarray,
                             counts: np.ndarray, data: np.ndarray,
                             point_id: int, ef: int,
                             seeds: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Visited-recording search over a padded (still-mutating) adjacency.

    ``offsets[u]`` is row u's start in the flattened int32 matrix
    ``flat`` and ``counts[u]`` its live length — the layout Vamana's
    fast path keeps in lockstep with the evolving ``Graph`` lists.
    """
    ctx.begin_query(data[point_id])
    unique_seeds = np.unique(np.asarray(seeds, dtype=np.int64))
    vis_ids, vis_sq, ndc = _native.best_first_build(
        ctx, offsets, flat, counts, ctx.query64, ctx.query_sq,
        unique_seeds, ef,
    )
    counter.count += ndc
    return _finish_visited(vis_ids, vis_sq, point_id)


def select_rng(point: np.ndarray, candidate_ids: np.ndarray,
               candidate_dists: np.ndarray, data: np.ndarray,
               max_degree: int, counter: DistanceCounter | None = None,
               alpha: float = 1.0) -> np.ndarray:
    """``select_rng_heuristic`` with the occlusion scan in C.

    Computes the same float32 cross-distance matrix with NumPy, charges
    the same NDC, and hands the scan to the kernel, which replicates the
    comparison's IEEE semantics — selections are bit-identical.
    """
    candidates = np.asarray(candidate_ids, dtype=np.int64)
    if _native.LIB is None or len(candidates) == 0:
        return select_rng_heuristic(
            point, candidate_ids, candidate_dists, data, max_degree,
            counter=counter, alpha=alpha,
        )
    cross = pairwise_l2(data[candidates], data[candidates])
    if cross.dtype != np.float32 or not cross.flags["C_CONTIGUOUS"]:
        return select_rng_heuristic(
            point, candidate_ids, candidate_dists, data, max_degree,
            counter=counter, alpha=alpha,
        )
    if counter is not None:
        counter.count += len(candidates) * (len(candidates) - 1) // 2
    dists = np.ascontiguousarray(candidate_dists, dtype=np.float64)
    positions = _native.select_rng_scan(cross, dists, max_degree, alpha)
    return candidates[positions]
