"""C3 — neighbor selection strategies (§4.1, Definition 4.5).

Two factors matter (the paper's framing): *distance* (keep the closest
candidates) and *space distribution* (keep candidates spread in all
directions).  Implemented rules:

* :func:`select_closest` — distance only (KGraph, EFANNA, IEH, NSW);
* :func:`select_rng_heuristic` — the RNG-style rule shared by HNSW,
  NSG and FANNG (proved equivalent in Appendix A), generalised with
  Vamana's ``alpha`` (``alpha = 1`` recovers HNSW/NSG exactly);
* :func:`select_angle_sum` — DPG's angle-sum maximisation (an RNG
  approximation, Appendix C);
* :func:`select_angle_threshold` — NSSG's minimum-angle rule;
* :func:`select_mst` — HCNNG's MST over ``{p} ∪ C``;
* :func:`path_adjustment` — NGT's alternative-path edge pruning (an
  RNG approximation, Appendix B), also used by k-DR in strict mode.

All rules receive candidates **sorted by ascending distance to p** and
return the selected candidate ids in selection order.
"""

from __future__ import annotations

import numpy as np

from repro.distance import DistanceCounter, l2_batch, pairwise_l2
from repro.graphs.graph import Graph
from repro.graphs.mst import euclidean_mst

__all__ = [
    "select_closest",
    "select_rng_heuristic",
    "select_angle_sum",
    "select_angle_threshold",
    "select_mst",
    "path_adjustment",
]


def _check_sorted(dists: np.ndarray) -> None:
    if len(dists) > 1 and np.any(np.diff(dists) < 0):
        raise ValueError("candidates must be sorted by ascending distance")


def select_closest(
    candidate_ids: np.ndarray,
    candidate_dists: np.ndarray,
    max_degree: int,
) -> np.ndarray:
    """Distance factor only: the ``max_degree`` nearest candidates."""
    _check_sorted(candidate_dists)
    return np.asarray(candidate_ids[:max_degree], dtype=np.int64)


def select_rng_heuristic(
    point: np.ndarray,
    candidate_ids: np.ndarray,
    candidate_dists: np.ndarray,
    data: np.ndarray,
    max_degree: int,
    counter: DistanceCounter | None = None,
    alpha: float = 1.0,
) -> np.ndarray:
    """HNSW's heuristic selection == NSG's MRNG rule (Appendix A).

    Scan candidates in ascending distance; accept ``m`` iff for every
    already-selected ``n``: ``alpha * δ(m, n) > δ(m, p)``.  ``alpha=1``
    is the HNSW/NSG rule; Vamana runs two passes with ``alpha`` 1 then
    >1, which keeps more (longer) edges.
    """
    _check_sorted(candidate_dists)
    if len(candidate_ids) == 0:
        return np.asarray([], dtype=np.int64)
    cand = np.asarray(candidate_ids, dtype=np.int64)
    # eager cross-distance matrix: one vectorised call instead of the
    # sequential per-pair evaluations of the scalar formulation
    cross = pairwise_l2(data[cand], data[cand])
    if counter is not None:
        counter.count += len(cand) * (len(cand) - 1) // 2
    selected: list[int] = []
    for pos in range(len(cand)):
        if len(selected) >= max_degree:
            break
        if not selected:
            selected.append(pos)
            continue
        d_to_selected = cross[pos, selected]
        # reject only when some selected n is *strictly* closer to m than
        # p is (ties accepted, as in the HNSW reference implementation —
        # strict rejection would let exact duplicates of p occlude
        # every other candidate)
        if not np.any(alpha * d_to_selected < candidate_dists[pos]):
            selected.append(pos)
    return cand[selected]


def select_angle_sum(
    point: np.ndarray,
    candidate_ids: np.ndarray,
    candidate_dists: np.ndarray,
    data: np.ndarray,
    max_degree: int,
) -> np.ndarray:
    """DPG's diversification: greedily maximise the angle sum.

    Start from the closest candidate, then repeatedly add the candidate
    whose summed angle (at ``p``) to all already-selected neighbors is
    largest — spreading neighbors omnidirectionally (Appendix C shows
    this approximates the RNG rule).
    """
    _check_sorted(candidate_dists)
    if len(candidate_ids) == 0:
        return np.asarray([], dtype=np.int64)
    cand = np.asarray(candidate_ids, dtype=np.int64)
    vectors = data[cand].astype(np.float64) - point
    norms = np.linalg.norm(vectors, axis=1)
    norms[norms == 0.0] = 1e-12
    unit = vectors / norms[:, None]
    cosines = np.clip(unit @ unit.T, -1.0, 1.0)
    angles = np.arccos(cosines)
    selected = [0]
    score = angles[:, 0].copy()
    score[0] = -np.inf
    while len(selected) < min(max_degree, len(cand)):
        best = int(np.argmax(score))
        if not np.isfinite(score[best]):
            break
        selected.append(best)
        score += angles[:, best]
        score[best] = -np.inf
    return cand[selected]


def select_angle_threshold(
    point: np.ndarray,
    candidate_ids: np.ndarray,
    candidate_dists: np.ndarray,
    data: np.ndarray,
    max_degree: int,
    min_angle_deg: float = 60.0,
) -> np.ndarray:
    """NSSG's rule: accept iff every angle to selected is >= threshold.

    A relaxation of MRNG (Lemma 7.1: the RNG rule guarantees pairwise
    angles >= 60°), so smaller thresholds keep more neighbors — the
    larger out-degree the paper observes for NSSG.
    """
    _check_sorted(candidate_dists)
    if len(candidate_ids) == 0:
        return np.asarray([], dtype=np.int64)
    cand = np.asarray(candidate_ids, dtype=np.int64)
    vectors = data[cand].astype(np.float64) - point
    norms = np.linalg.norm(vectors, axis=1)
    norms[norms == 0.0] = 1e-12
    unit = vectors / norms[:, None]
    cos_threshold = np.cos(np.radians(min_angle_deg))
    selected: list[int] = []
    for pos in range(len(cand)):
        if len(selected) >= max_degree:
            break
        if not selected:
            selected.append(pos)
            continue
        cos_to_selected = unit[selected] @ unit[pos]
        if np.all(cos_to_selected <= cos_threshold + 1e-12):
            selected.append(pos)
    return cand[selected]


def select_mst(
    point_id: int,
    point: np.ndarray,
    candidate_ids: np.ndarray,
    data: np.ndarray,
    max_degree: int,
    counter: DistanceCounter | None = None,
) -> np.ndarray:
    """HCNNG-style selection: p's neighbors in the MST of ``{p} ∪ C``."""
    cand = np.asarray(candidate_ids, dtype=np.int64)
    if len(cand) == 0:
        return cand
    local = np.vstack([point[None, :], data[cand]])
    edges = euclidean_mst(local, counter=counter)
    chosen = [
        (cand[v - 1] if u == 0 else cand[u - 1])
        for u, v, _ in edges
        if u == 0 or v == 0
    ]
    return np.asarray(chosen[:max_degree], dtype=np.int64)


def path_adjustment(
    graph: Graph,
    data: np.ndarray,
    max_degree: int,
    counter: DistanceCounter | None = None,
    strict: bool = False,
) -> Graph:
    """NGT's degree-reduction by alternative paths (Appendix B).

    For each vertex ``p`` with neighbors sorted ascending, cut neighbor
    ``n`` when an already-kept neighbor ``x`` gives a two-edge path with
    ``max(δ(p,x), δ(x,n)) < δ(p,n)``.  ``strict=True`` is k-DR's
    variant: cut whenever *any* alternative path exists through a kept
    neighbor, regardless of the max-edge condition.
    """
    adjusted = Graph(graph.n)
    for p in range(graph.n):
        nbrs = graph.neighbor_array(p)
        if len(nbrs) == 0:
            continue
        dists = (
            counter.one_to_many(data[p], data[nbrs])
            if counter is not None
            else l2_batch(data[p], data[nbrs])
        )
        order = np.argsort(dists, kind="stable")
        nbrs, dists = nbrs[order], dists[order]
        kept: list[int] = []
        kept_pd: list[float] = []
        for pos, n in enumerate(nbrs):
            if len(kept) >= max_degree:
                break
            if not kept:
                kept.append(int(n))
                kept_pd.append(float(dists[pos]))
                continue
            d_xn = (
                counter.one_to_many(data[n], data[kept])
                if counter is not None
                else l2_batch(data[n], data[kept])
            )
            if strict:
                cut = bool(np.any(d_xn < dists[pos]))
            else:
                cut = bool(
                    np.any(np.maximum(np.asarray(kept_pd), d_xn) < dists[pos])
                )
            if not cut:
                kept.append(int(n))
                kept_pd.append(float(dists[pos]))
        adjusted.set_neighbors(p, kept)
    return adjusted
