"""C2 — candidate neighbor acquisition (Definition 4.4).

Three families (besides divide-and-conquer subspaces, which live in the
builders):

* :func:`candidates_by_search` — treat the point as a query and run
  ANNS on the current graph (NSW, HNSW, NGT, NSG, Vamana);
* :func:`candidates_by_expansion` — the point's neighbors plus
  neighbors' neighbors on the initial graph (KGraph, EFANNA, NSSG);
* :func:`candidates_direct` — just the point's initial neighbors
  (DPG, IEH, FANNG, k-DR).
"""

from __future__ import annotations

import numpy as np

from repro.components.routing import best_first_search
from repro.distance import DistanceCounter
from repro.graphs.graph import Graph

__all__ = [
    "candidates_by_search",
    "candidates_by_expansion",
    "candidates_direct",
]


def candidates_by_search(
    graph: Graph,
    data: np.ndarray,
    point_id: int,
    ef: int,
    seeds: np.ndarray,
    counter: DistanceCounter | None = None,
    ctx=None,
) -> tuple[np.ndarray, np.ndarray]:
    """ANNS on the (partial) graph with the point itself as the query.

    Returns ``(ids, dists)`` ascending — the *entire visited set*, not
    just the top-``ef`` results, with the point itself removed.  NSG and
    Vamana pool every vertex the search touched; the far-away path
    vertices near the entry are exactly where their long-range edges
    come from, so truncating to the results would disconnect clusters.
    The paper notes this is the highest-quality but most expensive C2
    (Figure 10(b): C2_NSW best, at more construction time).
    """
    result = best_first_search(
        graph, data, data[point_id], seeds, ef=ef, counter=counter,
        record_visited=True, ctx=ctx,
    )
    mask = result.visited_ids != point_id
    return result.visited_ids[mask], result.visited_dists[mask]


def candidates_by_expansion(
    neighbor_ids: np.ndarray,
    data: np.ndarray,
    point_id: int,
    limit: int,
    counter: DistanceCounter | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Neighbors + neighbors' neighbors on the initial KNN lists.

    ``neighbor_ids`` is the ``(n, k)`` matrix from C1.  Distances to the
    pooled candidates are evaluated once (charged to ``counter``) and
    the closest ``limit`` are returned ascending.
    """
    own = neighbor_ids[point_id]
    pool = np.unique(np.concatenate([own, neighbor_ids[own].reshape(-1)]))
    pool = pool[pool != point_id]
    dists = (
        counter.one_to_many(data[point_id], data[pool])
        if counter is not None
        else np.linalg.norm(data[pool] - data[point_id], axis=1)
    )
    order = np.argsort(dists, kind="stable")[:limit]
    return pool[order], dists[order]


def candidates_direct(
    neighbor_ids: np.ndarray,
    neighbor_dists: np.ndarray,
    point_id: int,
) -> tuple[np.ndarray, np.ndarray]:
    """The initial neighbors themselves (requires a high-degree C1)."""
    ids = neighbor_ids[point_id]
    dists = neighbor_dists[point_id]
    order = np.argsort(dists, kind="stable")
    return np.asarray(ids[order], dtype=np.int64), dists[order]
