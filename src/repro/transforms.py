"""Metric reductions: cosine and maximum-inner-product search on L2 indexes.

The survey fixes Euclidean distance (§2), but notes NSW's strong
maximum-inner-product results [63, 71].  Both cosine similarity and MIPS
reduce *exactly* to L2 nearest-neighbor search, so every index in this
library serves them through a data transform:

* **cosine** — on unit vectors, ``|x - y|² = 2 - 2·cos(x, y)``: L2 order
  equals descending-cosine order.  Normalise base and queries.
* **MIPS** — Bachrach et al.'s augmentation: append
  ``sqrt(M² - |x|²)`` to each base vector (``M = max |x|``) and ``0`` to
  each query; then L2 order on the augmented vectors equals
  descending-inner-product order.

:class:`MetricIndex` packages the transform + an inner L2 index behind
the familiar ``build``/``search`` interface.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.routing import SearchResult
from repro.distance import DistanceCounter

__all__ = [
    "normalize_for_cosine",
    "augment_base_for_mips",
    "augment_query_for_mips",
    "MetricIndex",
]


def normalize_for_cosine(vectors: np.ndarray) -> np.ndarray:
    """Unit-normalised copy; zero vectors are left untouched."""
    vectors = np.asarray(vectors, dtype=np.float32)
    norms = np.linalg.norm(vectors, axis=-1, keepdims=True)
    safe = np.where(norms == 0.0, 1.0, norms)
    return (vectors / safe).astype(np.float32)


def augment_base_for_mips(base: np.ndarray) -> tuple[np.ndarray, float]:
    """Append ``sqrt(M² - |x|²)``; returns (augmented base, M)."""
    base = np.asarray(base, dtype=np.float64)
    norms_sq = np.einsum("ij,ij->i", base, base)
    max_norm = float(np.sqrt(norms_sq.max())) if len(base) else 0.0
    extra = np.sqrt(np.maximum(max_norm**2 - norms_sq, 0.0))
    return (
        np.hstack([base, extra[:, None]]).astype(np.float32),
        max_norm,
    )


def augment_query_for_mips(query: np.ndarray) -> np.ndarray:
    """Append a zero coordinate to one query vector."""
    query = np.asarray(query, dtype=np.float32)
    return np.append(query, np.float32(0.0))


class MetricIndex:
    """Cosine / inner-product ANNS over any L2 graph index.

    ``metric`` is ``"cosine"`` or ``"ip"``.  The inner index is created
    by ``index_factory`` and built on the transformed vectors; searches
    transform the query the same way, so the L2 ranking the graph
    produces *is* the requested metric's ranking.
    """

    def __init__(self, index_factory: Callable[[], GraphANNS], metric: str):
        if metric not in ("cosine", "ip"):
            raise ValueError(f"metric must be 'cosine' or 'ip', got {metric!r}")
        self.metric = metric
        self.index_factory = index_factory
        self.inner: GraphANNS | None = None
        self.original: np.ndarray | None = None

    def build(self, base: np.ndarray) -> "MetricIndex":
        """Transform the base vectors and build the inner L2 index."""
        self.original = np.asarray(base, dtype=np.float32)
        if self.metric == "cosine":
            transformed = normalize_for_cosine(base)
        else:
            transformed, _ = augment_base_for_mips(base)
        self.inner = self.index_factory()
        self.inner.build(transformed)
        return self

    def _transform_query(self, query: np.ndarray) -> np.ndarray:
        if self.metric == "cosine":
            return normalize_for_cosine(query[None, :])[0]
        return augment_query_for_mips(query)

    def search(
        self,
        query: np.ndarray,
        k: int = 10,
        ef: int | None = None,
        counter: DistanceCounter | None = None,
    ) -> SearchResult:
        """Top-k by the chosen similarity (descending)."""
        if self.inner is None:
            raise RuntimeError("call build() before search()")
        result = self.inner.search(
            self._transform_query(query), k=k, ef=ef, counter=counter
        )
        # report true similarity scores instead of transformed distances
        if len(result.ids):
            candidates = self.original[result.ids].astype(np.float64)
            if self.metric == "cosine":
                denom = np.linalg.norm(candidates, axis=1) * max(
                    float(np.linalg.norm(query)), 1e-12
                )
                denom[denom == 0.0] = 1e-12
                scores = (candidates @ query.astype(np.float64)) / denom
            else:
                scores = candidates @ query.astype(np.float64)
            order = np.argsort(-scores, kind="stable")
            result.ids = result.ids[order]
            result.dists = scores[order]
        return result
