"""Lockstep batched search: answer many queries with shared kernels.

The survey evaluates single-threaded, one-query-at-a-time search; a
production service batches.  This module runs best-first search for a
whole query batch in lockstep rounds: every round, each still-active
query contributes one expansion, all their neighbor evaluations are
concatenated, and a single vectorised distance kernel scores everything
at once.  The visited/heap bookkeeping is identical to
:func:`repro.components.routing.best_first_search`, so the results (and
the NDC accounting) match the sequential search — only the wall-clock
changes.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.distance import DistanceCounter

__all__ = ["BatchSearchResult", "batched_best_first_search", "batch_search"]


@dataclass
class BatchSearchResult:
    """Per-batch output: one row of ids/dists per query, plus telemetry."""

    ids: np.ndarray          # (Q, k), -1-padded when a query found < k
    dists: np.ndarray        # (Q, k), inf-padded
    total_ndc: int
    mean_hops: float
    elapsed_s: float

    @property
    def qps(self) -> float:
        """Whole-batch throughput."""
        return len(self.ids) / max(self.elapsed_s, 1e-9)


class _QueryState:
    """Heaps + bookkeeping for one query inside the lockstep loop."""

    __slots__ = ("candidates", "results", "ef", "active", "hops")

    def __init__(self, ef: int):
        self.candidates: list[tuple[float, int]] = []
        self.results: list[tuple[float, int]] = []
        self.ef = ef
        self.active = True
        self.hops = 0

    def worst(self) -> float:
        return -self.results[0][0] if len(self.results) == self.ef else np.inf

    def offer(self, idx: int, dist: float) -> None:
        if len(self.results) < self.ef:
            heapq.heappush(self.results, (-dist, idx))
            heapq.heappush(self.candidates, (dist, idx))
        elif dist < -self.results[0][0]:
            heapq.heapreplace(self.results, (-dist, idx))
            heapq.heappush(self.candidates, (dist, idx))

    def pop_expansion(self) -> int | None:
        """Next vertex to expand, or None (and deactivate) if finished."""
        while self.candidates:
            dist, u = heapq.heappop(self.candidates)
            if dist > self.worst():
                break
            self.hops += 1
            return u
        self.active = False
        return None

    def top(self, k: int) -> list[tuple[float, int]]:
        return sorted((-negd, idx) for negd, idx in self.results)[:k]


def batched_best_first_search(
    graph,
    data: np.ndarray,
    queries: np.ndarray,
    seed_lists: list[np.ndarray],
    ef: int,
    k: int,
    counter: DistanceCounter | None = None,
) -> BatchSearchResult:
    """Best-first search over a query batch, one distance kernel per round."""
    counter = counter if counter is not None else DistanceCounter()
    start_ndc = counter.count
    started = time.perf_counter()
    num_queries = len(queries)
    n = graph.n
    visited = np.zeros((num_queries, n), dtype=bool)
    states = [_QueryState(ef) for _ in range(num_queries)]

    # seed every query (batched over the concatenated seed lists)
    seed_qidx, seed_vertices = [], []
    for q, seeds in enumerate(seed_lists):
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        visited[q, seeds] = True
        seed_qidx.extend([q] * len(seeds))
        seed_vertices.extend(int(s) for s in seeds)
    if seed_vertices:
        diff = data[seed_vertices] - queries[seed_qidx]
        dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        counter.count += len(seed_vertices)
        for q, vertex, dist in zip(seed_qidx, seed_vertices, dists):
            states[q].offer(vertex, float(dist))

    while True:
        round_qidx: list[int] = []
        round_vertices: list[int] = []
        bounds: list[tuple[int, int, int]] = []  # (query, start, stop)
        for q, state in enumerate(states):
            if not state.active:
                continue
            u = state.pop_expansion()
            if u is None:
                continue
            nbrs = graph.neighbor_array(u)
            nbrs = nbrs[~visited[q, nbrs]]
            if len(nbrs) == 0:
                continue
            visited[q, nbrs] = True
            start = len(round_vertices)
            round_vertices.extend(int(v) for v in nbrs)
            round_qidx.extend([q] * len(nbrs))
            bounds.append((q, start, len(round_vertices)))
        if not round_vertices and not any(s.active for s in states):
            break
        if round_vertices:
            diff = data[round_vertices] - queries[round_qidx]
            dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            counter.count += len(round_vertices)
            for q, start, stop in bounds:
                state = states[q]
                for pos in range(start, stop):
                    state.offer(round_vertices[pos], float(dists[pos]))

    ids = np.full((num_queries, k), -1, dtype=np.int64)
    out_dists = np.full((num_queries, k), np.inf)
    for q, state in enumerate(states):
        for pos, (dist, idx) in enumerate(state.top(k)):
            ids[q, pos] = idx
            out_dists[q, pos] = dist
    return BatchSearchResult(
        ids=ids,
        dists=out_dists,
        total_ndc=counter.count - start_ndc,
        mean_hops=float(np.mean([s.hops for s in states])),
        elapsed_s=time.perf_counter() - started,
    )


def batch_search(
    index: GraphANNS,
    queries: np.ndarray,
    k: int = 10,
    ef: int | None = None,
) -> BatchSearchResult:
    """Lockstep-search a built index (seed acquisition per query)."""
    if index.graph is None:
        raise RuntimeError("build the index before batch searching")
    ef = max(k, ef if ef is not None else index.default_ef)
    counter = DistanceCounter()
    seed_lists = [
        np.asarray(index.seed_provider.acquire(query, counter), dtype=np.int64)
        for query in queries
    ]
    return batched_best_first_search(
        index.graph, index.data, np.asarray(queries, dtype=np.float32),
        seed_lists, ef, k, counter=counter,
    )
