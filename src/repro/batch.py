"""Batched query engines: lockstep kernels and the worker-pool API.

The survey evaluates single-threaded, one-query-at-a-time search; a
production service batches.  This module offers two engines:

* :func:`batched_best_first_search` (and its :func:`batch_search`
  front-end) runs best-first search for a whole query batch in lockstep
  rounds: every round, each still-active query contributes one
  expansion, and each query's neighbor evaluations go through the same
  squared-distance kernel the sequential search uses.  The visited/heap
  bookkeeping is identical to
  :func:`repro.components.routing.best_first_search`, so the results
  (and the NDC accounting) match the sequential search — only the
  wall-clock changes.

* :func:`search_batch` is the high-throughput engine.  For indexes
  that route with the default best-first search it hands the *entire*
  batch to the multi-threaded native kernel in **one ctypes call**: the
  GIL is released once, a pthread pool inside the C library fans the
  queries out (per-thread scratch, fixed per-query output slots), and
  results are bit-identical to the serial kernel for any thread count.
  Seed acquisition runs up front through
  :meth:`~repro.components.seeding.SeedProvider.acquire_batch` — in
  query order, so stateful providers (e.g. the random seeders) yield
  exactly the seeds a sequential loop would have drawn, with providers
  that score a candidate pool (PQ/ADC, fixed entries) vectorizing the
  whole batch in one GEMM — making the per-query telemetry (NDC
  including seed acquisition, hops, visited) identical to
  ``index.search`` query by query.  Indexes with a custom ``_route``,
  traced runs, deadline budgets, armed fault plans and kernel-less
  environments fall back to the chunked Python worker pool, which
  remains bit-identical (only slower).
"""

from __future__ import annotations

import heapq
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro import _native, faults
from repro import observability as obs
from repro.algorithms.base import GraphANNS
from repro.components.context import SearchContext
from repro.compressed import DEFAULT_RERANK_FACTOR, finish_compressed, rerank_exact
from repro.distance import DistanceCounter, sq_dists_to_rows, squared_norms
from repro.resilience import InvalidQueryError, QueryBudget

__all__ = [
    "BatchSearchResult",
    "BatchQueryResult",
    "batched_best_first_search",
    "batch_search",
    "search_batch",
]


@dataclass
class BatchSearchResult:
    """Per-batch output: one row of ids/dists per query, plus telemetry."""

    ids: np.ndarray          # (Q, k), -1-padded when a query found < k
    dists: np.ndarray        # (Q, k), inf-padded
    total_ndc: int
    mean_hops: float
    elapsed_s: float

    @property
    def qps(self) -> float:
        """Whole-batch throughput."""
        return len(self.ids) / max(self.elapsed_s, 1e-9)


@dataclass
class BatchQueryResult:
    """Worker-pool output with lossless per-query telemetry (§5.1).

    Unlike :class:`BatchSearchResult`, nothing is aggregated away: the
    NDC (seed acquisition included, matching ``index.search``), hop and
    visited counts survive per query, so recall-vs-NDC curves computed
    from a batched run are identical to ones from a sequential loop.

    Resilience telemetry: ``errors[i]`` is ``None`` for a healthy query
    or a reason string when query ``i`` was rejected up front (NaN/Inf)
    or failed even after the sequential retry — its result row stays
    ``-1``/``inf`` padded.  ``degraded[i]`` marks queries cut short by
    a :class:`QueryBudget` (their rows hold the best-k found so far).

    Observability: with hop-level tracing on, ``trace_ids[i]`` is the
    stable id (``"<batch_id>/<i>"``) under which query ``i``'s trace was
    recorded — joining a degraded row to its hop events — and
    ``batch_id`` names the batch; both stay ``None`` when tracing is
    off.  ``worker_utilization`` is the mean busy fraction of the
    worker pool (0.0 when metrics are off).
    """

    ids: np.ndarray          # (Q, k) int64, -1-padded
    dists: np.ndarray        # (Q, k) float64, inf-padded
    ndc: np.ndarray          # (Q,) int64, includes seed acquisition
    hops: np.ndarray         # (Q,) int64
    visited: np.ndarray      # (Q,) int64
    elapsed_s: float
    workers: int
    errors: list = field(default_factory=list)       # (Q,) str | None
    degraded: np.ndarray = None                      # (Q,) bool
    trace_ids: list | None = None                    # (Q,) str, tracing only
    batch_id: str | None = None
    worker_utilization: float = 0.0
    # which engine answered the batch: "fused_mt" / "fused_mt_adc" (one
    # GIL-released MT kernel call), "chunked_native" (per-chunk serial
    # kernel calls), or "python" (per-query orchestration).  Serving
    # telemetry uses this to prove SLO-budgeted batches stayed on the
    # fast path; None for empty batches.
    kernel_path: str | None = None
    # compressed mode only (None otherwise): per-query ADC table lookups
    # (zero true NDC) and exact re-rank cost (included in ndc)
    adc_lookups: np.ndarray | None = None            # (Q,) int64
    rerank_ndc: np.ndarray | None = None             # (Q,) int64
    # sharded scatter-gather only (None otherwise): the batch-level
    # repro.sharding.ShardReport naming survivors and quarantined shards
    shard_report: object | None = None

    @property
    def qps(self) -> float:
        """Whole-batch throughput."""
        return len(self.ids) / max(self.elapsed_s, 1e-9)

    @property
    def total_ndc(self) -> int:
        return int(self.ndc.sum())

    @property
    def mean_hops(self) -> float:
        return float(self.hops.mean()) if len(self.hops) else 0.0

    @property
    def num_errors(self) -> int:
        return sum(1 for e in self.errors if e is not None)

    @property
    def num_degraded(self) -> int:
        return 0 if self.degraded is None else int(self.degraded.sum())


class _QueryState:
    """Heaps + bookkeeping for one query inside the lockstep loop.

    Distances live in the squared domain (like the sequential frontier)
    and are square-rooted only on extraction, so the values returned are
    bit-identical to :func:`best_first_search`'s.
    """

    __slots__ = ("candidates", "results", "ef", "active", "hops")

    def __init__(self, ef: int):
        self.candidates: list[tuple[float, int]] = []
        self.results: list[tuple[float, int]] = []
        self.ef = ef
        self.active = True
        self.hops = 0

    def worst(self) -> float:
        return -self.results[0][0] if len(self.results) == self.ef else np.inf

    def offer(self, idx: int, sq: float) -> None:
        if len(self.results) < self.ef:
            heapq.heappush(self.results, (-sq, idx))
            heapq.heappush(self.candidates, (sq, idx))
        elif sq < -self.results[0][0]:
            heapq.heapreplace(self.results, (-sq, idx))
            heapq.heappush(self.candidates, (sq, idx))

    def pop_expansion(self) -> int | None:
        """Next vertex to expand, or None (and deactivate) if finished."""
        while self.candidates:
            sq, u = heapq.heappop(self.candidates)
            if sq > self.worst():
                break
            self.hops += 1
            return u
        self.active = False
        return None

    def top(self, k: int) -> list[tuple[float, int]]:
        ordered = sorted((-negsq, idx) for negsq, idx in self.results)[:k]
        return [(float(np.sqrt(sq)), idx) for sq, idx in ordered]


def batched_best_first_search(
    graph,
    data: np.ndarray,
    queries: np.ndarray,
    seed_lists: list[np.ndarray],
    ef: int,
    k: int,
    counter: DistanceCounter | None = None,
) -> BatchSearchResult:
    """Best-first search over a query batch in lockstep rounds.

    Each query's distance evaluations flow through the same
    expanded-form kernel (:func:`repro.distance.sq_dists_to_rows`,
    against the shared norm cache) as the sequential search, so ids,
    distances and NDC are identical to running the queries one by one.
    """
    counter = counter if counter is not None else DistanceCounter()
    start_ndc = counter.count
    started = time.perf_counter()
    num_queries = len(queries)
    n = graph.n
    norms_sq = squared_norms(data)
    queries64 = np.ascontiguousarray(queries, dtype=np.float64)
    # per-row np.dot, not a row-wise einsum: it must produce the exact
    # float SearchContext.begin_query computes for the sequential search
    query_sqs = np.asarray([np.dot(row, row) for row in queries64])
    visited = np.zeros((num_queries, n), dtype=bool)
    states = [_QueryState(ef) for _ in range(num_queries)]

    def score(q: int, vertices: np.ndarray) -> None:
        sq = sq_dists_to_rows(
            queries64[q], data[vertices], norms_sq[vertices], float(query_sqs[q])
        )
        counter.count += len(vertices)
        state = states[q]
        for vertex, value in zip(vertices.tolist(), sq.tolist()):
            state.offer(vertex, value)

    for q, seeds in enumerate(seed_lists):
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        if len(seeds):
            visited[q, seeds] = True
            score(q, seeds)

    while True:
        expanded = False
        for q, state in enumerate(states):
            if not state.active:
                continue
            u = state.pop_expansion()
            if u is None:
                continue
            nbrs = graph.neighbor_array(u)
            nbrs = nbrs[~visited[q, nbrs]]
            if len(nbrs) == 0:
                continue
            visited[q, nbrs] = True
            score(q, nbrs)
            expanded = True
        if not expanded and not any(s.active for s in states):
            break

    ids = np.full((num_queries, k), -1, dtype=np.int64)
    out_dists = np.full((num_queries, k), np.inf)
    for q, state in enumerate(states):
        for pos, (dist, idx) in enumerate(state.top(k)):
            ids[q, pos] = idx
            out_dists[q, pos] = dist
    return BatchSearchResult(
        ids=ids,
        dists=out_dists,
        total_ndc=counter.count - start_ndc,
        mean_hops=float(np.mean([s.hops for s in states])) if states else 0.0,
        elapsed_s=time.perf_counter() - started,
    )


def batch_search(
    index: GraphANNS,
    queries: np.ndarray,
    k: int = 10,
    ef: int | None = None,
) -> BatchSearchResult:
    """Lockstep-search a built index (seed acquisition per query)."""
    if index.graph is None:
        raise RuntimeError("build the index before batch searching")
    ef = max(k, ef if ef is not None else index.default_ef)
    counter = DistanceCounter()
    seed_lists = [
        np.asarray(index.seed_provider.acquire(query, counter), dtype=np.int64)
        for query in queries
    ]
    return batched_best_first_search(
        index.graph, index.data, np.asarray(queries, dtype=np.float32),
        seed_lists, ef, k, counter=counter,
    )


# -- worker-pool engine -------------------------------------------------


def _uses_default_route(index: GraphANNS) -> bool:
    return type(index)._route is GraphANNS._route


def _chunk_native(index, ctx, queries, seed_lists, chunk, ef,
                  max_ndcs=None, max_hops=-1):
    """One native kernel call for a whole chunk of queries."""
    queries64 = np.ascontiguousarray(queries[chunk], dtype=np.float64)
    # per-row np.dot to match SearchContext.begin_query bit for bit
    qsqs = np.asarray([np.dot(row, row) for row in queries64])
    uniq = [np.unique(seed_lists[i]) for i in chunk]
    n = index.graph.n
    for s in uniq:
        if len(s) and (s[0] < 0 or s[-1] >= n):
            raise IndexError(f"seed ids must lie in [0, {n}), got {s[0]}..{s[-1]}")
    seed_indptr = np.zeros(len(chunk) + 1, dtype=np.int64)
    np.cumsum([len(s) for s in uniq], out=seed_indptr[1:])
    seeds = (
        np.concatenate(uniq) if uniq else np.empty(0, dtype=np.int64)
    ).astype(np.int64, copy=False)
    return _native.best_first_batch(
        ctx, index.graph, queries64, qsqs, seed_indptr, seeds, ef,
        max_ndcs=max_ndcs, max_hops=max_hops,
    )


def search_batch(
    index: GraphANNS,
    queries: np.ndarray,
    k: int = 10,
    ef: int | None = None,
    workers: int = 1,
    budget: "QueryBudget | Sequence[QueryBudget | None] | None" = None,
    compressed: bool = False,
    rerank_factor: int | None = None,
) -> BatchQueryResult:
    """Answer a query batch with ``workers`` parallel search lanes.

    Semantics match a ``[index.search(q, k, ef) for q in queries]``
    loop exactly — same ids, distances, per-query NDC (seed acquisition
    included), hops and visited counts, same tombstone filtering.  For
    default-routing indexes the whole batch runs below the interpreter:
    one ctypes call into the multi-threaded C kernel (``workers``
    pthreads, the GIL released once), bit-identical for any thread
    count.  Custom ``_route`` implementations, traced runs and
    kernel-less environments use the chunked Python worker pool
    instead, each chunk reusing one :class:`SearchContext`.

    Resilience semantics:

    * Queries containing NaN/Inf are rejected *individually* — their
      rows stay ``-1``/``inf`` padded and ``result.errors[i]`` records
      the reason; the rest of the batch is unaffected.  A batch whose
      dtype or dimensionality is wrong as a whole still raises, since
      no per-query result is meaningful.
    * ``budget`` applies per query (the ``max_ndc``/``max_hops`` caps
      are *per query*, with each query's own seed-acquisition NDC
      charged against it).  Budget-capped queries return their best-k
      so far with ``result.degraded[i]`` set.  A sequence of budgets
      (one entry per query, ``None`` for unlimited) carries
      heterogeneous per-request limits — the serving front door maps
      each request's SLO deadline here.  Deadline budgets stay on the
      fused MT kernel: the C worker pool checks CLOCK_MONOTONIC
      coarsely (every few expansions) against each query's allowance,
      so SLO-budgeted batches no longer fall back to the chunked
      Python pool.  A deadline measures wall-clock from kernel entry
      (the chunked fallback measures from each query's own route
      start); a deadline that never fires changes no bits either way.
    * A worker that raises mid-chunk does not sink the batch: the chunk
      is retried once, sequentially and in pure NumPy.  Queries that
      still fail get ``result.errors[i]`` set instead of propagating.

    ``compressed=True`` traverses on the index's ADC tier: the per-query
    float32 LUTs for the whole batch are built up front (one GEMM per
    subspace) and handed to the multi-threaded ADC kernel — or gathered
    by the Python fallback *from the same tables*, which is what keeps
    the two paths bit-identical at any thread count.  Each query's
    ADC-ordered pool (capped at ``rerank_factor * k``) is then re-ranked
    exactly; ``result.ndc`` counts seeds + re-rank only, with traversal
    lookups reported in ``result.adc_lookups``.
    """
    if index.graph is None or index.data is None:
        raise RuntimeError("build the index before batch searching")
    try:
        queries = np.ascontiguousarray(queries, dtype=np.float32)
    except (TypeError, ValueError) as exc:
        raise InvalidQueryError(f"query batch is not numeric: {exc}") from None
    if queries.ndim != 2:
        raise ValueError(f"queries must be 2-D, got shape {queries.shape}")
    if queries.shape[1] != index.data.shape[1]:
        raise InvalidQueryError(
            f"dimension mismatch: index is {index.data.shape[1]}-d, "
            f"queries are {queries.shape[1]}-d"
        )
    num_queries = len(queries)
    # heterogeneous per-request budgets: normalize a sequence into a
    # per-query list (all-None collapses to the unbudgeted fast path)
    budgets: list | None = None
    if budget is not None and not isinstance(budget, QueryBudget):
        budgets = list(budget)
        if len(budgets) != num_queries:
            raise ValueError(
                f"budget sequence has {len(budgets)} entries for "
                f"{num_queries} queries"
            )
        for entry in budgets:
            if entry is not None and not isinstance(entry, QueryBudget):
                raise TypeError(
                    f"budget entries must be QueryBudget or None, "
                    f"got {type(entry).__name__}"
                )
        budget = None
        if all(entry is None for entry in budgets):
            budgets = None
    any_budget = budget is not None or budgets is not None

    def budget_for(i: int) -> QueryBudget | None:
        return budgets[i] if budgets is not None else budget

    ef = max(k, ef if ef is not None else index.default_ef)
    tier = None
    max_pool = 0
    if compressed:
        tier = index._require_compressed()
        factor = (
            DEFAULT_RERANK_FACTOR if rerank_factor is None
            else int(rerank_factor)
        )
        if factor < 1:
            raise ValueError(f"rerank_factor must be >= 1, got {factor}")
        max_pool = factor * k
        ef = max(ef, max_pool)
    metrics = obs.enabled()
    tracing = obs.tracing()
    handles = obs.instruments() if metrics else None
    batch_id = obs.new_batch_id() if metrics else None
    # stable per-query trace ids: "<batch_id>/<row>" joins a degraded
    # row (or its BudgetReport) to the hop-level trace recorded for it
    trace_ids = (
        [f"{batch_id}/{i}" for i in range(num_queries)] if tracing else None
    )
    started = time.perf_counter()

    ids = np.full((num_queries, k), -1, dtype=np.int64)
    dists = np.full((num_queries, k), np.inf)
    ndc = np.zeros(num_queries, dtype=np.int64)
    hops = np.zeros(num_queries, dtype=np.int64)
    visited = np.zeros(num_queries, dtype=np.int64)
    errors: list = [None] * num_queries
    degraded = np.zeros(num_queries, dtype=bool)
    adc_lookups = np.zeros(num_queries, dtype=np.int64) if compressed else None
    rerank_ndc = np.zeros(num_queries, dtype=np.int64) if compressed else None
    if num_queries == 0:
        return BatchQueryResult(ids, dists, ndc, hops, visited, 0.0, workers,
                                errors=errors, degraded=degraded,
                                trace_ids=trace_ids, batch_id=batch_id,
                                adc_lookups=adc_lookups, rerank_ndc=rerank_ndc)

    # Per-query validation: a NaN/Inf query poisons only its own row.
    finite = np.isfinite(queries).all(axis=1)
    for i in np.flatnonzero(~finite):
        errors[i] = "query contains non-finite values (NaN/Inf)"

    # Seed acquisition runs batched but *in query order*: the default
    # acquire_batch loops per query exactly like the sequential search
    # (stateful providers draw identical seeds), while pool-scoring
    # providers (PQ/ADC, fixed entries, vectorized RNG) answer the
    # whole batch in one GEMM/draw without changing a single id.
    seed_lists: list = [None] * num_queries
    finite_rows = np.flatnonzero(finite)
    if len(finite_rows):
        acquired, acq_counts = index.seed_provider.acquire_batch(
            queries[finite_rows]
        )
        for pos, i in enumerate(finite_rows):
            seed_lists[i] = np.asarray(acquired[pos], dtype=np.int64)
        ndc[finite_rows] = acq_counts
    # frozen copy of the acquisition cost so a chunk retry can restore
    # per-query state idempotently
    acq_ndc = ndc.copy()
    if handles is not None:
        handles.batch_stage_seed_seconds.observe(time.perf_counter() - started)

    # Compressed mode: every query's (M, K) float32 table is built here,
    # once, by one GEMM per subspace over the whole batch.  The MT ADC
    # kernel reads slices of this very block and the Python fallback
    # gathers from the same slices via ctx.lut_override — a shared
    # source of truth, so thread count can never change a bit.
    luts = None
    lut_pos = None
    if compressed and len(finite_rows):
        luts = tier.lut_batch(queries[finite_rows])
        lut_pos = np.zeros(num_queries, dtype=np.int64)
        lut_pos[finite_rows] = np.arange(len(finite_rows), dtype=np.int64)

    deleted = (
        index._deleted
        if index._deleted is not None and index._deleted.any() else None
    )
    id_map = index._id_map  # reordered indexes return original-space ids
    native_base = (
        _uses_default_route(index)
        and _native.LIB is not None
        and index.graph.finalized
        and index.graph.n > 0
        # hop events are only observable on the Python path; it is
        # bit-identical to the kernel, so traced results don't change
        and not tracing
    )
    # The chunked serial kernel takes one uniform NDC/hop cap per
    # chunk: deadline budgets and heterogeneous per-query budgets go
    # through the per-query Python loop instead.
    native_ok = (
        native_base
        and budgets is None
        and (budget is None or budget.native_ok)
    )
    # The GIL-free whole-batch kernel honors *every* budget kind —
    # per-query NDC/hop caps and coarse wall-clock deadlines are
    # enforced inside the C worker pool — so SLO-budgeted batches stay
    # on the fast path.  It only steps around armed fault plans (their
    # injection points are per-chunk/per-query hooks in the Python
    # orchestration below).
    native_mt_ok = (
        native_base and len(finite_rows) > 0 and faults.active() is None
    )

    def effective_budget(i: int) -> QueryBudget | None:
        b = budget_for(i)
        if b is None:
            return None
        return b.after_spending(int(acq_ndc[i]))

    def budget_cap_arrays(rows):
        """Per-query (max_ndcs, max_hops, deadlines) arrays for the MT
        kernels — None/-1/0 entries mean unlimited.  Seed-acquisition
        NDC is already charged; deadlines are relative to kernel entry
        (seed acquisition happened before it, so a request's wall
        budget covers the whole in-index span)."""
        if not any_budget:
            return None, None, None
        max_ndcs = np.full(len(rows), -1, dtype=np.int64)
        max_hops = np.full(len(rows), -1, dtype=np.int64)
        deadlines = np.zeros(len(rows), dtype=np.float64)
        for pos, i in enumerate(rows):
            b = budget_for(i)
            if b is None:
                continue
            if b.max_ndc is not None:
                max_ndcs[pos] = max(b.max_ndc - int(acq_ndc[i]), 0)
            if b.max_hops is not None:
                max_hops[pos] = int(b.max_hops)
            if b.deadline_s is not None:
                deadlines[pos] = float(b.deadline_s)
        return max_ndcs, max_hops, deadlines

    def fill_query(i: int, res_ids: np.ndarray, res_dists: np.ndarray) -> None:
        if deleted is not None:
            keep = ~deleted[res_ids]
            res_ids = res_ids[keep]
            res_dists = res_dists[keep]
        m = min(k, len(res_ids))
        ids[i, :m] = res_ids[:m] if id_map is None else id_map[res_ids[:m]]
        dists[i, :m] = res_dists[:m]

    def run_query_python(i: int, ctx: SearchContext) -> None:
        plan = faults.active()
        if plan is not None:
            plan.before_query(i)
        route = DistanceCounter()
        trace = None
        if trace_ids is not None:
            trace = obs.start_query_trace(index.name, k, ef,
                                          trace_id=trace_ids[i])
            # running NDC in hop events includes the up-front seed
            # acquisition, matching the ndc[i] telemetry exactly
            trace.attach(route.count, already_spent=int(acq_ndc[i]))
            trace.record_seeds(seed_lists[i], route.count)
            ctx.trace = trace
        t0 = time.perf_counter() if trace is not None else 0.0
        try:
            if compressed:
                ctx.compressed = tier
                ctx.lut_override = luts[lut_pos[i]]
            try:
                result = index._route(
                    queries[i], seed_lists[i], ef, route, ctx=ctx,
                    budget=effective_budget(i),
                )
            finally:
                if compressed:
                    ctx.compressed = None
                    ctx.lut_override = None
                    ctx.lut = None
        finally:
            if trace is not None:
                ctx.trace = None
        if compressed:
            # route counted ADC lookups; true NDC is seeds + re-rank
            true_ndc = DistanceCounter()
            result = finish_compressed(
                result, index.data, ctx.query64, deleted,
                route.count, true_ndc, max_pool=max_pool,
            )
            ndc[i] = acq_ndc[i] + true_ndc.count
            adc_lookups[i] = result.adc_lookups
            rerank_ndc[i] = result.rerank_ndc
        else:
            ndc[i] = acq_ndc[i] + route.count
        hops[i] = result.hops
        visited[i] = result.visited
        degraded[i] = result.degraded
        fill_query(i, result.ids, result.dists)
        if trace is not None:
            result.ndc = int(ndc[i])
            result.ids = ids[i][ids[i] >= 0]   # the row actually returned
            obs.finish_query_trace(trace, result, time.perf_counter() - t0)

    def run_chunk(worker_index: int, chunk: np.ndarray) -> None:
        plan = faults.active()
        if plan is not None:
            plan.before_chunk(worker_index)
        ctx = SearchContext(index.data)
        # compressed chunks always take the per-query loop below: it
        # dispatches to the serial native ADC kernel per query when
        # available, and to the NumPy gather otherwise — both scoring
        # from the shared batch LUT block
        if native_ok and ctx.native and not compressed:
            max_ndcs = None
            max_hops = -1
            if budget is not None:
                if budget.max_ndc is not None:
                    max_ndcs = np.maximum(
                        budget.max_ndc - acq_ndc[chunk], 0
                    ).astype(np.int64)
                if budget.max_hops is not None:
                    max_hops = int(budget.max_hops)
            out_ids, out_sq, out_len, stats = _chunk_native(
                index, ctx, queries, seed_lists, chunk, ef,
                max_ndcs=max_ndcs, max_hops=max_hops,
            )
            ndc[chunk] = acq_ndc[chunk] + stats[:, 0]
            hops[chunk] = stats[:, 1]
            visited[chunk] = stats[:, 2]
            degraded[chunk] = stats[:, 3] > 0
            if deleted is None and int(out_len.min()) >= k:
                rows = out_ids[:, :k]
                ids[chunk] = rows if id_map is None else id_map[rows]
                dists[chunk] = np.sqrt(out_sq[:, :k])
                return
            for pos, i in enumerate(chunk):
                fill_query(i, out_ids[pos, : out_len[pos]].astype(np.int64),
                           np.sqrt(out_sq[pos, : out_len[pos]]))
            return
        for i in chunk:
            run_query_python(i, ctx)

    def run_chunk_isolated(worker_index: int, chunk: np.ndarray) -> None:
        """Fault isolation: a chunk whose worker raises is reset and
        retried once, query by query, in pure NumPy; queries that still
        fail report an error string instead of sinking the batch."""
        if len(chunk) == 0:
            return
        try:
            run_chunk(worker_index, chunk)
            return
        except Exception:
            # restore whatever partial per-query state the failed
            # attempt may have written
            ids[chunk] = -1
            dists[chunk] = np.inf
            ndc[chunk] = acq_ndc[chunk]
            hops[chunk] = 0
            visited[chunk] = 0
            degraded[chunk] = False
            if compressed:
                adc_lookups[chunk] = 0
                rerank_ndc[chunk] = 0
            if trace_ids is not None:   # retry must not duplicate ids
                obs.RECORDER.discard({trace_ids[i] for i in chunk})
            if handles is not None:
                handles.chunk_retries_total.inc()
        ctx = SearchContext(index.data)
        ctx.native = False   # retry on the always-available NumPy path
        for i in chunk:
            try:
                run_query_python(i, ctx)
            except Exception as exc:  # persistent per-query failure
                errors[i] = f"{type(exc).__name__}: {exc}"
                ids[i] = -1
                dists[i] = np.inf
                ndc[i] = acq_ndc[i]
                hops[i] = 0
                visited[i] = 0
                degraded[i] = False
                if compressed:
                    adc_lookups[i] = 0
                    rerank_ndc[i] = 0
                if trace_ids is not None:
                    obs.RECORDER.discard({trace_ids[i]})

    def run_batch_native_mt() -> np.ndarray:
        """One GIL-released C call answers every finite query on a
        pthread pool; returns per-thread busy seconds."""
        rows = finite_rows
        queries64 = np.ascontiguousarray(queries[rows], dtype=np.float64)
        # per-row np.dot to match SearchContext.begin_query bit for bit
        qsqs = np.asarray([np.dot(row, row) for row in queries64])
        uniq = [np.unique(seed_lists[i]) for i in rows]
        n = index.graph.n
        for s in uniq:
            if len(s) and (s[0] < 0 or s[-1] >= n):
                raise IndexError(
                    f"seed ids must lie in [0, {n}), got {s[0]}..{s[-1]}"
                )
        seed_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum([len(s) for s in uniq], out=seed_indptr[1:])
        seeds = (
            np.concatenate(uniq) if uniq else np.empty(0, dtype=np.int64)
        ).astype(np.int64, copy=False)
        max_ndcs, max_hops, deadlines = budget_cap_arrays(rows)
        # results are bit-identical for any thread count, so threads
        # beyond the physical cores buy nothing but context switches
        # and per-thread scratch pressure — clamp to the machine
        kernel_threads = max(1, min(workers, os.cpu_count() or workers))
        out_ids, out_sq, out_len, stats, thread_busy = _native.best_first_batch_mt(
            index.data, squared_norms(index.data), index.graph,
            queries64, qsqs, seed_indptr, seeds, ef, kernel_threads,
            max_ndcs=max_ndcs, max_hops=max_hops, deadlines=deadlines,
        )
        ndc[rows] = acq_ndc[rows] + stats[:, 0]
        hops[rows] = stats[:, 1]
        visited[rows] = stats[:, 2]
        degraded[rows] = stats[:, 3] > 0
        if deleted is None and int(out_len.min()) >= k:
            top = out_ids[:, :k]
            ids[rows] = top if id_map is None else id_map[top]
            dists[rows] = np.sqrt(out_sq[:, :k])
        else:
            for pos, i in enumerate(rows):
                fill_query(i, out_ids[pos, : out_len[pos]].astype(np.int64),
                           np.sqrt(out_sq[pos, : out_len[pos]]))
        return thread_busy

    def run_batch_native_mt_compressed() -> np.ndarray:
        """Compressed twin of :func:`run_batch_native_mt`: one
        GIL-released call walks every query over the uint8 codes against
        its slice of the shared LUT block, then each ADC-ordered pool is
        re-ranked exactly in query order (the only stage that reads
        float32 rows)."""
        rows = finite_rows
        uniq = [np.unique(seed_lists[i]) for i in rows]
        n = index.graph.n
        for s in uniq:
            if len(s) and (s[0] < 0 or s[-1] >= n):
                raise IndexError(
                    f"seed ids must lie in [0, {n}), got {s[0]}..{s[-1]}"
                )
        seed_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
        np.cumsum([len(s) for s in uniq], out=seed_indptr[1:])
        seeds = (
            np.concatenate(uniq) if uniq else np.empty(0, dtype=np.int64)
        ).astype(np.int64, copy=False)
        max_ndcs, max_hops, deadlines = budget_cap_arrays(rows)
        kernel_threads = max(1, min(workers, os.cpu_count() or workers))
        out_ids, out_sq, out_len, stats, thread_busy = (
            _native.best_first_batch_adc_mt(
                tier.codes, luts, index.graph, len(rows), seed_indptr,
                seeds, ef, kernel_threads,
                max_ndcs=max_ndcs, max_hops=max_hops, deadlines=deadlines,
            )
        )
        queries64 = np.ascontiguousarray(queries[rows], dtype=np.float64)
        adc_lookups[rows] = stats[:, 0]
        hops[rows] = stats[:, 1]
        visited[rows] = stats[:, 2]
        degraded[rows] = stats[:, 3] > 0
        for pos, i in enumerate(rows):
            pool = out_ids[pos, : out_len[pos]].astype(np.int64)
            # same order as finish_compressed: tombstone-filter first,
            # then cap — pool ids arrive in ascending ADC order
            if deleted is not None and len(pool) and deleted.any():
                pool = pool[~deleted[pool]]
            pool = pool[:max_pool]
            res_ids, res_dists = rerank_exact(index.data, queries64[pos], pool)
            ndc[i] = acq_ndc[i] + len(pool)
            rerank_ndc[i] = len(pool)
            fill_query(i, res_ids, res_dists)
        return thread_busy

    workers = max(1, min(int(workers), num_queries))
    chunks = np.array_split(np.flatnonzero(finite), workers)
    busy = [0.0] * workers

    def run_timed(worker_index: int, chunk: np.ndarray) -> None:
        if handles is None:
            run_chunk_isolated(worker_index, chunk)
            return
        t0 = time.perf_counter()
        try:
            run_chunk_isolated(worker_index, chunk)
        finally:
            busy[worker_index] = time.perf_counter() - t0

    compute_started = time.perf_counter()
    fused_done = False
    if native_mt_ok:
        try:
            thread_busy = (
                run_batch_native_mt_compressed() if compressed
                else run_batch_native_mt()
            )
            busy = [float(b) for b in thread_busy] + [0.0] * max(
                0, workers - len(thread_busy)
            )
            fused_done = True
        except Exception:
            # kernel-side failure (scratch allocation, bad seeds): reset
            # any partial per-query state and take the resilient chunked
            # path below, exactly as a failed chunk would
            rows = finite_rows
            ids[rows] = -1
            dists[rows] = np.inf
            ndc[rows] = acq_ndc[rows]
            hops[rows] = 0
            visited[rows] = 0
            degraded[rows] = False
            if compressed:
                adc_lookups[rows] = 0
                rerank_ndc[rows] = 0
            if handles is not None:
                handles.chunk_retries_total.inc()
    if not fused_done:
        if workers == 1:
            run_timed(0, chunks[0])
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(run_timed, w, c)
                    for w, c in enumerate(chunks)
                ]
                for future in futures:
                    future.result()
    if fused_done:
        kernel_path = "fused_mt_adc" if compressed else "fused_mt"
    elif native_ok and not compressed:
        kernel_path = "chunked_native"
    else:
        kernel_path = "python"

    # Two-tier merge: when the index carries a delta side-graph, fold
    # its per-query top-k into the finished base rows.  Every compute
    # path above (fused MT kernel, chunked pool, traced Python) lands
    # here, so the merge semantics match the sequential search exactly;
    # with an empty delta this block never runs and the batch stays
    # bit-identical (ids and NDC) to the single-tier code.
    delta = getattr(index, "_delta", None)
    if delta is not None and delta.n:
        for i in finite_rows:
            if errors[i] is not None:
                continue
            dcounter = DistanceCounter()
            row_budget = budget_for(i)
            dres = delta.search(
                np.ascontiguousarray(queries[i], dtype=np.float64), k, ef,
                dcounter,
                budget=(None if row_budget is None
                        else row_budget.after_spending(int(ndc[i]))),
            )
            ndc[i] += dcounter.count
            hops[i] += dres.hops
            visited[i] += dres.visited
            if dres.degraded:
                degraded[i] = True
            if not len(dres.ids):
                continue
            keep = ids[i] >= 0
            all_ids = np.concatenate([ids[i][keep], dres.ids])
            all_dists = np.concatenate([dists[i][keep], dres.dists])
            order = np.lexsort((all_ids, all_dists))[:k]
            m = len(order)
            ids[i, :m] = all_ids[order]
            ids[i, m:] = -1
            dists[i, :m] = all_dists[order]
            dists[i, m:] = np.inf
    elapsed_s = time.perf_counter() - started
    utilization = 0.0
    if handles is not None:
        compute_wall = max(time.perf_counter() - compute_started, 1e-9)
        utilization = min(sum(busy) / (workers * compute_wall), 1.0)
        handles.batch_stage_compute_seconds.observe(compute_wall)
        for worker_busy in busy:
            handles.batch_chunk_seconds.observe(worker_busy)
        handles.batch_worker_utilization.set(utilization)
        handles.batch_seconds.observe(elapsed_s)
        handles.batch_queries_total.inc(num_queries)
        handles.batch_kernel_path(kernel_path).inc()
        num_degraded = int(degraded.sum())
        if num_degraded:
            handles.batch_degraded_total.inc(num_degraded)
        num_errors = sum(1 for e in errors if e is not None)
        if num_errors:
            handles.batch_errors_total.inc(num_errors)
    return BatchQueryResult(
        ids=ids,
        dists=dists,
        ndc=ndc,
        hops=hops,
        visited=visited,
        elapsed_s=elapsed_s,
        workers=workers,
        errors=errors,
        degraded=degraded,
        trace_ids=trace_ids,
        batch_id=batch_id,
        worker_utilization=utilization,
        adc_lookups=adc_lookups,
        rerank_ndc=rerank_ndc,
        kernel_path=kernel_path,
    )
