"""Batched query engines: lockstep kernels and the worker-pool API.

The survey evaluates single-threaded, one-query-at-a-time search; a
production service batches.  This module offers two engines:

* :func:`batched_best_first_search` (and its :func:`batch_search`
  front-end) runs best-first search for a whole query batch in lockstep
  rounds: every round, each still-active query contributes one
  expansion, and each query's neighbor evaluations go through the same
  squared-distance kernel the sequential search uses.  The visited/heap
  bookkeeping is identical to
  :func:`repro.components.routing.best_first_search`, so the results
  (and the NDC accounting) match the sequential search — only the
  wall-clock changes.

* :func:`search_batch` is the high-throughput engine: it splits the
  batch across a worker pool, gives each worker its own reusable
  :class:`~repro.components.context.SearchContext`, and — for indexes
  that route with the default best-first search — hands each worker's
  whole chunk to the native kernel in a single call.  Seed acquisition
  runs up front in query order so stateful providers (e.g. the random
  seeders) yield exactly the seeds a sequential loop would have drawn,
  making the per-query telemetry (NDC including seed acquisition, hops,
  visited) identical to ``index.search`` query by query.
"""

from __future__ import annotations

import heapq
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro import _native
from repro.algorithms.base import GraphANNS
from repro.components.context import SearchContext
from repro.distance import DistanceCounter, sq_dists_to_rows, squared_norms

__all__ = [
    "BatchSearchResult",
    "BatchQueryResult",
    "batched_best_first_search",
    "batch_search",
    "search_batch",
]


@dataclass
class BatchSearchResult:
    """Per-batch output: one row of ids/dists per query, plus telemetry."""

    ids: np.ndarray          # (Q, k), -1-padded when a query found < k
    dists: np.ndarray        # (Q, k), inf-padded
    total_ndc: int
    mean_hops: float
    elapsed_s: float

    @property
    def qps(self) -> float:
        """Whole-batch throughput."""
        return len(self.ids) / max(self.elapsed_s, 1e-9)


@dataclass
class BatchQueryResult:
    """Worker-pool output with lossless per-query telemetry (§5.1).

    Unlike :class:`BatchSearchResult`, nothing is aggregated away: the
    NDC (seed acquisition included, matching ``index.search``), hop and
    visited counts survive per query, so recall-vs-NDC curves computed
    from a batched run are identical to ones from a sequential loop.
    """

    ids: np.ndarray          # (Q, k) int64, -1-padded
    dists: np.ndarray        # (Q, k) float64, inf-padded
    ndc: np.ndarray          # (Q,) int64, includes seed acquisition
    hops: np.ndarray         # (Q,) int64
    visited: np.ndarray      # (Q,) int64
    elapsed_s: float
    workers: int

    @property
    def qps(self) -> float:
        """Whole-batch throughput."""
        return len(self.ids) / max(self.elapsed_s, 1e-9)

    @property
    def total_ndc(self) -> int:
        return int(self.ndc.sum())

    @property
    def mean_hops(self) -> float:
        return float(self.hops.mean()) if len(self.hops) else 0.0


class _QueryState:
    """Heaps + bookkeeping for one query inside the lockstep loop.

    Distances live in the squared domain (like the sequential frontier)
    and are square-rooted only on extraction, so the values returned are
    bit-identical to :func:`best_first_search`'s.
    """

    __slots__ = ("candidates", "results", "ef", "active", "hops")

    def __init__(self, ef: int):
        self.candidates: list[tuple[float, int]] = []
        self.results: list[tuple[float, int]] = []
        self.ef = ef
        self.active = True
        self.hops = 0

    def worst(self) -> float:
        return -self.results[0][0] if len(self.results) == self.ef else np.inf

    def offer(self, idx: int, sq: float) -> None:
        if len(self.results) < self.ef:
            heapq.heappush(self.results, (-sq, idx))
            heapq.heappush(self.candidates, (sq, idx))
        elif sq < -self.results[0][0]:
            heapq.heapreplace(self.results, (-sq, idx))
            heapq.heappush(self.candidates, (sq, idx))

    def pop_expansion(self) -> int | None:
        """Next vertex to expand, or None (and deactivate) if finished."""
        while self.candidates:
            sq, u = heapq.heappop(self.candidates)
            if sq > self.worst():
                break
            self.hops += 1
            return u
        self.active = False
        return None

    def top(self, k: int) -> list[tuple[float, int]]:
        ordered = sorted((-negsq, idx) for negsq, idx in self.results)[:k]
        return [(float(np.sqrt(sq)), idx) for sq, idx in ordered]


def batched_best_first_search(
    graph,
    data: np.ndarray,
    queries: np.ndarray,
    seed_lists: list[np.ndarray],
    ef: int,
    k: int,
    counter: DistanceCounter | None = None,
) -> BatchSearchResult:
    """Best-first search over a query batch in lockstep rounds.

    Each query's distance evaluations flow through the same
    expanded-form kernel (:func:`repro.distance.sq_dists_to_rows`,
    against the shared norm cache) as the sequential search, so ids,
    distances and NDC are identical to running the queries one by one.
    """
    counter = counter if counter is not None else DistanceCounter()
    start_ndc = counter.count
    started = time.perf_counter()
    num_queries = len(queries)
    n = graph.n
    norms_sq = squared_norms(data)
    queries64 = np.ascontiguousarray(queries, dtype=np.float64)
    # per-row np.dot, not a row-wise einsum: it must produce the exact
    # float SearchContext.begin_query computes for the sequential search
    query_sqs = np.asarray([np.dot(row, row) for row in queries64])
    visited = np.zeros((num_queries, n), dtype=bool)
    states = [_QueryState(ef) for _ in range(num_queries)]

    def score(q: int, vertices: np.ndarray) -> None:
        sq = sq_dists_to_rows(
            queries64[q], data[vertices], norms_sq[vertices], float(query_sqs[q])
        )
        counter.count += len(vertices)
        state = states[q]
        for vertex, value in zip(vertices.tolist(), sq.tolist()):
            state.offer(vertex, value)

    for q, seeds in enumerate(seed_lists):
        seeds = np.unique(np.asarray(seeds, dtype=np.int64))
        if len(seeds):
            visited[q, seeds] = True
            score(q, seeds)

    while True:
        expanded = False
        for q, state in enumerate(states):
            if not state.active:
                continue
            u = state.pop_expansion()
            if u is None:
                continue
            nbrs = graph.neighbor_array(u)
            nbrs = nbrs[~visited[q, nbrs]]
            if len(nbrs) == 0:
                continue
            visited[q, nbrs] = True
            score(q, nbrs)
            expanded = True
        if not expanded and not any(s.active for s in states):
            break

    ids = np.full((num_queries, k), -1, dtype=np.int64)
    out_dists = np.full((num_queries, k), np.inf)
    for q, state in enumerate(states):
        for pos, (dist, idx) in enumerate(state.top(k)):
            ids[q, pos] = idx
            out_dists[q, pos] = dist
    return BatchSearchResult(
        ids=ids,
        dists=out_dists,
        total_ndc=counter.count - start_ndc,
        mean_hops=float(np.mean([s.hops for s in states])),
        elapsed_s=time.perf_counter() - started,
    )


def batch_search(
    index: GraphANNS,
    queries: np.ndarray,
    k: int = 10,
    ef: int | None = None,
) -> BatchSearchResult:
    """Lockstep-search a built index (seed acquisition per query)."""
    if index.graph is None:
        raise RuntimeError("build the index before batch searching")
    ef = max(k, ef if ef is not None else index.default_ef)
    counter = DistanceCounter()
    seed_lists = [
        np.asarray(index.seed_provider.acquire(query, counter), dtype=np.int64)
        for query in queries
    ]
    return batched_best_first_search(
        index.graph, index.data, np.asarray(queries, dtype=np.float32),
        seed_lists, ef, k, counter=counter,
    )


# -- worker-pool engine -------------------------------------------------


def _uses_default_route(index: GraphANNS) -> bool:
    return type(index)._route is GraphANNS._route


def _chunk_native(index, ctx, queries, seed_lists, chunk, ef):
    """One native kernel call for a whole chunk of queries."""
    queries64 = np.ascontiguousarray(queries[chunk], dtype=np.float64)
    # per-row np.dot to match SearchContext.begin_query bit for bit
    qsqs = np.asarray([np.dot(row, row) for row in queries64])
    uniq = [np.unique(seed_lists[i]) for i in chunk]
    n = index.graph.n
    for s in uniq:
        if len(s) and (s[0] < 0 or s[-1] >= n):
            raise IndexError(f"seed ids must lie in [0, {n}), got {s[0]}..{s[-1]}")
    seed_indptr = np.zeros(len(chunk) + 1, dtype=np.int64)
    np.cumsum([len(s) for s in uniq], out=seed_indptr[1:])
    seeds = (
        np.concatenate(uniq) if uniq else np.empty(0, dtype=np.int64)
    ).astype(np.int64, copy=False)
    return _native.best_first_batch(
        ctx, index.graph, queries64, qsqs, seed_indptr, seeds, ef
    )


def search_batch(
    index: GraphANNS,
    queries: np.ndarray,
    k: int = 10,
    ef: int | None = None,
    workers: int = 1,
) -> BatchQueryResult:
    """Answer a query batch with a pool of ``workers`` search contexts.

    Semantics match a ``[index.search(q, k, ef) for q in queries]``
    loop exactly — same ids, distances, per-query NDC (seed acquisition
    included), hops and visited counts, same tombstone filtering — but
    the batch is split into per-worker chunks, each worker reuses one
    :class:`SearchContext`, and default-routing indexes process each
    chunk in a single native kernel call, eliminating the per-query
    Python overhead the sequential loop pays.
    """
    if index.graph is None or index.data is None:
        raise RuntimeError("build the index before batch searching")
    queries = np.ascontiguousarray(queries, dtype=np.float32)
    if queries.ndim != 2:
        raise ValueError(f"queries must be 2-D, got shape {queries.shape}")
    num_queries = len(queries)
    ef = max(k, ef if ef is not None else index.default_ef)
    started = time.perf_counter()

    ids = np.full((num_queries, k), -1, dtype=np.int64)
    dists = np.full((num_queries, k), np.inf)
    ndc = np.zeros(num_queries, dtype=np.int64)
    hops = np.zeros(num_queries, dtype=np.int64)
    visited = np.zeros(num_queries, dtype=np.int64)
    if num_queries == 0:
        return BatchQueryResult(ids, dists, ndc, hops, visited, 0.0, workers)

    # Seed acquisition stays sequential and in query order: providers
    # may be stateful (RNG draws, restart counters), and this order is
    # the one the equivalent sequential loop would have used.
    seed_lists = []
    for i in range(num_queries):
        acq = DistanceCounter()
        seed_lists.append(
            np.asarray(index.seed_provider.acquire(queries[i], acq), dtype=np.int64)
        )
        ndc[i] = acq.count

    deleted = index._deleted if index.num_deleted else None
    native_ok = (
        _uses_default_route(index)
        and _native.LIB is not None
        and index.graph.finalized
        and index.graph.n > 0
    )

    def fill_query(i: int, res_ids: np.ndarray, res_dists: np.ndarray) -> None:
        if deleted is not None:
            keep = ~deleted[res_ids]
            res_ids = res_ids[keep]
            res_dists = res_dists[keep]
        m = min(k, len(res_ids))
        ids[i, :m] = res_ids[:m]
        dists[i, :m] = res_dists[:m]

    def run_chunk(chunk: np.ndarray) -> None:
        ctx = SearchContext(index.data)
        if native_ok and ctx.native:
            out_ids, out_sq, out_len, stats = _chunk_native(
                index, ctx, queries, seed_lists, chunk, ef
            )
            ndc[chunk] += stats[:, 0]
            hops[chunk] = stats[:, 1]
            visited[chunk] = stats[:, 2]
            if deleted is None and int(out_len.min()) >= k:
                ids[chunk] = out_ids[:, :k]
                dists[chunk] = np.sqrt(out_sq[:, :k])
                return
            for pos, i in enumerate(chunk):
                fill_query(i, out_ids[pos, : out_len[pos]].astype(np.int64),
                           np.sqrt(out_sq[pos, : out_len[pos]]))
            return
        for i in chunk:
            route = DistanceCounter()
            result = index._route(queries[i], seed_lists[i], ef, route, ctx=ctx)
            ndc[i] += route.count
            hops[i] = result.hops
            visited[i] = result.visited
            fill_query(i, result.ids, result.dists)

    workers = max(1, min(int(workers), num_queries))
    chunks = np.array_split(np.arange(num_queries), workers)
    if workers == 1:
        run_chunk(chunks[0])
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            for future in [pool.submit(run_chunk, c) for c in chunks]:
                future.result()
    return BatchQueryResult(
        ids=ids,
        dists=dists,
        ndc=ndc,
        hops=hops,
        visited=visited,
        elapsed_s=time.perf_counter() - started,
        workers=workers,
    )
