"""NN-Descent: approximate KNN-graph construction by neighbor propagation.

Dong et al.'s observation — *a neighbor of a neighbor is likely to be a
neighbor* — drives KGraph, EFANNA, DPG, NSG and NSSG initialization
(C1).  Each iteration replaces every point's neighbor list with the
best ``k`` among {current neighbors} ∪ {neighbors of neighbors} ∪
{sampled reverse neighbors}.

Implementation note (documented substitution): the classic formulation
performs *local joins* between pairs of neighbors with new/old flags;
that bookkeeping is pointer-chasing and prohibitively slow in pure
Python.  This module evaluates the same candidate pool per point with
batched NumPy distance kernels, which converges to the same fixpoint
(each point's list is already the best-of-pool, so any local-join
improvement is also found here) at a higher per-iteration NDC but far
lower wall-clock.  ``sample_rate`` caps the candidate pool exactly like
the classic ρ sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distance import DistanceCounter

__all__ = ["NNDescentResult", "nn_descent"]


@dataclass
class NNDescentResult:
    """Approximate KNN lists plus convergence telemetry."""

    ids: np.ndarray          # (n, k) neighbor ids, ascending distance
    dists: np.ndarray        # (n, k) matching distances
    updates_per_iter: list[int] = field(default_factory=list)
    iterations_run: int = 0


def _reverse_sample(ids: np.ndarray, per_node: int, rng: np.random.Generator) -> np.ndarray:
    """Up to ``per_node`` reverse neighbors per node, -1 padded."""
    n, k = ids.shape
    sources = np.repeat(np.arange(n, dtype=np.int64), k)
    targets = ids.reshape(-1)
    order = np.argsort(targets, kind="stable")
    targets_sorted = targets[order]
    sources_sorted = sources[order]
    out = np.full((n, per_node), -1, dtype=np.int64)
    starts = np.searchsorted(targets_sorted, np.arange(n))
    stops = np.searchsorted(targets_sorted, np.arange(n) + 1)
    for v in range(n):
        lo, hi = starts[v], stops[v]
        count = hi - lo
        if count == 0:
            continue
        if count <= per_node:
            out[v, :count] = sources_sorted[lo:hi]
        else:
            pick = rng.choice(count, size=per_node, replace=False)
            out[v] = sources_sorted[lo + pick]
    return out


def nn_descent(
    data: np.ndarray,
    k: int,
    iterations: int = 8,
    counter: DistanceCounter | None = None,
    seed: int = 0,
    sample_rate: float = 1.0,
    initial_ids: np.ndarray | None = None,
    convergence_threshold: float = 0.001,
    chunk_rows: int | None = None,
    bctx=None,
) -> NNDescentResult:
    """Build an approximate KNN graph.

    Parameters mirror KGraph's knobs: ``k`` (K), ``iterations`` (iter),
    ``sample_rate`` (ρ / S+R sampling).  ``initial_ids`` lets EFANNA
    seed the lists from KD-tree ANNS instead of randomly (C1_EFANNA).
    Stops early when fewer than ``convergence_threshold * n * k``
    neighbor replacements happen in an iteration.

    With a parallel :class:`~repro.components.context.BuildContext` the
    Jacobi chunks of each iteration are evaluated in the build's worker
    pool; results are applied in chunk order, so the output matches the
    serial run bit-for-bit.  Sampling (``sample_rate < 1``) draws from
    the shared rng per chunk and therefore stays serial.
    """
    n, dim = data.shape
    if n < 2:
        raise ValueError(f"need at least 2 points, got {n}")
    k = min(k, n - 1)
    if chunk_rows is None:
        # cap the (rows, pool, dim) temporaries at ~64 MB so that
        # high-dimensional data does not thrash memory
        pool_width = k * k + 2 * k
        chunk_rows = max(16, int(16_000_000 / max(pool_width * dim, 1)))
    rng = np.random.default_rng(seed)
    # with sample_rate >= 1 the pool never exceeds max_pool, so the
    # chunk computation is rng-free and safe to fan out
    executor = (
        bctx.pool()
        if bctx is not None and bctx.parallel and sample_rate >= 1.0
        else None
    )

    if initial_ids is None:
        ids = np.empty((n, k), dtype=np.int64)
        for v in range(n):
            choice = rng.choice(n - 1, size=k, replace=False)
            choice[choice >= v] += 1  # skip self
            ids[v] = choice
    else:
        ids = _pad_initial(initial_ids, n, k, rng)

    dists = _rows_distances(data, ids, counter, chunk_rows, executor)
    order = np.argsort(dists, axis=1, kind="stable")
    ids = np.take_along_axis(ids, order, axis=1)
    dists = np.take_along_axis(dists, order, axis=1)

    result = NNDescentResult(ids=ids, dists=dists)
    max_pool = max(k + 1, int((k * k + 2 * k) * sample_rate))

    for _ in range(iterations):
        reverse = _reverse_sample(result.ids, per_node=k, rng=rng)
        updates = _iterate(
            data, result, reverse, max_pool, counter, rng, chunk_rows,
            executor,
        )
        result.updates_per_iter.append(updates)
        result.iterations_run += 1
        if updates < convergence_threshold * n * k:
            break
    return result


def _pad_initial(
    initial_ids: np.ndarray, n: int, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Normalise caller-provided initial lists to exactly (n, k)."""
    ids = np.asarray(initial_ids, dtype=np.int64)
    if ids.shape[0] != n:
        raise ValueError(f"initial_ids must have {n} rows, got {ids.shape[0]}")
    if ids.shape[1] >= k:
        return ids[:, :k].copy()
    pad = rng.integers(0, n, size=(n, k - ids.shape[1]))
    return np.concatenate([ids, pad], axis=1)


def _rows_distances(
    data: np.ndarray,
    ids: np.ndarray,
    counter: DistanceCounter | None,
    chunk_rows: int,
    executor=None,
) -> np.ndarray:
    """Distance from each point to each of its listed neighbors."""
    n, k = ids.shape
    out = np.empty((n, k), dtype=np.float64)

    def fill(start: int) -> None:
        stop = min(start + chunk_rows, n)
        block = data[ids[start:stop]] - data[start:stop, None, :]
        out[start:stop] = np.sqrt(np.einsum("ijk,ijk->ij", block, block))

    starts = range(0, n, chunk_rows)
    if executor is None:
        for start in starts:
            fill(start)
    else:
        list(executor.map(fill, starts))
    if counter is not None:
        counter.count += n * k
    return out


def _iterate_chunk(
    data: np.ndarray,
    ids: np.ndarray,
    reverse: np.ndarray,
    start: int,
    stop: int,
    max_pool: int,
    rng: np.random.Generator,
):
    """Candidate pooling + best-k for one Jacobi chunk of rows."""
    rows = stop - start
    k = ids.shape[1]
    own = ids[start:stop]                              # (rows, k)
    hop2 = ids[own].reshape(rows, k * k)               # neighbors of neighbors
    rev = reverse[start:stop]                          # (rows, k), -1 padded
    pool = np.concatenate([own, hop2, rev], axis=1)    # (rows, m)
    self_col = np.arange(start, stop)[:, None]
    pool = np.where(pool < 0, self_col, pool)          # -1 -> self (masked below)
    if pool.shape[1] > max_pool:
        cols = rng.choice(pool.shape[1] - k, size=max_pool - k, replace=False)
        pool = np.concatenate([own, pool[:, k + cols]], axis=1)
    # mask self and duplicates via row-wise sort
    sort_idx = np.argsort(pool, axis=1, kind="stable")
    sorted_pool = np.take_along_axis(pool, sort_idx, axis=1)
    dup = np.zeros_like(pool, dtype=bool)
    dup_sorted = np.zeros_like(pool, dtype=bool)
    dup_sorted[:, 1:] = sorted_pool[:, 1:] == sorted_pool[:, :-1]
    np.put_along_axis(dup, sort_idx, dup_sorted, axis=1)
    invalid = dup | (pool == self_col)

    diff = data[pool] - data[start:stop, None, :]
    dmat = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    ndc = int((~invalid).sum())
    dmat[invalid] = np.inf

    part = np.argpartition(dmat, k - 1, axis=1)[:, :k]
    part_d = np.take_along_axis(dmat, part, axis=1)
    order = np.argsort(part_d, axis=1, kind="stable")
    new_ids = np.take_along_axis(
        np.take_along_axis(pool, part, axis=1), order, axis=1
    )
    new_d = np.take_along_axis(part_d, order, axis=1)
    changed = int((new_ids != ids[start:stop]).sum())
    return new_ids, new_d, changed, ndc


def _iterate(
    data: np.ndarray,
    result: NNDescentResult,
    reverse: np.ndarray,
    max_pool: int,
    counter: DistanceCounter | None,
    rng: np.random.Generator,
    chunk_rows: int,
    executor=None,
) -> int:
    """One propagation round; returns the number of list replacements.

    Reads from a snapshot of the lists (Jacobi-style) so the outcome is
    independent of ``chunk_rows`` — and therefore reproducible across
    machines regardless of the memory-based auto chunking, and safe to
    evaluate chunk-parallel (callers only pass an executor when the
    rng-consuming sampling branch is provably dead).
    """
    n, k = result.ids.shape
    ids = result.ids.copy()
    starts = list(range(0, n, chunk_rows))

    def chunk(start: int):
        return _iterate_chunk(
            data, ids, reverse, start, min(start + chunk_rows, n),
            max_pool, rng,
        )

    outputs = executor.map(chunk, starts) if executor else map(chunk, starts)
    updates = 0
    for start, (new_ids, new_d, changed, ndc) in zip(starts, outputs):
        stop = start + len(new_ids)
        result.ids[start:stop] = new_ids
        result.dists[start:stop] = new_d
        updates += changed
        if counter is not None:
            counter.count += ndc
    return updates
