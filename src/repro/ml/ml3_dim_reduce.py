"""ML3 — learned dimensionality reduction for graph search ([78], §5.5).

Prokhorenkova & Shekhovtsov map the dataset to a lower-dimensional
space that preserves local geometry, search the graph there, and
re-rank in the original space.  Our from-scratch version uses a PCA
projection (fit on the indexed data) — the preprocessing pass over the
full matrix plus the duplicated reduced vectors reproduce the time and
memory inflation of Table 24.

NDC accounting: a distance in the reduced space costs ``r/d`` of a full
distance (that is the entire point of the method), so reduced-space
evaluations are charged fractionally and re-ranking distances fully.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.routing import SearchResult
from repro.distance import DistanceCounter

__all__ = ["ML3DimensionReduction"]


class ML3DimensionReduction:
    """Search a graph built in PCA space; re-rank exactly in full space."""

    def __init__(
        self,
        base_factory: Callable[[], GraphANNS],
        target_dim: int = 16,
        rerank_multiplier: int = 5,
    ):
        self.base_factory = base_factory
        self.target_dim = target_dim
        self.rerank_multiplier = rerank_multiplier
        self.full_data: np.ndarray | None = None
        self.reduced_index: GraphANNS | None = None
        self.components: np.ndarray | None = None
        self.mean: np.ndarray | None = None
        self.preprocessing_time_s = 0.0
        self.default_ef = 40

    def fit(self, data: np.ndarray) -> "ML3DimensionReduction":
        """Learn the projection and build the reduced-space index."""
        started = time.perf_counter()
        self.full_data = np.ascontiguousarray(data, dtype=np.float32)
        centered = self.full_data.astype(np.float64)
        self.mean = centered.mean(axis=0)
        centered -= self.mean
        # PCA via SVD of the (n, d) matrix
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        r = min(self.target_dim, vt.shape[0])
        self.components = vt[:r]
        reduced = (centered @ self.components.T).astype(np.float32)
        self.reduced_index = self.base_factory()
        self.reduced_index.build(reduced)
        self.default_ef = self.reduced_index.default_ef
        self.preprocessing_time_s = time.perf_counter() - started
        return self

    @property
    def memory_bytes(self) -> int:
        """Extra memory: reduced vectors + projection matrix."""
        if self.reduced_index is None:
            return 0
        return self.reduced_index.data.nbytes + self.components.nbytes

    def _project(self, query: np.ndarray) -> np.ndarray:
        return ((query.astype(np.float64) - self.mean) @ self.components.T).astype(
            np.float32
        )

    def search(
        self,
        query: np.ndarray,
        k: int = 10,
        ef: int | None = None,
        counter: DistanceCounter | None = None,
    ) -> SearchResult:
        """Reduced-space search + full-space re-rank."""
        if self.reduced_index is None:
            raise RuntimeError("call fit() before searching with ML3")
        counter = counter if counter is not None else DistanceCounter()
        start_ndc = counter.count
        ef = max(k, ef if ef is not None else self.default_ef)
        shortlist = max(k * self.rerank_multiplier, k)
        inner = DistanceCounter()
        reduced_result = self.reduced_index.search(
            self._project(query), k=max(shortlist, k), ef=max(ef, shortlist),
            counter=inner,
        )
        # reduced-space distances cost r/d of a full distance evaluation
        ratio = self.components.shape[0] / self.full_data.shape[1]
        counter.count += int(np.ceil(inner.count * ratio))
        ids = reduced_result.ids[:shortlist]
        full_d = counter.one_to_many(query, self.full_data[ids])
        order = np.argsort(full_d, kind="stable")[:k]
        return SearchResult(
            ids=np.asarray(ids[order], dtype=np.int64),
            dists=full_d[order],
            ndc=counter.count - start_ndc,
            hops=reduced_result.hops,
            visited=reduced_result.visited,
        )
