"""Machine-learning-based optimizations of graph search (§5.5).

Three optimizations evaluated by the paper, rebuilt from scratch on
NumPy (DESIGN.md documents the substitutions):

* :class:`ML1LearnedRouting` — learned vertex representations guide
  routing ([14], Baranchuk et al.), at enormous preprocessing cost;
* :class:`ML2EarlyTermination` — a learned predictor decides when to
  stop searching ([59], Li et al.);
* :class:`ML3DimensionReduction` — search in a learned low-dimensional
  space with exact re-ranking ([78], Prokhorenkova & Shekhovtsov).

The paper's conclusion — better speedup-recall tradeoffs bought with
orders-of-magnitude more preprocessing time and memory — is what the
Figure 9 / Table 6 / Table 24 bench reproduces.
"""

from repro.ml.ml1_routing import ML1LearnedRouting
from repro.ml.ml2_early_term import ML2EarlyTermination
from repro.ml.ml3_dim_reduce import ML3DimensionReduction

__all__ = ["ML1LearnedRouting", "ML2EarlyTermination", "ML3DimensionReduction"]
