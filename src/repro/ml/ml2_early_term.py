"""ML2 — learned adaptive early termination ([59], §5.5).

Li et al. train gradient-boosting models to predict, per query, when
the search can stop.  Our from-scratch equivalent fits a least-squares
predictor of the *expansion budget* from cheap search-state features
observed after a short warm-up:

* distance of the best seed to the query,
* best distance after the warm-up expansions,
* relative improvement during warm-up.

Training runs full searches on held-out queries and records how many
expansions each actually needed before its top-k stopped changing.  At
query time the budgeted search stops at the predicted expansion count —
latency drops mostly in the easy-query tail, the modest high-recall
gain the paper reports.
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.routing import SearchResult
from repro.distance import DistanceCounter

__all__ = ["ML2EarlyTermination"]


def _instrumented_search(
    base: GraphANNS,
    query: np.ndarray,
    ef: int,
    k: int,
    counter: DistanceCounter,
    warmup: int,
    max_hops: int | None,
    budget_from_features=None,
) -> tuple[SearchResult, np.ndarray, int]:
    """BFS that reports warm-up features and the stabilisation hop.

    ``budget_from_features`` (if given) is called once with the warm-up
    feature vector and returns the expansion budget for the remainder of
    the same pass — the learned early termination itself.
    """
    graph, data = base.graph, base.data
    seeds = np.unique(
        np.asarray(base.seed_provider.acquire(query, counter), dtype=np.int64)
    )
    visited = np.zeros(graph.n, dtype=bool)
    visited[seeds] = True
    dists = counter.one_to_many(query, data[seeds])
    candidates = [(float(d), int(s)) for d, s in zip(dists, seeds)]
    heapq.heapify(candidates)
    results = [(-float(d), int(s)) for d, s in zip(dists, seeds)]
    heapq.heapify(results)
    while len(results) > ef:
        heapq.heappop(results)

    seed_best = float(min(dists))
    warmup_best = seed_best
    hops = 0
    last_update_hop = 0  # last hop at which the top-ef result set changed
    best_so_far = seed_best
    while candidates:
        if max_hops is not None and hops >= max_hops:
            break
        dist, u = heapq.heappop(candidates)
        worst = -results[0][0] if len(results) == ef else np.inf
        if dist > worst:
            break
        hops += 1
        nbrs = graph.neighbor_array(u)
        nbrs = nbrs[~visited[nbrs]]
        if len(nbrs) == 0:
            continue
        visited[nbrs] = True
        true_d = counter.one_to_many(query, data[nbrs])
        for idx, d in zip(nbrs, true_d):
            d = float(d)
            if d < best_so_far:
                best_so_far = d
            if len(results) < ef:
                heapq.heappush(results, (-d, int(idx)))
                heapq.heappush(candidates, (d, int(idx)))
                last_update_hop = hops
            elif d < -results[0][0]:
                heapq.heapreplace(results, (-d, int(idx)))
                heapq.heappush(candidates, (d, int(idx)))
                last_update_hop = hops
        if hops == warmup:
            warmup_best = best_so_far
            if budget_from_features is not None:
                features = np.asarray(
                    [
                        1.0,
                        seed_best,
                        warmup_best,
                        (seed_best - warmup_best) / max(seed_best, 1e-12),
                    ]
                )
                max_hops = max(warmup + 1, int(budget_from_features(features)))
    ordered = sorted((-negd, idx) for negd, idx in results)[:k]
    result = SearchResult(
        ids=np.asarray([i for _, i in ordered], dtype=np.int64),
        dists=np.asarray([d for d, _ in ordered]),
        hops=hops,
        visited=int(visited.sum()),
    )
    features = np.asarray(
        [
            1.0,
            seed_best,
            warmup_best,
            (seed_best - warmup_best) / max(seed_best, 1e-12),
        ]
    )
    return result, features, last_update_hop


class ML2EarlyTermination:
    """Wraps a built index with a learned stop-hop predictor."""

    def __init__(self, base: GraphANNS, warmup_hops: int = 5, seed: int = 0):
        if base.graph is None:
            raise RuntimeError("base index must be built before wrapping")
        self.base = base
        self.warmup_hops = warmup_hops
        self.seed = seed
        self.coefficients: np.ndarray | None = None
        self.safety_margin = 1.5
        self.preprocessing_time_s = 0.0

    def fit(
        self, train_queries: np.ndarray, ef: int = 80, k: int = 10
    ) -> "ML2EarlyTermination":
        """Learn the hop predictor from full searches on ``train_queries``."""
        started = time.perf_counter()
        rows, targets = [], []
        for query in train_queries:
            counter = DistanceCounter()
            _, features, stop_hop = _instrumented_search(
                self.base, query, ef, k, counter, self.warmup_hops, None
            )
            rows.append(features)
            targets.append(stop_hop)
        design = np.asarray(rows)
        target = np.asarray(targets, dtype=np.float64)
        self.coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
        self.preprocessing_time_s = time.perf_counter() - started
        return self

    @property
    def memory_bytes(self) -> int:
        """Model size — negligible, unlike ML1/ML3 (Table 24)."""
        return 0 if self.coefficients is None else self.coefficients.nbytes

    def search(
        self,
        query: np.ndarray,
        k: int = 10,
        ef: int | None = None,
        counter: DistanceCounter | None = None,
    ) -> SearchResult:
        """Budgeted search: stop at the predicted expansion count."""
        if self.coefficients is None:
            raise RuntimeError("call fit() before searching with ML2")
        ef = max(k, ef if ef is not None else self.base.default_ef)
        counter = counter if counter is not None else DistanceCounter()
        start_ndc = counter.count

        def budget(features: np.ndarray) -> float:
            predicted = float(features @ self.coefficients)
            return np.ceil(predicted * self.safety_margin)

        result, _, _ = _instrumented_search(
            self.base, query, ef, k, counter, self.warmup_hops, None,
            budget_from_features=budget,
        )
        result.ndc = counter.count - start_ndc
        return result
