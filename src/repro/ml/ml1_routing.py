"""ML1 — learning to route in similarity graphs ([14], §5.5).

The original work learns compressed vertex representations whose
distances guide routing so fewer true distances are computed.  Our
from-scratch equivalent:

* **preprocessing** — embed every vertex by its distances to ``L``
  landmarks (an ``n × L`` matrix: the big memory bill of Table 6), then
  run several epochs of SGD on sampled triplets to learn per-dimension
  weights that make embedding distances rank like true distances (the
  big time bill);
* **search** — the query is embedded once (``L`` true distances,
  charged), then best-first search scores each expansion's neighbors by
  weighted embedding distance *to the query* (no NDC) and evaluates
  true distances only for the most promising fraction.

Same shape as the paper's finding: better NDC-vs-recall at the price of
index-processing time and memory (Figure 9, Table 6).
"""

from __future__ import annotations

import heapq
import time

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.routing import SearchResult
from repro.distance import DistanceCounter, l2_batch

__all__ = ["ML1LearnedRouting"]


class ML1LearnedRouting:
    """Wraps a built index with landmark-embedding-guided routing."""

    def __init__(
        self,
        base: GraphANNS,
        num_landmarks: int = 16,
        epochs: int = 30,
        triplets_per_epoch: int = 20_000,
        keep_fraction: float = 0.5,
        seed: int = 0,
    ):
        if base.graph is None:
            raise RuntimeError("base index must be built before wrapping")
        self.base = base
        self.num_landmarks = num_landmarks
        self.epochs = epochs
        self.triplets_per_epoch = triplets_per_epoch
        self.keep_fraction = keep_fraction
        self.seed = seed
        self.embedding: np.ndarray | None = None
        self.weights: np.ndarray | None = None
        self.landmarks: np.ndarray | None = None
        self.preprocessing_time_s = 0.0

    # -- preprocessing ----------------------------------------------------

    def fit(self) -> "ML1LearnedRouting":
        """Compute embeddings and train routing weights (the costly part)."""
        started = time.perf_counter()
        data = self.base.data
        n = len(data)
        rng = np.random.default_rng(self.seed)
        landmarks = rng.choice(n, size=min(self.num_landmarks, n), replace=False)
        embedding = np.empty((n, len(landmarks)))
        for column, landmark in enumerate(landmarks):
            embedding[:, column] = l2_batch(data[landmark], data)
        self.embedding = embedding
        self.landmarks = landmarks

        # triplet SGD: want w·|e_a - e_b| < w·|e_a - e_c| whenever
        # δ(a,b) < δ(a,c) — a margin ranking loss on random triplets
        weights = np.ones(embedding.shape[1])
        lr = 0.05
        for _ in range(self.epochs):
            anchors = rng.integers(0, n, size=self.triplets_per_epoch)
            pos = rng.integers(0, n, size=self.triplets_per_epoch)
            neg = rng.integers(0, n, size=self.triplets_per_epoch)
            d_pos = np.linalg.norm(data[anchors] - data[pos], axis=1)
            d_neg = np.linalg.norm(data[anchors] - data[neg], axis=1)
            swap = d_pos > d_neg
            pos[swap], neg[swap] = neg[swap], pos[swap]
            f_pos = np.abs(embedding[anchors] - embedding[pos])
            f_neg = np.abs(embedding[anchors] - embedding[neg])
            margin = (f_pos - f_neg) @ weights + 1.0
            active = margin > 0
            if active.any():
                grad = (f_pos[active] - f_neg[active]).mean(axis=0)
                weights -= lr * grad
                np.clip(weights, 0.0, None, out=weights)
            if weights.sum() <= 0:
                weights[:] = 1.0
        self.weights = weights / max(weights.sum(), 1e-12) * len(weights)
        self.preprocessing_time_s = time.perf_counter() - started
        return self

    @property
    def memory_bytes(self) -> int:
        """Extra memory for the learned representations (Table 6 MC)."""
        return 0 if self.embedding is None else self.embedding.nbytes

    # -- search -------------------------------------------------------------

    def search(
        self,
        query: np.ndarray,
        k: int = 10,
        ef: int | None = None,
        counter: DistanceCounter | None = None,
    ) -> SearchResult:
        """Embedding-guided best-first search on the base graph."""
        raise_if_unfit(self)
        base = self.base
        ef = max(k, ef if ef is not None else base.default_ef)
        counter = counter if counter is not None else DistanceCounter()
        start_ndc = counter.count
        graph, data = base.graph, base.data

        # embed the query: L true distance computations, charged
        query_embedding = counter.one_to_many(query, data[self.landmarks])

        seeds = np.asarray(
            base.seed_provider.acquire(query, counter), dtype=np.int64
        )
        seeds = np.unique(seeds)
        visited = np.zeros(graph.n, dtype=bool)
        visited[seeds] = True
        dists = counter.one_to_many(query, data[seeds])
        candidates = [(float(d), int(s)) for d, s in zip(dists, seeds)]
        heapq.heapify(candidates)
        results = [(-float(d), int(s)) for d, s in zip(dists, seeds)]
        heapq.heapify(results)
        while len(results) > ef:
            heapq.heappop(results)
        hops = 0
        while candidates:
            dist, u = heapq.heappop(candidates)
            worst = -results[0][0] if len(results) == ef else np.inf
            if dist > worst:
                break
            hops += 1
            nbrs = graph.neighbor_array(u)
            nbrs = nbrs[~visited[nbrs]]
            if len(nbrs) == 0:
                continue
            # score by embedding distance to the *query* (no NDC)
            scores = np.abs(self.embedding[nbrs] - query_embedding).dot(
                self.weights
            )
            keep = max(1, int(np.ceil(len(nbrs) * self.keep_fraction)))
            chosen = nbrs[np.argsort(scores, kind="stable")[:keep]]
            visited[chosen] = True
            true_d = counter.one_to_many(query, data[chosen])
            for idx, d in zip(chosen, true_d):
                d = float(d)
                if len(results) < ef:
                    heapq.heappush(results, (-d, int(idx)))
                    heapq.heappush(candidates, (d, int(idx)))
                elif d < -results[0][0]:
                    heapq.heapreplace(results, (-d, int(idx)))
                    heapq.heappush(candidates, (d, int(idx)))
        ordered = sorted((-negd, idx) for negd, idx in results)[:k]
        return SearchResult(
            ids=np.asarray([i for _, i in ordered], dtype=np.int64),
            dists=np.asarray([d for d, _ in ordered]),
            ndc=counter.count - start_ndc,
            hops=hops,
            visited=int(visited.sum()),
        )


def raise_if_unfit(wrapper: ML1LearnedRouting) -> None:
    if wrapper.embedding is None or wrapper.weights is None:
        raise RuntimeError("call fit() before searching with ML1")
