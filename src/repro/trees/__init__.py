"""Auxiliary tree indexes used for seed preprocessing / acquisition (C4/C6).

These are the "additional structures" the survey repeatedly shows are a
mixed blessing: they improve seeds but pay distance calculations and
memory (§5.4, C4 discussion).
"""

from repro.trees.kd_tree import KDTree
from repro.trees.vp_tree import VPTree
from repro.trees.kmeans_tree import BalancedKMeansTree
from repro.trees.tp_tree import TPTree

__all__ = ["KDTree", "VPTree", "BalancedKMeansTree", "TPTree"]
