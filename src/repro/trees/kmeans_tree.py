"""Balanced k-means tree — SPTAG-BKT's seed structure (C4/C6).

Each internal node clusters its points into ``branching`` groups with a
few Lloyd iterations, rebalancing by capping group sizes.  Seed lookup
descends greedily by centroid distance (each comparison is a charged
distance computation) and returns the closest leaf bucket(s).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distance import DistanceCounter, l2_batch, pairwise_l2

__all__ = ["BalancedKMeansTree"]


@dataclass
class _Node:
    centroids: np.ndarray | None
    children: list["_Node"] | None
    bucket: np.ndarray | None


class BalancedKMeansTree:
    """Hierarchical balanced k-means partition tree."""

    def __init__(
        self,
        data: np.ndarray,
        branching: int = 8,
        leaf_size: int = 32,
        lloyd_iterations: int = 4,
        seed: int = 0,
    ):
        self.data = data
        self.branching = max(2, branching)
        self.leaf_size = max(1, leaf_size)
        self.lloyd_iterations = lloyd_iterations
        self._rng = np.random.default_rng(seed)
        self.root = self._build(np.arange(len(data), dtype=np.int64))

    def _build(self, ids: np.ndarray) -> _Node:
        if len(ids) <= max(self.leaf_size, self.branching):
            return _Node(centroids=None, children=None, bucket=ids)
        points = self.data[ids].astype(np.float64)
        k = self.branching
        centroids = points[self._rng.choice(len(points), size=k, replace=False)]
        cap = int(np.ceil(len(ids) / k)) + 1  # balance constraint
        assign = np.zeros(len(ids), dtype=np.int64)
        for _ in range(self.lloyd_iterations):
            dists = pairwise_l2(points, centroids)
            # balanced greedy assignment: points in order of confidence
            pref = np.argsort(dists, axis=1)
            counts = np.zeros(k, dtype=np.int64)
            order = np.argsort(dists[np.arange(len(ids)), pref[:, 0]])
            for row in order:
                for choice in pref[row]:
                    if counts[choice] < cap:
                        assign[row] = choice
                        counts[choice] += 1
                        break
            for c in range(k):
                members = points[assign == c]
                if len(members):
                    centroids[c] = members.mean(axis=0)
        children = []
        kept_centroids = []
        for c in range(k):
            mask = assign == c
            if not np.any(mask):
                continue
            kept_centroids.append(centroids[c])
            children.append(self._build(ids[mask]))
        if len(children) <= 1:  # clustering failed to split (duplicates)
            return _Node(centroids=None, children=None, bucket=ids)
        return _Node(
            centroids=np.asarray(kept_centroids), children=children, bucket=None
        )

    def nbytes(self) -> int:
        """Measured payload size: leaf buckets + centroid matrices."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.bucket is not None:
                total += node.bucket.nbytes
            else:
                total += node.centroids.nbytes
                stack.extend(node.children)
        return total

    def search(
        self,
        query: np.ndarray,
        k: int,
        counter: DistanceCounter | None = None,
    ) -> np.ndarray:
        """Greedy root-to-leaf descent; returns the k closest bucket points."""
        node = self.root
        while node.bucket is None:
            cents = node.centroids
            dists = (
                counter.one_to_many(query, cents)
                if counter is not None
                else l2_batch(query, cents)
            )
            node = node.children[int(np.argmin(dists))]
        pts = self.data[node.bucket]
        dists = (
            counter.one_to_many(query, pts)
            if counter is not None
            else l2_batch(query, pts)
        )
        order = np.argsort(dists, kind="stable")[:k]
        return node.bucket[order]
