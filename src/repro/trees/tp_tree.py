"""Trinary-Projection tree — SPTAG's dataset-division structure (C1).

A TP-tree splits on a *projection direction* that is a linear
combination of a few coordinate axes with weights in {-1, +1}
(Wang et al., "Trinary-projection trees for ANN search").  SPTAG uses
it to recursively divide the dataset into small subsets; an exact KNN
subgraph is then built per subset and merged across repetitions
(Definition 4.1, *dataset division*).

:meth:`partition` returns the leaf subsets — that is the only interface
the divide-and-conquer builders need.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TPTree"]


class TPTree:
    """Trinary-projection partition of a point set into small subsets."""

    def __init__(
        self,
        data: np.ndarray,
        leaf_size: int = 64,
        num_axes: int = 5,
        seed: int = 0,
    ):
        self.data = data
        self.leaf_size = max(2, leaf_size)
        self.num_axes = num_axes
        self._rng = np.random.default_rng(seed)
        self._leaves: list[np.ndarray] = []
        self._split(np.arange(len(data), dtype=np.int64))

    def _split(self, ids: np.ndarray) -> None:
        if len(ids) <= self.leaf_size:
            self._leaves.append(ids)
            return
        block = self.data[ids]
        dim = block.shape[1]
        # pick the highest-variance axes and combine with +-1 weights
        variances = block.var(axis=0)
        axes = np.argsort(variances)[-min(self.num_axes, dim):]
        weights = self._rng.choice([-1.0, 1.0], size=len(axes))
        projection = block[:, axes] @ weights
        threshold = float(np.median(projection))
        mask = projection < threshold
        if not mask.any() or mask.all():
            order = np.argsort(projection, kind="stable")
            half = len(ids) // 2
            self._split(ids[order[:half]])
            self._split(ids[order[half:]])
            return
        self._split(ids[mask])
        self._split(ids[~mask])

    def partition(self) -> list[np.ndarray]:
        """The leaf subsets S_0..S_{m-1} with union = S (Definition 4.1)."""
        return self._leaves
