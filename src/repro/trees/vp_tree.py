"""Vantage-point tree — NGT's seed-acquisition structure (C4/C6).

A VP-tree partitions by distance to a randomly chosen vantage point:
inside-median points go left, the rest right.  Seed lookup is a bounded
best-first traversal; every vantage-point distance is a real distance
computation and is charged to the counter — this is exactly the cost
the survey blames for the poor C4_NGT seed performance on hard data.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.distance import DistanceCounter, l2_batch

__all__ = ["VPTree"]


@dataclass
class _Node:
    vantage: int
    radius: float
    inside: "_Node | None"
    outside: "_Node | None"
    bucket: np.ndarray | None  # leaf payload


class VPTree:
    """Vantage-point tree with leaf buckets."""

    def __init__(self, data: np.ndarray, leaf_size: int = 16, seed: int = 0):
        self.data = data
        self.leaf_size = max(1, leaf_size)
        self._rng = np.random.default_rng(seed)
        self.root = self._build(np.arange(len(data), dtype=np.int64))

    def _build(self, ids: np.ndarray) -> _Node | None:
        if len(ids) == 0:
            return None
        if len(ids) <= self.leaf_size:
            return _Node(vantage=-1, radius=0.0, inside=None, outside=None, bucket=ids)
        pick = int(self._rng.integers(len(ids)))
        vantage = int(ids[pick])
        rest = np.delete(ids, pick)
        dists = l2_batch(self.data[vantage], self.data[rest])
        radius = float(np.median(dists))
        inside_mask = dists < radius
        if not inside_mask.any() or inside_mask.all():
            # duplicate-heavy region: no informative split possible
            return _Node(vantage=-1, radius=0.0, inside=None, outside=None, bucket=ids)
        return _Node(
            vantage=vantage,
            radius=radius,
            inside=self._build(rest[inside_mask]),
            outside=self._build(rest[~inside_mask]),
            bucket=None,
        )

    def nbytes(self) -> int:
        """Measured payload size: leaf buckets + vantage/radius records."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if node.bucket is not None:
                total += node.bucket.nbytes
            else:
                total += 16  # int64 vantage + float64 radius
                stack.append(node.inside)
                stack.append(node.outside)
        return total

    def search(
        self,
        query: np.ndarray,
        k: int,
        counter: DistanceCounter | None = None,
        max_nodes: int = 64,
    ) -> np.ndarray:
        """Approximate kNN ids, best-first by lower-bound, budgeted."""
        results: list[tuple[float, int]] = []  # max-heap via negation
        heap: list[tuple[float, int, _Node]] = [(0.0, 0, self.root)]
        tick = 1
        visited = 0

        def offer(idx: int, dist: float) -> None:
            if len(results) < k:
                heapq.heappush(results, (-dist, idx))
            elif dist < -results[0][0]:
                heapq.heapreplace(results, (-dist, idx))

        while heap and visited < max_nodes:
            bound, _, node = heapq.heappop(heap)
            if len(results) == k and bound > -results[0][0]:
                break
            visited += 1
            if node.bucket is not None:
                pts = self.data[node.bucket]
                dists = (
                    counter.one_to_many(query, pts)
                    if counter is not None
                    else l2_batch(query, pts)
                )
                for idx, dist in zip(node.bucket, dists):
                    offer(int(idx), float(dist))
                continue
            d_v = (
                counter.pair(query, self.data[node.vantage])
                if counter is not None
                else float(np.linalg.norm(query - self.data[node.vantage]))
            )
            offer(node.vantage, d_v)
            near_first = d_v < node.radius
            near = node.inside if near_first else node.outside
            far = node.outside if near_first else node.inside
            margin = abs(d_v - node.radius)
            if near is not None:
                heapq.heappush(heap, (bound, tick, near))
                tick += 1
            if far is not None:
                heapq.heappush(heap, (max(bound, margin), tick, far))
                tick += 1
        ordered = sorted(((-negd, idx) for negd, idx in results))
        return np.asarray([idx for _, idx in ordered], dtype=np.int64)
