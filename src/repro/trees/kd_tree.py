"""Randomized KD-tree over a point set.

Used three ways in the survey:

* EFANNA builds several randomized KD-trees to *initialize* the KNN
  graph (C1) and to fetch good seeds at search time (C6);
* SPTAG-KDT fetches seeds from KD-trees;
* HCNNG descends KD-trees by pure value comparison — no distance
  computations — to pick seeds cheaply (the §5.4 C4 discussion).

Splits choose a random dimension among the few with the largest spread
(the classic randomized-KD-forest trick), so independently seeded trees
are diverse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distance import DistanceCounter

__all__ = ["KDTree"]


@dataclass
class _Node:
    # leaf: ids is not None; internal: dim/threshold/left/right set
    ids: np.ndarray | None = None
    dim: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None


class KDTree:
    """A single randomized KD-tree with leaf buckets."""

    def __init__(
        self,
        data: np.ndarray,
        leaf_size: int = 16,
        seed: int = 0,
        top_spread_dims: int = 5,
    ):
        self.data = data
        self.leaf_size = max(1, leaf_size)
        self._rng = np.random.default_rng(seed)
        self._top = top_spread_dims
        self.root = self._build(np.arange(len(data), dtype=np.int64))

    def _build(self, ids: np.ndarray) -> _Node:
        if len(ids) <= self.leaf_size:
            return _Node(ids=ids)
        block = self.data[ids]
        spread = block.max(axis=0) - block.min(axis=0)
        top = np.argsort(spread)[-self._top:]
        dim = int(self._rng.choice(top))
        values = block[:, dim]
        threshold = float(np.median(values))
        mask = values < threshold
        # a constant column can make one side empty; fall back to a split in half
        if not mask.any() or mask.all():
            order = np.argsort(values, kind="stable")
            half = len(ids) // 2
            left_ids, right_ids = ids[order[:half]], ids[order[half:]]
            threshold = float(values[order[half]])
        else:
            left_ids, right_ids = ids[mask], ids[~mask]
        return _Node(
            dim=dim,
            threshold=threshold,
            left=self._build(left_ids),
            right=self._build(right_ids),
        )

    def nbytes(self) -> int:
        """Measured payload size: leaf id buckets + split records."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.ids is not None:
                total += node.ids.nbytes
            else:
                total += 12  # int32 dim + float64 threshold
                stack.append(node.left)
                stack.append(node.right)
        return total

    # -- queries -------------------------------------------------------

    def descend(self, query: np.ndarray) -> np.ndarray:
        """Leaf bucket reached by value comparisons only (zero NDC)."""
        node = self.root
        while node.ids is None:
            node = node.left if query[node.dim] < node.threshold else node.right
        return node.ids

    def search(
        self,
        query: np.ndarray,
        k: int,
        counter: DistanceCounter | None = None,
        max_leaves: int = 8,
    ) -> np.ndarray:
        """Approximate kNN by bounded best-bin-first traversal.

        Visits up to ``max_leaves`` leaf buckets ordered by splitting-
        plane distance; distance evaluations are charged to ``counter``.
        """
        import heapq

        heap: list[tuple[float, int, _Node]] = [(0.0, 0, self.root)]
        tick = 1
        candidate_ids: list[np.ndarray] = []
        leaves = 0
        while heap and leaves < max_leaves:
            bound, _, node = heapq.heappop(heap)
            while node.ids is None:
                margin = float(query[node.dim] - node.threshold)
                if margin < 0:
                    near, far = node.left, node.right
                else:
                    near, far = node.right, node.left
                heapq.heappush(heap, (bound + abs(margin), tick, far))
                tick += 1
                node = near
            candidate_ids.append(node.ids)
            leaves += 1
        ids = np.unique(np.concatenate(candidate_ids))
        points = self.data[ids]
        if counter is not None:
            dists = counter.one_to_many(query, points)
        else:
            from repro.distance import l2_batch

            dists = l2_batch(query, points)
        order = np.argsort(dists, kind="stable")[:k]
        return ids[order]
