"""Two-pivot random hierarchical clustering — HCNNG's dataset division.

HCNNG (§3.2 A13, C1 *data division*) repeatedly splits the point set by
drawing two random pivots and assigning every point to the closer one,
recursing until clusters reach a minimum size.  Repeating the procedure
``m`` times with different randomness yields overlapping clusterings
whose per-cluster MSTs are unioned into the final graph.
"""

from __future__ import annotations

import numpy as np

from repro.distance import DistanceCounter, l2_batch

__all__ = ["hierarchical_two_pivot_clusters"]


def hierarchical_two_pivot_clusters(
    data: np.ndarray,
    min_cluster_size: int = 64,
    rng: np.random.Generator | None = None,
    counter: DistanceCounter | None = None,
) -> list[np.ndarray]:
    """One full hierarchical clustering pass; returns leaf clusters."""
    if rng is None:
        rng = np.random.default_rng()
    clusters: list[np.ndarray] = []
    stack = [np.arange(len(data), dtype=np.int64)]
    while stack:
        ids = stack.pop()
        if len(ids) <= min_cluster_size:
            clusters.append(ids)
            continue
        pivots = rng.choice(len(ids), size=2, replace=False)
        a, b = ids[pivots[0]], ids[pivots[1]]
        d_a = l2_batch(data[a], data[ids])
        d_b = l2_batch(data[b], data[ids])
        if counter is not None:
            counter.count += 2 * len(ids)
        mask = d_a <= d_b
        left, right = ids[mask], ids[~mask]
        if len(left) == 0 or len(right) == 0:
            # identical pivots (duplicates): split arbitrarily in half
            half = len(ids) // 2
            left, right = ids[:half], ids[half:]
        stack.append(left)
        stack.append(right)
    return clusters
