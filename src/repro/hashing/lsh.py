"""Random-hyperplane LSH buckets.

IEH's original seed structure is a hash table built in MATLAB; the
survey's C4 study finds hash-based entry acquisition the *best* seed
strategy because a bucket lookup needs no distance computations to
locate candidates (§5.4).  This module reproduces that behaviour with
sign-of-projection (SimHash) codes over several independent tables.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.distance import DistanceCounter, l2_batch

__all__ = ["RandomHyperplaneLSH"]


class RandomHyperplaneLSH:
    """Multi-table sign-projection LSH over a point set."""

    def __init__(
        self,
        data: np.ndarray,
        num_bits: int | None = None,
        num_tables: int = 4,
        seed: int = 0,
    ):
        self.data = data
        if num_bits is None:
            # target ~8 points per bucket so buckets are neither empty
            # (useless seeds) nor huge (expensive re-ranking)
            num_bits = max(4, int(np.log2(max(len(data), 16) / 8.0)))
        self.num_bits = num_bits
        self.num_tables = num_tables
        rng = np.random.default_rng(seed)
        dim = data.shape[1]
        center = data.mean(axis=0)
        self._center = center
        self._planes = rng.normal(size=(num_tables, num_bits, dim))
        self._tables: list[dict[int, list[int]]] = []
        shifted = data - center
        for t in range(num_tables):
            codes = self._codes(shifted, t)
            table: dict[int, list[int]] = defaultdict(list)
            for idx, code in enumerate(codes):
                table[int(code)].append(idx)
            self._tables.append(dict(table))

    def _codes(self, shifted: np.ndarray, table: int) -> np.ndarray:
        bits = (shifted @ self._planes[table].T) > 0
        weights = 1 << np.arange(self.num_bits)
        return bits @ weights

    def nbytes(self) -> int:
        """Measured payload size: hyperplanes, center, and table entries."""
        entries = sum(
            len(bucket) for table in self._tables for bucket in table.values()
        )
        buckets = sum(len(table) for table in self._tables)
        # 8 bytes per stored id, 8 per bucket key
        return self._planes.nbytes + self._center.nbytes + 8 * (entries + buckets)

    def candidates(self, query: np.ndarray) -> np.ndarray:
        """Union of the query's buckets across tables (zero NDC)."""
        shifted = (query - self._center)[None, :]
        found: list[int] = []
        for t, table in enumerate(self._tables):
            code = int(self._codes(shifted, t)[0])
            found.extend(table.get(code, ()))
        if not found:
            # empty buckets: fall back to one arbitrary bucket per table
            for table in self._tables:
                first = next(iter(table.values()))
                found.extend(first)
        return np.unique(np.asarray(found, dtype=np.int64))

    def search(
        self,
        query: np.ndarray,
        k: int,
        counter: DistanceCounter | None = None,
        max_candidates: int = 256,
    ) -> np.ndarray:
        """k best bucket members by true distance (charged to counter)."""
        ids = self.candidates(query)
        if len(ids) > max_candidates:
            ids = ids[:max_candidates]
        pts = self.data[ids]
        dists = (
            counter.one_to_many(query, pts)
            if counter is not None
            else l2_batch(query, pts)
        )
        order = np.argsort(dists, kind="stable")[:k]
        return ids[order]
