"""Hash-based seed structures (IEH, C4_IEH)."""

from repro.hashing.lsh import RandomHyperplaneLSH

__all__ = ["RandomHyperplaneLSH"]
