"""Search-performance sweeps: the QPS/Speedup-vs-Recall machinery.

Figures 7/8 (and 20/21) are produced by sweeping the candidate-set size
``ef`` and recording (recall, QPS, speedup) per point; Table 5's CS
column is the smallest ``ef`` reaching a target recall, with explicit
"ceiling" detection for algorithms whose recall saturates below the
target (the paper marks those with "+").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.base import BatchStats, GraphANNS
from repro.datasets.dataset import Dataset

__all__ = [
    "SweepPoint",
    "sweep_recall_curve",
    "candidate_size_for_recall",
    "CandidateSizeResult",
]

DEFAULT_EF_GRID = (10, 20, 30, 40, 60, 80, 120, 160, 240, 320, 480)


@dataclass(frozen=True)
class SweepPoint:
    """One point of a QPS/Speedup-vs-Recall curve."""

    ef: int
    recall: float
    qps: float
    speedup: float
    mean_ndc: float
    mean_hops: float


def sweep_recall_curve(
    algorithm: GraphANNS,
    dataset: Dataset,
    k: int = 10,
    ef_grid: tuple[int, ...] = DEFAULT_EF_GRID,
) -> list[SweepPoint]:
    """Evaluate the tradeoff curve over an ``ef`` grid (ascending)."""
    points = []
    for ef in ef_grid:
        stats = algorithm.batch_search(
            dataset.queries, dataset.ground_truth, k=k, ef=ef
        )
        points.append(
            SweepPoint(
                ef=ef,
                recall=stats.recall,
                qps=stats.qps,
                speedup=stats.speedup,
                mean_ndc=stats.mean_ndc,
                mean_hops=stats.mean_hops,
            )
        )
    return points


@dataclass(frozen=True)
class CandidateSizeResult:
    """Table 5 row fragment: CS (+ ceiling flag), PL and stats at CS."""

    candidate_size: int
    hit_ceiling: bool       # recall saturated below the target ("+" rows)
    recall: float
    mean_hops: float
    mean_ndc: float


def candidate_size_for_recall(
    algorithm: GraphANNS,
    dataset: Dataset,
    target_recall: float,
    k: int = 10,
    ef_grid: tuple[int, ...] = DEFAULT_EF_GRID,
) -> CandidateSizeResult:
    """Smallest ``ef`` whose recall reaches ``target_recall``.

    If even the largest grid value falls short, the largest is reported
    with ``hit_ceiling=True`` — the paper's "CS value with a +".
    """
    last: BatchStats | None = None
    for ef in ef_grid:
        stats = algorithm.batch_search(
            dataset.queries, dataset.ground_truth, k=k, ef=ef
        )
        last = stats
        if stats.recall >= target_recall:
            return CandidateSizeResult(
                candidate_size=ef,
                hit_ceiling=False,
                recall=stats.recall,
                mean_hops=stats.mean_hops,
                mean_ndc=stats.mean_ndc,
            )
    assert last is not None
    return CandidateSizeResult(
        candidate_size=ef_grid[-1],
        hit_ceiling=True,
        recall=last.recall,
        mean_hops=last.mean_hops,
        mean_ndc=last.mean_ndc,
    )
