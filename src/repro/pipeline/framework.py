"""The §5.4 unified evaluation framework.

A *benchmark algorithm* is assembled from one implementation per
component; evaluating a component means swapping only it while every
other component keeps the Table 13 default:

==== ==============================
C1   ``nsg``   (NN-Descent initialization)
C2   ``nssg``  (neighbor expansion)
C3   ``hnsw``  (RNG heuristic — equals NSG's, Appendix A)
C4   ``nssg``  (random entries, no auxiliary index)
C5   ``ieh``   (no connectivity guarantee)
C6   ``nssg``  (tied to C4)
C7   ``nsw``   (best-first search)
==== ==============================

Choices are referred to by the ``C#_Algorithm`` names of the paper,
lower-cased (e.g. ``c3="dpg"`` is the paper's *C3_DPG*).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import GraphANNS
from repro.components.candidates import (
    candidates_by_expansion,
    candidates_by_search,
    candidates_direct,
)
from repro.components.connectivity import ensure_reachable_from
from repro.components.refinement import map_refine, search_candidates
from repro.components.refinement import select_rng as fast_select_rng
from repro.components.initialization import (
    kdtree_neighbor_lists,
    random_neighbor_lists,
)
from repro.components.routing import (
    SearchResult,
    backtracking_search,
    best_first_search,
    guided_search,
    range_search,
    two_stage_search,
)
from repro.components.seeding import (
    CentroidSeeds,
    KDTreeDescendSeeds,
    KMeansTreeSeeds,
    LSHSeeds,
    RandomSeeds,
    VPTreeSeeds,
)
from repro.components.selection import (
    select_angle_sum,
    select_angle_threshold,
    select_closest,
    select_rng_heuristic,
)
from repro.distance import DistanceCounter
from repro.graphs.graph import Graph
from repro.graphs.knng import exact_knn_lists
from repro.nndescent import nn_descent

__all__ = ["BenchmarkAlgorithm", "BENCHMARK_DEFAULTS"]

BENCHMARK_DEFAULTS = {
    "c1": "nsg",
    "c2": "nssg",
    "c3": "hnsw",
    "c4": "nssg",
    "c5": "ieh",
    "c7": "nsw",
}

C1_CHOICES = ("nsg", "efanna", "kgraph", "ieh")
C2_CHOICES = ("nssg", "dpg", "nsw")
C3_CHOICES = ("hnsw", "nsg", "kgraph", "dpg", "nssg", "vamana")
C4_CHOICES = ("nssg", "nsg", "hcnng", "ieh", "ngt", "sptag-bkt")
C5_CHOICES = ("nsg", "ieh", "vamana")      # ieh/vamana: no guarantee
C7_CHOICES = ("nsw", "ngt", "fanng", "hcnng", "oa")


class BenchmarkAlgorithm(GraphANNS):
    """Refinement-strategy algorithm with pluggable C1–C7 components."""

    name = "benchmark"

    def __init__(
        self,
        c1: str = BENCHMARK_DEFAULTS["c1"],
        c2: str = BENCHMARK_DEFAULTS["c2"],
        c3: str = BENCHMARK_DEFAULTS["c3"],
        c4: str = BENCHMARK_DEFAULTS["c4"],
        c5: str = BENCHMARK_DEFAULTS["c5"],
        c7: str = BENCHMARK_DEFAULTS["c7"],
        init_k: int = 20,
        iterations: int = 8,
        candidate_limit: int = 100,
        max_degree: int = 20,
        num_seeds: int = 8,
        alpha: float = 2.0,
        min_angle_deg: float = 60.0,
        epsilon: float = 0.1,
        seed: int = 0,
        n_workers: int = 1,
    ):
        for label, value, choices in (
            ("c1", c1, C1_CHOICES), ("c2", c2, C2_CHOICES),
            ("c3", c3, C3_CHOICES), ("c4", c4, C4_CHOICES),
            ("c5", c5, C5_CHOICES), ("c7", c7, C7_CHOICES),
        ):
            if value not in choices:
                raise ValueError(f"{label}={value!r} not in {choices}")
        super().__init__(seed=seed, n_workers=n_workers)
        self.c1, self.c2, self.c3 = c1, c2, c3
        self.c4, self.c5, self.c7 = c4, c5, c7
        self.init_k = init_k
        self.iterations = iterations
        self.candidate_limit = candidate_limit
        self.max_degree = max_degree
        self.num_seeds = num_seeds
        self.alpha = alpha
        self.min_angle_deg = min_angle_deg
        self.epsilon = epsilon
        self.name = f"bench[{c1}|{c2}|{c3}|{c4}|{c5}|{c7}]"

    @property
    def phase_times(self) -> dict[str, float]:
        """Wall-clock seconds per build phase (from the last ``build``)."""
        if self.build_report is None:
            return {}
        return {
            label: stats.wall_s
            for label, stats in self.build_report.phases.items()
        }

    # -- C1 ---------------------------------------------------------------

    def _initialize(
        self, data: np.ndarray, counter: DistanceCounter, bctx=None
    ) -> tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        n = len(data)
        k = min(self.init_k, n - 1)
        if self.c1 == "kgraph":  # random initialization only
            ids = random_neighbor_lists(n, k, rng)
            dists = np.stack(
                [counter.one_to_many(data[v], data[ids[v]]) for v in range(n)]
            )
            order = np.argsort(dists, axis=1, kind="stable")
            return np.take_along_axis(ids, order, axis=1), np.take_along_axis(
                dists, order, axis=1
            )
        if self.c1 == "ieh":  # brute force (exact lists)
            return exact_knn_lists(data, k, counter=counter)
        if self.c1 == "efanna":  # KD-tree ANNS then NN-Descent
            initial = kdtree_neighbor_lists(
                data, k, counter=counter, seed=self.seed
            )
            result = nn_descent(
                data, k, iterations=max(2, self.iterations // 2),
                counter=counter, seed=self.seed, initial_ids=initial,
                bctx=bctx,
            )
            return result.ids, result.dists
        # "nsg": NN-Descent from random start
        result = nn_descent(
            data, k, iterations=self.iterations, counter=counter,
            seed=self.seed, bctx=bctx,
        )
        return result.ids, result.dists

    # -- C2 ---------------------------------------------------------------

    def _candidates(
        self,
        point: int,
        init_ids: np.ndarray,
        init_dists: np.ndarray,
        init_graph: Graph,
        data: np.ndarray,
        counter: DistanceCounter,
        entry: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.c2 == "dpg":
            return candidates_direct(init_ids, init_dists, point)
        if self.c2 == "nsw":
            ids, dists = candidates_by_search(
                init_graph, data, point, self.candidate_limit, entry,
                counter=counter,
            )
            return ids[: self.candidate_limit], dists[: self.candidate_limit]
        return candidates_by_expansion(
            init_ids, data, point, self.candidate_limit, counter=counter
        )

    # -- C3 ---------------------------------------------------------------

    def _select(
        self,
        point: int,
        cand_ids: np.ndarray,
        cand_dists: np.ndarray,
        data: np.ndarray,
        counter: DistanceCounter,
    ) -> np.ndarray:
        if self.c3 == "kgraph":
            return select_closest(cand_ids, cand_dists, self.max_degree)
        if self.c3 == "dpg":
            return select_angle_sum(
                data[point], cand_ids, cand_dists, data, self.max_degree
            )
        if self.c3 == "nssg":
            return select_angle_threshold(
                data[point], cand_ids, cand_dists, data, self.max_degree,
                min_angle_deg=self.min_angle_deg,
            )
        alpha = self.alpha if self.c3 == "vamana" else 1.0
        return select_rng_heuristic(
            data[point], cand_ids, cand_dists, data, self.max_degree,
            counter=counter, alpha=alpha,
        )

    # -- C4/C6 --------------------------------------------------------------

    def _make_seed_provider(self):
        if self.c4 == "nsg":
            return CentroidSeeds()
        if self.c4 == "hcnng":
            return KDTreeDescendSeeds(count=self.num_seeds, seed=self.seed)
        if self.c4 == "ieh":
            return LSHSeeds(count=self.num_seeds, seed=self.seed)
        if self.c4 == "ngt":
            return VPTreeSeeds(count=max(2, self.num_seeds // 2), seed=self.seed)
        if self.c4 == "sptag-bkt":
            return KMeansTreeSeeds(count=self.num_seeds, seed=self.seed)
        return RandomSeeds(count=self.num_seeds, seed=self.seed)

    # -- build --------------------------------------------------------------

    def _build_phases(self, data: np.ndarray, bctx):
        counter = bctx.counter
        n = len(data)
        state: dict = {}

        def init_phase():
            state["init_ids"], state["init_dists"] = self._initialize(
                data, counter, bctx=bctx
            )

        def refine_phase():
            init_ids, init_dists = state["init_ids"], state["init_dists"]
            init_graph = Graph(n, init_ids.tolist()).finalize()
            rng = np.random.default_rng(self.seed)
            entry = np.asarray([int(rng.integers(n))], dtype=np.int64)
            state["entry"] = entry
            graph = Graph(n)
            if bctx.parallel:
                fast_c3 = self.c3 in ("hnsw", "nsg", "vamana")
                alpha = self.alpha if self.c3 == "vamana" else 1.0

                def refine_point(p, worker):
                    if self.c2 == "nsw":
                        ids, dists = search_candidates(
                            worker, init_graph, data, p,
                            self.candidate_limit, entry,
                        )
                        cand_ids = ids[: self.candidate_limit]
                        cand_dists = dists[: self.candidate_limit]
                    else:
                        cand_ids, cand_dists = self._candidates(
                            p, init_ids, init_dists, init_graph, data,
                            worker.counter, entry,
                        )
                    if fast_c3:
                        return fast_select_rng(
                            data[p], cand_ids, cand_dists, data,
                            self.max_degree, counter=worker.counter,
                            alpha=alpha,
                        )
                    return self._select(
                        p, cand_ids, cand_dists, data, worker.counter
                    )

                map_refine(bctx, n, refine_point,
                           lambda p, sel: graph.set_neighbors(p, sel))
            else:
                for p in range(n):
                    cand_ids, cand_dists = self._candidates(
                        p, init_ids, init_dists, init_graph, data, counter,
                        entry,
                    )
                    selected = self._select(
                        p, cand_ids, cand_dists, data, counter
                    )
                    graph.set_neighbors(p, selected)
            state["graph"] = graph

        def connect_phase():
            if self.c5 == "nsg":
                ensure_reachable_from(
                    state["graph"], data, int(state["entry"][0]),
                    counter=counter, ctx=bctx.search_context(),
                )

        def seed_phase():
            self.graph = state["graph"]
            self.seed_provider = self._make_seed_provider()

        return [
            ("c1", init_phase),
            ("c2+c3", refine_phase),
            ("c5", connect_phase),
            ("c4", seed_phase),
        ]

    # -- C7 -----------------------------------------------------------------

    def _route(self, query, seeds, ef, counter, ctx=None, budget=None) -> SearchResult:
        if self.c7 == "ngt":
            return range_search(
                self.graph, self.data, query, seeds, ef, counter,
                epsilon=self.epsilon, ctx=ctx, budget=budget,
            )
        if self.c7 == "fanng":
            return backtracking_search(
                self.graph, self.data, query, seeds, ef, counter, ctx=ctx,
                budget=budget,
            )
        if self.c7 == "hcnng":
            return guided_search(
                self.graph, self.data, query, seeds, ef, counter, ctx=ctx,
                budget=budget,
            )
        if self.c7 == "oa":
            return two_stage_search(
                self.graph, self.data, query, seeds, ef, counter, ctx=ctx,
                budget=budget,
            )
        return best_first_search(
            self.graph, self.data, query, seeds, ef, counter, ctx=ctx,
            budget=budget,
        )
