"""Evaluation harness: recall sweeps, the §5.4 component framework,
and the Appendix D complexity-fitting utilities."""

from repro.pipeline.evaluation import (
    SweepPoint,
    sweep_recall_curve,
    candidate_size_for_recall,
    CandidateSizeResult,
)
from repro.pipeline.framework import BenchmarkAlgorithm, BENCHMARK_DEFAULTS
from repro.pipeline.complexity import fit_power_law
from repro.pipeline.tuning import (
    TuningResult,
    TrialResult,
    grid_search,
    make_validation_set,
)

__all__ = [
    "SweepPoint",
    "sweep_recall_curve",
    "candidate_size_for_recall",
    "CandidateSizeResult",
    "BenchmarkAlgorithm",
    "BENCHMARK_DEFAULTS",
    "fit_power_law",
    "TuningResult",
    "TrialResult",
    "grid_search",
    "make_validation_set",
]
