"""Parameter search on a validation sample — the paper's §5.1 protocol.

"Because parameters' adjustment in the entire base dataset may cause
overfitting, we randomly sample a certain percentage of data points
from the base dataset to form a validation dataset.  We search for the
optimal value of all the adjustable parameters of each algorithm on
each validation dataset."  :func:`grid_search` is that procedure: build
each parameter combination on a validation subset, score it by speedup
at a target recall, and return the winner.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

import numpy as np

from repro.algorithms.registry import create
from repro.datasets.dataset import Dataset
from repro.datasets.ground_truth import brute_force_knn
from repro.pipeline.evaluation import candidate_size_for_recall

__all__ = ["TuningResult", "TrialResult", "grid_search", "make_validation_set"]


def make_validation_set(
    dataset: Dataset,
    fraction: float = 0.25,
    num_queries: int | None = None,
    gt_depth: int = 20,
    seed: int = 0,
) -> Dataset:
    """Random base subsample with recomputed ground truth (no overfitting
    to the full base set, per §5.1)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    size = max(2, int(dataset.n * fraction))
    keep = rng.choice(dataset.n, size=size, replace=False)
    base = dataset.base[keep]
    queries = (
        dataset.queries if num_queries is None else dataset.queries[:num_queries]
    )
    gt, _ = brute_force_knn(base, queries, min(gt_depth, size))
    return Dataset(
        name=f"{dataset.name}[validation]",
        base=base,
        queries=queries,
        ground_truth=gt,
        metadata=dict(dataset.metadata, validation_fraction=fraction),
    )


@dataclass(frozen=True)
class TrialResult:
    """One parameter combination's validation score."""

    params: dict
    recall: float
    speedup: float
    candidate_size: int
    hit_ceiling: bool
    build_time_s: float


@dataclass
class TuningResult:
    """Winner plus the full trial history."""

    best_params: dict
    trials: list[TrialResult] = field(default_factory=list)


def grid_search(
    algorithm_name: str,
    dataset: Dataset,
    param_grid: dict[str, list],
    target_recall: float = 0.9,
    k: int = 10,
    validation_fraction: float = 0.25,
    seed: int = 0,
) -> TuningResult:
    """Exhaustive grid search scored by speedup at ``target_recall``.

    Combinations that cannot reach the target at any candidate size are
    ranked below every combination that can (by recall, then speedup).
    """
    if not param_grid:
        raise ValueError("param_grid must name at least one parameter")
    validation = make_validation_set(
        dataset, fraction=validation_fraction, seed=seed
    )
    keys = sorted(param_grid)
    trials: list[TrialResult] = []
    for values in itertools.product(*(param_grid[key] for key in keys)):
        params = dict(zip(keys, values))
        index = create(algorithm_name, seed=seed, **params)
        started = time.perf_counter()
        index.build(validation.base)
        build_time = time.perf_counter() - started
        result = candidate_size_for_recall(index, validation, target_recall, k=k)
        speedup = validation.n / max(result.mean_ndc, 1.0)
        trials.append(
            TrialResult(
                params=params,
                recall=result.recall,
                speedup=speedup,
                candidate_size=result.candidate_size,
                hit_ceiling=result.hit_ceiling,
                build_time_s=build_time,
            )
        )

    def score(trial: TrialResult):
        reached = not trial.hit_ceiling
        return (reached, trial.speedup if reached else trial.recall)

    best = max(trials, key=score)
    return TuningResult(best_params=best.params, trials=trials)
