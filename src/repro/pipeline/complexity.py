"""Power-law fitting for the Appendix D complexity estimates.

The paper derives empirical exponents — e.g. KGraph search is
O(|S|^0.54) — by measuring construction time / distance evaluations at
several dataset sizes and fitting ``y = a * n^b`` in log-log space.
:func:`fit_power_law` is that fit; the Figure 14 bench uses it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fit_power_law"]


def fit_power_law(sizes, values) -> tuple[float, float]:
    """Least-squares fit of ``values ~ coeff * sizes**exponent``.

    Returns ``(exponent, coeff)``.  Requires at least two strictly
    positive points.
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if len(sizes) != len(values):
        raise ValueError("sizes and values must have equal length")
    mask = (sizes > 0) & (values > 0)
    if mask.sum() < 2:
        raise ValueError("need at least two positive points for a power fit")
    log_n = np.log(sizes[mask])
    log_y = np.log(values[mask])
    exponent, intercept = np.polyfit(log_n, log_y, 1)
    return float(exponent), float(np.exp(intercept))
