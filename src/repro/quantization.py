"""Product quantization: compressed vectors for cheap seed acquisition.

§4.1's C4 catalogue includes Douze et al.'s Link&Code approach [33]:
compress the original vectors with (O)PQ, then pick search entries "by
quickly calculating the compressed vector".  This module provides the
substrate — a from-scratch product quantizer with asymmetric distance
computation (ADC) — and the matching :class:`PQSeeds` provider.

A PQ distance scans look-up tables instead of touching raw vectors, so
under the survey's NDC accounting a full ADC pass costs **zero** true
distance computations; its approximation error is why the returned
seeds still get re-ranked by the graph search afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.components.seeding import SeedProvider
from repro.distance import DistanceCounter, pairwise_l2
from repro.graphs.graph import Graph

__all__ = ["ProductQuantizer", "PQSeeds"]


class ProductQuantizer:
    """Sub-vector k-means codebooks with asymmetric distance computation."""

    def __init__(
        self,
        num_subspaces: int = 8,
        codebook_size: int = 32,
        kmeans_iterations: int = 8,
        seed: int = 0,
    ):
        self.num_subspaces = num_subspaces
        self.codebook_size = codebook_size
        self.kmeans_iterations = kmeans_iterations
        self.seed = seed
        self.codebooks: list[np.ndarray] | None = None  # per-subspace (K, d_s)
        self.codes: np.ndarray | None = None            # (n, M) uint8/16
        self._boundaries: list[tuple[int, int]] = []

    def fit(self, data: np.ndarray) -> "ProductQuantizer":
        """Learn codebooks on ``data`` and encode it."""
        data = np.asarray(data, dtype=np.float64)
        n, dim = data.shape
        if self.num_subspaces > dim:
            self.num_subspaces = dim
        rng = np.random.default_rng(self.seed)
        k = min(self.codebook_size, n)
        edges = np.linspace(0, dim, self.num_subspaces + 1, dtype=int)
        self._boundaries = list(zip(edges[:-1], edges[1:]))
        self.codebooks = []
        codes = np.empty((n, self.num_subspaces), dtype=np.int64)
        for m, (lo, hi) in enumerate(self._boundaries):
            block = data[:, lo:hi]
            centroids = block[rng.choice(n, size=k, replace=False)].copy()
            assign = np.zeros(n, dtype=np.int64)
            for _ in range(self.kmeans_iterations):
                dists = pairwise_l2(block, centroids)
                assign = np.argmin(dists, axis=1)
                for c in range(k):
                    members = block[assign == c]
                    if len(members):
                        centroids[c] = members.mean(axis=0)
            # re-assign against the final centroids so stored codes agree
            # with what encode() would produce
            assign = np.argmin(pairwise_l2(block, centroids), axis=1)
            self.codebooks.append(centroids)
            codes[:, m] = assign
        self.codes = codes
        return self

    def _require_fit(self) -> None:
        if self.codebooks is None or self.codes is None:
            raise RuntimeError("call fit() before using the quantizer")

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Codes for new vectors (nearest centroid per subspace)."""
        self._require_fit()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        codes = np.empty((len(vectors), self.num_subspaces), dtype=np.int64)
        for m, (lo, hi) in enumerate(self._boundaries):
            dists = pairwise_l2(vectors[:, lo:hi], self.codebooks[m])
            codes[:, m] = np.argmin(dists, axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        self._require_fit()
        codes = np.atleast_2d(codes)
        dim = self._boundaries[-1][1]
        out = np.empty((len(codes), dim))
        for m, (lo, hi) in enumerate(self._boundaries):
            out[:, lo:hi] = self.codebooks[m][codes[:, m]]
        return out

    def adc_distances(self, query: np.ndarray) -> np.ndarray:
        """Approximate distance from ``query`` to every encoded vector.

        Builds one look-up table per subspace (query-to-centroid) and
        sums table entries — no raw-vector access, hence zero NDC.
        Routes through :meth:`adc_distances_batch` so a query scored
        alone and the same query scored inside a batch see identical
        floats.
        """
        return self.adc_distances_batch(np.atleast_2d(query))[0]

    def adc_distances_batch(self, queries: np.ndarray) -> np.ndarray:
        """ADC distances for a whole query block at once.

        The per-subspace look-up tables for every query are produced by
        a single BLAS GEMM against the centroid pool (the expanded form
        ``|q|² − 2 q·c + |c|²``), then gathered through the stored
        codes — the fused per-batch seed scoring the batched engine's
        acquisition stage leans on.  Still zero NDC: no raw data row is
        ever touched.
        """
        self._require_fit()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        total = np.zeros((len(queries), len(self.codes)))
        for m, (lo, hi) in enumerate(self._boundaries):
            block = queries[:, lo:hi]
            centroids = self.codebooks[m]
            tables = (
                np.einsum("ij,ij->i", block, block)[:, None]
                - 2.0 * block @ centroids.T
                + np.einsum("ij,ij->i", centroids, centroids)[None, :]
            )
            total += np.maximum(tables, 0.0)[:, self.codes[:, m]]
        return np.sqrt(total)

    def memory_bytes(self) -> int:
        """Codebooks + one byte-scale code per subspace per vector."""
        self._require_fit()
        codebook_bytes = sum(cb.nbytes for cb in self.codebooks)
        bytes_per_code = 1 if self.codebook_size <= 256 else 2
        return codebook_bytes + self.codes.shape[0] * self.num_subspaces * bytes_per_code


class PQSeeds(SeedProvider):
    """C4/C6 provider: entries picked by scanning PQ codes ([33]).

    The full ADC scan costs no true distance computations; the ``count``
    closest-by-ADC points become the seeds.
    """

    def __init__(
        self,
        count: int = 8,
        num_subspaces: int = 8,
        codebook_size: int = 32,
        seed: int = 0,
    ):
        self.count = count
        self.num_subspaces = num_subspaces
        self.codebook_size = codebook_size
        self.seed = seed
        self._pq: ProductQuantizer | None = None

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        self._pq = ProductQuantizer(
            num_subspaces=self.num_subspaces,
            codebook_size=self.codebook_size,
            seed=self.seed,
        ).fit(data)
        self.extra_bytes = self._pq.memory_bytes()

    def acquire(
        self, query: np.ndarray, counter: DistanceCounter | None = None
    ) -> np.ndarray:
        if self._pq is None:
            raise RuntimeError("prepare() must run before acquire()")
        approx = self._pq.adc_distances(query)
        return np.argsort(approx, kind="stable")[: self.count]

    def acquire_batch(self, queries):
        """Batched ADC acquisition: one GEMM per subspace for the whole
        block (see :meth:`ProductQuantizer.adc_distances_batch`), still
        charging zero NDC.  Seeds agree bit-for-bit with per-query
        :meth:`acquire` because both score through the same batch path.
        """
        if self._pq is None:
            raise RuntimeError("prepare() must run before acquire_batch()")
        approx = self._pq.adc_distances_batch(np.asarray(queries))
        order = np.argsort(approx, axis=1, kind="stable")[:, : self.count]
        return (
            [np.asarray(row, dtype=np.int64) for row in order],
            np.zeros(len(queries), dtype=np.int64),
        )

    def spec(self) -> dict:
        return {
            "kind": "pq",
            "count": self.count,
            "num_subspaces": self.num_subspaces,
            "codebook_size": self.codebook_size,
            "seed": self.seed,
        }
