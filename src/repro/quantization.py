"""Product quantization: compressed vectors for seeding *and* traversal.

§4.1's C4 catalogue includes Douze et al.'s Link&Code approach [33]:
compress the original vectors with (O)PQ, then pick search entries "by
quickly calculating the compressed vector".  This module provides the
substrate — a from-scratch product quantizer with asymmetric distance
computation (ADC) — the matching :class:`PQSeeds` provider, and the
:class:`CompressedTier` that promotes ADC from seeding to a first-class
traversal mode: uint8 codes plus a per-query float32 look-up table
(built once per query, one GEMM per subspace) score frontier neighbors
without ever touching a float32 data row, so the resident working set
is codes + CSR and the full-precision tier is read only at re-rank
time.

A PQ distance scans look-up tables instead of touching raw vectors, so
under the survey's NDC accounting a full ADC pass costs **zero** true
distance computations; its approximation error is why ADC-ranked
candidates still get re-ranked exactly afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.components.seeding import SeedProvider
from repro.distance import DistanceCounter, pairwise_l2
from repro.graphs.graph import Graph

__all__ = ["ProductQuantizer", "PQSeeds", "CompressedTier"]


class ProductQuantizer:
    """Sub-vector k-means codebooks with asymmetric distance computation."""

    def __init__(
        self,
        num_subspaces: int = 8,
        codebook_size: int = 32,
        kmeans_iterations: int = 8,
        seed: int = 0,
    ):
        if num_subspaces < 1:
            raise ValueError(
                f"num_subspaces must be at least 1, got {num_subspaces}"
            )
        if codebook_size < 1:
            raise ValueError(
                f"codebook_size must be at least 1, got {codebook_size}"
            )
        self.num_subspaces = num_subspaces
        self.codebook_size = codebook_size
        self.kmeans_iterations = kmeans_iterations
        self.seed = seed
        self.codebooks: list[np.ndarray] | None = None  # per-subspace (K, d_s)
        self.codes: np.ndarray | None = None            # (n, M) uint8/16
        self._boundaries: list[tuple[int, int]] = []

    def fit(self, data: np.ndarray) -> "ProductQuantizer":
        """Learn codebooks on ``data`` and encode it.

        Dimensions that do not divide ``num_subspaces`` are handled by
        uneven subspace boundaries (``linspace`` edges), so every
        coordinate belongs to exactly one subspace; a ``codebook_size``
        of 1 degrades gracefully to a single centroid per subspace.
        """
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0 or data.shape[1] == 0:
            raise ValueError(
                f"fit() needs a non-empty 2-D array, got shape {data.shape}"
            )
        n, dim = data.shape
        if self.num_subspaces > dim:
            self.num_subspaces = dim
        rng = np.random.default_rng(self.seed)
        k = min(self.codebook_size, n)
        edges = np.linspace(0, dim, self.num_subspaces + 1, dtype=int)
        self._boundaries = list(zip(edges[:-1], edges[1:]))
        self.codebooks = []
        codes = np.empty((n, self.num_subspaces), dtype=np.int64)
        for m, (lo, hi) in enumerate(self._boundaries):
            block = data[:, lo:hi]
            centroids = block[rng.choice(n, size=k, replace=False)].copy()
            assign = np.zeros(n, dtype=np.int64)
            for _ in range(self.kmeans_iterations):
                dists = pairwise_l2(block, centroids)
                assign = np.argmin(dists, axis=1)
                for c in range(k):
                    members = block[assign == c]
                    if len(members):
                        centroids[c] = members.mean(axis=0)
            # re-assign against the final centroids so stored codes agree
            # with what encode() would produce
            assign = np.argmin(pairwise_l2(block, centroids), axis=1)
            self.codebooks.append(centroids)
            codes[:, m] = assign
        self.codes = codes
        return self

    def _require_fit(self) -> None:
        if self.codebooks is None or self.codes is None:
            raise RuntimeError("call fit() before using the quantizer")

    @property
    def dim(self) -> int:
        """Dimensionality the quantizer was fitted on."""
        self._require_fit()
        return int(self._boundaries[-1][1])

    def _check_query_dim(self, queries: np.ndarray, caller: str) -> None:
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(
                f"{caller} expects vectors of dimension {self.dim}, "
                f"got shape {queries.shape}"
            )

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Codes for new vectors (nearest centroid per subspace)."""
        self._require_fit()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        self._check_query_dim(vectors, "encode()")
        codes = np.empty((len(vectors), self.num_subspaces), dtype=np.int64)
        for m, (lo, hi) in enumerate(self._boundaries):
            dists = pairwise_l2(vectors[:, lo:hi], self.codebooks[m])
            codes[:, m] = np.argmin(dists, axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        self._require_fit()
        codes = np.atleast_2d(codes)
        dim = self._boundaries[-1][1]
        out = np.empty((len(codes), dim))
        for m, (lo, hi) in enumerate(self._boundaries):
            out[:, lo:hi] = self.codebooks[m][codes[:, m]]
        return out

    def adc_distances(self, query: np.ndarray) -> np.ndarray:
        """Approximate distance from ``query`` to every encoded vector.

        Builds one look-up table per subspace (query-to-centroid) and
        sums table entries — no raw-vector access, hence zero NDC.
        Routes through :meth:`adc_distances_batch` so a query scored
        alone and the same query scored inside a batch see identical
        floats.
        """
        return self.adc_distances_batch(np.atleast_2d(query))[0]

    def adc_distances_batch(self, queries: np.ndarray) -> np.ndarray:
        """ADC distances for a whole query block at once.

        The per-subspace look-up tables for every query are produced by
        a single BLAS GEMM against the centroid pool (the expanded form
        ``|q|² − 2 q·c + |c|²``), then gathered through the stored
        codes — the fused per-batch seed scoring the batched engine's
        acquisition stage leans on.  Still zero NDC: no raw data row is
        ever touched.
        """
        self._require_fit()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        self._check_query_dim(queries, "adc_distances_batch()")
        if len(queries) == 0:
            return np.zeros((0, len(self.codes)))
        total = np.zeros((len(queries), len(self.codes)))
        for m, (lo, hi) in enumerate(self._boundaries):
            block = queries[:, lo:hi]
            centroids = self.codebooks[m]
            tables = (
                np.einsum("ij,ij->i", block, block)[:, None]
                - 2.0 * block @ centroids.T
                + np.einsum("ij,ij->i", centroids, centroids)[None, :]
            )
            total += np.maximum(tables, 0.0)[:, self.codes[:, m]]
        return np.sqrt(total)

    def lut_batch(self, queries: np.ndarray) -> np.ndarray:
        """Per-query ADC look-up tables, shape ``(Q, M, K)`` float32.

        Row ``[q, m, c]`` is the squared distance from query ``q``'s
        ``m``-th sub-vector to centroid ``c`` — computed in float64 via
        the same expanded GEMM form as :meth:`adc_distances_batch`,
        clipped at zero, then narrowed to float32.  float32 tables are
        what both the C ADC kernel and the NumPy fallback consume; each
        accumulates entries into a float64 total in subspace order, so
        the two scorers are bit-identical by construction.
        """
        self._require_fit()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        self._check_query_dim(queries, "lut_batch()")
        num_centroids = len(self.codebooks[0])
        luts = np.empty(
            (len(queries), self.num_subspaces, num_centroids), dtype=np.float32
        )
        for m, (lo, hi) in enumerate(self._boundaries):
            block = queries[:, lo:hi]
            centroids = self.codebooks[m]
            tables = (
                np.einsum("ij,ij->i", block, block)[:, None]
                - 2.0 * block @ centroids.T
                + np.einsum("ij,ij->i", centroids, centroids)[None, :]
            )
            luts[:, m, :] = np.maximum(tables, 0.0)
        return luts

    def memory_bytes(self) -> int:
        """Codebooks + one byte-scale code per subspace per vector."""
        self._require_fit()
        codebook_bytes = sum(cb.nbytes for cb in self.codebooks)
        bytes_per_code = 1 if self.codebook_size <= 256 else 2
        return codebook_bytes + self.codes.shape[0] * self.num_subspaces * bytes_per_code


class PQSeeds(SeedProvider):
    """C4/C6 provider: entries picked by scanning PQ codes ([33]).

    The full ADC scan costs no true distance computations; the ``count``
    closest-by-ADC points become the seeds.
    """

    def __init__(
        self,
        count: int = 8,
        num_subspaces: int = 8,
        codebook_size: int = 32,
        seed: int = 0,
    ):
        self.count = count
        self.num_subspaces = num_subspaces
        self.codebook_size = codebook_size
        self.seed = seed
        self._pq: ProductQuantizer | None = None

    def prepare(self, data: np.ndarray, graph: Graph) -> None:
        self._pq = ProductQuantizer(
            num_subspaces=self.num_subspaces,
            codebook_size=self.codebook_size,
            seed=self.seed,
        ).fit(data)
        self.extra_bytes = self._pq.memory_bytes()

    def acquire(
        self, query: np.ndarray, counter: DistanceCounter | None = None
    ) -> np.ndarray:
        if self._pq is None:
            raise RuntimeError("prepare() must run before acquire()")
        approx = self._pq.adc_distances(query)
        return np.argsort(approx, kind="stable")[: self.count]

    def acquire_batch(self, queries):
        """Batched ADC acquisition: one GEMM per subspace for the whole
        block (see :meth:`ProductQuantizer.adc_distances_batch`), still
        charging zero NDC.  Seeds agree bit-for-bit with per-query
        :meth:`acquire` because both score through the same batch path.
        """
        if self._pq is None:
            raise RuntimeError("prepare() must run before acquire_batch()")
        approx = self._pq.adc_distances_batch(np.asarray(queries))
        order = np.argsort(approx, axis=1, kind="stable")[:, : self.count]
        return (
            [np.asarray(row, dtype=np.int64) for row in order],
            np.zeros(len(queries), dtype=np.int64),
        )

    def spec(self) -> dict:
        return {
            "kind": "pq",
            "count": self.count,
            "num_subspaces": self.num_subspaces,
            "codebook_size": self.codebook_size,
            "seed": self.seed,
        }


class CompressedTier:
    """Resident compressed vector tier for ADC traversal.

    Wraps a fitted :class:`ProductQuantizer` and keeps its codes as a
    contiguous uint8 ``(n, M)`` matrix — the only per-vector state the
    expansion loop needs.  A query enters traversal by building one
    float32 LUT (:meth:`lut`); frontier neighbors are then scored by
    gathering ``M`` table entries per code row (:meth:`score`), either
    in the C kernel or through the bit-identical NumPy fallback here.
    The float32 data tier is untouched until the exact re-rank.
    """

    def __init__(self, pq: ProductQuantizer, codes: np.ndarray | None = None):
        pq._require_fit()
        src = pq.codes if codes is None else np.asarray(codes)
        if src.max(initial=0) > 255 or src.min(initial=0) < 0:
            raise ValueError(
                "compressed traversal needs uint8 codes: codebook_size must "
                f"be <= 256, got code values outside [0, 255] "
                f"(codebook_size={pq.codebook_size})"
            )
        self.pq = pq
        self.codes = np.ascontiguousarray(src, dtype=np.uint8)

    @classmethod
    def fit(
        cls,
        data: np.ndarray,
        num_subspaces: int = 8,
        codebook_size: int = 32,
        kmeans_iterations: int = 8,
        seed: int = 0,
    ) -> "CompressedTier":
        """Fit a quantizer on ``data`` and wrap it as a traversal tier."""
        if codebook_size > 256:
            raise ValueError(
                f"codebook_size must be <= 256 for uint8 codes, "
                f"got {codebook_size}"
            )
        pq = ProductQuantizer(
            num_subspaces=num_subspaces,
            codebook_size=codebook_size,
            kmeans_iterations=kmeans_iterations,
            seed=seed,
        ).fit(data)
        return cls(pq)

    @property
    def num_subspaces(self) -> int:
        return int(self.codes.shape[1])

    @property
    def num_centroids(self) -> int:
        """Actual centroids per subspace (≤ configured codebook_size)."""
        return len(self.pq.codebooks[0])

    def __len__(self) -> int:
        return len(self.codes)

    def lut(self, query: np.ndarray) -> np.ndarray:
        """Float32 ``(M, K)`` look-up table for one query."""
        return self.pq.lut_batch(np.atleast_2d(query))[0]

    def lut_batch(self, queries: np.ndarray) -> np.ndarray:
        """Float32 ``(Q, M, K)`` tables, one GEMM per subspace for the
        whole batch — shared by the MT ADC kernel and the Python
        fallback so both score from identical tables."""
        return self.pq.lut_batch(queries)

    def score(self, lut: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """ADC squared-distance surrogates for ``ids`` (NumPy fallback).

        Accumulates float32 table entries into a float64 total in
        subspace order — the exact operation the C kernel performs per
        element, so the two paths agree bit-for-bit.
        """
        rows = self.codes[ids]
        total = np.zeros(len(rows))
        for m in range(rows.shape[1]):
            total += lut[m][rows[:, m]]
        return total

    def permute(self, order: np.ndarray) -> "CompressedTier":
        """Tier for data reordered by ``order`` (codes follow rows)."""
        permuted = self.codes[np.asarray(order, dtype=np.int64)]
        self.pq.codes = permuted.astype(self.pq.codes.dtype)
        return CompressedTier(self.pq, permuted)

    def memory_bytes(self) -> int:
        """Resident bytes: uint8 codes + float64 codebooks."""
        codebook_bytes = sum(cb.nbytes for cb in self.pq.codebooks)
        return self.codes.nbytes + codebook_bytes

    # -- persistence (index format v4) ---------------------------------

    def export_state(self) -> tuple[np.ndarray, np.ndarray, dict]:
        """``(codes, codebook, meta)`` triple for :mod:`repro.io`.

        The codebook is concatenated along the feature axis into one
        ``(K, dim)`` float64 matrix; ``meta`` records the subspace
        boundaries needed to slice it back apart.
        """
        codebook = np.concatenate(self.pq.codebooks, axis=1)
        meta = {
            "num_subspaces": int(self.pq.num_subspaces),
            "codebook_size": int(self.pq.codebook_size),
            "kmeans_iterations": int(self.pq.kmeans_iterations),
            "seed": int(self.pq.seed),
            "boundaries": [[int(lo), int(hi)] for lo, hi in self.pq._boundaries],
        }
        return self.codes, codebook, meta

    @classmethod
    def from_state(
        cls, codes: np.ndarray, codebook: np.ndarray, meta: dict
    ) -> "CompressedTier":
        """Rebuild a tier from arrays produced by :meth:`export_state`."""
        pq = ProductQuantizer(
            num_subspaces=int(meta["num_subspaces"]),
            codebook_size=int(meta["codebook_size"]),
            kmeans_iterations=int(meta.get("kmeans_iterations", 8)),
            seed=int(meta.get("seed", 0)),
        )
        boundaries = [(int(lo), int(hi)) for lo, hi in meta["boundaries"]]
        pq._boundaries = boundaries
        codebook = np.asarray(codebook, dtype=np.float64)
        pq.codebooks = [
            np.ascontiguousarray(codebook[:, lo:hi]) for lo, hi in boundaries
        ]
        codes = np.ascontiguousarray(codes, dtype=np.uint8)
        pq.codes = codes.astype(np.int64)
        return cls(pq, codes)

    # -- integrity (verify_index, format v4) ---------------------------

    def consistency_issues(self, n: int, dim: int) -> list[str]:
        """Structural problems that make the tier unsafe to traverse."""
        issues: list[str] = []
        if self.codes.ndim != 2:
            issues.append(f"compressed codes are {self.codes.ndim}-D, expected 2-D")
            return issues
        if len(self.codes) != n:
            issues.append(
                f"compressed codes cover {len(self.codes)} rows "
                f"but the index holds {n}"
            )
        books = self.pq.codebooks or []
        if len(books) != self.codes.shape[1]:
            issues.append(
                f"codes carry {self.codes.shape[1]} subspaces but the "
                f"quantizer holds {len(books)} codebooks"
            )
        bounds = self.pq._boundaries
        widths_ok = (
            len(bounds) == len(books)
            and all(cb.shape[1] == hi - lo for cb, (lo, hi) in zip(books, bounds))
        )
        if not widths_ok:
            issues.append("codebook widths disagree with subspace boundaries")
        if bounds and dim >= 0 and bounds[-1][1] != dim:
            issues.append(
                f"compressed tier was fitted on dimension {bounds[-1][1]} "
                f"but the index stores dimension {dim}"
            )
        if books and len(self.codes):
            num_centroids = min(len(cb) for cb in books)
            if int(self.codes.max()) >= num_centroids:
                issues.append(
                    f"code value {int(self.codes.max())} exceeds the "
                    f"{num_centroids}-entry codebook"
                )
        return issues
