"""Delaunay Graph (DG, §3.1).

For dimension 2 and 3 we build the exact Delaunay triangulation via
Qhull (scipy).  In higher dimensions the exact DG degenerates towards
the complete graph (the paper's stated drawback) and exact construction
is impractical, which is precisely why ANNS algorithms only ever
*approximate* it (NSW, NGT); ``delaunay_graph`` therefore refuses
dimensions above ``max_exact_dim`` instead of silently approximating.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from repro.graphs.graph import Graph

__all__ = ["delaunay_graph"]


def delaunay_graph(data: np.ndarray, max_exact_dim: int = 4) -> Graph:
    """Exact Delaunay graph of ``data`` (undirected).

    Raises ``ValueError`` when ``data`` has more than ``max_exact_dim``
    dimensions — approximations of DG live in the NSW/NGT algorithms,
    not here.
    """
    n, dim = data.shape
    if dim > max_exact_dim:
        raise ValueError(
            f"exact Delaunay graph is limited to dim <= {max_exact_dim}; "
            f"got dim={dim}. Use NSW/NGT for approximate DG in high dimension."
        )
    if n <= dim + 1:
        # Degenerate simplex count: fall back to the complete graph,
        # which equals the DG for such tiny inputs.
        graph = Graph(n)
        for i in range(n):
            for j in range(i + 1, n):
                graph.add_undirected_edge(i, j)
        return graph
    tri = Delaunay(data)
    graph = Graph(n)
    for simplex in tri.simplices:
        for a_pos, a in enumerate(simplex):
            for b in simplex[a_pos + 1:]:
                graph.add_undirected_edge(int(a), int(b))
    return graph
