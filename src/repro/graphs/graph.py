"""Adjacency-list graph shared by every index in the library.

Vertices are integers ``0..n-1`` that correspond one-to-one with rows of
the dataset (Definition 2.3).  Edges are *directed*: ``v in
graph.neighbors(u)`` means the search may hop ``u -> v``.  Undirected
graphs (NSW, DPG, k-DR) simply store both directions.

The class also exposes the index-characteristic statistics of §5.1:
average/max/min out-degree (Table 4, Table 11), number of weakly
connected components (Table 4), and an index-size estimate (Figure 6).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Graph"]

_EDGE_BYTES = 4  # int32 neighbor id, matching the paper's C++ layouts


class Graph:
    """A directed proximity graph over ``n`` vertices."""

    def __init__(self, n: int, neighbor_lists: Sequence[Iterable[int]] | None = None):
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self.n = n
        if neighbor_lists is None:
            self._adj: list[list[int]] = [[] for _ in range(n)]
        else:
            if len(neighbor_lists) != n:
                raise ValueError(
                    f"expected {n} neighbor lists, got {len(neighbor_lists)}"
                )
            self._adj = [list(dict.fromkeys(int(v) for v in lst)) for lst in neighbor_lists]
        self._arrays: list[np.ndarray] | None = None

    # -- construction -------------------------------------------------

    def add_vertex(self) -> int:
        """Append an isolated vertex; returns its id (incremental inserts)."""
        self._adj.append([])
        self.n += 1
        self._arrays = None
        return self.n - 1

    def add_edge(self, u: int, v: int) -> None:
        """Add the directed edge ``u -> v`` if absent."""
        if u == v:
            return
        if v not in self._adj[u]:
            self._adj[u].append(v)
            self._arrays = None

    def add_undirected_edge(self, u: int, v: int) -> None:
        """Add both edge directions (NSW/DPG-style undirected graphs)."""
        self.add_edge(u, v)
        self.add_edge(v, u)

    def set_neighbors(self, u: int, neighbors: Iterable[int]) -> None:
        """Replace ``u``'s out-neighbors (deduplicated, self-loops dropped)."""
        self._adj[u] = [int(v) for v in dict.fromkeys(neighbors) if int(v) != u]
        self._arrays = None

    def neighbors(self, u: int) -> list[int]:
        """Mutable out-neighbor list of ``u``."""
        return self._adj[u]

    def neighbor_array(self, u: int) -> np.ndarray:
        """Neighbors of ``u`` as an int array (cached after :meth:`finalize`)."""
        if self._arrays is not None:
            return self._arrays[u]
        return np.asarray(self._adj[u], dtype=np.int64)

    def finalize(self) -> "Graph":
        """Freeze adjacency into int arrays for fast search-time access."""
        self._arrays = [np.asarray(lst, dtype=np.int64) for lst in self._adj]
        return self

    def copy(self) -> "Graph":
        """Deep copy of the adjacency (vertices share nothing)."""
        return Graph(self.n, [list(lst) for lst in self._adj])

    # -- iteration / comparison ----------------------------------------

    def __iter__(self) -> Iterator[list[int]]:
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield every directed edge ``(u, v)``."""
        for u, lst in enumerate(self._adj):
            for v in lst:
                yield u, v

    def edge_set(self) -> set[tuple[int, int]]:
        """All directed edges as a set (graph-equality comparisons)."""
        return set(self.edges())

    @property
    def num_edges(self) -> int:
        """Total directed edge count."""
        return sum(len(lst) for lst in self._adj)

    # -- statistics (§5.1 metrics) --------------------------------------

    @property
    def average_out_degree(self) -> float:
        """Table 4's AD column."""
        if self.n == 0:
            return 0.0
        return self.num_edges / self.n

    @property
    def max_out_degree(self) -> int:
        """Table 11's D_max."""
        return max((len(lst) for lst in self._adj), default=0)

    @property
    def min_out_degree(self) -> int:
        """Table 11's D_min."""
        return min((len(lst) for lst in self._adj), default=0)

    def num_connected_components(self) -> int:
        """Weakly connected components (edges treated as undirected).

        This is the CC column of Table 4: it measures whether every
        vertex is *reachable* when the search is allowed to enter from
        any component, which is what connectivity guarantees (C5) aim
        to maximise (CC == 1).
        """
        if self.n == 0:
            return 0
        undirected: list[list[int]] = [[] for _ in range(self.n)]
        for u, v in self.edges():
            undirected[u].append(v)
            undirected[v].append(u)
        seen = np.zeros(self.n, dtype=bool)
        components = 0
        for start in range(self.n):
            if seen[start]:
                continue
            components += 1
            queue = deque([start])
            seen[start] = True
            while queue:
                u = queue.popleft()
                for v in undirected[u]:
                    if not seen[v]:
                        seen[v] = True
                        queue.append(v)
        return components

    def index_size_bytes(self) -> int:
        """Approximate serialized size: one int32 per edge + per-vertex length."""
        return self.num_edges * _EDGE_BYTES + self.n * _EDGE_BYTES

    def to_padded_matrix(self, pad: int = -1) -> np.ndarray:
        """Adjacency as an ``(n, D_max)`` int matrix, ``pad``-filled.

        Appendix I's memory-alignment trick: aligning every neighbor
        list to the maximum out-degree allows contiguous access — and
        lets NumPy fetch whole neighbor rows in one slice.  Algorithms
        whose D_max dwarfs their average degree (NSW, DPG, k-DR) pay a
        correspondingly large padding bill, which is exactly the
        paper's caveat about this optimisation.
        """
        width = self.max_out_degree
        matrix = np.full((self.n, width), pad, dtype=np.int64)
        for v, lst in enumerate(self._adj):
            matrix[v, : len(lst)] = lst
        return matrix

    def reverse(self) -> "Graph":
        """Graph with every edge direction flipped."""
        rev = Graph(self.n)
        for u, v in self.edges():
            rev.add_edge(v, u)
        return rev

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(n={self.n}, edges={self.num_edges}, "
            f"avg_deg={self.average_out_degree:.1f})"
        )
