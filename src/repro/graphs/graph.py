"""Adjacency-list graph shared by every index in the library.

Vertices are integers ``0..n-1`` that correspond one-to-one with rows of
the dataset (Definition 2.3).  Edges are *directed*: ``v in
graph.neighbors(u)`` means the search may hop ``u -> v``.  Undirected
graphs (NSW, DPG, k-DR) simply store both directions.

The graph has two storage layouts.  During construction it is a Python
list-of-lists, cheap to mutate.  :meth:`finalize` freezes it into CSR
form — one ``indptr`` offsets array plus one flat ``indices`` array,
both ``int32``, the layout ParlayANN-style systems use — after which
:meth:`neighbor_array` is a zero-copy slice and the native search
kernel can walk adjacency without touching Python.  Any mutation drops
back to the list layout transparently.

The class also exposes the index-characteristic statistics of §5.1:
average/max/min out-degree (Table 4, Table 11), number of weakly
connected components (Table 4), and an index-size estimate (Figure 6).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Graph"]

_EDGE_BYTES = 4  # int32 neighbor id, matching the paper's C++ layouts


class Graph:
    """A directed proximity graph over ``n`` vertices."""

    def __init__(self, n: int, neighbor_lists: Sequence[Iterable[int]] | None = None):
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self.n = n
        if neighbor_lists is None:
            self._adj: list[list[int]] | None = [[] for _ in range(n)]
        else:
            if len(neighbor_lists) != n:
                raise ValueError(
                    f"expected {n} neighbor lists, got {len(neighbor_lists)}"
                )
            self._adj = [list(dict.fromkeys(int(v) for v in lst)) for lst in neighbor_lists]
        self._indptr: np.ndarray | None = None
        self._indices: np.ndarray | None = None

    @classmethod
    def from_csr(
        cls, indptr: np.ndarray, indices: np.ndarray, validate: bool = True
    ) -> "Graph":
        """Build a graph directly in the frozen CSR layout.

        ``indptr`` has ``n + 1`` monotone offsets into ``indices``; the
        neighbors of ``u`` are ``indices[indptr[u]:indptr[u + 1]]``.
        The adjacency lists are materialized lazily, only if the graph
        is mutated — a deserialized index searches straight from the
        arrays it was stored as.

        ``validate=False`` skips the invariant checks; it exists for
        the fault-injection harness, which deliberately constructs
        damaged graphs for :func:`repro.resilience.verify_index` to
        catch.  Searching an unvalidated graph is undefined behaviour.
        """
        indptr = np.ascontiguousarray(indptr, dtype=np.int32)
        indices = np.ascontiguousarray(indices, dtype=np.int32)
        if validate:
            if len(indptr) == 0 or indptr[0] != 0:
                raise ValueError("indptr must start at 0")
            if np.any(np.diff(indptr) < 0):
                raise ValueError("indptr must be non-decreasing")
            if int(indptr[-1]) != len(indices):
                raise ValueError(
                    f"indptr[-1]={int(indptr[-1])} != len(indices)={len(indices)}"
                )
            n = len(indptr) - 1
            if len(indices) and (indices.min() < 0 or indices.max() >= n):
                raise ValueError(f"neighbor ids must lie in [0, {n})")
        graph = cls.__new__(cls)
        graph.n = max(len(indptr) - 1, 0)
        graph._adj = None
        graph._indptr = indptr
        graph._indices = indices
        return graph

    # -- layout management ---------------------------------------------

    @property
    def finalized(self) -> bool:
        """Whether the frozen CSR arrays are current."""
        return self._indptr is not None

    def _lists(self) -> list[list[int]]:
        """The mutable adjacency, materialized from CSR if necessary."""
        if self._adj is None:
            indptr, indices = self._indptr, self._indices
            self._adj = [
                indices[indptr[v]:indptr[v + 1]].tolist() for v in range(self.n)
            ]
        return self._adj

    def _invalidate(self) -> None:
        self._indptr = None
        self._indices = None

    def finalize(self) -> "Graph":
        """Freeze adjacency into the CSR arrays for fast search access."""
        if self._indptr is None:
            adj = self._lists()
            indptr = np.zeros(self.n + 1, dtype=np.int32)
            if self.n:
                np.cumsum([len(lst) for lst in adj], out=indptr[1:])
            total = int(indptr[-1])
            indices = np.empty(total, dtype=np.int32)
            position = 0
            for lst in adj:
                indices[position:position + len(lst)] = lst
                position += len(lst)
            self._indptr = indptr
            self._indices = indices
        return self

    def csr(self) -> tuple[np.ndarray, np.ndarray]:
        """The frozen ``(indptr, indices)`` pair (finalizes if needed)."""
        self.finalize()
        return self._indptr, self._indices

    # -- construction -------------------------------------------------

    def add_vertex(self) -> int:
        """Append an isolated vertex; returns its id (incremental inserts)."""
        self._lists().append([])
        self.n += 1
        self._invalidate()
        return self.n - 1

    def add_edge(self, u: int, v: int) -> None:
        """Add the directed edge ``u -> v`` if absent."""
        if u == v:
            return
        adj = self._lists()
        if v not in adj[u]:
            adj[u].append(v)
            self._invalidate()

    def add_undirected_edge(self, u: int, v: int) -> None:
        """Add both edge directions (NSW/DPG-style undirected graphs)."""
        self.add_edge(u, v)
        self.add_edge(v, u)

    def set_neighbors(self, u: int, neighbors: Iterable[int]) -> None:
        """Replace ``u``'s out-neighbors (deduplicated, self-loops dropped)."""
        self._lists()[u] = [int(v) for v in dict.fromkeys(neighbors) if int(v) != u]
        self._invalidate()

    def neighbors(self, u: int) -> list[int]:
        """Mutable out-neighbor list of ``u``."""
        return self._lists()[u]

    def neighbor_array(self, u: int) -> np.ndarray:
        """Neighbors of ``u`` as an int array.

        On a finalized graph this is a zero-copy ``int32`` view into the
        CSR ``indices`` array — the whole point of the frozen layout.
        """
        if self._indices is not None:
            return self._indices[self._indptr[u]:self._indptr[u + 1]]
        return np.asarray(self._adj[u], dtype=np.int64)

    def copy(self) -> "Graph":
        """Deep copy of the adjacency (vertices share nothing)."""
        if self._adj is None:
            return Graph.from_csr(self._indptr.copy(), self._indices.copy())
        return Graph(self.n, [list(lst) for lst in self._adj])

    # -- iteration / comparison ----------------------------------------

    def __iter__(self) -> Iterator[list[int]]:
        return iter(self._lists())

    def edges(self) -> Iterator[tuple[int, int]]:
        """Yield every directed edge ``(u, v)``."""
        if self._adj is None:
            indptr, indices = self._indptr, self._indices
            for u in range(self.n):
                for v in indices[indptr[u]:indptr[u + 1]].tolist():
                    yield u, v
            return
        for u, lst in enumerate(self._adj):
            for v in lst:
                yield u, v

    def edge_set(self) -> set[tuple[int, int]]:
        """All directed edges as a set (graph-equality comparisons)."""
        return set(self.edges())

    @property
    def num_edges(self) -> int:
        """Total directed edge count."""
        if self._adj is None:
            return len(self._indices)
        return sum(len(lst) for lst in self._adj)

    # -- statistics (§5.1 metrics) --------------------------------------

    def _degrees(self) -> np.ndarray:
        if self._indptr is not None:
            return np.diff(self._indptr)
        return np.asarray([len(lst) for lst in self._adj], dtype=np.int64)

    @property
    def average_out_degree(self) -> float:
        """Table 4's AD column."""
        if self.n == 0:
            return 0.0
        return self.num_edges / self.n

    @property
    def max_out_degree(self) -> int:
        """Table 11's D_max."""
        if self.n == 0:
            return 0
        return int(self._degrees().max())

    @property
    def min_out_degree(self) -> int:
        """Table 11's D_min."""
        if self.n == 0:
            return 0
        return int(self._degrees().min())

    def reachable_mask(self, roots) -> np.ndarray:
        """Boolean mask of vertices reachable from ``roots`` (directed).

        This is the invariant the C5 connectivity component maintains
        and :func:`repro.resilience.verify_index` checks: a vertex
        outside the mask can never be returned for any query entering
        at ``roots``.  Runs a frontier-at-a-time BFS straight over the
        CSR arrays, so verifying a loaded index costs O(edges) with no
        Python adjacency materialization.
        """
        seen = np.zeros(self.n, dtype=bool)
        roots = np.asarray(roots, dtype=np.int64).reshape(-1)
        roots = roots[(roots >= 0) & (roots < self.n)]
        if len(roots) == 0:
            return seen
        seen[roots] = True
        if self._indptr is not None:
            indptr, indices = self._indptr, self._indices
            frontier = np.unique(roots)
            while len(frontier):
                counts = indptr[frontier + 1] - indptr[frontier]
                if int(counts.sum()) == 0:
                    break
                nbrs = np.concatenate([
                    indices[indptr[u]:indptr[u + 1]] for u in frontier.tolist()
                ])
                fresh = np.unique(nbrs[~seen[nbrs]])
                seen[fresh] = True
                frontier = fresh
            return seen
        queue = deque(int(r) for r in roots)
        while queue:
            u = queue.popleft()
            for v in self._adj[u]:
                if not seen[v]:
                    seen[v] = True
                    queue.append(v)
        return seen

    def sanitize(self) -> int:
        """Drop out-of-range neighbor ids and self-loops in place.

        Returns how many edges were removed.  This is the in-memory
        half of integrity repair; damaged CSR *offsets* (which cannot
        be fixed edge-by-edge) go through
        :func:`repro.resilience.repair_csr_arrays` instead.
        """
        if self._adj is None:
            indptr, indices = self._indptr, self._indices
            owner = np.repeat(
                np.arange(self.n, dtype=np.int64), np.diff(indptr)
            )
            keep = (indices >= 0) & (indices < self.n) & (indices != owner)
            dropped = int(len(indices) - keep.sum())
            if dropped:
                counts = np.zeros(self.n, dtype=np.int64)
                np.add.at(counts, owner[keep], 1)
                new_indptr = np.zeros(self.n + 1, dtype=np.int32)
                np.cumsum(counts, out=new_indptr[1:])
                self._indptr = new_indptr
                self._indices = indices[keep]
            return dropped
        dropped = 0
        for u, lst in enumerate(self._adj):
            clean = [v for v in lst if 0 <= v < self.n and v != u]
            dropped += len(lst) - len(clean)
            if len(clean) != len(lst):
                self._adj[u] = clean
        if dropped:
            self._invalidate()
        return dropped

    def num_connected_components(self) -> int:
        """Weakly connected components (edges treated as undirected).

        This is the CC column of Table 4: it measures whether every
        vertex is *reachable* when the search is allowed to enter from
        any component, which is what connectivity guarantees (C5) aim
        to maximise (CC == 1).
        """
        if self.n == 0:
            return 0
        undirected: list[list[int]] = [[] for _ in range(self.n)]
        for u, v in self.edges():
            undirected[u].append(v)
            undirected[v].append(u)
        seen = np.zeros(self.n, dtype=bool)
        components = 0
        for start in range(self.n):
            if seen[start]:
                continue
            components += 1
            queue = deque([start])
            seen[start] = True
            while queue:
                u = queue.popleft()
                for v in undirected[u]:
                    if not seen[v]:
                        seen[v] = True
                        queue.append(v)
        return components

    def index_size_bytes(self) -> int:
        """Approximate serialized size: one int32 per edge + per-vertex length."""
        return self.num_edges * _EDGE_BYTES + self.n * _EDGE_BYTES

    def to_padded_matrix(self, pad: int = -1) -> np.ndarray:
        """Adjacency as an ``(n, D_max)`` int matrix, ``pad``-filled.

        Appendix I's memory-alignment trick: aligning every neighbor
        list to the maximum out-degree allows contiguous access — and
        lets NumPy fetch whole neighbor rows in one slice.  Algorithms
        whose D_max dwarfs their average degree (NSW, DPG, k-DR) pay a
        correspondingly large padding bill, which is exactly the
        paper's caveat about this optimisation.
        """
        width = self.max_out_degree
        matrix = np.full((self.n, width), pad, dtype=np.int64)
        for v, lst in enumerate(self._lists()):
            matrix[v, : len(lst)] = lst
        return matrix

    # -- cache-locality reordering --------------------------------------

    def reorder_permutation(
        self, strategy: str = "bfs", roots: np.ndarray | None = None
    ) -> np.ndarray:
        """A vertex permutation ``order[new_id] = old_id`` for locality.

        ``"bfs"`` walks the graph breadth-first from ``roots`` (default:
        vertex 0) and numbers vertices in first-visit order, so hop-1
        neighborhoods become contiguous index ranges — the classic
        Cuthill-McKee-flavoured layout graph search kernels want.
        ``"degree"`` places high-out-degree hubs first (stable sort), a
        cheaper heuristic that packs the hot hub rows together.  Both
        are deterministic; vertices unreached by the BFS are appended in
        ascending old-id order.  The graph itself is untouched — apply
        the result with :meth:`permute`.
        """
        if strategy == "degree":
            # stable argsort on negated degrees: hubs first, old-id
            # ascending within equal degrees
            return np.argsort(-self._degrees(), kind="stable").astype(np.int64)
        if strategy != "bfs":
            raise ValueError(f"unknown reorder strategy {strategy!r}")
        indptr, indices = self.csr()
        seen = np.zeros(self.n, dtype=bool)
        order = np.empty(self.n, dtype=np.int64)
        taken = 0
        if roots is None:
            roots = np.asarray([0], dtype=np.int64) if self.n else np.empty(0, np.int64)
        roots = np.asarray(roots, dtype=np.int64).reshape(-1)
        roots = roots[(roots >= 0) & (roots < self.n)]
        frontier = roots[~seen[roots]]
        # first-occurrence dedup keeps the root order deterministic
        frontier = frontier[np.sort(np.unique(frontier, return_index=True)[1])]
        while len(frontier):
            seen[frontier] = True
            order[taken:taken + len(frontier)] = frontier
            taken += len(frontier)
            nbrs = np.concatenate([
                indices[indptr[u]:indptr[u + 1]] for u in frontier.tolist()
            ]) if len(frontier) else np.empty(0, np.int64)
            nbrs = nbrs[~seen[nbrs]]
            # keep discovery order (parent by parent, adjacency order),
            # dropping repeats at their first occurrence
            frontier = nbrs[np.sort(np.unique(nbrs, return_index=True)[1])]
        rest = np.flatnonzero(~seen)
        order[taken:] = rest
        return order

    def permute(self, order: np.ndarray) -> "Graph":
        """The same graph under the relabeling ``order[new_id] = old_id``.

        Returns a *finalized* graph whose vertex ``i`` is the old vertex
        ``order[i]``, with every neighbor id translated and adjacency
        order preserved — searching it visits the same points in the
        same sequence, just under new labels.
        """
        order = np.asarray(order, dtype=np.int64)
        if len(order) != self.n or (
            self.n and not np.array_equal(np.sort(order), np.arange(self.n))
        ):
            raise ValueError("order must be a permutation of 0..n-1")
        indptr, indices = self.csr()
        inverse = np.empty(self.n, dtype=np.int64)
        inverse[order] = np.arange(self.n, dtype=np.int64)
        degrees = np.diff(indptr)[order]
        new_indptr = np.zeros(self.n + 1, dtype=np.int32)
        np.cumsum(degrees, out=new_indptr[1:])
        new_indices = np.empty(len(indices), dtype=np.int32)
        for new_id, old_id in enumerate(order.tolist()):
            lo, hi = indptr[old_id], indptr[old_id + 1]
            new_indices[new_indptr[new_id]:new_indptr[new_id + 1]] = inverse[
                indices[lo:hi]
            ]
        return Graph.from_csr(new_indptr, new_indices, validate=False)

    def reverse(self) -> "Graph":
        """Graph with every edge direction flipped."""
        rev = Graph(self.n)
        for u, v in self.edges():
            rev.add_edge(v, u)
        return rev

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(n={self.n}, edges={self.num_edges}, "
            f"avg_deg={self.average_out_degree:.1f})"
        )
