"""Base proximity graphs (§3.1 of the paper) and the shared graph type."""

from repro.graphs.graph import Graph
from repro.graphs.knng import exact_knn_graph, exact_knn_lists
from repro.graphs.rng import relative_neighborhood_graph
from repro.graphs.delaunay import delaunay_graph
from repro.graphs.mst import euclidean_mst, mst_over_candidates

__all__ = [
    "Graph",
    "exact_knn_graph",
    "exact_knn_lists",
    "relative_neighborhood_graph",
    "delaunay_graph",
    "euclidean_mst",
    "mst_over_candidates",
]
