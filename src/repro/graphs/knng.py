"""Exact K-Nearest Neighbor Graph (KNNG, §3.1).

Each point is connected to its ``K`` exact nearest neighbors, producing a
directed graph.  Built by (chunked) brute force, this is the reference
graph for the *graph quality* metric GQ = |E' ∩ E| / |E| (§5.1) and the
initial graph of IEH, FANNG and k-DR (their papers build it by linear
scan).
"""

from __future__ import annotations

import numpy as np

from repro.distance import DistanceCounter, pairwise_l2
from repro.graphs.graph import Graph

__all__ = ["exact_knn_lists", "exact_knn_graph"]


def exact_knn_lists(
    data: np.ndarray,
    k: int,
    counter: DistanceCounter | None = None,
    chunk_size: int = 512,
) -> tuple[np.ndarray, np.ndarray]:
    """Exact ``k`` nearest neighbors of every point among the others.

    Returns ``(ids, dists)`` with shape ``(n, k)`` each, rows sorted by
    ascending distance, the point itself excluded.
    """
    n = len(data)
    if n < 2:
        raise ValueError(f"need at least 2 points for a KNN graph, got {n}")
    k = min(k, n - 1)
    ids = np.empty((n, k), dtype=np.int64)
    dists = np.empty((n, k), dtype=np.float64)
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        block = pairwise_l2(data[start:stop], data)
        if counter is not None:
            counter.count += (stop - start) * n
        rows = np.arange(start, stop)
        block[rows - start, rows] = np.inf  # exclude self
        part = np.argpartition(block, k - 1, axis=1)[:, :k]
        part_d = np.take_along_axis(block, part, axis=1)
        order = np.argsort(part_d, axis=1, kind="stable")
        ids[start:stop] = np.take_along_axis(part, order, axis=1)
        dists[start:stop] = np.take_along_axis(part_d, order, axis=1)
    return ids, dists


def exact_knn_graph(
    data: np.ndarray, k: int, counter: DistanceCounter | None = None
) -> Graph:
    """The exact KNNG as a directed :class:`Graph`."""
    ids, _ = exact_knn_lists(data, k, counter=counter)
    return Graph(len(data), ids.tolist())
