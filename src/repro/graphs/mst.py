"""Euclidean Minimum Spanning Tree (MST, §3.1).

The MST connects all points with minimum total edge weight, guaranteeing
global connectivity with the fewest edges — the property HCNNG exploits
as its neighbor-selection rule.  Two entry points:

* :func:`euclidean_mst` — exact MST of a point set (dense Prim), used
  for base-graph analysis and inside HCNNG clusters (cluster sizes are
  small, so the O(m²) dense Prim is the right tool);
* :func:`mst_over_candidates` — Kruskal over an explicit candidate edge
  list, used when only a sparse set of edges is allowed.
"""

from __future__ import annotations

import numpy as np

from repro.distance import DistanceCounter, pairwise_l2

__all__ = ["euclidean_mst", "mst_over_candidates"]


def euclidean_mst(
    data: np.ndarray, counter: DistanceCounter | None = None
) -> list[tuple[int, int, float]]:
    """Exact Euclidean MST edges ``(u, v, weight)`` via dense Prim."""
    n = len(data)
    if n <= 1:
        return []
    # float64: edge weights feed weight-sum comparisons and tests, where
    # float32 expanded-form rounding (~1e-6 relative) is visible
    dmat = pairwise_l2(data.astype(np.float64), data.astype(np.float64))
    if counter is not None:
        counter.count += n * n
    in_tree = np.zeros(n, dtype=bool)
    best_dist = dmat[0].copy()
    best_from = np.zeros(n, dtype=np.int64)
    in_tree[0] = True
    best_dist[0] = np.inf
    edges: list[tuple[int, int, float]] = []
    for _ in range(n - 1):
        v = int(np.argmin(best_dist))
        edges.append((int(best_from[v]), v, float(best_dist[v])))
        in_tree[v] = True
        best_dist[v] = np.inf
        closer = dmat[v] < best_dist
        closer &= ~in_tree
        best_dist[closer] = dmat[v][closer]
        best_from[closer] = v
    return edges


class _UnionFind:
    """Union-find with path halving, for Kruskal."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[rb] = ra
        return True


def mst_over_candidates(
    n: int, edges: list[tuple[int, int, float]]
) -> list[tuple[int, int, float]]:
    """Kruskal MST (or minimum spanning forest) over candidate edges."""
    uf = _UnionFind(n)
    chosen: list[tuple[int, int, float]] = []
    for u, v, w in sorted(edges, key=lambda e: e[2]):
        if uf.union(u, v):
            chosen.append((u, v, w))
            if len(chosen) == n - 1:
                break
    return chosen
