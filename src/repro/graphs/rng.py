"""Exact Relative Neighborhood Graph (RNG, §3.1).

``x`` and ``y`` are connected iff no third point ``z`` lies in the lune
``B(x, δ(x,y)) ∩ B(y, δ(x,y))`` — i.e. there is no ``z`` with both
``δ(x,z) < δ(x,y)`` and ``δ(z,y) < δ(x,y)``.  The naive construction is
O(n³) (the paper cites [49]); we vectorise the inner witness test so it
is usable for the base-graph experiments and property tests (n up to a
few thousand).
"""

from __future__ import annotations

import numpy as np

from repro.distance import DistanceCounter, pairwise_l2
from repro.graphs.graph import Graph

__all__ = ["relative_neighborhood_graph", "rng_edge_holds"]


def relative_neighborhood_graph(
    data: np.ndarray, counter: DistanceCounter | None = None
) -> Graph:
    """Exact RNG over ``data`` as an undirected :class:`Graph`."""
    n = len(data)
    if n == 0:
        return Graph(0)
    dmat = pairwise_l2(data, data)
    if counter is not None:
        counter.count += n * n
    graph = Graph(n)
    for i in range(n):
        d_i = dmat[i]
        for j in range(i + 1, n):
            d_ij = dmat[i, j]
            # a witness z occupies the lune: closer than d_ij to both ends.
            # The endpoints themselves are excluded explicitly — rounding
            # in the expanded-form distance matrix can make dmat[j, i]
            # differ from dmat[i, j] by ~1e-6 and fake a witness.
            occupied = (d_i < d_ij) & (dmat[j] < d_ij)
            occupied[i] = occupied[j] = False
            if not occupied.any():
                graph.add_undirected_edge(i, j)
    return graph


def rng_edge_holds(data: np.ndarray, i: int, j: int) -> bool:
    """Check the RNG lune-emptiness property for one candidate edge."""
    d_ij = float(np.linalg.norm(data[i] - data[j]))
    d_i = np.linalg.norm(data - data[i], axis=1)
    d_j = np.linalg.norm(data - data[j], axis=1)
    mask = (d_i < d_ij) & (d_j < d_ij)
    mask[i] = mask[j] = False
    return not bool(np.any(mask))
