"""Tests for the C4 auxiliary structures: KD-tree, VP-tree, BKT, TP-tree."""

import numpy as np
import pytest

from repro.datasets import brute_force_knn
from repro.distance import DistanceCounter
from repro.trees import BalancedKMeansTree, KDTree, TPTree, VPTree


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(11)
    return rng.normal(size=(600, 16)).astype(np.float32)


@pytest.fixture(scope="module")
def truth(cloud):
    queries = cloud[:20] + 0.01
    ids, _ = brute_force_knn(cloud, queries, 10)
    return queries, ids


class TestKDTree:
    def test_descend_returns_leaf(self, cloud):
        tree = KDTree(cloud, leaf_size=12)
        bucket = tree.descend(cloud[0])
        assert 0 < len(bucket) <= 12

    def test_descend_zero_ndc(self, cloud):
        tree = KDTree(cloud, leaf_size=12)
        tree.descend(cloud[3])  # descend never touches a counter at all

    def test_search_recall_reasonable(self, cloud, truth):
        queries, ids = truth
        tree = KDTree(cloud, leaf_size=16, seed=0)
        hits = 0
        for qi, q in enumerate(queries):
            got = tree.search(q, 10, max_leaves=12)
            hits += len(set(got.tolist()) & set(ids[qi].tolist()))
        assert hits / (10 * len(queries)) > 0.5

    def test_search_counts_ndc(self, cloud):
        tree = KDTree(cloud, leaf_size=16)
        counter = DistanceCounter()
        tree.search(cloud[0], 5, counter=counter)
        assert counter.count > 0

    def test_all_points_in_some_leaf(self, cloud):
        tree = KDTree(cloud, leaf_size=16)

        def collect(node):
            if node.ids is not None:
                return list(node.ids)
            return collect(node.left) + collect(node.right)

        assert sorted(collect(tree.root)) == list(range(len(cloud)))

    def test_duplicate_points_handled(self):
        data = np.ones((50, 4), dtype=np.float32)
        tree = KDTree(data, leaf_size=8)
        assert len(tree.descend(data[0])) >= 1


class TestVPTree:
    def test_finds_exact_point(self, cloud):
        tree = VPTree(cloud, seed=1)
        got = tree.search(cloud[5], 1, max_nodes=200)
        assert got[0] == 5

    def test_recall(self, cloud, truth):
        queries, ids = truth
        tree = VPTree(cloud, seed=0)
        hits = 0
        for qi, q in enumerate(queries):
            got = tree.search(q, 10, max_nodes=100)
            hits += len(set(got.tolist()) & set(ids[qi].tolist()))
        assert hits / (10 * len(queries)) > 0.5

    def test_counts_ndc(self, cloud):
        tree = VPTree(cloud, seed=0)
        counter = DistanceCounter()
        tree.search(cloud[0], 3, counter=counter)
        assert counter.count > 0

    def test_duplicates(self):
        data = np.zeros((30, 3), dtype=np.float32)
        tree = VPTree(data, seed=0)
        assert len(tree.search(data[0], 5)) == 5


class TestBalancedKMeansTree:
    def test_returns_requested_count(self, cloud):
        tree = BalancedKMeansTree(cloud, seed=0)
        got = tree.search(cloud[0], 8)
        assert len(got) == 8

    def test_neighbors_are_close(self, cloud):
        tree = BalancedKMeansTree(cloud, seed=0)
        q = cloud[7]
        got = tree.search(q, 8)
        got_d = np.linalg.norm(cloud[got] - q, axis=1).mean()
        rng = np.random.default_rng(0)
        rand_d = np.linalg.norm(
            cloud[rng.integers(0, len(cloud), 8)] - q, axis=1
        ).mean()
        assert got_d < rand_d

    def test_counts_ndc(self, cloud):
        tree = BalancedKMeansTree(cloud, seed=0)
        counter = DistanceCounter()
        tree.search(cloud[0], 4, counter=counter)
        assert counter.count > 0

    def test_duplicates_fall_back_to_leaf(self):
        data = np.ones((100, 4), dtype=np.float32)
        tree = BalancedKMeansTree(data, seed=0)
        assert len(tree.search(data[0], 5)) == 5


class TestTPTree:
    def test_partition_covers_everything(self, cloud):
        tree = TPTree(cloud, leaf_size=40, seed=2)
        parts = tree.partition()
        seen = np.concatenate(parts)
        assert sorted(seen.tolist()) == list(range(len(cloud)))

    def test_leaf_sizes_bounded(self, cloud):
        tree = TPTree(cloud, leaf_size=40, seed=2)
        assert all(len(p) <= 40 for p in tree.partition())

    def test_disjoint_leaves(self, cloud):
        tree = TPTree(cloud, leaf_size=40, seed=2)
        seen = np.concatenate(tree.partition())
        assert len(seen) == len(np.unique(seen))

    def test_constant_data(self):
        data = np.full((90, 5), 2.0, dtype=np.float32)
        tree = TPTree(data, leaf_size=16, seed=0)
        assert sum(len(p) for p in tree.partition()) == 90
