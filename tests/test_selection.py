"""Tests for C3 neighbor selection, including the paper's appendix proofs:

* Appendix A — HNSW's heuristic == NSG's MRNG rule (checked pointwise
  by running both formulations on random candidate sets);
* Lemma 7.1 — the RNG rule guarantees pairwise angles >= 60°;
* Appendix B — NGT's path adjustment approximates RNG pruning.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance import DistanceCounter
from repro.graphs import Graph
from repro.components.selection import (
    path_adjustment,
    select_angle_sum,
    select_angle_threshold,
    select_closest,
    select_mst,
    select_rng_heuristic,
)


def make_candidates(n, dim, seed):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n + 1, dim))
    point = data[0]
    cand = np.arange(1, n + 1)
    dists = np.linalg.norm(data[cand] - point, axis=1)
    order = np.argsort(dists)
    return point, cand[order], dists[order], data


def nsg_mrng_rule(point, cand_ids, cand_dists, data, max_degree):
    """Literal transcription of NSG's lune-based formulation (Appendix A)."""
    selected = []
    for pos, m in enumerate(cand_ids):
        if len(selected) >= max_degree:
            break
        d_pm = cand_dists[pos]
        # Condition 2: no already-selected u occupies lune(p, m)
        occluded = False
        for u in selected:
            d_um = float(np.linalg.norm(data[u] - data[m]))
            d_up = float(np.linalg.norm(data[u] - point))
            if d_um < d_pm and d_up < d_pm:
                occluded = True
                break
        if not occluded:
            selected.append(int(m))
    return selected


class TestSelectClosest:
    def test_returns_prefix(self):
        point, ids, dists, data = make_candidates(20, 8, 0)
        out = select_closest(ids, dists, 5)
        np.testing.assert_array_equal(out, ids[:5])

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            select_closest(np.asarray([1, 2]), np.asarray([2.0, 1.0]), 2)


class TestRNGHeuristic:
    def test_subset_of_candidates(self):
        point, ids, dists, data = make_candidates(30, 8, 1)
        out = select_rng_heuristic(point, ids, dists, data, 10)
        assert set(out.tolist()) <= set(ids.tolist())

    def test_closest_always_selected(self):
        point, ids, dists, data = make_candidates(30, 8, 2)
        out = select_rng_heuristic(point, ids, dists, data, 10)
        assert out[0] == ids[0]

    def test_respects_degree_cap(self):
        point, ids, dists, data = make_candidates(50, 4, 3)
        out = select_rng_heuristic(point, ids, dists, data, 3)
        assert len(out) <= 3

    def test_alpha_one_prunes_no_less_than_alpha_two(self):
        point, ids, dists, data = make_candidates(40, 8, 4)
        strict = select_rng_heuristic(point, ids, dists, data, 40, alpha=1.0)
        loose = select_rng_heuristic(point, ids, dists, data, 40, alpha=2.0)
        assert len(loose) >= len(strict)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_equivalence_with_nsg_formulation(self, seed):
        """Appendix A: HNSW's Condition 1 == NSG's Condition 2."""
        point, ids, dists, data = make_candidates(25, 6, seed)
        hnsw_style = select_rng_heuristic(point, ids, dists, data, 25)
        nsg_style = nsg_mrng_rule(point, ids, dists, data, 25)
        assert hnsw_style.tolist() == nsg_style

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_lemma_71_pairwise_angles(self, seed):
        """Lemma 7.1: selected neighbors span angles >= 60° at p."""
        point, ids, dists, data = make_candidates(25, 6, seed)
        out = select_rng_heuristic(point, ids, dists, data, 25)
        vecs = data[out] - point
        norms = np.linalg.norm(vecs, axis=1)
        unit = vecs / norms[:, None]
        cosines = unit @ unit.T
        np.fill_diagonal(cosines, -1.0)
        max_cos = cosines.max() if len(out) > 1 else -1.0
        # angle >= 60° means cos <= 0.5 (tolerance for fp noise)
        assert max_cos <= 0.5 + 1e-6

    def test_counter_charged(self):
        point, ids, dists, data = make_candidates(20, 8, 5)
        counter = DistanceCounter()
        select_rng_heuristic(point, ids, dists, data, 10, counter=counter)
        assert counter.count > 0

    def test_empty_candidates(self):
        data = np.zeros((1, 4))
        out = select_rng_heuristic(
            data[0], np.asarray([], dtype=np.int64), np.asarray([]), data, 5
        )
        assert len(out) == 0


class TestAngleSum:
    def test_first_is_closest(self):
        point, ids, dists, data = make_candidates(30, 8, 6)
        out = select_angle_sum(point, ids, dists, data, 8)
        assert out[0] == ids[0]

    def test_spreads_directions(self):
        # one candidate to the east, many stacked candidates to the west:
        # angle-sum must include the lone easterner
        point = np.zeros(2)
        offsets = np.asarray(
            [[-1.0, 0.0], [-1.1, 0.01], [-1.2, -0.01], [-1.05, 0.02], [2.0, 0.0]]
        )
        data = np.vstack([point[None, :], offsets])
        ids = np.arange(1, 6)
        dists = np.linalg.norm(offsets, axis=1)
        order = np.argsort(dists)
        out = select_angle_sum(point, ids[order], dists[order], data, 2)
        assert 5 in out  # the easterner (id 5, the [2,0] point)

    def test_respects_cap(self):
        point, ids, dists, data = make_candidates(40, 6, 7)
        assert len(select_angle_sum(point, ids, dists, data, 4)) == 4

    def test_duplicate_points_no_nan(self):
        data = np.zeros((5, 3))
        ids = np.arange(1, 5)
        dists = np.zeros(4)
        out = select_angle_sum(data[0], ids, dists, data, 3)
        assert len(out) == 3


class TestAngleThreshold:
    def test_all_selected_pairs_respect_threshold(self):
        point, ids, dists, data = make_candidates(40, 6, 8)
        out = select_angle_threshold(
            point, ids, dists, data, 40, min_angle_deg=60.0
        )
        vecs = data[out] - point
        unit = vecs / np.linalg.norm(vecs, axis=1)[:, None]
        cosines = unit @ unit.T
        np.fill_diagonal(cosines, -1.0)
        assert cosines.max() <= np.cos(np.radians(60.0)) + 1e-6

    def test_smaller_threshold_keeps_more(self):
        point, ids, dists, data = make_candidates(40, 6, 9)
        tight = select_angle_threshold(point, ids, dists, data, 40, 80.0)
        loose = select_angle_threshold(point, ids, dists, data, 40, 30.0)
        assert len(loose) >= len(tight)

    def test_nssg_keeps_more_than_mrng_on_average(self):
        """§3.2 A11: SSG is a relaxed RNG, hence larger out-degree."""
        totals = [0, 0]
        for seed in range(10):
            point, ids, dists, data = make_candidates(40, 6, 100 + seed)
            totals[0] += len(
                select_angle_threshold(point, ids, dists, data, 40, 60.0)
            )
            totals[1] += len(select_rng_heuristic(point, ids, dists, data, 40))
        assert totals[0] >= totals[1]


class TestMSTSelection:
    def test_neighbors_are_mst_adjacent(self):
        rng = np.random.default_rng(10)
        data = rng.normal(size=(20, 4))
        cand = np.arange(1, 20)
        out = select_mst(0, data[0], cand, data, 10)
        assert len(out) >= 1
        assert set(out.tolist()) <= set(cand.tolist())

    def test_empty_candidates(self):
        data = np.zeros((1, 4))
        out = select_mst(0, data[0], np.asarray([], dtype=np.int64), data, 5)
        assert len(out) == 0


class TestPathAdjustment:
    def _line_graph(self):
        # p=0 at origin, x=1 nearby, n=2 beyond x: edge 0->2 has the
        # alternative path 0->1->2 with both legs shorter => cut
        data = np.asarray([[0.0, 0.0], [1.0, 0.0], [2.1, 0.0]], dtype=np.float32)
        g = Graph(3, [[1, 2], [0, 2], [0, 1]])
        return data, g

    def test_cuts_detour_edge(self):
        data, g = self._line_graph()
        adjusted = path_adjustment(g, data, max_degree=5)
        assert 2 not in adjusted.neighbors(0)
        assert 1 in adjusted.neighbors(0)

    def test_strict_mode_cuts_at_least_as_much(self):
        rng = np.random.default_rng(11)
        data = rng.normal(size=(60, 6)).astype(np.float32)
        from repro.graphs import exact_knn_graph

        knng = exact_knn_graph(data, 8)
        relaxed = path_adjustment(knng, data, max_degree=8)
        strict = path_adjustment(knng, data, max_degree=8, strict=True)
        assert strict.num_edges <= relaxed.num_edges

    def test_degree_capped(self):
        rng = np.random.default_rng(12)
        data = rng.normal(size=(50, 4)).astype(np.float32)
        from repro.graphs import exact_knn_graph

        adjusted = path_adjustment(exact_knn_graph(data, 20), data, max_degree=6)
        assert adjusted.max_out_degree <= 6

    def test_kept_edges_satisfy_rng_like_rule(self):
        """Appendix B: kept neighbors have no shorter two-leg bypass."""
        rng = np.random.default_rng(13)
        data = rng.normal(size=(40, 4)).astype(np.float32)
        from repro.graphs import exact_knn_graph

        adjusted = path_adjustment(exact_knn_graph(data, 10), data, max_degree=10)
        for p in range(adjusted.n):
            kept = adjusted.neighbors(p)
            for n in kept:
                d_pn = np.linalg.norm(data[p] - data[n])
                for x in kept:
                    if x == n:
                        continue
                    d_px = np.linalg.norm(data[p] - data[x])
                    d_xn = np.linalg.norm(data[x] - data[n])
                    # if x was kept before n, the bypass rule must not fire
                    if d_px < d_pn:
                        assert max(d_px, d_xn) >= d_pn or d_xn >= d_pn
