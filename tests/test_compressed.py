"""Tests for compressed (ADC) traversal and the tiered vector memory.

Runs in both native and ``REPRO_NO_NATIVE`` mode (DUAL_MODE_SUITES):
the assertions about ids/dists/telemetry must hold identically, because
the NumPy fallback and the C LUT kernel score from the same float32
tables with the same float64 accumulation order.
"""

import os

import numpy as np
import pytest

from repro import create
from repro.batch import search_batch
from repro.compressed import DEFAULT_RERANK_FACTOR, rerank_exact
from repro.io import load_index, save_index


@pytest.fixture(scope="module")
def compressed_index(easy_dataset):
    index = create("nsg", seed=3)
    index.build(easy_dataset.base)
    index.enable_compressed(num_subspaces=16, codebook_size=32)
    return index


class TestCompressedSearch:
    def test_requires_enable(self, easy_dataset):
        index = create("kgraph", seed=0)
        index.build(easy_dataset.base)
        with pytest.raises(RuntimeError, match="enable_compressed"):
            index.search(easy_dataset.queries[0], k=5, compressed=True)

    def test_recall_close_to_exact(self, compressed_index, easy_dataset):
        k = 10
        exact_hits = comp_hits = 0
        for query, truth in zip(easy_dataset.queries, easy_dataset.ground_truth):
            truth = set(int(t) for t in truth[:k])
            exact = compressed_index.search(query, k=k, ef=80)
            comp = compressed_index.search(query, k=k, ef=80, compressed=True,
                                           rerank_factor=6)
            exact_hits += len(truth.intersection(int(i) for i in exact.ids))
            comp_hits += len(truth.intersection(int(i) for i in comp.ids))
        total = k * len(easy_dataset.queries)
        assert comp_hits / total >= exact_hits / total - 0.05

    def test_ndc_accounting(self, compressed_index, easy_dataset):
        k = 5
        result = compressed_index.search(
            easy_dataset.queries[0], k=k, ef=60, compressed=True,
            rerank_factor=3,
        )
        # traversal lookups are surrogates, not true NDC
        assert result.adc_lookups > 0
        assert result.rerank_ndc <= 3 * k
        assert result.ndc <= result.rerank_ndc + 64  # + seed acquisition
        exact = compressed_index.search(easy_dataset.queries[0], k=k, ef=60)
        assert exact.adc_lookups == 0 and exact.rerank_ndc == 0
        assert result.ndc < exact.ndc

    def test_rerank_factor_bounds_pool(self, compressed_index, easy_dataset):
        for factor in (1, 2, 5):
            result = compressed_index.search(
                easy_dataset.queries[1], k=4, ef=100, compressed=True,
                rerank_factor=factor,
            )
            assert result.rerank_ndc <= factor * 4
        with pytest.raises(ValueError):
            compressed_index.search(
                easy_dataset.queries[0], k=4, compressed=True, rerank_factor=0
            )

    def test_dists_are_exact(self, compressed_index, easy_dataset):
        query = easy_dataset.queries[2]
        result = compressed_index.search(query, k=5, ef=60, compressed=True)
        expected = np.linalg.norm(
            compressed_index.data[result.ids].astype(np.float64)
            - np.asarray(query, dtype=np.float64), axis=1
        )
        np.testing.assert_allclose(result.dists, expected, rtol=1e-6)
        assert (np.diff(result.dists) >= 0).all()

    def test_exact_path_unchanged_by_tier(self, easy_dataset):
        plain = create("nsg", seed=3)
        plain.build(easy_dataset.base)
        tiered = create("nsg", seed=3)
        tiered.build(easy_dataset.base)
        tiered.enable_compressed()
        for query in easy_dataset.queries[:5]:
            a = plain.search(query, k=10, ef=60)
            b = tiered.search(query, k=10, ef=60)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.dists, b.dists)
            assert a.ndc == b.ndc


class TestBitIdentity:
    """NumPy fallback vs C kernel, sequential vs batched, any threads."""

    def test_fallback_matches_native_flag(self, compressed_index, easy_dataset):
        # same index, same provider state: flip ctx.native per query by
        # running the whole round twice off one frozen seed draw
        from repro.components.context import SearchContext
        from repro.distance import DistanceCounter

        index = compressed_index
        tier = index.compressed_tier
        for query in easy_dataset.queries[:8]:
            counter = DistanceCounter()
            seeds = np.asarray(
                index.seed_provider.acquire(query, counter), dtype=np.int64
            )
            outputs = []
            for native in (True, False):
                ctx = SearchContext(index.data)
                ctx.native = ctx.native and native
                ctx.compressed = tier
                adc = DistanceCounter()
                route = index._route(query, seeds, 60, adc, ctx=ctx)
                ctx.compressed = None
                ctx.lut = None
                outputs.append((route.ids, route.dists, adc.count))
            np.testing.assert_array_equal(outputs[0][0], outputs[1][0])
            np.testing.assert_array_equal(outputs[0][1], outputs[1][1])
            assert outputs[0][2] == outputs[1][2]

    @pytest.mark.parametrize("workers", [1, 3])
    def test_batch_matches_sequential(self, easy_dataset, workers):
        def fresh():
            index = create("nsg", seed=3)
            index.build(easy_dataset.base)
            index.enable_compressed(num_subspaces=8, codebook_size=32)
            return index

        queries = easy_dataset.queries[:12]
        seq = [
            fresh_seq.search(q, k=10, ef=60, compressed=True)
            for fresh_seq in [fresh()]
            for q in queries
        ]
        batch = search_batch(
            fresh(), queries, k=10, ef=60, workers=workers, compressed=True
        )
        for i, r in enumerate(seq):
            ids = batch.ids[i][batch.ids[i] >= 0]
            np.testing.assert_array_equal(np.asarray(r.ids), ids)
            np.testing.assert_array_equal(
                np.asarray(r.dists),
                batch.dists[i][np.isfinite(batch.dists[i])],
            )
            assert r.adc_lookups == batch.adc_lookups[i]
            assert r.rerank_ndc == batch.rerank_ndc[i]
            assert r.ndc == batch.ndc[i]


class TestTombstones:
    def test_deleted_never_returned(self, easy_dataset):
        index = create("nsg", seed=3)
        index.build(easy_dataset.base)
        index.enable_compressed()
        query = easy_dataset.queries[0]
        before = index.search(query, k=5, ef=60, compressed=True)
        victim = int(before.ids[0])
        index.delete(victim)
        after = index.search(query, k=5, ef=60, compressed=True)
        assert victim not in after.ids
        batch = search_batch(index, easy_dataset.queries[:6], k=5, ef=60,
                             workers=2, compressed=True)
        assert victim not in batch.ids

    def test_deleted_cost_no_rerank(self, easy_dataset):
        index = create("nsg", seed=3)
        index.build(easy_dataset.base)
        index.enable_compressed()
        query = easy_dataset.queries[1]
        before = index.search(query, k=5, ef=60, compressed=True,
                              rerank_factor=2)
        for victim in before.ids[:3]:
            index.delete(int(victim))
        after = index.search(query, k=5, ef=60, compressed=True,
                             rerank_factor=2)
        # tombstones are dropped before the pool cap, so the re-rank
        # still pays at most factor*k tier reads
        assert after.rerank_ndc <= 10


class TestPersistence:
    def test_v4_roundtrip_with_tier(self, compressed_index, easy_dataset,
                                    tmp_path):
        path = tmp_path / "tiered.npz"
        save_index(compressed_index, path)
        with np.load(path) as archive:
            assert int(archive["format_version"]) == 4
        loaded = load_index(path)
        assert loaded.compressed_tier is not None
        np.testing.assert_array_equal(
            loaded.compressed_tier.codes, compressed_index.compressed_tier.codes
        )
        result = loaded.search(easy_dataset.queries[0], k=5, ef=60,
                               compressed=True)
        assert result.adc_lookups > 0 and len(result.ids) == 5

    def test_v3_written_without_tier(self, easy_dataset, tmp_path):
        index = create("nsg", seed=3)
        index.build(easy_dataset.base)
        path = tmp_path / "plain.npz"
        save_index(index, path)
        with np.load(path) as archive:
            assert int(archive["format_version"]) == 3
            assert "pq_codes" not in archive.files
        assert load_index(path).compressed_tier is None

    def test_sidecar_mmap_matches_resident(self, compressed_index,
                                           easy_dataset, tmp_path):
        path = tmp_path / "side.npz"
        save_index(compressed_index, path, vector_tier="sidecar")
        assert (tmp_path / "side.npz.vec").exists()
        mapped = load_index(path, mmap_vectors=True)
        resident = load_index(path)
        assert isinstance(mapped.data, np.memmap)
        assert not isinstance(resident.data, np.memmap)
        for query in easy_dataset.queries[:5]:
            a = mapped.search(query, k=5, ef=60, compressed=True)
            b = resident.search(query, k=5, ef=60, compressed=True)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_array_equal(a.dists, b.dists)

    def test_verify_repair_drops_bad_tier(self, easy_dataset):
        from repro.resilience import verify_index

        index = create("nsg", seed=3)
        index.build(easy_dataset.base)
        index.enable_compressed(codebook_size=16)
        index.compressed_tier.codes[0, 0] = 255
        report = verify_index(index, repair=True, check_reachability=False)
        assert index.compressed_tier is None
        assert any("compressed tier" in note for note in report.repairs)
        # exact search is unharmed by the drop
        result = index.search(easy_dataset.queries[0], k=5, ef=60)
        assert len(result.ids) == 5


class TestLifecycle:
    def test_insert_drops_tier(self, easy_dataset):
        index = create("hnsw", seed=0)
        index.build(easy_dataset.base)
        index.enable_compressed()
        assert index.compressed_tier is not None
        index.insert(easy_dataset.queries[0])
        assert index.compressed_tier is None

    def test_reorder_permutes_tier(self, easy_dataset):
        index = create("nsg", seed=3)
        index.build(easy_dataset.base)
        index.enable_compressed()
        query = easy_dataset.queries[3]
        before = index.search(query, k=5, ef=60, compressed=True)
        index.reorder("bfs")
        after = index.search(query, k=5, ef=60, compressed=True)
        # ids are mapped back to original labels; the tier followed the
        # permutation, so results describe the same points
        np.testing.assert_array_equal(np.sort(before.ids), np.sort(after.ids))


class TestRerankExact:
    def test_empty_pool(self):
        data = np.zeros((4, 3), dtype=np.float32)
        ids, dists = rerank_exact(data, np.zeros(3), np.empty(0, dtype=np.int64))
        assert len(ids) == 0 and len(dists) == 0

    def test_sorted_with_stable_ties(self):
        data = np.asarray([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]], dtype=np.float32)
        ids, dists = rerank_exact(
            data, np.zeros(2, dtype=np.float64), np.asarray([2, 1, 0])
        )
        # equal distances break ties by ascending id
        np.testing.assert_array_equal(ids, [0, 1, 2])
        np.testing.assert_allclose(dists, [1.0, 1.0, 1.0])

    def test_default_factor_exported(self):
        assert DEFAULT_RERANK_FACTOR >= 1


def test_mode_marker():
    """Make the active mode visible in -v output (native vs fallback)."""
    assert os.environ.get("REPRO_NO_NATIVE") in (None, "", "0", "1")
