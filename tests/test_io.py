"""Tests for index save/load round-trips."""

import numpy as np
import pytest

from repro import create
from repro.components.seeding import FixedSeeds, RandomSeeds
from repro.io import StaticGraphIndex, load_index, save_index


@pytest.fixture(scope="module")
def built(tiny_dataset):
    index = create("nsg", seed=1)
    index.build(tiny_dataset.base)
    return index


class TestRoundTrip:
    def test_graph_preserved(self, built, tmp_path):
        path = tmp_path / "index.npz"
        save_index(built, path)
        loaded = load_index(path)
        assert loaded.graph.n == built.graph.n
        assert loaded.graph.edge_set() == built.graph.edge_set()
        np.testing.assert_array_equal(loaded.data, built.data)
        assert loaded.source_algorithm == "nsg"

    def test_search_equivalent(self, built, tiny_dataset, tmp_path):
        path = tmp_path / "index.npz"
        save_index(built, path)
        loaded = load_index(path)
        stats = loaded.batch_search(
            tiny_dataset.queries, tiny_dataset.ground_truth, k=10, ef=60
        )
        baseline = built.batch_search(
            tiny_dataset.queries, tiny_dataset.ground_truth, k=10, ef=60
        )
        assert stats.recall >= baseline.recall - 0.05

    def test_unbuilt_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_index(create("kgraph"), tmp_path / "x.npz")

    def test_loaded_cannot_rebuild(self, built, tmp_path):
        path = tmp_path / "index.npz"
        save_index(built, path)
        loaded = load_index(path)
        with pytest.raises(RuntimeError, match="loaded, not built"):
            loaded.build(np.zeros((5, 3), dtype=np.float32))

    def test_version_check(self, built, tmp_path):
        path = tmp_path / "index.npz"
        save_index(built, path)
        # tamper with the version field
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["format_version"] = np.asarray(99)
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError, match="unsupported index format"):
            load_index(path)

    def test_fixed_seed_algorithms_keep_entries(self, tiny_dataset, tmp_path):
        hnsw = create("hnsw", seed=2)
        hnsw.build(tiny_dataset.base)
        path = tmp_path / "hnsw.npz"
        save_index(hnsw, path)
        loaded = load_index(path)
        assert isinstance(loaded, StaticGraphIndex)
        assert hnsw.entry_point in loaded.seed_provider.acquire(None)

    def test_stochastic_provider_survives_roundtrip(
        self, tiny_dataset, tmp_path
    ):
        """A RandomSeeds provider is reconstructed from its recipe, not
        frozen into a fixed seed snapshot: the loaded index replays the
        exact search sequence a freshly built index produces."""
        index = create("nsw", seed=4)
        index.build(tiny_dataset.base)
        queries = tiny_dataset.queries[:5]
        # reference run consumes the *fresh* provider state post-build
        pre = [index.search(q, k=5, ef=30) for q in queries]
        path = tmp_path / "nsw.npz"
        save_index(index, path)
        # verify=True would spend one provider draw on its probe search;
        # skip it here so the replayed sequence aligns draw for draw
        loaded = load_index(path, verify=False)
        assert isinstance(loaded.seed_provider, RandomSeeds)
        assert loaded.seed_provider.seed == 4
        post = [loaded.search(q, k=5, ef=30) for q in queries]
        for before, after in zip(pre, post):
            np.testing.assert_array_equal(before.ids, after.ids)
            assert before.ndc == after.ndc

    def test_loaded_random_seeds_stay_stochastic(self, tiny_dataset, tmp_path):
        index = create("nsw", seed=4)
        index.build(tiny_dataset.base)
        path = tmp_path / "nsw.npz"
        save_index(index, path)
        loaded = load_index(path)
        first = np.sort(np.asarray(loaded.seed_provider.acquire(None)))
        second = np.sort(np.asarray(loaded.seed_provider.acquire(None)))
        assert not np.array_equal(first, second)

    def test_version1_file_falls_back_to_frozen_seeds(
        self, tiny_dataset, tmp_path
    ):
        index = create("nsw", seed=4)
        index.build(tiny_dataset.base)
        path = tmp_path / "nsw.npz"
        save_index(index, path)
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload.pop("seed_spec")
        payload["format_version"] = np.asarray(1)
        legacy = tmp_path / "legacy.npz"
        np.savez_compressed(legacy, **payload)
        loaded = load_index(legacy)
        assert isinstance(loaded.seed_provider, FixedSeeds)
        np.testing.assert_array_equal(
            loaded.seed_provider.acquire(None),
            loaded.seed_provider.acquire(None),
        )

    def test_tombstones_survive_roundtrip(self, tiny_dataset, tmp_path):
        index = create("hnsw", seed=3)
        index.build(tiny_dataset.base)
        victim = int(index.search(tiny_dataset.queries[0], k=1, ef=20).ids[0])
        index.delete(victim)
        path = tmp_path / "tombstoned.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.num_deleted == 1
        result = loaded.search(tiny_dataset.queries[0], k=10, ef=40)
        assert victim not in result.ids
