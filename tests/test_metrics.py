"""Tests for the §5.1 metrics: recall, graph quality, degrees, memory."""

import numpy as np
import pytest

from repro.graphs import Graph, exact_knn_graph
from repro.graphs.knng import exact_knn_lists
from repro.metrics import (
    degree_stats,
    graph_index_stats,
    graph_quality,
    recall_at_k,
    search_memory_bytes,
)


class TestRecall:
    def test_perfect(self):
        assert recall_at_k(np.asarray([1, 2, 3]), np.asarray([3, 2, 1]), 3) == 1.0

    def test_partial(self):
        assert recall_at_k(np.asarray([1, 9, 8]), np.asarray([1, 2, 3]), 3) == pytest.approx(1 / 3)

    def test_short_result_penalised(self):
        assert recall_at_k(np.asarray([1]), np.asarray([1, 2, 3]), 3) == pytest.approx(1 / 3)

    def test_k_zero_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k(np.asarray([1]), np.asarray([1]), 0)

    def test_only_first_k_considered(self):
        # extra result ids beyond k must not help
        assert recall_at_k(np.asarray([9, 1]), np.asarray([1, 2]), 1) == 0.0


class TestGraphQuality:
    @pytest.fixture(scope="class")
    def cloud(self):
        rng = np.random.default_rng(6)
        return rng.normal(size=(150, 8)).astype(np.float32)

    def test_exact_knng_scores_one(self, cloud):
        g = exact_knn_graph(cloud, 10)
        assert graph_quality(g, cloud, k=10) == pytest.approx(1.0)

    def test_empty_graph_scores_zero(self, cloud):
        assert graph_quality(Graph(len(cloud)), cloud, k=10) == 0.0

    def test_precomputed_exact_ids_match(self, cloud):
        g = exact_knn_graph(cloud, 10)
        exact_ids, _ = exact_knn_lists(cloud, 10)
        assert graph_quality(g, cloud, k=10) == graph_quality(
            g, cloud, k=10, exact_ids=exact_ids
        )

    def test_superset_graph_keeps_quality(self, cloud):
        g = exact_knn_graph(cloud, 10)
        g.add_edge(0, 100)  # extra edge cannot lower GQ
        assert graph_quality(g, cloud, k=10) == pytest.approx(1.0)

    def test_partial_quality(self, cloud):
        ids, _ = exact_knn_lists(cloud, 10)
        half = Graph(len(cloud), ids[:, :5].tolist())
        gq = graph_quality(half, cloud, k=10)
        assert 0.4 < gq < 0.6


class TestDegreeAndStats:
    def test_degree_stats(self):
        g = Graph(3, [[1, 2], [2], []])
        stats = degree_stats(g)
        assert stats.maximum == 2
        assert stats.minimum == 0
        assert stats.average == pytest.approx(1.0)

    def test_graph_index_stats_bundle(self):
        rng = np.random.default_rng(7)
        cloud = rng.normal(size=(80, 6)).astype(np.float32)
        g = exact_knn_graph(cloud, 5)
        stats = graph_index_stats(g, cloud, k=5)
        assert stats.graph_quality == pytest.approx(1.0)
        assert stats.average_out_degree == pytest.approx(5.0)
        assert stats.index_size_bytes == g.index_size_bytes()
        assert stats.connected_components >= 1


class TestSearchMemory:
    def test_components_add_up(self, easy_dataset, built_indexes):
        algorithm = built_indexes["nsg"]
        total = search_memory_bytes(algorithm, ef=50)
        assert total > algorithm.data.nbytes
        assert total > algorithm.index_size_bytes()

    def test_grows_with_ef(self, built_indexes):
        algorithm = built_indexes["nsg"]
        assert search_memory_bytes(algorithm, 500) > search_memory_bytes(algorithm, 10)

    def test_unbuilt_rejected(self):
        from repro import create

        with pytest.raises(RuntimeError):
            search_memory_bytes(create("kgraph"), 10)

    def test_tree_augmented_algorithms_cost_more(self, built_indexes):
        """Table 5 MO driver: attached index structures raise memory."""
        nsg = built_indexes["nsg"]
        efanna = built_indexes["efanna"]
        assert efanna.seed_provider.extra_bytes > nsg.seed_provider.extra_bytes


class TestLatencyPercentiles:
    def test_percentiles_populated_and_ordered(self, easy_dataset, built_indexes):
        stats = built_indexes["hnsw"].batch_search(
            easy_dataset.queries, easy_dataset.ground_truth, k=10, ef=40
        )
        assert stats.latency_p50_ms > 0
        assert stats.latency_p50_ms <= stats.latency_p95_ms <= stats.latency_p99_ms
