"""Regression tests for bugs found during development.

Each test pins a specific failure mode so it cannot silently return.
"""

import numpy as np
import pytest

from repro.distance import pairwise_l2
from repro.graphs import relative_neighborhood_graph, euclidean_mst
from repro.components.selection import select_rng_heuristic


class TestExpandedFormRounding:
    """pairwise_l2 uses |a|²-2ab+|b|²; its rounding is asymmetric."""

    def test_rng_construction_immune_to_asymmetry(self):
        # regression: an endpoint acting as its own lune witness due to
        # dmat[i, j] != dmat[j, i] at the 1e-6 level disconnected the RNG
        rng = np.random.default_rng(3)
        pts = rng.random((80, 2)).astype(np.float32) * 10.0
        graph = relative_neighborhood_graph(pts)
        assert graph.num_connected_components() == 1

    def test_mst_weights_match_float64(self):
        # regression: float32 expanded-form weights drifted ~1e-4 from
        # the float64 reference total
        rng = np.random.default_rng(4)
        pts = rng.random((60, 3)).astype(np.float32)
        total = sum(w for _, _, w in euclidean_mst(pts))
        reference = 0.0
        seen = sum(w for _, _, w in euclidean_mst(pts.astype(np.float64)))
        assert total == pytest.approx(seen, rel=1e-9)


class TestSelectionTies:
    """The RNG heuristic must accept distance ties (duplicate points)."""

    def test_duplicate_of_p_does_not_occlude_everything(self):
        # regression: with strict '>' a copy of p at distance 0 rejected
        # every other candidate, fragmenting duplicate-heavy graphs
        point = np.zeros(4)
        data = np.vstack([
            point,                       # p itself (index 0)
            point,                       # exact duplicate (index 1)
            point + [1.0, 0, 0, 0],      # a genuine neighbor (index 2)
            point + [0, 1.0, 0, 0],      # another direction (index 3)
        ])
        cand = np.asarray([1, 2, 3])
        dists = np.asarray([0.0, 1.0, 1.0])
        out = select_rng_heuristic(point, cand, dists, data, max_degree=4)
        assert len(out) >= 3  # duplicate + both directions survive


class TestProcessStableDatasets:
    """Dataset generation must not depend on Python's salted str hash."""

    def test_standins_use_stable_salt(self):
        import inspect

        from repro.datasets import realworld

        source = inspect.getsource(realworld.make_standin)
        assert "zlib.crc32" in source
        assert "hash(name)" not in source

    def test_same_name_same_data(self):
        from repro.datasets import make_standin

        a = make_standin("audio", cardinality=100, num_queries=5)
        b = make_standin("audio", cardinality=100, num_queries=5)
        np.testing.assert_array_equal(a.base, b.base)
