"""Tests for the §6-outlook extensions: attribute filtering and I/O model."""

import numpy as np
import pytest

from repro import create
from repro.datasets import brute_force_knn, make_clustered
from repro.extensions import AttributeFilteredIndex, DiskIOModel
from repro.extensions.io_model import StorageProfile


@pytest.fixture(scope="module")
def world():
    ds = make_clustered(16, 500, 5, 4.0, num_queries=15, gt_depth=50, seed=23)
    index = create("hnsw", seed=1)
    index.build(ds.base)
    rng = np.random.default_rng(0)
    attributes = [
        {"color": ("red" if flag else "blue"), "price": int(price)}
        for flag, price in zip(rng.random(ds.n) < 0.5, rng.integers(1, 100, ds.n))
    ]
    return ds, index, attributes


class TestAttributeFilter:
    def test_requires_built_base(self):
        with pytest.raises(RuntimeError):
            AttributeFilteredIndex(create("hnsw"), [])

    def test_attribute_count_validated(self, world):
        _, index, _ = world
        with pytest.raises(ValueError):
            AttributeFilteredIndex(index, [{}] * 3)

    def test_all_results_satisfy_predicate(self, world):
        ds, index, attributes = world
        filtered = AttributeFilteredIndex(index, attributes)
        result = filtered.search(
            ds.queries[0], lambda a: a["color"] == "red", k=10, ef=60
        )
        assert len(result.ids) > 0
        for idx in result.ids:
            assert attributes[int(idx)]["color"] == "red"

    def test_matches_filtered_brute_force(self, world):
        ds, index, attributes = world
        filtered = AttributeFilteredIndex(index, attributes)
        red_ids = np.asarray(
            [i for i, a in enumerate(attributes) if a["color"] == "red"]
        )
        query = ds.queries[1]
        truth, _ = brute_force_knn(ds.base[red_ids], query[None, :], 5)
        expected = set(red_ids[truth[0]].tolist())
        result = filtered.search(
            query, lambda a: a["color"] == "red", k=5, ef=80
        )
        overlap = len(expected & set(result.ids.tolist()))
        assert overlap >= 4  # near-exact filtered recall

    def test_range_predicate(self, world):
        ds, index, attributes = world
        filtered = AttributeFilteredIndex(index, attributes)
        result = filtered.search(
            ds.queries[2], lambda a: a["price"] < 30, k=5, ef=60
        )
        for idx in result.ids:
            assert attributes[int(idx)]["price"] < 30

    def test_impossible_predicate_returns_empty(self, world):
        ds, index, attributes = world
        filtered = AttributeFilteredIndex(index, attributes)
        result = filtered.search(ds.queries[0], lambda a: False, k=5, ef=40)
        assert len(result.ids) == 0

    def test_selective_predicate_costs_more(self, world):
        ds, index, attributes = world
        filtered = AttributeFilteredIndex(index, attributes)
        loose = filtered.search(ds.queries[3], lambda a: True, k=10, ef=40)
        tight = filtered.search(
            ds.queries[3], lambda a: a["price"] < 10, k=10, ef=40
        )
        assert tight.hops >= loose.hops


class TestIOModel:
    def test_profiles_ordered_by_latency(self):
        assert StorageProfile.ram().read_latency_s < StorageProfile.ssd().read_latency_s
        assert StorageProfile.ssd().read_latency_s < StorageProfile.hdd().read_latency_s

    def test_latency_formula(self, world):
        ds, index, _ = world
        model = DiskIOModel(StorageProfile.ssd())
        estimate = model.evaluate(index, ds, k=10, ef=40)
        expected = (
            estimate.io_count * 1e-4 + estimate.ndc * 5e-8
        )
        assert estimate.latency_s == pytest.approx(expected)

    def test_slower_storage_costs_more(self, world):
        ds, index, _ = world
        stats = index.batch_search(ds.queries, ds.ground_truth, k=10, ef=40)
        ssd = DiskIOModel(StorageProfile.ssd()).estimate(stats)
        hdd = DiskIOModel(StorageProfile.hdd()).estimate(stats)
        assert hdd.latency_s > ssd.latency_s

    def test_path_length_dominates_on_disk(self, world):
        """Table 7 S3's rationale: on slow storage, hops dominate NDC."""
        ds, index, _ = world
        stats = index.batch_search(ds.queries, ds.ground_truth, k=10, ef=40)
        hdd = DiskIOModel(StorageProfile.hdd()).estimate(stats)
        io_part = hdd.io_count * StorageProfile.hdd().read_latency_s
        compute_part = hdd.ndc * StorageProfile.hdd().compute_per_distance_s
        assert io_part > compute_part
