"""Tests for the cosine / MIPS metric reductions."""

import numpy as np
import pytest

from repro import create
from repro.transforms import (
    MetricIndex,
    augment_base_for_mips,
    augment_query_for_mips,
    normalize_for_cosine,
)


@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(13)
    return (rng.normal(size=(400, 16)) * rng.uniform(0.5, 3.0, (400, 1))).astype(
        np.float32
    )


class TestTransforms:
    def test_normalization_unit_norm(self, vectors):
        unit = normalize_for_cosine(vectors)
        np.testing.assert_allclose(
            np.linalg.norm(unit, axis=1), 1.0, rtol=1e-5
        )

    def test_zero_vector_untouched(self):
        out = normalize_for_cosine(np.zeros((3, 4), dtype=np.float32))
        np.testing.assert_array_equal(out, 0.0)

    def test_mips_augmentation_equalises_norms(self, vectors):
        augmented, max_norm = augment_base_for_mips(vectors)
        assert augmented.shape == (len(vectors), 17)
        np.testing.assert_allclose(
            np.linalg.norm(augmented.astype(np.float64), axis=1),
            max_norm,
            rtol=1e-4,
        )

    def test_mips_l2_order_is_ip_order(self, vectors):
        """The reduction's whole point: augmented-L2 ranks == IP ranks."""
        augmented, _ = augment_base_for_mips(vectors)
        query = vectors[0] * 0.3
        aug_query = augment_query_for_mips(query)
        l2_order = np.argsort(
            np.linalg.norm(augmented - aug_query, axis=1)
        )[:10]
        ip_order = np.argsort(-(vectors @ query))[:10]
        assert set(l2_order.tolist()) == set(ip_order.tolist())


class TestMetricIndex:
    def test_invalid_metric_rejected(self):
        with pytest.raises(ValueError):
            MetricIndex(lambda: create("hnsw"), "manhattan")

    def test_search_before_build_rejected(self):
        index = MetricIndex(lambda: create("hnsw"), "cosine")
        with pytest.raises(RuntimeError):
            index.search(np.zeros(4, dtype=np.float32))

    def test_cosine_matches_brute_force(self, vectors):
        index = MetricIndex(lambda: create("hnsw", seed=1), "cosine").build(
            vectors
        )
        query = vectors[5] * 7.0  # scaling must not matter under cosine
        result = index.search(query, k=10, ef=80)
        sims = (vectors @ query) / (
            np.linalg.norm(vectors, axis=1) * np.linalg.norm(query)
        )
        expected = set(np.argsort(-sims)[:10].tolist())
        assert len(expected & set(result.ids.tolist())) >= 9
        # scores reported descending
        assert np.all(np.diff(result.dists) <= 1e-9)

    def test_ip_matches_brute_force(self, vectors):
        index = MetricIndex(lambda: create("hnsw", seed=1), "ip").build(vectors)
        query = vectors[3]
        result = index.search(query, k=10, ef=80)
        expected = set(np.argsort(-(vectors @ query))[:10].tolist())
        assert len(expected & set(result.ids.tolist())) >= 8

    def test_works_with_any_inner_algorithm(self, vectors):
        index = MetricIndex(lambda: create("nsg", seed=1), "cosine").build(
            vectors
        )
        result = index.search(vectors[0], k=5, ef=60)
        assert result.ids[0] == 0  # the vector itself has cosine 1.0
