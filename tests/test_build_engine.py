"""Build-engine regression tests: pinned hashes, parallel determinism,
and per-phase telemetry invariants.

``tests/data/build_hashes.json`` was recorded *before* the phased build
engine landed (``scripts/gen_build_hashes.py``); matching it proves the
refactor left every algorithm's serial construction bit-identical.  The
cross-``n_workers`` tests then prove the parallel path reproduces the
serial adjacency and NDC exactly, run after run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro import ALGORITHMS, create
from repro import _native
from repro.pipeline.framework import BenchmarkAlgorithm

# must match scripts/gen_build_hashes.py
DATASET_N, DATASET_D, DATASET_SEED = 300, 24, 7

HASHES = json.loads(
    (Path(__file__).parent / "data" / "build_hashes.json").read_text()
)
MODE = "no_native" if _native.LIB is None else "native"
PINNED = HASHES[MODE]

ALL_NAMES = sorted(ALGORITHMS) + ["framework"]
PARALLEL_NAMES = ["nsg", "hnsw", "vamana", "framework"]


def make_algorithm(name: str, **kwargs):
    if name == "framework":
        return BenchmarkAlgorithm(seed=0, **kwargs)
    return create(name, seed=0, **kwargs)


def adjacency_hash(graph) -> str:
    indptr, indices = graph.csr()
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(indptr).tobytes())
    digest.update(np.ascontiguousarray(indices).tobytes())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def pinned_dataset():
    rng = np.random.default_rng(DATASET_SEED)
    return rng.standard_normal((DATASET_N, DATASET_D)).astype(np.float32)


@pytest.fixture(scope="module")
def serial_builds(pinned_dataset):
    """Every algorithm built once at n_workers=1 on the pinned dataset."""
    built = {}
    for name in ALL_NAMES:
        algorithm = make_algorithm(name)
        report = algorithm.build(pinned_dataset)
        built[name] = (algorithm, report)
    return built


class TestPinnedHashes:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_serial_adjacency_matches_prerefactor(self, serial_builds, name):
        algorithm, report = serial_builds[name]
        assert adjacency_hash(algorithm.graph) == PINNED[name]["adjacency"], (
            f"{name}: serial adjacency diverged from the pre-refactor pin"
        )
        assert int(report.build_ndc) == PINNED[name]["ndc"]


class TestParallelDeterminism:
    @pytest.mark.parametrize("name", PARALLEL_NAMES)
    def test_workers_reproduce_serial_build(self, pinned_dataset, name):
        """Same seed => bit-identical adjacency and identical NDC for
        n_workers in {1, 4}, and across repeated parallel runs."""
        results = []
        for _ in range(2):  # repeatability of the parallel path itself
            algorithm = make_algorithm(name, n_workers=4)
            report = algorithm.build(pinned_dataset)
            results.append(
                (adjacency_hash(algorithm.graph), int(report.build_ndc))
            )
        assert results[0] == results[1]
        assert results[0][0] == PINNED[name]["adjacency"]
        assert results[0][1] == PINNED[name]["ndc"]


class TestBuildTelemetry:
    def test_phase_walls_sum_to_build_time(self, serial_builds):
        for name, (_, report) in serial_builds.items():
            total = sum(s.wall_s for s in report.phases.values())
            assert total == pytest.approx(report.build_time_s), name

    def test_phase_ndc_sums_to_build_ndc(self, serial_builds):
        for name, (_, report) in serial_builds.items():
            total = sum(s.ndc for s in report.phases.values())
            assert total == report.build_ndc, name

    def test_phase_labels_are_canonical(self, serial_builds):
        for name, (_, report) in serial_builds.items():
            assert set(report.phases) <= {"c1", "c2+c3", "c4", "c5"}, name
            assert "c4" in report.phases, name  # engine epilogue

    def test_index_size_splits_into_graph_and_aux(self, serial_builds):
        for name, (algorithm, report) in serial_builds.items():
            assert report.index_size_bytes == (
                report.graph_bytes + report.aux_bytes
            ), name
            assert report.graph_bytes == algorithm.graph.index_size_bytes()
            assert report.aux_bytes >= 0

    def test_aux_bytes_cover_seed_structures(self, serial_builds):
        # algorithms whose C4 builds a real auxiliary structure must
        # report a non-zero aux share (satellite of Figure 6)
        for name in ("ieh", "hnsw", "ngt-panng", "sptag-kdt", "sptag-bkt",
                     "efanna", "hcnng"):
            _, report = serial_builds[name]
            assert report.aux_bytes > 0, name

    def test_report_records_worker_count(self, pinned_dataset):
        algorithm = make_algorithm("nsg", n_workers=4)
        report = algorithm.build(pinned_dataset)
        assert report.n_workers == 4
