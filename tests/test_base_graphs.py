"""Tests for the four base graphs of §3.1: KNNG, RNG, DG, MST.

Includes the structural relations the computational-geometry literature
guarantees (MST ⊆ RNG ⊆ DG in the plane) and property-based checks of
each definition.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance import DistanceCounter
from repro.graphs import (
    delaunay_graph,
    euclidean_mst,
    exact_knn_graph,
    exact_knn_lists,
    mst_over_candidates,
    relative_neighborhood_graph,
)
from repro.graphs.rng import rng_edge_holds


def random_points(n: int, dim: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.random((n, dim)).astype(np.float64) * 10.0


class TestKNNG:
    def test_rows_match_brute_force(self):
        data = random_points(60, 8, 0)
        ids, dists = exact_knn_lists(data, 5)
        full = np.linalg.norm(data[:, None, :] - data[None, :, :], axis=2)
        np.fill_diagonal(full, np.inf)
        for i in range(60):
            expected = np.argsort(full[i], kind="stable")[:5]
            np.testing.assert_allclose(
                np.sort(dists[i]), np.sort(full[i][expected]), rtol=1e-6
            )

    def test_no_self_neighbors(self):
        data = random_points(40, 4, 1)
        ids, _ = exact_knn_lists(data, 6)
        for i in range(40):
            assert i not in ids[i]

    def test_rows_sorted_ascending(self):
        data = random_points(50, 6, 2)
        _, dists = exact_knn_lists(data, 7)
        assert np.all(np.diff(dists, axis=1) >= -1e-9)

    def test_k_clamped_to_n_minus_one(self):
        data = random_points(5, 3, 3)
        ids, _ = exact_knn_lists(data, 50)
        assert ids.shape == (5, 4)

    def test_counter_charged(self):
        data = random_points(30, 4, 4)
        counter = DistanceCounter()
        exact_knn_lists(data, 3, counter=counter)
        assert counter.count == 30 * 30

    def test_graph_out_degree_is_k(self):
        data = random_points(30, 4, 5)
        g = exact_knn_graph(data, 4)
        assert g.max_out_degree == 4
        assert g.min_out_degree == 4

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            exact_knn_lists(np.zeros((1, 3)), 1)


class TestRNG:
    def test_edge_property_holds_everywhere(self, plane_points):
        g = relative_neighborhood_graph(plane_points)
        for u, v in g.edges():
            if u < v:
                assert rng_edge_holds(plane_points, u, v)

    def test_non_edges_violate_property_or_are_occluded(self, plane_points):
        g = relative_neighborhood_graph(plane_points)
        edge_set = g.edge_set()
        # every pair NOT in the RNG must have a lune witness
        n = len(plane_points)
        missing = [
            (i, j)
            for i in range(n)
            for j in range(i + 1, n)
            if (i, j) not in edge_set
        ]
        assert missing, "an RNG on random points should not be complete"
        for i, j in missing[:50]:
            assert not rng_edge_holds(plane_points, i, j)

    def test_connected_in_plane(self, plane_points):
        # the RNG contains the MST, so it is connected
        g = relative_neighborhood_graph(plane_points)
        assert g.num_connected_components() == 1

    def test_contains_mst_edges(self, plane_points):
        g = relative_neighborhood_graph(plane_points)
        edge_set = g.edge_set()
        for u, v, _ in euclidean_mst(plane_points):
            assert (u, v) in edge_set or (v, u) in edge_set

    def test_empty_input(self):
        assert relative_neighborhood_graph(np.zeros((0, 2))).n == 0

    @given(st.integers(min_value=3, max_value=12), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_on_random_inputs(self, n, seed):
        data = random_points(n, 2, seed)
        g = relative_neighborhood_graph(data)
        for u, v in g.edges():
            if u < v:
                assert rng_edge_holds(data, u, v)


class TestDelaunay:
    def test_contains_rng_in_plane(self, plane_points):
        dg = delaunay_graph(plane_points).edge_set()
        rng_g = relative_neighborhood_graph(plane_points)
        for u, v in rng_g.edges():
            assert (u, v) in dg

    def test_high_dimension_refused(self):
        with pytest.raises(ValueError, match="limited to dim"):
            delaunay_graph(np.zeros((10, 32)))

    def test_tiny_input_complete(self):
        data = random_points(3, 2, 0)
        g = delaunay_graph(data)
        assert g.num_edges == 6  # complete graph, both directions

    def test_connected(self, plane_points):
        assert delaunay_graph(plane_points).num_connected_components() == 1


class TestMST:
    def test_edge_count(self, plane_points):
        assert len(euclidean_mst(plane_points)) == len(plane_points) - 1

    def test_weight_matches_networkx(self, plane_points):
        ours = sum(w for _, _, w in euclidean_mst(plane_points))
        g = nx.Graph()
        n = len(plane_points)
        for i in range(n):
            for j in range(i + 1, n):
                g.add_edge(
                    i, j, weight=float(np.linalg.norm(plane_points[i] - plane_points[j]))
                )
        reference = sum(
            d["weight"] for _, _, d in nx.minimum_spanning_edges(g, data=True)
        )
        assert ours == pytest.approx(reference, rel=1e-6)

    def test_spans_all_vertices(self, plane_points):
        edges = euclidean_mst(plane_points)
        touched = set()
        for u, v, _ in edges:
            touched.add(u)
            touched.add(v)
        assert touched == set(range(len(plane_points)))

    def test_single_point(self):
        assert euclidean_mst(np.zeros((1, 2))) == []

    def test_kruskal_over_candidates_matches_prim(self, plane_points):
        n = len(plane_points)
        all_edges = [
            (i, j, float(np.linalg.norm(plane_points[i] - plane_points[j])))
            for i in range(n)
            for j in range(i + 1, n)
        ]
        kruskal = sum(w for _, _, w in mst_over_candidates(n, all_edges))
        prim = sum(w for _, _, w in euclidean_mst(plane_points))
        assert kruskal == pytest.approx(prim, rel=1e-9)

    def test_kruskal_partial_candidates_gives_forest(self):
        edges = [(0, 1, 1.0), (2, 3, 1.0)]
        forest = mst_over_candidates(4, edges)
        assert len(forest) == 2

    @given(st.integers(min_value=2, max_value=20), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_always_n_minus_one_edges(self, n, seed):
        data = random_points(n, 3, seed)
        assert len(euclidean_mst(data)) == n - 1
