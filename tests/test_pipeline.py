"""Tests for the evaluation harness and the §5.4 component framework."""

import numpy as np
import pytest

from repro.pipeline import (
    BENCHMARK_DEFAULTS,
    BenchmarkAlgorithm,
    candidate_size_for_recall,
    fit_power_law,
    sweep_recall_curve,
)


class TestPowerLaw:
    def test_exact_power(self):
        sizes = np.asarray([100, 1_000, 10_000])
        values = 3.0 * sizes.astype(float) ** 0.54
        exponent, coeff = fit_power_law(sizes, values)
        assert exponent == pytest.approx(0.54, abs=1e-9)
        assert coeff == pytest.approx(3.0, rel=1e-9)

    def test_linear(self):
        exponent, _ = fit_power_law([10, 100, 1000], [20, 200, 2000])
        assert exponent == pytest.approx(1.0, abs=1e-9)

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([10], [5])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1.0])


class TestSweeps:
    def test_curve_shape(self, easy_dataset, built_indexes):
        points = sweep_recall_curve(
            built_indexes["hnsw"], easy_dataset, k=10, ef_grid=(10, 40, 120)
        )
        assert [p.ef for p in points] == [10, 40, 120]
        recalls = [p.recall for p in points]
        assert recalls == sorted(recalls)
        # speedup decreases as ef (work) increases
        assert points[0].speedup >= points[-1].speedup

    def test_candidate_size_found(self, easy_dataset, built_indexes):
        result = candidate_size_for_recall(
            built_indexes["hnsw"], easy_dataset, 0.9, ef_grid=(10, 20, 40, 80, 160)
        )
        assert not result.hit_ceiling
        assert result.recall >= 0.9

    def test_ceiling_detected(self, easy_dataset, built_indexes):
        result = candidate_size_for_recall(
            built_indexes["hnsw"], easy_dataset, 1.01, ef_grid=(10, 20)
        )
        assert result.hit_ceiling
        assert result.candidate_size == 20


class TestBenchmarkFramework:
    def test_defaults_match_table13(self):
        assert BENCHMARK_DEFAULTS == {
            "c1": "nsg", "c2": "nssg", "c3": "hnsw",
            "c4": "nssg", "c5": "ieh", "c7": "nsw",
        }

    def test_invalid_choice_rejected(self):
        with pytest.raises(ValueError, match="c3="):
            BenchmarkAlgorithm(c3="bogus")

    def test_default_benchmark_works(self, tiny_dataset):
        bench = BenchmarkAlgorithm(seed=0, init_k=10, max_degree=10)
        bench.build(tiny_dataset.base)
        stats = bench.batch_search(
            tiny_dataset.queries, tiny_dataset.ground_truth, k=10, ef=40
        )
        assert stats.recall >= 0.8
        assert set(bench.phase_times) == {"c1", "c2+c3", "c5", "c4"}

    @pytest.mark.parametrize("c1", ["kgraph", "efanna", "ieh"])
    def test_c1_swaps(self, tiny_dataset, c1):
        bench = BenchmarkAlgorithm(c1=c1, seed=0, init_k=10, max_degree=10)
        bench.build(tiny_dataset.base)
        assert bench.graph.num_edges > 0

    @pytest.mark.parametrize("c2", ["dpg", "nsw"])
    def test_c2_swaps(self, tiny_dataset, c2):
        bench = BenchmarkAlgorithm(c2=c2, seed=0, init_k=10, max_degree=10)
        bench.build(tiny_dataset.base)
        stats = bench.batch_search(
            tiny_dataset.queries, tiny_dataset.ground_truth, k=10, ef=40
        )
        assert stats.recall > 0.5

    @pytest.mark.parametrize("c7", ["ngt", "fanng", "hcnng", "oa"])
    def test_c7_swaps(self, tiny_dataset, c7):
        bench = BenchmarkAlgorithm(c7=c7, seed=0, init_k=10, max_degree=10)
        bench.build(tiny_dataset.base)
        result = bench.search(tiny_dataset.queries[0], k=5, ef=30)
        assert len(result.ids) == 5

    def test_c5_nsg_ensures_reachability(self, tiny_dataset):
        from repro.components.connectivity import _reachable_from

        bench = BenchmarkAlgorithm(c5="nsg", seed=0, init_k=10, max_degree=10)
        bench.build(tiny_dataset.base)
        # the framework repairs from a random root; at least one vertex
        # must reach everything
        reachable_any = any(
            _reachable_from(bench.graph, np.asarray([r])).all()
            for r in range(0, bench.graph.n, 17)
        )
        assert reachable_any or bench.graph.num_connected_components() == 1

    def test_c3_distance_only_higher_gq(self, tiny_dataset):
        """§5.4 C3: distance-only selection maximises graph quality."""
        from repro.metrics import graph_quality

        distance_only = BenchmarkAlgorithm(
            c3="kgraph", seed=0, init_k=10, max_degree=10
        )
        distance_only.build(tiny_dataset.base)
        heuristic = BenchmarkAlgorithm(c3="hnsw", seed=0, init_k=10, max_degree=10)
        heuristic.build(tiny_dataset.base)
        gq_distance = graph_quality(distance_only.graph, tiny_dataset.base, k=10)
        gq_heuristic = graph_quality(heuristic.graph, tiny_dataset.base, k=10)
        assert gq_distance >= gq_heuristic

    def test_name_encodes_configuration(self):
        bench = BenchmarkAlgorithm(c3="dpg")
        assert "dpg" in bench.name
