"""Unit + property tests for the distance kernels and NDC accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.distance import DistanceCounter, l2, l2_batch, pairwise_l2

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False,
    width=32,
)


def vec(dim: int):
    return arrays(np.float32, (dim,), elements=finite_floats)


class TestL2:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x, y = rng.random(16), rng.random(16)
        assert l2(x, y) == pytest.approx(float(np.linalg.norm(x - y)))

    def test_zero_for_identical(self):
        x = np.ones(8)
        assert l2(x, x) == 0.0

    @given(vec(8), vec(8))
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, x, y):
        assert l2(x, y) == pytest.approx(l2(y, x), abs=1e-4)

    @given(vec(8), vec(8), vec(8))
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, x, y, z):
        assert l2(x, z) <= l2(x, y) + l2(y, z) + 1e-3


class TestBatchKernels:
    def test_l2_batch_matches_scalar(self):
        rng = np.random.default_rng(1)
        q = rng.random(12)
        pts = rng.random((20, 12))
        batch = l2_batch(q, pts)
        for i in range(20):
            assert batch[i] == pytest.approx(l2(q, pts[i]), rel=1e-6)

    def test_pairwise_matches_batch(self):
        rng = np.random.default_rng(2)
        a = rng.random((7, 10))
        b = rng.random((9, 10))
        mat = pairwise_l2(a, b)
        assert mat.shape == (7, 9)
        for i in range(7):
            np.testing.assert_allclose(mat[i], l2_batch(a[i], b), rtol=1e-5)

    def test_pairwise_never_negative(self):
        # near-duplicate rows trigger the negative-rounding clamp
        a = np.full((5, 4), 3.333333, dtype=np.float32)
        mat = pairwise_l2(a, a)
        assert np.all(mat >= 0.0)

    def test_pairwise_diagonal_zero_on_self(self):
        rng = np.random.default_rng(3)
        a = rng.random((6, 5))
        np.testing.assert_allclose(np.diag(pairwise_l2(a, a)), 0.0, atol=1e-5)


class TestDistanceCounter:
    def test_pair_counts_one(self):
        counter = DistanceCounter()
        counter.pair(np.ones(4), np.zeros(4))
        assert counter.count == 1

    def test_one_to_many_counts_rows(self):
        counter = DistanceCounter()
        counter.one_to_many(np.ones(4), np.zeros((13, 4)))
        assert counter.count == 13

    def test_many_to_many_counts_product(self):
        counter = DistanceCounter()
        counter.many_to_many(np.zeros((3, 4)), np.zeros((5, 4)))
        assert counter.count == 15

    def test_reset(self):
        counter = DistanceCounter()
        counter.pair(np.ones(2), np.zeros(2))
        counter.reset()
        assert counter.count == 0

    def test_accumulates_across_calls(self):
        counter = DistanceCounter()
        counter.pair(np.ones(2), np.zeros(2))
        counter.one_to_many(np.ones(2), np.zeros((4, 2)))
        assert counter.count == 5
