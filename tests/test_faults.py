"""Deterministic fault-injection tests (marked ``faults``).

Every injected fault must produce a structured error or a degraded
result — never a crash, a hang, or silently wrong ids.  The injection
plans are seeded and scheduled, so each scenario replays exactly.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro import IndexFormatError, QueryBudget
from repro import faults
from repro.batch import search_batch
from repro.io import load_index, save_index

pytestmark = pytest.mark.faults


@pytest.fixture(scope="module")
def static_index(tmp_path_factory, built_indexes):
    # nsg: centroid seed, so the loaded index answers repeated queries
    # identically — these tests compare clean vs faulted runs.
    # (Stochastic providers stay stochastic after load; see test_io.py.)
    path = tmp_path_factory.mktemp("faults") / "nsg.npz"
    save_index(built_indexes["nsg"], path)
    return load_index(path)


@pytest.fixture(scope="module")
def saved_path(tmp_path_factory, built_indexes):
    path = tmp_path_factory.mktemp("faults-io") / "index.npz"
    save_index(built_indexes["nsw"], path)
    return path


# -- worker fault isolation ---------------------------------------------


class TestWorkerFaults:
    def test_crashed_worker_chunk_is_retried(self, static_index, easy_dataset):
        queries = easy_dataset.queries[:8]
        clean = search_batch(static_index, queries, k=5, workers=2)
        with faults.inject(faults.FaultPlan(fail_workers=frozenset({0}))):
            result = search_batch(static_index, queries, k=5, workers=2)
        assert result.num_errors == 0
        np.testing.assert_array_equal(result.ids, clean.ids)
        np.testing.assert_array_equal(result.ndc, clean.ndc)
        np.testing.assert_array_equal(result.hops, clean.hops)
        np.testing.assert_allclose(result.dists, clean.dists, rtol=1e-12)

    def test_all_workers_crashing_still_answers(self, static_index, easy_dataset):
        queries = easy_dataset.queries[:8]
        clean = search_batch(static_index, queries, k=5, workers=4)
        with faults.inject(faults.FaultPlan(fail_workers=frozenset(range(4)))):
            result = search_batch(static_index, queries, k=5, workers=4)
        assert result.num_errors == 0
        np.testing.assert_array_equal(result.ids, clean.ids)

    def test_persistent_query_fault_reports_per_query(
        self, static_index, easy_dataset
    ):
        queries = easy_dataset.queries[:6]
        clean = search_batch(static_index, queries, k=5, workers=2)
        plan = faults.FaultPlan(
            fail_workers=frozenset({0, 1}), fail_queries=frozenset({1})
        )
        with faults.inject(plan):
            result = search_batch(static_index, queries, k=5, workers=2)
        assert result.num_errors == 1
        assert "injected fault for query 1" in result.errors[1]
        assert np.all(result.ids[1] == -1)
        assert np.all(np.isinf(result.dists[1]))
        for i in (0, 2, 3, 4, 5):
            assert result.errors[i] is None
            np.testing.assert_array_equal(result.ids[i], clean.ids[i])
            assert result.ndc[i] == clean.ndc[i]

    def test_no_armed_plan_outside_context(self, static_index, easy_dataset):
        with faults.inject(faults.FaultPlan(fail_workers=frozenset({0}))):
            pass
        assert faults.active() is None
        result = search_batch(static_index, easy_dataset.queries[:3], k=5)
        assert result.num_errors == 0


# -- deadline via distance delay ----------------------------------------


class TestDeadlineFaults:
    def test_slow_distances_trip_the_deadline(self, static_index, easy_dataset):
        budget = QueryBudget(deadline_s=0.005)
        with faults.inject(faults.FaultPlan(distance_delay_s=0.02)):
            result = static_index.search(
                easy_dataset.queries[0], k=5, budget=budget
            )
        assert result.degraded
        assert result.budget.limit == "deadline"
        assert result.budget.elapsed_s >= 0.005

    def test_slow_distances_without_budget_still_finish(
        self, static_index, easy_dataset
    ):
        clean = static_index.search(easy_dataset.queries[0], k=5)
        with faults.inject(faults.FaultPlan(distance_delay_s=0.0005)):
            # force the NumPy path (the delay hook lives in SearchContext)
            result = static_index.search(
                easy_dataset.queries[0], k=5, budget=QueryBudget(deadline_s=60.0)
            )
        assert not result.degraded
        np.testing.assert_array_equal(result.ids, clean.ids)


# -- persisted-index faults ---------------------------------------------


class TestFileFaults:
    def test_truncated_file(self, saved_path, tmp_path):
        broken = tmp_path / "trunc.npz"
        shutil.copy(saved_path, broken)
        faults.truncate_file(broken, keep_fraction=0.5)
        with pytest.raises(IndexFormatError) as info:
            load_index(broken)
        assert str(broken) in str(info.value)

    def test_missing_file(self, tmp_path):
        with pytest.raises(IndexFormatError):
            load_index(tmp_path / "does-not-exist.npz")

    def test_missing_keys(self, saved_path, tmp_path):
        with np.load(saved_path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload.pop("neighbors")
        broken = tmp_path / "missing.npz"
        np.savez_compressed(broken, **payload)
        with pytest.raises(IndexFormatError, match="missing keys"):
            load_index(broken)

    def test_checksum_mismatch(self, saved_path, tmp_path):
        with np.load(saved_path) as archive:
            payload = {k: archive[k] for k in archive.files}
        tampered = payload["data"].copy()
        tampered[0, 0] += 1.0
        payload["data"] = tampered
        broken = tmp_path / "tampered.npz"
        np.savez_compressed(broken, **payload)
        with pytest.raises(IndexFormatError, match="checksum mismatch"):
            load_index(broken)

    def test_version_mismatch(self, saved_path, tmp_path):
        with np.load(saved_path) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["format_version"] = np.asarray(999)
        broken = tmp_path / "future.npz"
        np.savez_compressed(broken, **payload)
        with pytest.raises(IndexFormatError, match="unsupported index format"):
            load_index(broken)

    def test_corrupt_adjacency_in_file_detected_then_repaired(
        self, saved_path, tmp_path, easy_dataset
    ):
        from repro.resilience import IndexIntegrityError

        with np.load(saved_path) as archive:
            payload = {k: archive[k] for k in archive.files}
        neighbors = payload["neighbors"].copy()
        neighbors[::7] = len(payload["data"]) + 3  # out-of-range ids
        payload["neighbors"] = neighbors
        # recompute the checksum so only the *integrity* layer can object
        from repro.io import _content_checksum

        payload["checksum"] = np.asarray(
            _content_checksum(
                payload["data"], payload["offsets"], payload["neighbors"],
                payload["seeds"], payload["deleted"],
            )
        )
        broken = tmp_path / "badgraph.npz"
        np.savez_compressed(broken, **payload)
        with pytest.raises(IndexIntegrityError):
            load_index(broken)
        index = load_index(broken, repair=True)
        result = index.search(easy_dataset.queries[0], k=5)
        assert np.all(result.ids < index.graph.n)
        from repro import verify_index

        assert verify_index(index).ok
