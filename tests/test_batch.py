"""Tests for the lockstep batched search."""

import numpy as np
import pytest

from repro import create
from repro.batch import batch_search, batched_best_first_search
from repro.components.routing import best_first_search
from repro.datasets import make_clustered
from repro.distance import DistanceCounter


@pytest.fixture(scope="module")
def world():
    ds = make_clustered(16, 600, 6, 4.0, num_queries=25, gt_depth=20, seed=29)
    index = create("hnsw", seed=1)
    index.build(ds.base)
    return ds, index


class TestEquivalence:
    def test_matches_sequential_with_same_seeds(self, world):
        """Lockstep bookkeeping == sequential bookkeeping, per query."""
        ds, index = world
        graph, data = index.graph, index.data
        seeds = [np.asarray([int(q) % graph.n]) for q in range(5)]
        queries = ds.queries[:5]
        batch = batched_best_first_search(
            graph, data, queries, seeds, ef=40, k=10
        )
        for q in range(5):
            solo = best_first_search(
                graph, data, queries[q], seeds[q], ef=40
            )
            np.testing.assert_array_equal(batch.ids[q], solo.ids[:10])

    def test_ndc_matches_sequential_total(self, world):
        ds, index = world
        graph, data = index.graph, index.data
        seeds = [np.asarray([7]) for _ in range(5)]
        queries = ds.queries[:5]
        batch = batched_best_first_search(
            graph, data, queries, seeds, ef=30, k=10
        )
        total = 0
        for q in range(5):
            counter = DistanceCounter()
            best_first_search(
                graph, data, queries[q], seeds[q], ef=30, counter=counter
            )
            total += counter.count
        assert batch.total_ndc == total


class TestBatchSearch:
    def test_recall(self, world):
        ds, index = world
        result = batch_search(index, ds.queries, k=10, ef=60)
        hits = 0
        for q in range(ds.num_queries):
            truth = set(int(t) for t in ds.ground_truth[q][:10])
            hits += len(truth & set(int(i) for i in result.ids[q] if i >= 0))
        assert hits / (10 * ds.num_queries) >= 0.9

    def test_unbuilt_rejected(self):
        with pytest.raises(RuntimeError):
            batch_search(create("hnsw"), np.zeros((2, 4), dtype=np.float32))

    def test_padding_for_unfillable_queries(self):
        """A query over a tiny index pads with -1 / inf."""
        ds = make_clustered(8, 30, 2, 2.0, num_queries=3, gt_depth=5, seed=1)
        index = create("kgraph", k=5, seed=0)
        index.build(ds.base)
        result = batch_search(index, ds.queries, k=50, ef=50)
        assert (result.ids >= -1).all()
        assert np.isinf(result.dists[result.ids == -1]).all()

    def test_reports_throughput(self, world):
        ds, index = world
        result = batch_search(index, ds.queries, k=10, ef=40)
        assert result.qps > 0
        assert result.mean_hops > 0
