"""Tests for the lockstep batched search."""

import numpy as np
import pytest

from repro import create
from repro.batch import batch_search, batched_best_first_search
from repro.components.routing import best_first_search
from repro.datasets import make_clustered
from repro.distance import DistanceCounter


@pytest.fixture(scope="module")
def world():
    ds = make_clustered(16, 600, 6, 4.0, num_queries=25, gt_depth=20, seed=29)
    index = create("hnsw", seed=1)
    index.build(ds.base)
    return ds, index


class TestEquivalence:
    def test_matches_sequential_with_same_seeds(self, world):
        """Lockstep bookkeeping == sequential bookkeeping, per query."""
        ds, index = world
        graph, data = index.graph, index.data
        seeds = [np.asarray([int(q) % graph.n]) for q in range(5)]
        queries = ds.queries[:5]
        batch = batched_best_first_search(
            graph, data, queries, seeds, ef=40, k=10
        )
        for q in range(5):
            solo = best_first_search(
                graph, data, queries[q], seeds[q], ef=40
            )
            np.testing.assert_array_equal(batch.ids[q], solo.ids[:10])

    def test_ndc_matches_sequential_total(self, world):
        ds, index = world
        graph, data = index.graph, index.data
        seeds = [np.asarray([7]) for _ in range(5)]
        queries = ds.queries[:5]
        batch = batched_best_first_search(
            graph, data, queries, seeds, ef=30, k=10
        )
        total = 0
        for q in range(5):
            counter = DistanceCounter()
            best_first_search(
                graph, data, queries[q], seeds[q], ef=30, counter=counter
            )
            total += counter.count
        assert batch.total_ndc == total


class TestBatchSearch:
    def test_recall(self, world):
        ds, index = world
        result = batch_search(index, ds.queries, k=10, ef=60)
        hits = 0
        for q in range(ds.num_queries):
            truth = set(int(t) for t in ds.ground_truth[q][:10])
            hits += len(truth & set(int(i) for i in result.ids[q] if i >= 0))
        assert hits / (10 * ds.num_queries) >= 0.9

    def test_unbuilt_rejected(self):
        with pytest.raises(RuntimeError):
            batch_search(create("hnsw"), np.zeros((2, 4), dtype=np.float32))

    def test_padding_for_unfillable_queries(self):
        """A query over a tiny index pads with -1 / inf."""
        ds = make_clustered(8, 30, 2, 2.0, num_queries=3, gt_depth=5, seed=1)
        index = create("kgraph", k=5, seed=0)
        index.build(ds.base)
        result = batch_search(index, ds.queries, k=50, ef=50)
        assert (result.ids >= -1).all()
        assert np.isinf(result.dists[result.ids == -1]).all()

    def test_reports_throughput(self, world):
        ds, index = world
        result = batch_search(index, ds.queries, k=10, ef=40)
        assert result.qps > 0
        assert result.mean_hops > 0


class TestSearchBatch:
    """The worker-pool engine must be indistinguishable from a
    sequential ``index.search`` loop, telemetry included."""

    def _sequential(self, index, queries, k, ef):
        ids, dists, ndc, hops, visited = [], [], [], [], []
        for query in queries:
            r = index.search(query, k=k, ef=ef)
            ids.append(np.pad(r.ids, (0, k - len(r.ids)), constant_values=-1))
            dists.append(
                np.pad(r.dists.astype(float), (0, k - len(r.dists)),
                       constant_values=np.inf)
            )
            ndc.append(r.ndc)
            hops.append(r.hops)
            visited.append(r.visited)
        return (np.stack(ids), np.stack(dists), np.asarray(ndc),
                np.asarray(hops), np.asarray(visited))

    @pytest.mark.parametrize("workers", [1, 3])
    def test_matches_sequential_loop(self, world, workers):
        from repro.batch import search_batch

        ds, index = world
        seq = self._sequential(index, ds.queries, k=10, ef=40)
        got = search_batch(index, ds.queries, k=10, ef=40, workers=workers)
        np.testing.assert_array_equal(got.ids, seq[0])
        np.testing.assert_array_equal(got.dists, seq[1])
        np.testing.assert_array_equal(got.ndc, seq[2])
        np.testing.assert_array_equal(got.hops, seq[3])
        np.testing.assert_array_equal(got.visited, seq[4])
        assert got.workers == workers
        assert got.qps > 0

    def test_default_route_native_chunk(self):
        """kgraph routes with the stock best-first search, so its chunks
        take the one-native-call fast path; results must still match a
        sequential loop drawing the same seeds."""
        from repro.batch import search_batch
        from repro.components.seeding import RandomSeeds

        ds = make_clustered(16, 500, 5, 4.0, num_queries=15, gt_depth=20, seed=3)
        index = create("kgraph", k=8, seed=0)
        index.build(ds.base)
        # stateful provider: give both runs identical RNG streams
        index.seed_provider = RandomSeeds(count=6, seed=11)
        index.seed_provider.prepare(index.data, index.graph)
        seq = self._sequential(index, ds.queries, k=5, ef=30)
        index.seed_provider = RandomSeeds(count=6, seed=11)
        index.seed_provider.prepare(index.data, index.graph)
        got = search_batch(index, ds.queries, k=5, ef=30, workers=4)
        np.testing.assert_array_equal(got.ids, seq[0])
        np.testing.assert_array_equal(got.dists, seq[1])
        np.testing.assert_array_equal(got.ndc, seq[2])
        np.testing.assert_array_equal(got.hops, seq[3])
        np.testing.assert_array_equal(got.visited, seq[4])

    def test_tombstones_filtered(self, world):
        from repro.batch import search_batch

        ds, index = world
        baseline = search_batch(index, ds.queries[:5], k=10, ef=40)
        victim = int(baseline.ids[0][0])
        index.delete(victim)
        try:
            got = search_batch(index, ds.queries[:5], k=10, ef=40, workers=2)
            assert victim not in got.ids
        finally:
            index._deleted[victim] = False

    def test_per_query_telemetry_is_lossless(self, world):
        from repro.batch import search_batch

        ds, index = world
        got = search_batch(index, ds.queries, k=10, ef=40, workers=2)
        assert got.ndc.shape == (len(ds.queries),)
        assert (got.ndc > 0).all() and (got.hops > 0).all()
        assert got.total_ndc == got.ndc.sum()
        assert got.mean_hops == pytest.approx(got.hops.mean())

    def test_unbuilt_rejected(self):
        from repro.batch import search_batch

        with pytest.raises(RuntimeError):
            search_batch(create("hnsw"), np.zeros((2, 4), dtype=np.float32))

    def test_empty_batch(self, world):
        from repro.batch import search_batch

        ds, index = world
        got = search_batch(index, np.zeros((0, ds.dim), dtype=np.float32), k=5)
        assert got.ids.shape == (0, 5)
        assert got.total_ndc == 0
