"""Serving front door: coalescing correctness, admission, drain.

The contract under test is the tentpole claim: concurrent single-query
requests coalesced into one fused-kernel ``search_batch`` call return
responses *bit-identical* (ids and NDC) to a direct ``index.search()``
of the same vector — batching is a throughput transform, never a
semantic one.  On top of that: per-request deadlines ride the
``QueryBudget``/``degraded`` machinery without leaving the fused MT
path, malformed requests fail alone (never their batchmates), the
bounded queue sheds load with 429, and a draining server finishes
in-flight work while refusing new requests with 503.

Runs in both kernel modes (listed in DUAL_MODE_SUITES): with
``REPRO_NO_NATIVE=1`` the same requests flow through the pure-NumPy
batch path — slower, same bits.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time

import numpy as np
import pytest

import repro
from repro import _native
from repro.serving import (
    BackgroundServer,
    Coalescer,
    Draining,
    Overloaded,
    ProtocolError,
    RequestFailed,
    Server,
    ServingConfig,
    parse_search_request,
)
from repro.serving.protocol import SearchRequest

DIM = 16
K = 10
EF = 64


@pytest.fixture(scope="module")
def served_index():
    """A small deterministic-seed index (NSG routes from the medoid, so
    sequential and batched searches share seeds bit-for-bit)."""
    rng = np.random.default_rng(11)
    data = rng.standard_normal((1500, DIM)).astype(np.float32)
    index = repro.create("nsg", seed=3)
    index.build(data)
    return index


@pytest.fixture(scope="module")
def query_set():
    rng = np.random.default_rng(12)
    return rng.standard_normal((48, DIM)).astype(np.float32)


@pytest.fixture(scope="module")
def sequential_reference(served_index, query_set):
    return [served_index.search(q, k=K, ef=EF) for q in query_set]


def make_request(vector, **extra) -> SearchRequest:
    body = json.dumps({"vector": list(map(float, vector)), **extra}).encode()
    return parse_search_request(body, DIM, default_k=K, default_ef=EF)


def post_json(port: int, payload, path: str = "/search", timeout=30.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = payload if isinstance(payload, (bytes, str)) else json.dumps(payload)
        conn.request("POST", path, body,
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def run_concurrent_submits(coalescer, requests):
    """Drive many submits concurrently on one event loop; returns
    results/errors in request order."""

    async def go():
        return await asyncio.gather(
            *(coalescer.submit(r) for r in requests),
            return_exceptions=True,
        )

    return asyncio.run(go())


# -- protocol ------------------------------------------------------------


class TestProtocol:
    def test_defaults_applied(self):
        req = make_request(np.zeros(DIM))
        assert req.k == K and req.ef == EF
        assert req.deadline_ms is None and req.max_ndc is None

    def test_ef_floored_to_k(self):
        req = make_request(np.zeros(DIM), k=32, ef=4)
        assert req.ef == 32

    @pytest.mark.parametrize("body", [
        b"not json",
        b"[1,2,3]",
        b'{"k": 5}',
        b'{"vector": []}',
        b'{"vector": "nope"}',
        b'{"vector": [1, "x"]}',
        json.dumps({"vector": [0.0] * (DIM + 1)}).encode(),
        json.dumps({"vector": [float("nan")] * DIM}).encode(),
        json.dumps({"vector": [0.0] * DIM, "k": 0}).encode(),
        json.dumps({"vector": [0.0] * DIM, "k": "five"}).encode(),
        json.dumps({"vector": [0.0] * DIM, "deadline_ms": -5}).encode(),
        json.dumps({"vector": [0.0] * DIM, "bogus": 1}).encode(),
    ])
    def test_malformed_rejected(self, body):
        with pytest.raises(ProtocolError):
            parse_search_request(body, DIM, default_k=K, default_ef=EF)

    def test_nan_vector_rejected(self):
        body = json.dumps({"vector": [None] + [0.0] * (DIM - 1)}).encode()
        with pytest.raises(ProtocolError):
            parse_search_request(body, DIM, default_k=K, default_ef=EF)

    def test_budget_mapping(self):
        req = make_request(np.zeros(DIM), deadline_ms=25, max_ndc=5000)
        budget = req.make_budget(0.025)
        assert budget.deadline_s == pytest.approx(0.025)
        assert budget.max_ndc == 5000
        assert make_request(np.zeros(DIM)).make_budget(None) is None


# -- coalescer correctness ----------------------------------------------


class TestCoalescerBitIdentity:
    def test_concurrent_equals_sequential(
        self, served_index, query_set, sequential_reference
    ):
        coalescer = Coalescer(
            served_index, max_wait_ms=10.0, max_batch=16, workers=2
        )
        requests = [make_request(q) for q in query_set]
        results = run_concurrent_submits(coalescer, requests)
        coalescer.close()
        for got, want in zip(results, sequential_reference):
            assert not isinstance(got, Exception), got
            assert list(got["ids"][got["ids"] >= 0]) == list(want.ids)
            assert got["ndc"] == want.ndc
            assert not got["degraded"]
        # and they actually coalesced
        assert coalescer.stats.batches < len(query_set)
        assert coalescer.stats.mean_batch_size > 1.0

    def test_generous_deadline_changes_no_bits(
        self, served_index, query_set, sequential_reference
    ):
        coalescer = Coalescer(
            served_index, max_wait_ms=10.0, max_batch=16, workers=2
        )
        requests = [make_request(q, deadline_ms=60_000) for q in query_set]
        results = run_concurrent_submits(coalescer, requests)
        coalescer.close()
        for got, want in zip(results, sequential_reference):
            assert not isinstance(got, Exception), got
            assert list(got["ids"][got["ids"] >= 0]) == list(want.ids)
            assert got["ndc"] == want.ndc
            assert not got["degraded"]

    @pytest.mark.skipif(_native.LIB is None, reason="native kernel unavailable")
    def test_deadline_budgets_stay_on_fused_kernel(
        self, served_index, query_set
    ):
        """The fast-path fix under test: SLO-budgeted batches must run
        the fused MT kernel, not the chunked Python fallback."""
        coalescer = Coalescer(
            served_index, max_wait_ms=10.0, max_batch=16, workers=2
        )
        requests = [make_request(q, deadline_ms=60_000) for q in query_set]
        results = run_concurrent_submits(coalescer, requests)
        coalescer.close()
        assert all(r["kernel_path"] == "fused_mt" for r in results)
        assert set(coalescer.stats.kernel_paths) == {"fused_mt"}

    def test_mixed_budgets_preserved_per_request(self, served_index, query_set):
        """Heterogeneous SLOs in one batch: the hopeless deadline
        degrades its own request only."""
        coalescer = Coalescer(
            served_index, max_wait_ms=10.0, max_batch=len(query_set), workers=2
        )
        requests = [make_request(q, deadline_ms=60_000) for q in query_set]
        # one request with an un-meetable NDC cap instead of a tiny
        # deadline (deterministic in both kernel modes)
        requests[3] = make_request(query_set[3], max_ndc=1, deadline_ms=60_000)
        results = run_concurrent_submits(coalescer, requests)
        coalescer.close()
        assert results[3]["degraded"]
        flags = [r["degraded"] for i, r in enumerate(results) if i != 3]
        assert not any(flags)

    def test_tiny_deadline_degrades_not_errors(self, served_index, query_set):
        coalescer = Coalescer(
            served_index, max_wait_ms=0.0, max_batch=8, workers=2
        )
        # 10ms SLO: admitted (not expired in queue) but fires mid-walk
        # only if the walk is slow; either way the response is a valid
        # best-k, never an exception
        requests = [make_request(q, deadline_ms=10.0) for q in query_set[:8]]
        results = run_concurrent_submits(coalescer, requests)
        coalescer.close()
        for got in results:
            assert not isinstance(got, Exception), got
            assert got["ndc"] >= 0

    def test_batch_key_separates_parameter_groups(self, served_index, query_set):
        """Different (k, ef) never share a batch — bit-identity demands
        exact parameters."""
        coalescer = Coalescer(
            served_index, max_wait_ms=10.0, max_batch=64, workers=2
        )
        requests = [
            make_request(q, k=5 if i % 2 else K) for i, q in enumerate(query_set)
        ]
        results = run_concurrent_submits(coalescer, requests)
        coalescer.close()
        for i, (got, q) in enumerate(zip(results, query_set)):
            want = served_index.search(q, k=5 if i % 2 else K, ef=EF)
            assert list(got["ids"][got["ids"] >= 0]) == list(want.ids)
            assert got["ndc"] == want.ndc
        assert coalescer.stats.batches >= 2


class TestCoalescerResilience:
    def test_nan_batchmate_fails_alone(self, served_index, query_set,
                                       sequential_reference):
        """A request that slips past parse with a poisoned vector is
        isolated by the batch layer; its batchmates still answer
        bit-identically."""
        coalescer = Coalescer(
            served_index, max_wait_ms=10.0, max_batch=8, workers=2
        )
        requests = [make_request(q) for q in query_set[:8]]
        poisoned = make_request(query_set[2])
        poisoned.vector = poisoned.vector.copy()
        poisoned.vector[0] = np.nan
        requests[2] = poisoned
        results = run_concurrent_submits(coalescer, requests)
        coalescer.close()
        assert isinstance(results[2], RequestFailed)
        for i in (0, 1, 3, 4, 5, 6, 7):
            want = sequential_reference[i]
            got = results[i]
            assert not isinstance(got, Exception), got
            assert list(got["ids"][got["ids"] >= 0]) == list(want.ids)
            assert got["ndc"] == want.ndc

    def test_admission_control_sheds_load(self, query_set):
        """A slow duck-typed index backs the queue up; submissions past
        queue_depth are rejected with Overloaded, not queued forever."""

        class SlowIndex:
            dim = DIM

            def search_batch(self, queries, k=10, ef=None, workers=1,
                             budget=None, **_):
                time.sleep(0.25)
                n = len(queries)
                from repro.batch import BatchQueryResult
                return BatchQueryResult(
                    ids=np.zeros((n, k), dtype=np.int64),
                    dists=np.zeros((n, k)),
                    ndc=np.ones(n, dtype=np.int64),
                    hops=np.zeros(n, dtype=np.int64),
                    visited=np.zeros(n, dtype=np.int64),
                    elapsed_s=0.25, workers=workers,
                    errors=[None] * n,
                    degraded=np.zeros(n, dtype=bool),
                    kernel_path="fake",
                )

        coalescer = Coalescer(
            SlowIndex(), max_wait_ms=0.0, max_batch=4, queue_depth=8,
        )
        requests = [make_request(q) for q in query_set[:32]]
        results = run_concurrent_submits(coalescer, requests)
        coalescer.close()
        rejected = [r for r in results if isinstance(r, Overloaded)]
        answered = [r for r in results if isinstance(r, dict)]
        assert len(rejected) >= 1
        assert len(answered) >= 8
        assert coalescer.stats.rejected["overloaded"] == len(rejected)

    def test_expired_in_queue_rejected_without_kernel_time(
        self, served_index, query_set
    ):
        """A deadline that lapses before the window flushes is answered
        with DeadlineExceeded, not given to the kernel."""
        coalescer = Coalescer(
            served_index, max_wait_ms=80.0, max_batch=1024, workers=2
        )
        requests = [
            make_request(q, deadline_ms=1.0) for q in query_set[:4]
        ]
        results = run_concurrent_submits(coalescer, requests)
        coalescer.close()
        from repro.serving import DeadlineExceeded
        assert all(isinstance(r, DeadlineExceeded) for r in results)
        assert coalescer.stats.rejected["expired"] == len(requests)
        assert coalescer.stats.batches == 0

    def test_drain_refuses_new_finishes_inflight(self, served_index, query_set):
        coalescer = Coalescer(
            served_index, max_wait_ms=1000.0, max_batch=1024, workers=2
        )

        async def go():
            inflight = [
                asyncio.ensure_future(coalescer.submit(make_request(q)))
                for q in query_set[:6]
            ]
            await asyncio.sleep(0.02)      # let them queue
            drained = asyncio.ensure_future(coalescer.drain(timeout_s=30.0))
            await asyncio.sleep(0.02)      # draining flag now set
            with pytest.raises(Draining):
                await coalescer.submit(make_request(query_set[10]))
            results = await asyncio.gather(*inflight)
            assert await drained
            return results

        results = asyncio.run(go())
        coalescer.close()
        for got, q in zip(results, query_set[:6]):
            want = served_index.search(q, k=K, ef=EF)
            assert list(got["ids"][got["ids"] >= 0]) == list(want.ids)
            assert got["ndc"] == want.ndc


# -- composition: sharded and mutable indexes ---------------------------


class TestComposition:
    def test_sharded_index_under_front_door(self, query_set):
        from repro.sharding import ShardedIndex

        rng = np.random.default_rng(21)
        data = rng.standard_normal((1800, DIM)).astype(np.float32)
        sharded = ShardedIndex.build(
            data, num_shards=3, algorithm="nsg", seed=3
        )
        reference = sharded.search_batch(query_set, k=K, ef=EF)
        coalescer = Coalescer(
            sharded, max_wait_ms=10.0, max_batch=16, workers=2
        )
        results = run_concurrent_submits(
            coalescer, [make_request(q) for q in query_set]
        )
        coalescer.close()
        for i, got in enumerate(results):
            assert not isinstance(got, Exception), got
            assert (got["ids"] == reference.ids[i]).all()
            assert got["ndc"] == reference.ndc[i]

    def test_delta_tier_under_front_door(self, query_set):
        rng = np.random.default_rng(22)
        data = rng.standard_normal((1200, DIM)).astype(np.float32)
        index = repro.create("nsg", seed=3)
        index.build(data)
        index.auto_consolidate = False
        for row in rng.standard_normal((30, DIM)).astype(np.float32):
            index.insert(row)
        reference = [index.search(q, k=K, ef=EF) for q in query_set[:16]]
        coalescer = Coalescer(
            index, max_wait_ms=10.0, max_batch=8, workers=2
        )
        results = run_concurrent_submits(
            coalescer, [make_request(q) for q in query_set[:16]]
        )
        coalescer.close()
        for got, want in zip(results, reference):
            assert not isinstance(got, Exception), got
            assert list(got["ids"][got["ids"] >= 0]) == list(want.ids)
            assert got["ndc"] == want.ndc


# -- HTTP end-to-end -----------------------------------------------------


class TestHTTPServer:
    @pytest.fixture(scope="class")
    def server(self, served_index):
        config = ServingConfig(
            port=0, max_wait_ms=5.0, max_batch=16, workers=2,
            default_k=K, default_ef=EF,
        )
        with BackgroundServer(served_index, config) as background:
            yield background

    def test_concurrent_http_bit_identical(
        self, server, query_set, sequential_reference
    ):
        answers: dict[int, tuple] = {}

        def one(i):
            answers[i] = post_json(
                server.port, {"vector": query_set[i].tolist(),
                              "k": K, "ef": EF},
            )

        threads = [
            threading.Thread(target=one, args=(i,))
            for i in range(len(query_set))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batch_sizes = set()
        for i, want in enumerate(sequential_reference):
            status, body = answers[i]
            assert status == 200, body
            assert body["ids"] == [int(v) for v in want.ids]
            assert body["ndc"] == want.ndc
            assert not body["degraded"]
            batch_sizes.add(body["batch_size"])
        assert max(batch_sizes) > 1          # coalescing happened

    def test_malformed_request_400s_alone(self, server, query_set,
                                          sequential_reference):
        """Fire a bad request surrounded by good concurrent ones."""
        answers: dict[int, tuple] = {}

        def good(i):
            answers[i] = post_json(
                server.port, {"vector": query_set[i].tolist(),
                              "k": K, "ef": EF},
            )

        def bad():
            answers["bad"] = post_json(server.port, "this is not json")

        threads = [threading.Thread(target=good, args=(i,)) for i in range(8)]
        threads.append(threading.Thread(target=bad))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert answers["bad"][0] == 400
        assert "error" in answers["bad"][1]
        for i in range(8):
            status, body = answers[i]
            assert status == 200
            want = sequential_reference[i]
            assert body["ids"] == [int(v) for v in want.ids]
            assert body["ndc"] == want.ndc

    def test_operational_endpoints(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            conn.request("GET", "/healthz")
            assert conn.getresponse().read() == b'{"status": "ok"}'
            conn.request("GET", "/stats")
            stats = json.loads(conn.getresponse().read())
            assert stats["answered"] >= 1
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            response.read()
            assert response.status == 200
            conn.request("GET", "/nope")
            response = conn.getresponse()
            response.read()
            assert response.status == 404
            conn.request("GET", "/search")
            response = conn.getresponse()
            response.read()
            assert response.status == 405
        finally:
            conn.close()

    def test_wrong_dimension_400(self, server):
        status, body = post_json(server.port, {"vector": [1.0, 2.0]})
        assert status == 400
        assert "dimension mismatch" in body["error"]


class TestHTTPDrain:
    def test_draining_server_503s_then_stops(self, served_index, query_set):
        config = ServingConfig(
            port=0, max_wait_ms=5.0, max_batch=16, workers=2,
            default_k=K, default_ef=EF,
        )
        background = BackgroundServer(served_index, config).start()
        try:
            status, _ = post_json(
                background.port, {"vector": query_set[0].tolist()},
            )
            assert status == 200
            background.begin_drain()
            status, body = post_json(
                background.port, {"vector": query_set[0].tolist()},
            )
            assert status == 503
            conn = http.client.HTTPConnection(
                "127.0.0.1", background.port, timeout=10
            )
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 503
            assert json.loads(response.read())["status"] == "draining"
            conn.close()
        finally:
            background.stop()
