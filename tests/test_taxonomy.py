"""Tests for the Figure 3 roadmap and Table 9 profiles — and their
consistency with the actual implementations."""

import pytest

from repro import ALGORITHMS, create, info
from repro.taxonomy import (
    COMPONENT_PROFILES,
    ROADMAP_EDGES,
    algorithms_where,
    derives_from,
    descendants_of,
)


class TestRoadmap:
    def test_every_edge_endpoint_known(self):
        known = set(ALGORITHMS) | {"DG", "RNG", "KNNG", "MST"}
        for parent, child in ROADMAP_EDGES:
            assert parent in known, parent
            assert child in known, child

    def test_hnsw_derives_from_nsw_and_dg(self):
        assert derives_from("hnsw", "nsw")
        assert derives_from("hnsw", "DG")
        assert derives_from("hnsw", "RNG")

    def test_nssg_lineage(self):
        assert derives_from("nssg", "nsg")
        assert derives_from("nssg", "kgraph")
        assert derives_from("nssg", "KNNG")

    def test_hcnng_only_from_mst(self):
        assert derives_from("hcnng", "MST")
        assert not derives_from("hcnng", "KNNG")

    def test_descendants(self):
        knng_family = descendants_of("KNNG")
        assert {"kgraph", "efanna", "nsg", "nssg"} <= knng_family
        assert "hcnng" not in knng_family

    def test_no_self_edges(self):
        for parent, child in ROADMAP_EDGES:
            assert parent != child


class TestComponentProfiles:
    def test_all_sixteen_algorithms_profiled(self):
        assert len(COMPONENT_PROFILES) == 16

    def test_profiles_match_registry_construction(self):
        for name, profile in COMPONENT_PROFILES.items():
            assert profile.construction == info(name).construction, name

    def test_query_by_selection(self):
        distribution_aware = algorithms_where(
            selection="distance & distribution"
        )
        assert "hnsw" in distribution_aware
        assert "kgraph" not in distribution_aware

    def test_query_by_routing(self):
        assert algorithms_where(routing="GS") == ["hcnng"]
        assert set(algorithms_where(routing="RS")) == {"ngt-panng", "ngt-onng"}

    def test_connectivity_column_matches_behaviour(self, easy_dataset):
        """Table 9's connectivity column must agree with measured CC=1
        for the refinement algorithms that claim the guarantee."""
        for name in ("nsg", "nssg", "nsw"):
            assert COMPONENT_PROFILES[name].connectivity
            index = create(name, seed=0)
            index.build(easy_dataset.base)
            assert index.graph.num_connected_components() == 1, name

    def test_unknown_criteria_rejected(self):
        with pytest.raises(KeyError):
            algorithms_where(flavor="spicy")

    def test_seed_acquisition_consistency(self):
        """Profiles' C6 column matches the implemented seed providers."""
        from repro.components.seeding import (
            CentroidSeeds,
            KDTreeDescendSeeds,
            KDTreeSeeds,
            KMeansTreeSeeds,
            LSHSeeds,
            RandomSeeds,
            VPTreeSeeds,
        )

        expected_provider = {
            "random": RandomSeeds,
            "centroid": CentroidSeeds,
            "kd-tree": (KDTreeSeeds, KDTreeDescendSeeds),
            "k-means tree": KMeansTreeSeeds,
            "vp-tree": VPTreeSeeds,
            "hashing": LSHSeeds,
        }
        for name, profile in COMPONENT_PROFILES.items():
            if profile.seed == "top layer":
                continue  # HNSW manages its entry internally
            algorithm = create(name, seed=0)
            assert isinstance(
                algorithm.seed_provider, expected_provider[profile.seed]
            ), name
