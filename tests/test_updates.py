"""Tests for incremental updates (Table 7 scenario S1): insert + delete.

Since the delta-tier refactor, *every* algorithm supports ``insert()``:
increment-built graphs (NSW/HNSW) grow natively, everything else lands
in the mutable NSW-style side-graph searched alongside the frozen base
and folded in by ``consolidate()``.
"""

import numpy as np
import pytest

from repro import create
from repro.datasets import brute_force_knn, make_clustered
from repro.resilience import InvalidQueryError, QueryBudget


@pytest.fixture(scope="module")
def world():
    return make_clustered(12, 400, 4, 4.0, num_queries=10, gt_depth=30, seed=31)


class TestInsert:
    @pytest.mark.parametrize("name", ["nsw", "hnsw"])
    def test_inserted_point_is_findable(self, name, world):
        index = create(name, seed=2)
        index.build(world.base)
        new_vector = world.base[7] + 0.001  # lands right next to point 7
        new_id = index.insert(new_vector)
        assert new_id == world.n
        result = index.search(new_vector, k=3, ef=40)
        assert new_id in result.ids

    @pytest.mark.parametrize("name", ["nsw", "hnsw"])
    def test_insert_many_keeps_recall(self, name, world):
        index = create(name, seed=2)
        index.build(world.base)
        rng = np.random.default_rng(0)
        extra = world.base[rng.choice(world.n, 30)] + rng.normal(
            0, 0.5, (30, world.dim)
        ).astype(np.float32)
        for vector in extra:
            index.insert(vector)
        full_base = np.vstack([world.base, extra])
        gt, _ = brute_force_knn(full_base, world.queries, 10)
        stats = index.batch_search(world.queries, gt, k=10, ef=80)
        assert stats.recall >= 0.85

    def test_wrong_dim_rejected(self, world):
        index = create("nsw", seed=2)
        index.build(world.base)
        with pytest.raises(ValueError, match="dim"):
            index.insert(np.zeros(5, dtype=np.float32))

    @pytest.mark.parametrize("name", ["kgraph", "nsg", "hcnng", "sptag-kdt"])
    def test_non_incremental_algorithms_insert_via_delta(self, name, world):
        """Refinement/divide-and-conquer graphs used to refuse insert();
        the delta tier makes it universal."""
        index = create(name, seed=2)
        index.build(world.base)
        new_vector = world.base[7] + 0.001
        new_id = index.insert(new_vector)
        assert new_id == world.n
        assert index.delta_points == 1
        result = index.search(new_vector, k=3, ef=40)
        assert new_id in result.ids

    def test_nan_insert_rejected(self, world):
        """A NaN insert must fail up front on every insert path — it
        would silently poison greedy construction otherwise."""
        for name in ("nsw", "hnsw", "nsg"):
            index = create(name, seed=2)
            index.build(world.base)
            bad = world.base[0].copy()
            bad[0] = np.nan
            with pytest.raises(InvalidQueryError):
                index.insert(bad)
            assert index.num_points == world.n  # nothing was added

    def test_insert_drops_compressed_tier_loudly(self, world):
        from repro import observability as obs

        index = create("nsg", seed=2)
        index.build(world.base)
        index.enable_compressed()
        obs.enable(metrics=True)
        try:
            index.insert(world.base[3] + 0.001)
            assert index._compressed is None
            events = [e for e in obs.EVENTS.snapshot()
                      if e.get("event") == "compressed.tier_dropped"]
            assert events, "tier drop must emit a structured event"
            value = obs.instruments().compressed_tier_dropped_total.value
            assert value >= 1
        finally:
            obs.disable()

    def test_hnsw_level_growth(self, world):
        index = create("hnsw", seed=2)
        index.build(world.base)
        levels_before = index.max_level
        for _ in range(40):
            index.insert(
                world.base[0]
                + np.random.default_rng(1).normal(0, 1, world.dim).astype(
                    np.float32
                )
            )
        assert index.max_level >= levels_before
        # every layer tracks the same vertex count
        assert all(layer.n == index.graph.n for layer in index.layers)


class TestDelete:
    def test_deleted_never_returned(self, world):
        index = create("hnsw", seed=2)
        index.build(world.base)
        target = int(world.ground_truth[0][0])
        index.delete(target)
        result = index.search(world.queries[0], k=10, ef=60)
        assert target not in result.ids

    def test_recall_on_survivors(self, world):
        index = create("nsg", seed=2)
        index.build(world.base)
        rng = np.random.default_rng(3)
        doomed = rng.choice(world.n, 40, replace=False)
        for vertex in doomed:
            index.delete(int(vertex))
        survivors = np.setdiff1d(np.arange(world.n), doomed)
        remap = {int(old): pos for pos, old in enumerate(survivors)}
        gt, _ = brute_force_knn(world.base[survivors], world.queries, 10)
        hits = 0
        for i, query in enumerate(world.queries):
            result = index.search(query, k=10, ef=80)
            expected = {int(survivors[g]) for g in gt[i]}
            hits += len(expected & set(int(r) for r in result.ids))
        assert hits / (10 * world.num_queries) >= 0.85

    def test_out_of_range_rejected(self, world):
        index = create("hnsw", seed=2)
        index.build(world.base)
        with pytest.raises(IndexError):
            index.delete(10_000)

    def test_num_deleted_tracked(self, world):
        index = create("hnsw", seed=2)
        index.build(world.base)
        assert index.num_deleted == 0
        index.delete(0)
        index.delete(1)
        index.delete(1)  # idempotent
        assert index.num_deleted == 2

    def test_delete_then_insert_roundtrip(self, world):
        index = create("nsw", seed=2)
        index.build(world.base)
        index.delete(5)
        new_id = index.insert(world.base[5])
        result = index.search(world.base[5], k=2, ef=40)
        assert new_id in result.ids
        assert 5 not in result.ids

    def test_delta_point_deletable(self, world):
        """delete() accepts delta-tier ids and they never resurface."""
        index = create("nsg", seed=2)
        index.build(world.base)
        new_vector = world.base[7] + 0.001
        new_id = index.insert(new_vector)
        index.delete(new_id)
        assert index.num_deleted == 1
        result = index.search(new_vector, k=10, ef=80)
        assert new_id not in result.ids


class TestDeltaTier:
    """The universal insert path: frozen base + mutable side-graph."""

    def test_insert_many_keeps_recall_refinement(self, world):
        """Acceptance: recall holds on a refinement-built algorithm with
        ~8% of the points living in the delta tier."""
        index = create("nsg", seed=2)
        index.build(world.base)
        index.auto_consolidate = False
        rng = np.random.default_rng(0)
        extra = world.base[rng.choice(world.n, 30)] + rng.normal(
            0, 0.5, (30, world.dim)
        ).astype(np.float32)
        for vector in extra:
            index.insert(vector)
        assert index.delta_points == 30
        full_base = np.vstack([world.base, extra])
        gt, _ = brute_force_knn(full_base, world.queries, 10)
        stats = index.batch_search(world.queries, gt, k=10, ef=80)
        assert stats.recall >= 0.85

    def test_batch_matches_sequential_with_delta(self, world):
        """search_batch's two-tier merge is the sequential merge."""
        from repro.batch import search_batch

        index = create("vamana", seed=2)
        index.build(world.base)
        index.auto_consolidate = False
        rng = np.random.default_rng(4)
        for row in rng.choice(world.n, 12):
            index.insert(world.base[row] + 0.01)
        index.delete(int(world.n + 3))  # one delta tombstone in the mix
        batch = search_batch(index, world.queries, k=10, ef=60, workers=2)
        for i, query in enumerate(world.queries):
            result = index.search(query, k=10, ef=60)
            got = batch.ids[i][batch.ids[i] >= 0]
            assert np.array_equal(got, result.ids)
            assert batch.ndc[i] == result.ndc

    def test_budget_spans_both_tiers(self, world):
        """An NDC budget caps base + delta work combined."""
        index = create("nsg", seed=2)
        index.build(world.base)
        index.auto_consolidate = False
        for j in range(20):
            index.insert(world.base[j] + 0.01)
        cap = 60
        result = index.search(
            world.queries[0], k=10, ef=80, budget=QueryBudget(max_ndc=cap)
        )
        assert result.ndc <= cap
        assert result.degraded

    def test_empty_delta_has_no_delta_state(self, world):
        """Before any insert the index carries no delta tier at all —
        the structural guarantee behind the bit-identity invariant."""
        index = create("nsg", seed=2)
        index.build(world.base)
        assert index._delta is None
        index.search(world.queries[0], k=5, ef=40)
        assert index._delta is None


class TestConsolidation:
    def test_consolidate_matches_fresh_build(self, world):
        """Consolidation rebuilds through the same phased engine with
        the same seed, so the swapped-in snapshot answers exactly like
        an index built on the merged dataset from scratch."""
        index = create("nsg", seed=2)
        index.build(world.base)
        index.auto_consolidate = False
        extra = [world.base[j] + 0.01 for j in range(8)]
        for vector in extra:
            index.insert(vector)
        report = index.consolidate()
        assert report.n_base == world.n and report.n_delta == 8
        assert index.delta_points == 0
        assert index.graph.n == world.n + 8

        fresh = create("nsg", seed=2)
        fresh.build(np.vstack([world.base] + [v[None] for v in extra]))
        for query in world.queries[:5]:
            a = index.search(query, k=10, ef=60)
            b = fresh.search(query, k=10, ef=60)
            assert np.array_equal(a.ids, b.ids)
            assert a.ndc == b.ndc

    def test_external_ids_stable_across_consolidation(self, world):
        index = create("vamana", seed=2)
        index.build(world.base)
        index.auto_consolidate = False
        vec = world.base[11] + 0.002
        new_id = index.insert(vec)
        assert new_id == world.n
        index.consolidate()
        result = index.search(vec, k=2, ef=60)
        assert new_id in result.ids  # same id, now served by the base

    def test_deletes_survive_consolidation(self, world):
        index = create("nsg", seed=2)
        index.build(world.base)
        index.auto_consolidate = False
        target = int(world.ground_truth[0][0])
        vec = world.base[9] + 0.003
        delta_id = index.insert(vec)
        index.delete(target)        # base tombstone
        index.delete(delta_id)      # delta tombstone
        index.consolidate()
        assert index.num_deleted == 2
        assert target not in index.search(world.queries[0], k=10, ef=80).ids
        assert delta_id not in index.search(vec, k=10, ef=80).ids

    def test_auto_consolidation_threshold(self, world):
        index = create("nsg", seed=2)
        index.build(world.base)
        index.delta_max_points = 10
        for j in range(10):
            index.insert(world.base[j] + 0.01)
        thread = index._consolidation_thread
        assert thread is not None
        thread.join(timeout=120)
        assert index._consolidation_error is None
        assert index.delta_points == 0
        assert index.graph.n == world.n + 10

    def test_crash_mid_consolidation_preserves_snapshot(self, world):
        """Acceptance: a crash injected mid-consolidation leaves the
        previous snapshot live and searchable, delta included."""
        from repro import faults

        index = create("nsg", seed=2)
        index.build(world.base)
        index.auto_consolidate = False
        vec = world.base[5] + 0.004
        new_id = index.insert(vec)
        old_graph = index.graph
        for stage in ("build", "swap"):
            with faults.inject(faults.FaultPlan().fail_consolidation(stage)):
                with pytest.raises(RuntimeError, match="consolidation"):
                    index.consolidate()
            assert index.graph is old_graph
            assert index.delta_points == 1
            assert new_id in index.search(vec, k=3, ef=60).ids
        # without the fault plan the same call succeeds
        index.consolidate()
        assert index.delta_points == 0
        assert new_id in index.search(vec, k=3, ef=60).ids

    def test_background_consolidation_thread(self, world):
        index = create("vamana", seed=2)
        index.build(world.base)
        index.auto_consolidate = False
        index.insert(world.base[3] + 0.01)
        thread = index.consolidate(wait=False)
        report = index.consolidate(wait=True)  # joins the running pass
        assert not thread.is_alive()
        assert report.n_delta == 1
        assert index.delta_points == 0


class TestUpdatePersistence:
    """delete -> save -> load round trips across index formats."""

    def test_tombstones_survive_v3_roundtrip(self, world, tmp_path):
        from repro.io import load_index, save_index

        index = create("nsg", seed=2)
        index.build(world.base)
        target = int(world.ground_truth[0][0])
        index.delete(target)
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.num_deleted == 1
        assert target not in loaded.search(world.queries[0], k=10, ef=80).ids

    def test_tombstones_survive_v4_roundtrip(self, world, tmp_path):
        from repro.io import load_index, save_index

        index = create("nsg", seed=2)
        index.build(world.base)
        index.enable_compressed()
        target = int(world.ground_truth[0][0])
        index.delete(target)
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.num_deleted == 1
        assert target not in loaded.search(world.queries[0], k=10, ef=80).ids
        assert loaded._compressed is not None

    def test_delta_survives_v5_roundtrip(self, world, tmp_path):
        import numpy.lib.npyio  # noqa: F401 - np.load path below

        from repro.io import load_index, save_index

        index = create("nsg", seed=2)
        index.build(world.base)
        index.auto_consolidate = False
        vec = world.base[7] + 0.002
        kept = index.insert(vec)
        doomed = index.insert(world.base[8] + 0.002)
        index.delete(doomed)
        index.delete(3)
        path = tmp_path / "index.npz"
        save_index(index, path)
        with np.load(path) as archive:
            assert int(archive["format_version"]) == 5
        loaded = load_index(path)
        assert loaded.delta_points == 2
        assert loaded.num_deleted == 2
        assert kept in loaded.search(vec, k=3, ef=60).ids
        res = loaded.search(world.base[8] + 0.002, k=10, ef=80)
        assert doomed not in res.ids
        # the restored delta keeps growing
        third = loaded.insert(world.base[9] + 0.002)
        assert third == world.n + 2
        assert third in loaded.search(world.base[9] + 0.002, k=3, ef=60).ids

    def test_empty_delta_stays_v3(self, world, tmp_path):
        """Indexes that never saw an insert keep the old format."""
        from repro.io import save_index

        index = create("nsg", seed=2)
        index.build(world.base)
        path = tmp_path / "index.npz"
        save_index(index, path)
        with np.load(path) as archive:
            assert int(archive["format_version"]) == 3

    def test_corrupt_delta_repairable(self, world, tmp_path):
        from repro.resilience import verify_index

        index = create("nsg", seed=2)
        index.build(world.base)
        index.auto_consolidate = False
        index.insert(world.base[4] + 0.01)
        index.insert(world.base[5] + 0.01)
        index._delta._adj[0] = [999]  # edge outside the delta
        report = verify_index(index, repair=True, strict=False)
        assert index._delta is None
        assert any("delta tier dropped" in r for r in report.repairs)
        # base search is unaffected
        assert len(index.search(world.queries[0], k=10, ef=60).ids) == 10
